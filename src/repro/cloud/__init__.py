"""Cloud substrate: a simulated IaaS provider standing in for Amazon EC2.

CELIA consumes three things from the cloud: a catalog of instance types
with prices and vCPU counts (Table III), per-type instruction-execution
capacity (obtained by running scale-down baselines on real instances), and
on-demand billing.  This package simulates all three, including the
virtualization effects (overhead, processor sharing between tenants) that
make the paper's validation errors non-zero.
"""

from repro.cloud.instance import (
    InstanceType,
    Instance,
    ResourceCategory,
    StorageKind,
)
from repro.cloud.catalog import Catalog, ec2_catalog, make_catalog
from repro.cloud.pricing import (
    BillingModel,
    LinearBilling,
    HourlyQuantizedBilling,
    PerSecondBilling,
    SpotPriceProcess,
)
from repro.cloud.virtualization import VirtualizationModel
from repro.cloud.faults import ProvisioningFaultModel
from repro.cloud.provider import CloudProvider, Lease
from repro.cloud.billing import BillingLedger, LedgerEntry

__all__ = [
    "InstanceType",
    "Instance",
    "ResourceCategory",
    "StorageKind",
    "Catalog",
    "ec2_catalog",
    "make_catalog",
    "BillingModel",
    "LinearBilling",
    "HourlyQuantizedBilling",
    "PerSecondBilling",
    "SpotPriceProcess",
    "VirtualizationModel",
    "ProvisioningFaultModel",
    "CloudProvider",
    "Lease",
    "BillingLedger",
    "LedgerEntry",
]
