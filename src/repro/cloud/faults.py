"""Injectable transient provisioning faults for :class:`CloudProvider`.

Real IaaS control planes fail in two qualitatively different transient
ways: a *capacity* shortfall scoped to one instance type (EC2's
``InsufficientInstanceCapacity``) and request-scoped *API throttling*.
Both are survivable with retries, but they demand different remedies —
a capacity shortfall can be routed around by substituting a
Pareto-adjacent type, throttling can only be waited out.

:class:`ProvisioningFaultModel` injects both, deterministically: every
``provision`` call draws from an RNG derived from ``(seed, attempt
counter)``, so identical seeds reproduce the identical fault sequence
regardless of wall clock or process interleaving.  Rates of zero (the
default model) never fault, so the provider's nominal behaviour is
untouched.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

import numpy as np

from repro.errors import (
    ApiThrottledError,
    InsufficientCapacityError,
    ValidationError,
)
from repro.utils.rng import derive_rng

__all__ = ["ProvisioningFaultModel"]


@dataclass
class ProvisioningFaultModel:
    """Seeded transient-fault injector for provisioning calls.

    Parameters
    ----------
    insufficient_capacity_rate:
        Probability that one provision attempt hits a per-type capacity
        shortfall.  The short type is chosen deterministically among the
        types the request actually asks for.
    throttle_rate:
        Probability that one provision attempt is rejected by API rate
        limiting before capacity is even considered.
    seed:
        Root seed of the fault stream; the per-attempt RNG is derived
        from ``(seed, "provision-fault", attempt_index)``.
    """

    insufficient_capacity_rate: float = 0.0
    throttle_rate: float = 0.0
    seed: int = 0
    _attempts: itertools.count = field(default_factory=lambda: itertools.count(),
                                       repr=False, compare=False)

    def __post_init__(self) -> None:
        for name in ("insufficient_capacity_rate", "throttle_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValidationError(f"{name} must be in [0, 1], got {rate}")

    @classmethod
    def none(cls) -> "ProvisioningFaultModel":
        """A model that never faults (explicit version of the default)."""
        return cls()

    @property
    def enabled(self) -> bool:
        """Whether any fault can ever fire."""
        return self.insufficient_capacity_rate > 0 or self.throttle_rate > 0

    def check(self, requested: np.ndarray, type_names: list[str]) -> None:
        """Raise a transient fault for this attempt, or return quietly.

        ``requested`` is the validated node-count vector of the attempt;
        the capacity fault lands on one of its non-zero types (weighted
        by node count — bigger asks are likelier to hit the short pool).
        """
        if not self.enabled:
            return
        attempt = next(self._attempts)
        rng = derive_rng(self.seed, "provision-fault", attempt)
        draw = rng.uniform()
        if draw < self.throttle_rate:
            raise ApiThrottledError(
                f"provisioning API throttled (attempt {attempt})")
        if draw < self.throttle_rate + self.insufficient_capacity_rate:
            used = np.flatnonzero(requested)
            weights = requested[used] / requested[used].sum()
            short = int(rng.choice(used, p=weights))
            raise InsufficientCapacityError(
                f"insufficient capacity for type {type_names[short]!r} "
                f"(attempt {attempt})",
                type_index=short,
                type_name=type_names[short],
            )
