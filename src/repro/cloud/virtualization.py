"""Virtualization effects: overhead, tenant contention, runtime jitter.

The paper attributes most of its ≤17% prediction error to the provider's
processor-sharing implementation (vCPUs are hyper-threads of shared
physical cores, per Wang & Ng [26]) and to inter-node communication.  This
module models the *host-side* part:

* a deterministic per-category **overhead factor** (hypervisor tax) that is
  *already baked into measured capacities* — CELIA's measured rates include
  it, which is why the paper does not model it separately;
* a per-instance **contention factor** sampled at launch — two instances of
  the same type land on differently loaded hosts;
* per-interval **jitter** applied while executing — noisy neighbours come
  and go during a run.

Effective speed of an instance executing compute is::

    speed = nominal_rate * contention_factor * jitter(t)

with ``contention_factor ~ 1 - |N(0, sigma_c)|`` (never faster than the
measured nominal rate: measurement happened on a typical host) and
``jitter`` log-normal with unit median.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cloud.instance import ResourceCategory
from repro.errors import ValidationError

__all__ = ["VirtualizationModel"]


@dataclass(frozen=True)
class VirtualizationModel:
    """Stochastic model of virtualization-induced performance variation.

    Parameters
    ----------
    contention_sigma:
        Scale of the per-instance slowdown at launch.  0 disables it.
    jitter_sigma:
        Sigma of the log-normal per-interval jitter.  0 disables it.
    category_overhead:
        Deterministic hypervisor overhead per category (fraction of
        performance *lost*); informs ground-truth rates in the measurement
        layer, and is deliberately NOT visible to CELIA's models.
    """

    contention_sigma: float = 0.04
    jitter_sigma: float = 0.03
    category_overhead: tuple[tuple[ResourceCategory, float], ...] = (
        (ResourceCategory.COMPUTE, 0.05),
        (ResourceCategory.GENERAL, 0.06),
        (ResourceCategory.MEMORY, 0.08),
    )

    def __post_init__(self) -> None:
        if self.contention_sigma < 0 or self.jitter_sigma < 0:
            raise ValidationError("noise scales must be non-negative")
        for _, overhead in self.category_overhead:
            if not (0 <= overhead < 1):
                raise ValidationError("overhead must be in [0, 1)")

    @classmethod
    def noiseless(cls) -> "VirtualizationModel":
        """A model with no stochastic effects (for deterministic tests)."""
        return cls(contention_sigma=0.0, jitter_sigma=0.0)

    def overhead_for(self, category: ResourceCategory) -> float:
        """Deterministic overhead fraction for a resource category."""
        for cat, overhead in self.category_overhead:
            if cat is category:
                return overhead
        return 0.0

    def efficiency_for(self, category: ResourceCategory) -> float:
        """1 - overhead: fraction of bare-metal performance retained."""
        return 1.0 - self.overhead_for(category)

    def sample_contention(self, rng: np.random.Generator) -> float:
        """Per-instance launch-time slowdown factor in (0, 1].

        Uses a half-normal below 1: measured nominal capacity corresponds
        to a typical host, and unlucky placements only lose performance.
        """
        if self.contention_sigma == 0:
            return 1.0
        slowdown = abs(rng.normal(0.0, self.contention_sigma))
        return float(max(1.0 - slowdown, 0.5))

    def sample_jitter(self, rng: np.random.Generator, n: int = 1) -> np.ndarray:
        """Log-normal multiplicative jitter with unit median, shape (n,)."""
        if self.jitter_sigma == 0:
            return np.ones(n)
        return rng.lognormal(mean=0.0, sigma=self.jitter_sigma, size=n)
