"""Cost accounting for the simulated provider."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["LedgerEntry", "BillingLedger"]


@dataclass(frozen=True, slots=True)
class LedgerEntry:
    """One billed instance-termination event."""

    lease_id: int
    instance_id: str
    type_name: str
    uptime_hours: float
    amount: float


class BillingLedger:
    """Append-only record of all billed amounts for one provider."""

    def __init__(self) -> None:
        self._entries: list[LedgerEntry] = []

    def record(self, *, lease_id: int, instance_id: str, type_name: str,
               uptime_hours: float, amount: float) -> LedgerEntry:
        """Append one entry and return it."""
        entry = LedgerEntry(
            lease_id=lease_id,
            instance_id=instance_id,
            type_name=type_name,
            uptime_hours=uptime_hours,
            amount=amount,
        )
        self._entries.append(entry)
        return entry

    @property
    def entries(self) -> list[LedgerEntry]:
        """All entries in insertion order (copy)."""
        return list(self._entries)

    def total(self) -> float:
        """Total dollars billed so far."""
        return sum(e.amount for e in self._entries)

    def total_for_lease(self, lease_id: int) -> float:
        """Dollars billed against one lease."""
        return sum(e.amount for e in self._entries if e.lease_id == lease_id)

    def by_type(self) -> dict[str, float]:
        """Dollars billed per instance-type name."""
        out: dict[str, float] = {}
        for e in self._entries:
            out[e.type_name] = out.get(e.type_name, 0.0) + e.amount
        return out

    def __len__(self) -> int:
        return len(self._entries)
