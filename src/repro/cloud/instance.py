"""Instance types and instances of the simulated cloud.

Mirrors Amazon EC2's taxonomy as used in the paper: *categories*
(compute-intensive ``c4``, general-purpose ``m4``, memory-optimized
``r3``) each containing *types* (``large``, ``xlarge``, ``2xlarge``) that
double vCPUs (and roughly price) at each step.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import ValidationError

__all__ = ["ResourceCategory", "StorageKind", "InstanceType", "Instance"]


class ResourceCategory(enum.Enum):
    """EC2 resource category (performance family)."""

    COMPUTE = "c4"
    GENERAL = "m4"
    MEMORY = "r3"

    @classmethod
    def from_prefix(cls, prefix: str) -> "ResourceCategory":
        """Map a family prefix like ``"c4"`` to a category."""
        for cat in cls:
            if cat.value == prefix:
                return cat
        raise ValidationError(f"unknown resource category prefix: {prefix!r}")


class StorageKind(enum.Enum):
    """Instance storage backing (Table III's Storage column)."""

    EBS = "EBS"
    LOCAL_SSD = "SSD"


@dataclass(frozen=True, slots=True)
class InstanceType:
    """A cloud resource type — one row of Table III.

    Attributes
    ----------
    name:
        Full type name, e.g. ``"c4.xlarge"``.
    category:
        The resource category (family) the type belongs to.
    vcpus:
        Number of virtual processors ``v_i``.  Each vCPU is modeled as a
        hyper-thread of the underlying physical core, as in the paper.
    frequency_ghz:
        Base frequency of the host processor; only used by the
        spec-frequency baseline estimator, never by CELIA proper.
    memory_gb:
        Instance memory.  Not part of CELIA's capacity model (the paper's
        applications are compute-bound) but kept for catalog fidelity and
        memory-feasibility checks in the engine.
    storage:
        EBS or local SSD with the local size in GB (0 for EBS).
    price_per_hour:
        On-demand price ``c_i`` in dollars per hour.
    host_processor:
        Marketing name of the host CPU (documentation only).
    """

    name: str
    category: ResourceCategory
    vcpus: int
    frequency_ghz: float
    memory_gb: float
    storage: StorageKind
    local_storage_gb: float
    price_per_hour: float
    host_processor: str = ""

    def __post_init__(self) -> None:
        if self.vcpus < 1:
            raise ValidationError(f"{self.name}: vcpus must be >= 1")
        if self.price_per_hour <= 0:
            raise ValidationError(f"{self.name}: price must be positive")
        if self.frequency_ghz <= 0:
            raise ValidationError(f"{self.name}: frequency must be positive")
        if self.memory_gb <= 0:
            raise ValidationError(f"{self.name}: memory must be positive")
        if self.local_storage_gb < 0:
            raise ValidationError(f"{self.name}: storage size must be >= 0")
        if (self.storage is StorageKind.LOCAL_SSD) != (self.local_storage_gb > 0):
            raise ValidationError(
                f"{self.name}: local storage size must be positive exactly "
                f"when storage kind is local SSD"
            )

    @property
    def size_label(self) -> str:
        """The size part of the name (``"large"``, ``"2xlarge"``, ...)."""
        _, _, size = self.name.partition(".")
        return size

    def spec_gips_upper_bound(self, instructions_per_cycle: float = 1.0) -> float:
        """Frequency-based capacity upper bound in GI/s.

        The paper notes one *could* estimate capacity from the spec sheet
        frequency, then rejects that in favour of measurement; this method
        exists to implement that rejected baseline
        (:mod:`repro.baselines.specbound`).
        """
        if instructions_per_cycle <= 0:
            raise ValidationError("instructions_per_cycle must be positive")
        return self.frequency_ghz * self.vcpus * instructions_per_cycle


@dataclass(slots=True)
class Instance:
    """A provisioned node of some :class:`InstanceType`.

    Instances are created by the :class:`~repro.cloud.provider.CloudProvider`
    and carry the identity and host-level state the execution engine needs
    (notably the per-instance *contention factor* sampled from the
    virtualization model, which makes two instances of the same type
    slightly different — the paper attributes most of its prediction error
    to exactly this processor-sharing effect).
    """

    instance_id: str
    itype: InstanceType
    contention_factor: float = 1.0
    launched_at_hours: float = 0.0
    terminated_at_hours: float | None = field(default=None)

    def __post_init__(self) -> None:
        if self.contention_factor <= 0:
            raise ValidationError("contention factor must be positive")

    @property
    def running(self) -> bool:
        """True while the instance has not been terminated."""
        return self.terminated_at_hours is None

    def uptime_hours(self, now_hours: float) -> float:
        """Billable uptime at simulated time ``now_hours``."""
        end = self.terminated_at_hours if self.terminated_at_hours is not None else now_hours
        if end < self.launched_at_hours:
            raise ValidationError("instance terminated before launch")
        return end - self.launched_at_hours
