"""Billing models for the simulated provider.

CELIA's analytical cost model (Eq. 5) is *linear*: ``C = T × C_u``.  Real
EC2 in 2017 billed by the full hour, which is one of the effects that make
predicted and measured costs differ in Table IV.  The engine therefore
supports several billing models; experiments use
:class:`HourlyQuantizedBilling` for "actual" costs and the analytical
model's linearity for predictions, exactly mirroring the paper's setup.

A simple mean-reverting :class:`SpotPriceProcess` is included to support
the paper's related-work discussion (spot instances are explicitly out of
scope for CELIA, but the ablation benchmarks use the process to show *why*
deadline guarantees break under spot pricing).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

import numpy as np

from repro.errors import ValidationError

__all__ = [
    "BillingModel",
    "LinearBilling",
    "HourlyQuantizedBilling",
    "PerSecondBilling",
    "SpotPriceProcess",
]


class BillingModel(ABC):
    """Maps (hourly price, uptime) to a billed amount in dollars."""

    @abstractmethod
    def amount_due(self, price_per_hour: float, uptime_hours: float) -> float:
        """Dollars owed for keeping one instance up for ``uptime_hours``."""

    def validate_inputs(self, price_per_hour: float, uptime_hours: float) -> None:
        """Shared input validation for all billing models."""
        if price_per_hour < 0:
            raise ValidationError("price must be non-negative")
        if uptime_hours < 0:
            raise ValidationError("uptime must be non-negative")


class LinearBilling(BillingModel):
    """Exact proportional billing — the analytical model's assumption."""

    def amount_due(self, price_per_hour: float, uptime_hours: float) -> float:
        self.validate_inputs(price_per_hour, uptime_hours)
        return price_per_hour * uptime_hours


class HourlyQuantizedBilling(BillingModel):
    """Bill full hours, rounding uptime up — EC2's 2017 on-demand policy.

    Any positive uptime is billed at least one hour.
    """

    def amount_due(self, price_per_hour: float, uptime_hours: float) -> float:
        self.validate_inputs(price_per_hour, uptime_hours)
        if uptime_hours == 0:
            return 0.0
        return price_per_hour * math.ceil(uptime_hours)


class PerSecondBilling(BillingModel):
    """Per-second billing with a minimum charge (EC2's post-2017 policy).

    Included as an extension point: re-running the experiments under
    per-second billing shows how much of Table IV's cost error is billing
    quantization rather than performance mis-prediction.
    """

    def __init__(self, minimum_seconds: float = 60.0):
        if minimum_seconds < 0:
            raise ValidationError("minimum charge must be non-negative")
        self.minimum_seconds = minimum_seconds

    def amount_due(self, price_per_hour: float, uptime_hours: float) -> float:
        self.validate_inputs(price_per_hour, uptime_hours)
        if uptime_hours == 0:
            return 0.0
        seconds = max(math.ceil(uptime_hours * 3600.0), self.minimum_seconds)
        return price_per_hour * seconds / 3600.0


class SpotPriceProcess:
    """Mean-reverting (Ornstein–Uhlenbeck-like) spot price path generator.

    ``price_{k+1} = price_k + theta*(mean - price_k)*dt + sigma*sqrt(dt)*N``
    clipped from below at ``floor_fraction * mean``.  Prices exceeding the
    on-demand price model out-bid termination events.

    Parameters
    ----------
    on_demand_price:
        Hourly on-demand price for the type; the spot mean defaults to a
        fraction of it and crossing it means termination.
    mean_fraction:
        Long-run spot mean as a fraction of the on-demand price.
    theta, sigma:
        Mean-reversion speed per hour and *relative* volatility — sigma
        scales the mean price, so price swings are proportional to the
        market's level regardless of instance size.
    """

    def __init__(self, on_demand_price: float, *, mean_fraction: float = 0.35,
                 theta: float = 0.6, sigma: float = 0.35,
                 floor_fraction: float = 0.05):
        if on_demand_price <= 0:
            raise ValidationError("on-demand price must be positive")
        if not (0 < mean_fraction <= 1):
            raise ValidationError("mean_fraction must be in (0, 1]")
        if theta <= 0 or sigma < 0:
            raise ValidationError("theta must be > 0 and sigma >= 0")
        if not (0 <= floor_fraction <= mean_fraction):
            raise ValidationError(
                f"floor_fraction must be in [0, mean_fraction]; got "
                f"{floor_fraction!r} with mean_fraction {mean_fraction!r}")
        self.on_demand_price = on_demand_price
        self.mean_price = mean_fraction * on_demand_price
        self.theta = theta
        self.sigma = sigma * self.mean_price
        self.floor = floor_fraction * self.mean_price

    def sample_path(self, hours: float, step_hours: float,
                    rng: np.random.Generator) -> np.ndarray:
        """Simulate a spot price path over ``hours`` at ``step_hours`` steps."""
        if hours <= 0 or step_hours <= 0:
            raise ValidationError("hours and step_hours must be positive")
        n_steps = int(math.ceil(hours / step_hours)) + 1
        prices = np.empty(n_steps, dtype=np.float64)
        prices[0] = self.mean_price
        noise = rng.standard_normal(n_steps - 1)
        sqrt_dt = math.sqrt(step_hours)
        for k in range(n_steps - 1):
            drift = self.theta * (self.mean_price - prices[k]) * step_hours
            prices[k + 1] = prices[k] + drift + self.sigma * sqrt_dt * noise[k]
        return np.clip(prices, self.floor, None)

    def first_interruption_hour(self, path: np.ndarray,
                                step_hours: float,
                                bid_price: float) -> float | None:
        """Hour of the first step where the spot price exceeds the bid.

        Returns ``None`` if the bid survives the whole path.
        """
        above = np.flatnonzero(np.asarray(path) > bid_price)
        if above.size == 0:
            return None
        return float(above[0]) * step_hours
