"""Resource catalogs — ordered collections of instance types with quotas.

A :class:`Catalog` fixes the dimensionality and ordering of CELIA's
configuration vectors: configuration ``G_j = <m_j,1 ... m_j,M>`` counts
nodes of ``catalog.types[0] ... catalog.types[M-1]`` in that order.  The
paper's evaluation catalog (Table III, nine types, quota 5 each) is
provided by :func:`ec2_catalog`.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from dataclasses import dataclass

import numpy as np

from repro.cloud.instance import InstanceType, ResourceCategory, StorageKind
from repro.errors import CatalogError

__all__ = ["Catalog", "ec2_catalog", "make_catalog", "EC2_TABLE_III"]


@dataclass(frozen=True)
class Catalog:
    """An immutable, ordered set of instance types plus per-type quotas.

    Attributes
    ----------
    types:
        The instance types, in configuration-vector order.
    quotas:
        ``m_i,max`` per type — the maximum number of simultaneous nodes the
        provider allows (5 for every type in the paper).
    """

    types: tuple[InstanceType, ...]
    quotas: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.types:
            raise CatalogError("catalog must contain at least one type")
        if len(self.types) != len(self.quotas):
            raise CatalogError("one quota per type is required")
        names = [t.name for t in self.types]
        if len(set(names)) != len(names):
            raise CatalogError(f"duplicate type names in catalog: {names}")
        if any(q < 1 for q in self.quotas):
            raise CatalogError("quotas must be >= 1")

    # -- basic container protocol -------------------------------------------

    def __len__(self) -> int:
        return len(self.types)

    def __iter__(self) -> Iterator[InstanceType]:
        return iter(self.types)

    def __getitem__(self, index: int) -> InstanceType:
        return self.types[index]

    def index_of(self, name: str) -> int:
        """Position of the type named ``name`` in configuration vectors."""
        for i, t in enumerate(self.types):
            if t.name == name:
                return i
        raise CatalogError(f"no type named {name!r} in catalog")

    def type_named(self, name: str) -> InstanceType:
        """The :class:`InstanceType` with the given name."""
        return self.types[self.index_of(name)]

    # -- vectorized views (hot-path inputs) ----------------------------------

    @property
    def prices(self) -> np.ndarray:
        """Per-type hourly prices ``c_i`` as a float64 vector."""
        return np.array([t.price_per_hour for t in self.types], dtype=np.float64)

    @property
    def vcpus(self) -> np.ndarray:
        """Per-type vCPU counts ``v_i`` as an int vector."""
        return np.array([t.vcpus for t in self.types], dtype=np.int64)

    @property
    def quota_vector(self) -> np.ndarray:
        """Quotas ``m_i,max`` as an int vector."""
        return np.array(self.quotas, dtype=np.int64)

    @property
    def names(self) -> list[str]:
        """Type names in configuration-vector order."""
        return [t.name for t in self.types]

    @property
    def categories(self) -> list[ResourceCategory]:
        """Category of each type, in order."""
        return [t.category for t in self.types]

    def types_in_category(self, category: ResourceCategory) -> list[InstanceType]:
        """All types belonging to ``category``, in catalog order."""
        return [t for t in self.types if t.category is category]

    def configuration_count(self) -> int:
        """Total number of non-empty configurations — Eq. 1 of the paper.

        ``S = prod_i (m_i,max + 1) - 1``.
        """
        total = 1
        for q in self.quotas:
            total *= q + 1
        return total - 1

    # -- construction helpers -------------------------------------------------

    def restrict(self, names: Sequence[str]) -> "Catalog":
        """A sub-catalog containing only the named types (given order)."""
        idx = [self.index_of(n) for n in names]
        return Catalog(
            types=tuple(self.types[i] for i in idx),
            quotas=tuple(self.quotas[i] for i in idx),
        )

    def with_quota(self, quota: int) -> "Catalog":
        """A copy of this catalog with a uniform quota for every type."""
        return Catalog(types=self.types, quotas=(quota,) * len(self.types))


#: Table III of the paper, verbatim (Oregon region on-demand, 2017).
#: Rows are ordered as the paper's *configuration tuples* are: within each
#: category the largest type comes first.  Cross-checking Table IV's cost
#: columns against its configuration vectors shows this is the ordering the
#: authors used (e.g. galaxy(65536, 8000) on [5,5,5,3,0,...] costs $126 at
#: 24 h only if the first three slots are c4.2xlarge, c4.xlarge, c4.large
#: and the fourth is m4.2xlarge).
EC2_TABLE_III: tuple[tuple[str, int, float, float, str, float, float, str], ...] = (
    # name, vcpus, GHz, mem GB, storage, local GB, $/h, host CPU
    ("c4.2xlarge", 8, 2.9, 15.0, "EBS", 0.0, 0.419, "Intel Xeon E5-2666 v3"),
    ("c4.xlarge", 4, 2.9, 7.5, "EBS", 0.0, 0.209, "Intel Xeon E5-2666 v3"),
    ("c4.large", 2, 2.9, 3.75, "EBS", 0.0, 0.105, "Intel Xeon E5-2666 v3"),
    ("m4.2xlarge", 8, 2.3, 32.0, "EBS", 0.0, 0.532, "Intel Xeon E5-2676 v3"),
    ("m4.xlarge", 4, 2.3, 16.0, "EBS", 0.0, 0.266, "Intel Xeon E5-2676 v3"),
    ("m4.large", 2, 2.3, 8.0, "EBS", 0.0, 0.133, "Intel Xeon E5-2676 v3"),
    ("r3.2xlarge", 8, 2.5, 61.0, "SSD", 160.0, 0.664, "Intel Xeon E5-2670"),
    ("r3.xlarge", 4, 2.5, 30.5, "SSD", 80.0, 0.333, "Intel Xeon E5-2670"),
    ("r3.large", 2, 2.5, 15.0, "SSD", 32.0, 0.166, "Intel Xeon E5-2670"),
)


def ec2_catalog(max_nodes_per_type: int = 5) -> Catalog:
    """The paper's nine-type Amazon EC2 catalog (Table III).

    With the default quota of five nodes per type this catalog exposes
    ``6**9 - 1 = 10,077,695`` configurations, the space the paper explores.
    Type order matches the paper's configuration tuples (largest type first
    within each category; see :data:`EC2_TABLE_III`).
    """
    types = []
    for name, vcpus, ghz, mem, storage, local_gb, price, host in EC2_TABLE_III:
        prefix = name.split(".")[0]
        types.append(
            InstanceType(
                name=name,
                category=ResourceCategory.from_prefix(prefix),
                vcpus=vcpus,
                frequency_ghz=ghz,
                memory_gb=mem,
                storage=StorageKind.EBS if storage == "EBS" else StorageKind.LOCAL_SSD,
                local_storage_gb=local_gb,
                price_per_hour=price,
                host_processor=host,
            )
        )
    return Catalog(types=tuple(types), quotas=(max_nodes_per_type,) * len(types))


def make_catalog(
    rows: Sequence[tuple[str, int, float, float]],
    *,
    quota: int = 5,
    category: ResourceCategory = ResourceCategory.GENERAL,
) -> Catalog:
    """Build a simple custom catalog from ``(name, vcpus, GHz, $/h)`` rows.

    Convenience for tests and examples that need small bespoke catalogs;
    memory and storage are given neutral defaults.
    """
    types = tuple(
        InstanceType(
            name=name,
            category=category,
            vcpus=vcpus,
            frequency_ghz=ghz,
            memory_gb=4.0 * vcpus,
            storage=StorageKind.EBS,
            local_storage_gb=0.0,
            price_per_hour=price,
        )
        for name, vcpus, ghz, price in rows
    )
    return Catalog(types=types, quotas=(quota,) * len(types))
