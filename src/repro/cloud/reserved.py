"""Reserved-instance pricing — the commitment alternative to on-demand.

EC2 sells the same instance types under reservation contracts: pay part
(or all) upfront for a term, get a discounted hourly rate.  CELIA's
models price single runs at on-demand rates; this module answers the
follow-on question a recurring workload raises — *at what utilization
does reserving beat on-demand?* — and converts a reservation into the
effective hourly price CELIA's cost model can consume.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cloud.instance import InstanceType
from repro.errors import ValidationError

__all__ = ["ReservedOffering", "standard_one_year_offering"]


@dataclass(frozen=True, slots=True)
class ReservedOffering:
    """One reservation contract for an instance type.

    Attributes
    ----------
    itype:
        The reserved instance type.
    upfront_dollars:
        One-time payment at purchase.
    hourly_dollars:
        Discounted hourly rate while the reservation is active (paid for
        every hour of the term whether used or not under "no-upfront";
        here: paid only when running, matching partial-upfront contracts).
    term_hours:
        Contract length (1 year = 8,766 h).
    """

    itype: InstanceType
    upfront_dollars: float
    hourly_dollars: float
    term_hours: float

    def __post_init__(self) -> None:
        if self.upfront_dollars < 0 or self.hourly_dollars < 0:
            raise ValidationError("payments must be non-negative")
        if self.term_hours <= 0:
            raise ValidationError("term must be positive")
        if self.hourly_dollars >= self.itype.price_per_hour:
            raise ValidationError(
                "a reservation must discount the on-demand hourly rate")

    def effective_hourly(self, hours_used: float) -> float:
        """All-in hourly price when the reservation runs ``hours_used``.

        Amortizes the upfront over the hours actually used; the contract
        cannot be used beyond its term.
        """
        if not (0 < hours_used <= self.term_hours):
            raise ValidationError(
                f"hours_used must be in (0, {self.term_hours}]")
        return self.hourly_dollars + self.upfront_dollars / hours_used

    def breakeven_hours(self) -> float:
        """Usage above which the reservation beats on-demand.

        Solves ``hourly + upfront / h = on_demand`` for ``h``; returns
        ``inf`` when the contract can never break even within its term.
        """
        margin = self.itype.price_per_hour - self.hourly_dollars
        hours = self.upfront_dollars / margin
        return hours if hours <= self.term_hours else float("inf")

    def breakeven_utilization(self) -> float:
        """Break-even point as a fraction of the term."""
        hours = self.breakeven_hours()
        return hours / self.term_hours if hours != float("inf") else float("inf")

    def saving_fraction(self, hours_used: float) -> float:
        """1 − reserved cost / on-demand cost for the given usage."""
        effective = self.effective_hourly(hours_used)
        return 1.0 - effective / self.itype.price_per_hour


#: Hours in one contract year.
YEAR_HOURS = 8766.0


def standard_one_year_offering(itype: InstanceType,
                               *, upfront_fraction: float = 0.5,
                               hourly_discount: float = 0.40
                               ) -> ReservedOffering:
    """A typical partial-upfront 1-year contract for ``itype``.

    Defaults approximate EC2's 2017 standard 1-year partial-upfront
    pricing: ~50% of a year's on-demand cost upfront is replaced here by
    ``upfront_fraction`` of *half* the yearly on-demand spend, with the
    running rate discounted by ``hourly_discount``.
    """
    if not (0 <= upfront_fraction <= 1):
        raise ValidationError("upfront fraction must be in [0, 1]")
    if not (0 < hourly_discount < 1):
        raise ValidationError("hourly discount must be in (0, 1)")
    yearly_on_demand = itype.price_per_hour * YEAR_HOURS
    return ReservedOffering(
        itype=itype,
        upfront_dollars=upfront_fraction * 0.5 * yearly_on_demand,
        hourly_dollars=itype.price_per_hour * (1.0 - hourly_discount),
        term_hours=YEAR_HOURS,
    )
