"""The simulated IaaS provider: provisioning, quotas, leases.

The provider is the stateful front door of the cloud substrate.  Engine
runs provision a whole configuration as a :class:`Lease`, execute against
the leased :class:`~repro.cloud.instance.Instance` objects, then terminate
the lease and settle its bill through a
:class:`~repro.cloud.billing.BillingLedger`.
"""

from __future__ import annotations

import itertools
from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.cloud.billing import BillingLedger
from repro.cloud.catalog import Catalog
from repro.cloud.faults import ProvisioningFaultModel
from repro.cloud.instance import Instance
from repro.cloud.pricing import BillingModel, HourlyQuantizedBilling
from repro.cloud.virtualization import VirtualizationModel
from repro.errors import ConfigurationError, ProvisioningError, QuotaExceededError
from repro.utils.rng import derive_rng

__all__ = ["CloudProvider", "Lease"]


@dataclass
class Lease:
    """A set of instances provisioned together for one execution.

    Attributes
    ----------
    lease_id:
        Unique id within the provider.
    configuration:
        The node-count vector the lease realizes (catalog order).
    instances:
        Provisioned instances, grouped in catalog-type order (all nodes of
        type 0 first, then type 1, ...).
    """

    lease_id: int
    configuration: tuple[int, ...]
    instances: list[Instance]
    started_at_hours: float
    ended_at_hours: float | None = None
    billed_amount: float | None = field(default=None)

    @property
    def active(self) -> bool:
        """True until the lease is terminated."""
        return self.ended_at_hours is None

    @property
    def node_count(self) -> int:
        """Total number of instances in the lease."""
        return len(self.instances)


class CloudProvider:
    """Simulated provider over a fixed :class:`Catalog`.

    Parameters
    ----------
    catalog:
        Types offered and their account quotas.
    virtualization:
        Noise model applied at instance launch (contention factors).
    billing_model:
        How terminated leases are billed; defaults to EC2's 2017 hourly
        quantization.
    fault_model:
        Injectable transient provisioning faults
        (:class:`~repro.cloud.faults.ProvisioningFaultModel`); the
        default never faults, preserving nominal behaviour.
    seed:
        Root seed for the provider's stochastic behaviour.
    """

    def __init__(
        self,
        catalog: Catalog,
        *,
        virtualization: VirtualizationModel | None = None,
        billing_model: BillingModel | None = None,
        fault_model: ProvisioningFaultModel | None = None,
        seed: int = 0,
    ):
        self.catalog = catalog
        self.virtualization = virtualization or VirtualizationModel()
        self.billing_model = billing_model or HourlyQuantizedBilling()
        self.fault_model = fault_model or ProvisioningFaultModel()
        self.ledger = BillingLedger()
        self._seed = seed
        self._lease_counter = itertools.count(1)
        self._instance_counter = itertools.count(1)
        self._in_use = np.zeros(len(catalog), dtype=np.int64)
        self._active_leases: dict[int, Lease] = {}

    # -- introspection -------------------------------------------------------

    @property
    def in_use(self) -> np.ndarray:
        """Currently provisioned node counts per type (copy)."""
        return self._in_use.copy()

    def available(self) -> np.ndarray:
        """Remaining quota per type."""
        return self.catalog.quota_vector - self._in_use

    def active_leases(self) -> list[Lease]:
        """Leases not yet terminated."""
        return list(self._active_leases.values())

    # -- provisioning ---------------------------------------------------------

    def _validate_configuration(self, configuration: Sequence[int]) -> np.ndarray:
        vec = np.asarray(configuration, dtype=np.int64)
        if vec.shape != (len(self.catalog),):
            raise ConfigurationError(
                f"configuration must have {len(self.catalog)} entries, "
                f"got shape {vec.shape}"
            )
        if np.any(vec < 0):
            raise ConfigurationError("node counts must be non-negative")
        if vec.sum() == 0:
            raise ConfigurationError("cannot provision the empty configuration")
        over = vec + self._in_use > self.catalog.quota_vector
        if np.any(over):
            bad = [self.catalog.names[i] for i in np.flatnonzero(over)]
            raise QuotaExceededError(
                f"quota exceeded for types {bad}; "
                f"available: {self.available().tolist()}"
            )
        return vec

    def provision(self, configuration: Sequence[int],
                  *, now_hours: float = 0.0) -> Lease:
        """Provision all nodes of a configuration atomically.

        Either every node launches or none does (quota is checked up
        front); this mirrors how the paper's experiments acquire a whole
        configuration before starting the application.

        When the provider carries a fault model, the attempt may raise a
        :class:`~repro.errors.TransientProvisioningError` *after*
        validation but before any instance launches — a faulted attempt
        never leaks quota or instance ids, so retrying is always safe.
        """
        vec = self._validate_configuration(configuration)
        self.fault_model.check(vec, self.catalog.names)
        lease_id = next(self._lease_counter)
        instances: list[Instance] = []
        for type_index, count in enumerate(vec):
            itype = self.catalog[type_index]
            for _ in range(int(count)):
                iid = next(self._instance_counter)
                rng = derive_rng(self._seed, "launch", lease_id, iid)
                instances.append(
                    Instance(
                        instance_id=f"i-{iid:08d}",
                        itype=itype,
                        contention_factor=self.virtualization.sample_contention(rng),
                        launched_at_hours=now_hours,
                    )
                )
        lease = Lease(
            lease_id=lease_id,
            configuration=tuple(int(v) for v in vec),
            instances=instances,
            started_at_hours=now_hours,
        )
        self._in_use += vec
        self._active_leases[lease_id] = lease
        return lease

    def terminate(self, lease: Lease, *, now_hours: float) -> float:
        """Terminate a lease, bill it, and release its quota.

        Returns the billed amount in dollars.
        """
        if lease.lease_id not in self._active_leases:
            raise ProvisioningError(
                f"lease {lease.lease_id} is not active with this provider"
            )
        if now_hours < lease.started_at_hours:
            raise ProvisioningError("cannot terminate a lease before it started")
        total = 0.0
        for inst in lease.instances:
            inst.terminated_at_hours = now_hours
            uptime = inst.uptime_hours(now_hours)
            amount = self.billing_model.amount_due(
                inst.itype.price_per_hour, uptime
            )
            self.ledger.record(
                lease_id=lease.lease_id,
                instance_id=inst.instance_id,
                type_name=inst.itype.name,
                uptime_hours=uptime,
                amount=amount,
            )
            total += amount
        lease.ended_at_hours = now_hours
        lease.billed_amount = total
        self._in_use -= np.asarray(lease.configuration, dtype=np.int64)
        del self._active_leases[lease.lease_id]
        return total
