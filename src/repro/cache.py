"""Persistent, memory-mapped cache of full-space evaluation artefacts.

Sweeping the paper's 10,077,695-configuration space produces two S-length
float64 arrays (``U_j`` and ``C_{j,u}``) that are pure functions of the
catalog and the measured capacity vector.  Re-deriving them in every
process is the single largest repeated cost of the pipeline, so this
module persists them as ``.npy`` files under a cache directory and
memory-maps them back on the next run — a warm start costs two ``mmap``
calls instead of a sweep.

Entries are content-addressed: the key is a SHA-256 hash of the catalog
(types, quotas, prices) and the capacity vector, so any change to either
simply misses and re-sweeps — stale artefacts can never be returned.

Besides the raw evaluation arrays the cache also persists *index
snapshots* — the full precomputed state of a
:class:`~repro.core.selection.FrontierIndex` (frontier rows, capacity
order, sorted ratios, ratio blocks), keyed by the same content hash plus
the feasibility block size.  Snapshots turn the index's three S-length
sorts into a one-time build cost: every later process memory-maps six
``.npy`` files and is query-ready in milliseconds, with N processes
sharing one copy through the page cache.

The cache directory resolves, in order: an explicit ``cache_dir``
argument, the ``CELIA_CACHE_DIR`` environment variable, then
``~/.cache/celia``.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import shutil
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.cloud.catalog import Catalog
from repro.core.configspace import DEFAULT_CHUNK, ConfigurationSpace, SpaceEvaluation
from repro.obs.metrics import global_registry
from repro.obs.trace import get_tracer

__all__ = [
    "CACHE_DIR_ENV",
    "CacheEntry",
    "EvaluationCache",
    "IndexSnapshotEntry",
    "SweepCheckpoint",
    "TraceEntry",
    "default_cache_dir",
    "evaluation_cache_key",
]

CACHE_DIR_ENV = "CELIA_CACHE_DIR"

_FORMAT_VERSION = 1


def default_cache_dir() -> Path:
    """``$CELIA_CACHE_DIR`` if set, else ``~/.cache/celia``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env).expanduser()
    return Path.home() / ".cache" / "celia"


def evaluation_cache_key(catalog: Catalog, capacities_gips: np.ndarray) -> str:
    """SHA-256 content hash of everything the sweep depends on.

    Covers every field of every instance type (order-sensitive — type
    order defines the configuration code), the quotas, and the exact
    float64 bytes of the capacity vector.
    """
    payload = {
        "version": _FORMAT_VERSION,
        "types": [
            [t.name, t.category.name, t.vcpus, t.frequency_ghz, t.memory_gb,
             t.storage.name, t.local_storage_gb, t.price_per_hour]
            for t in catalog
        ],
        "quotas": list(catalog.quotas),
    }
    digest = hashlib.sha256()
    digest.update(json.dumps(payload, sort_keys=True).encode("utf-8"))
    digest.update(
        np.ascontiguousarray(
            np.asarray(capacities_gips, dtype=np.float64)
        ).tobytes()
    )
    return digest.hexdigest()


@dataclass(frozen=True, slots=True)
class CacheEntry:
    """One cached evaluation on disk."""

    key: str
    space_size: int
    type_names: tuple[str, ...]
    bytes_on_disk: int


@dataclass(frozen=True, slots=True)
class TraceEntry:
    """One stored loadgen request trace on disk."""

    key: str
    name: str
    seed: int
    requests: int
    duration_s: float
    bytes_on_disk: int


@dataclass(frozen=True, slots=True)
class IndexSnapshotEntry:
    """One persisted frontier-index snapshot on disk."""

    key: str
    block_size: int
    space_size: int
    frontier_size: int
    bytes_on_disk: int


#: Arrays of one index snapshot, in write order (the metadata file lands
#: last and marks the snapshot valid).
_INDEX_ARRAYS = ("frontier_rows", "capacity_order", "capacity_sorted",
                 "ratio_by_capacity", "ratio_sorted", "ratio_blocks")


_SPAN_FILE_RE = re.compile(r"^span-(\d{12})-(\d{12})\.npy$")


class SweepCheckpoint:
    """Shard manifest of a partially-completed space sweep.

    The supervised sweep (:func:`repro.parallel.evaluate_resilient`)
    flushes every completed span into this directory as one ``.npy``
    shard holding a ``(2, span_length)`` float64 array — capacity row 0,
    unit-cost row 1 — written atomically (tmp + rename).  A killed sweep
    therefore leaves a crash-consistent set of shards; the next run
    loads them back and evaluates only the missing spans.

    Keying matches :class:`EvaluationCache` exactly: the directory name
    embeds the same SHA-256 content hash of (catalog, capacity vector),
    and the manifest pins the chunk grid, so shards can never be resumed
    against a different space, measurement, or chunk alignment — any
    mismatch discards the checkpoint and the sweep starts fresh.
    """

    MANIFEST = "manifest.json"

    def __init__(self, directory: str | Path, *, key: str, space_size: int,
                 chunk_size: int = DEFAULT_CHUNK):
        if space_size < 1:
            raise ValueError("space_size must be >= 1")
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        self.directory = Path(directory)
        self.key = key
        self.space_size = int(space_size)
        self.chunk_size = int(chunk_size)

    # -- manifest --------------------------------------------------------------

    def _manifest_path(self) -> Path:
        return self.directory / self.MANIFEST

    def _manifest_matches(self) -> bool:
        try:
            meta = json.loads(self._manifest_path().read_text(
                encoding="utf-8"))
        except (OSError, ValueError):
            return False
        return (meta.get("version") == _FORMAT_VERSION
                and meta.get("key") == self.key
                and meta.get("space_size") == self.space_size
                and meta.get("chunk_size") == self.chunk_size)

    def ensure(self) -> None:
        """Create the directory and manifest; wipe a mismatched leftover."""
        if self.directory.exists() and not self._manifest_matches():
            shutil.rmtree(self.directory, ignore_errors=True)
        self.directory.mkdir(parents=True, exist_ok=True)
        if not self._manifest_path().exists():
            manifest = {
                "version": _FORMAT_VERSION,
                "key": self.key,
                "space_size": self.space_size,
                "chunk_size": self.chunk_size,
            }
            tmp = self._manifest_path().with_suffix(f".tmp{os.getpid()}")
            tmp.write_text(json.dumps(manifest, indent=2), encoding="utf-8")
            os.replace(tmp, self._manifest_path())

    # -- spans -----------------------------------------------------------------

    def _span_path(self, start: int, stop: int) -> Path:
        return self.directory / f"span-{start:012d}-{stop:012d}.npy"

    def _cand_path(self, start: int, stop: int) -> Path:
        return self.directory / f"cand-{start:012d}-{stop:012d}.npy"

    def _span_is_aligned(self, start: int, stop: int) -> bool:
        if not (1 <= start < stop <= self.space_size + 1):
            return False
        if (start - 1) % self.chunk_size != 0:
            return False
        return stop == self.space_size + 1 or \
            (stop - 1) % self.chunk_size == 0

    def write_span(self, start: int, stop: int, capacity: np.ndarray,
                   unit_cost: np.ndarray,
                   candidates: np.ndarray | None = None) -> None:
        """Atomically persist one completed span's two output slices.

        ``candidates`` — the span's fused frontier-candidate rows
        (global 0-based) — lands in a sibling ``cand-*.npy`` shard
        *before* the span shard: the span shard's presence marks
        completion, so a crash between the two writes leaves an
        orphaned candidate file that is never read (and is overwritten
        when the span eventually completes).
        """
        if not self._span_is_aligned(start, stop):
            raise ValueError(
                f"span [{start}, {stop}) is off the chunk grid "
                f"(chunk size {self.chunk_size}, space {self.space_size})")
        shard = np.vstack([
            np.asarray(capacity, dtype=np.float64),
            np.asarray(unit_cost, dtype=np.float64),
        ])
        if shard.shape != (2, stop - start):
            raise ValueError("span slices do not match the span length")
        if candidates is not None:
            cand_target = self._cand_path(start, stop)
            tmp = cand_target.with_suffix(f".tmp{os.getpid()}")
            with open(tmp, "wb") as fh:
                np.save(fh, np.ascontiguousarray(candidates,
                                                 dtype=np.int64))
            os.replace(tmp, cand_target)
        target = self._span_path(start, stop)
        tmp = target.with_suffix(f".tmp{os.getpid()}")
        with open(tmp, "wb") as fh:
            np.save(fh, np.ascontiguousarray(shard))
        os.replace(tmp, target)

    def load_candidates(self, start: int, stop: int) -> np.ndarray | None:
        """The span's checkpointed candidate rows, or ``None``.

        Any inconsistency — missing file, wrong dtype/shape, rows
        outside the span, non-ascending order — deletes the file and
        returns ``None``; the caller recomputes from the restored
        values (progress lost, correctness never)."""
        path = self._cand_path(start, stop)
        try:
            rows = np.load(path)
            if rows.ndim != 1 or rows.dtype != np.int64:
                raise ValueError("malformed candidate shard")
            if rows.size and (
                    rows[0] < start - 1 or rows[-1] > stop - 2
                    or np.any(np.diff(rows) <= 0)):
                raise ValueError("candidate rows outside span or unsorted")
        except FileNotFoundError:
            return None
        except (OSError, ValueError):
            path.unlink(missing_ok=True)
            return None
        return rows

    def completed_spans(self) -> list[tuple[int, int]]:
        """Chunk-aligned spans with shards on disk (sorted by start)."""
        if not self._manifest_matches():
            return []
        spans: list[tuple[int, int]] = []
        for path in self.directory.iterdir():
            match = _SPAN_FILE_RE.match(path.name)
            if not match:
                continue
            start, stop = int(match.group(1)), int(match.group(2))
            if self._span_is_aligned(start, stop):
                spans.append((start, stop))
        return sorted(spans)

    def has_shards(self) -> bool:
        """Whether a resumable partial sweep is on disk."""
        return bool(self.completed_spans())

    def load_into(self, capacity: np.ndarray,
                  unit_cost: np.ndarray) -> list[tuple[int, int]]:
        """Restore every valid shard into the output arrays.

        Returns the spans actually restored.  A shard that cannot be
        read or has the wrong shape is deleted and simply re-evaluated —
        corruption can cost progress, never correctness.
        """
        loaded: list[tuple[int, int]] = []
        for start, stop in self.completed_spans():
            path = self._span_path(start, stop)
            try:
                shard = np.load(path)
                if shard.shape != (2, stop - start) or \
                        shard.dtype != np.float64:
                    raise ValueError("malformed shard")
            except (OSError, ValueError):
                path.unlink(missing_ok=True)
                self._cand_path(start, stop).unlink(missing_ok=True)
                continue
            capacity[start - 1:stop - 1] = shard[0]
            unit_cost[start - 1:stop - 1] = shard[1]
            loaded.append((start, stop))
        return loaded

    def bytes_on_disk(self) -> int:
        """Current disk footprint of the checkpoint directory."""
        if not self.directory.is_dir():
            return 0
        return sum(p.stat().st_size for p in self.directory.iterdir()
                   if p.is_file())

    def discard(self) -> None:
        """Delete the whole checkpoint directory (idempotent)."""
        shutil.rmtree(self.directory, ignore_errors=True)


class EvaluationCache:
    """Content-addressed store of :class:`SpaceEvaluation` arrays.

    ``load`` returns memory-mapped (read-only) arrays, so a warm start
    pays I/O lazily, page by page, as analyses touch the space.  ``hits``
    and ``misses`` count this instance's lookups; the same events also
    feed the process-global ``eval_cache_hits_total`` /
    ``eval_cache_misses_total`` counters (see ``docs/observability.md``).

    Arguments:
        cache_dir: Directory holding the ``.npy`` / ``.meta.json``
            artefacts.  ``None`` resolves via ``$CELIA_CACHE_DIR``, then
            ``~/.cache/celia``.  Created lazily on the first ``store``.

    The cache never raises on corrupt or missing entries — every
    inconsistency is a miss and the caller re-sweeps.  ``store`` may
    raise ``OSError`` if the cache directory cannot be written.
    """

    def __init__(self, cache_dir: str | Path | None = None):
        self.cache_dir = (Path(cache_dir).expanduser()
                          if cache_dir is not None else default_cache_dir())
        self.hits = 0
        self.misses = 0

    # -- layout ----------------------------------------------------------------

    def _meta_path(self, key: str) -> Path:
        return self.cache_dir / f"{key}.meta.json"

    def _array_path(self, key: str, which: str) -> Path:
        return self.cache_dir / f"{key}.{which}.npy"

    # -- lookup ----------------------------------------------------------------

    def _entry_is_valid(self, key: str, space_size: int) -> bool:
        """Whether a complete, size-consistent entry for ``key`` is on disk."""
        try:
            meta = json.loads(self._meta_path(key).read_text(encoding="utf-8"))
            if meta.get("version") != _FORMAT_VERSION or \
                    meta.get("space_size") != space_size:
                return False
            for which in ("capacity", "unit_cost"):
                array = np.load(self._array_path(key, which), mmap_mode="r")
                if array.shape != (space_size,):
                    return False
        except (OSError, ValueError, KeyError):
            return False
        return True

    def load(self, space: ConfigurationSpace,
             capacities_gips: np.ndarray) -> SpaceEvaluation | None:
        """The cached evaluation for (catalog, capacities), or ``None``.

        Arguments:
            space: The configuration space the arrays must cover; its
                catalog contributes to the content-hash key.
            capacities_gips: Measured per-type capacity vector — the
                other half of the key.

        Returns the memory-mapped :class:`SpaceEvaluation` on a hit.
        Any inconsistency — missing files, unreadable metadata, an array
        whose length does not cover the space — counts as a miss; the
        caller re-sweeps and overwrites the entry.  Never raises.
        """
        with get_tracer().span("cache.load") as span:
            key = evaluation_cache_key(space.catalog, capacities_gips)
            meta_path = self._meta_path(key)
            try:
                meta = json.loads(meta_path.read_text(encoding="utf-8"))
                if meta.get("version") != _FORMAT_VERSION or \
                        meta.get("space_size") != space.size:
                    raise ValueError("stale cache entry")
                capacity = np.load(self._array_path(key, "capacity"),
                                   mmap_mode="r")
                unit_cost = np.load(self._array_path(key, "unit_cost"),
                                    mmap_mode="r")
                if capacity.shape != (space.size,) or \
                        unit_cost.shape != (space.size,):
                    raise ValueError("cached arrays do not cover the space")
            except (OSError, ValueError, KeyError):
                self.misses += 1
                global_registry().counter("eval_cache_misses_total") \
                    .increment()
                span.set_attribute("hit", False)
                return None
            self.hits += 1
            global_registry().counter("eval_cache_hits_total").increment()
            span.set_attribute("hit", True)
            return SpaceEvaluation(space=space, capacity_gips=capacity,
                                   unit_cost_per_hour=unit_cost)

    def store(self, evaluation: SpaceEvaluation,
              capacities_gips: np.ndarray) -> str:
        """Persist one evaluation; returns its content-hash key.

        Arguments:
            evaluation: The swept arrays plus the space they cover.
            capacities_gips: The capacity vector the sweep used (half of
                the content-hash key).

        Raises ``OSError`` if the cache directory cannot be created or
        written.

        Arrays are written to temporaries and renamed into place, and the
        metadata file — whose presence marks the entry valid — lands
        last, so a crash mid-write can only leave an invisible partial
        entry, never a readable corrupt one.

        Safe under concurrent writers: temporaries are suffixed with the
        writer's PID, every rename is atomic, and the key is a content
        hash — racing processes write byte-identical artefacts, so
        whichever replacement lands last changes nothing.  A writer that
        finds a valid entry already present (it lost the warm-up race)
        skips the ~160 MB rewrite and reuses the winner's artefact.
        """
        with get_tracer().span("cache.store"):
            key = evaluation_cache_key(evaluation.space.catalog,
                                       capacities_gips)
            if self._entry_is_valid(key, evaluation.space.size):
                return key
            self.cache_dir.mkdir(parents=True, exist_ok=True)
            for which, array in (("capacity", evaluation.capacity_gips),
                                 ("unit_cost",
                                  evaluation.unit_cost_per_hour)):
                target = self._array_path(key, which)
                tmp = target.with_suffix(f".tmp{os.getpid()}")
                with open(tmp, "wb") as fh:
                    np.save(fh, np.ascontiguousarray(array))
                os.replace(tmp, target)
            meta = {
                "version": _FORMAT_VERSION,
                "key": key,
                "space_size": evaluation.space.size,
                "type_names": evaluation.space.catalog.names,
                "quotas": list(evaluation.space.catalog.quotas),
            }
            meta_path = self._meta_path(key)
            tmp = meta_path.with_suffix(f".tmp{os.getpid()}")
            tmp.write_text(json.dumps(meta, indent=2), encoding="utf-8")
            os.replace(tmp, meta_path)
            return key

    # -- index snapshots -------------------------------------------------------

    def _index_base(self, key: str, block_size: int) -> str:
        return f"{key}.index-b{block_size}"

    def _index_meta_path(self, key: str, block_size: int) -> Path:
        return self.cache_dir / f"{self._index_base(key, block_size)}.meta.json"

    def _index_array_path(self, key: str, block_size: int,
                          which: str) -> Path:
        return self.cache_dir / f"{self._index_base(key, block_size)}.{which}.npy"

    def _index_is_valid(self, key: str, block_size: int,
                        space_size: int) -> bool:
        """Whether a complete, consistent snapshot for ``key`` is on disk."""
        try:
            self._load_index_arrays(key, block_size, space_size)
        except (OSError, ValueError, KeyError):
            return False
        return True

    def _load_index_arrays(self, key: str, block_size: int,
                           space_size: int) -> dict[str, np.ndarray]:
        """Memory-map and validate one snapshot's arrays (raises on any
        inconsistency — shapes, dtypes, stale metadata, rows out of
        range; the public entry points translate that into a miss)."""
        meta = json.loads(self._index_meta_path(key, block_size)
                          .read_text(encoding="utf-8"))
        if meta.get("version") != _FORMAT_VERSION or \
                meta.get("space_size") != space_size or \
                meta.get("block_size") != block_size:
            raise ValueError("stale index snapshot")
        frontier_size = int(meta["frontier_size"])
        arrays = {
            which: np.load(self._index_array_path(key, block_size, which),
                           mmap_mode="r")
            for which in _INDEX_ARRAYS
        }
        n_blocks = -(-space_size // block_size)
        expected = {
            "frontier_rows": ((frontier_size,), np.int64),
            "capacity_order": ((space_size,), np.int64),
            "capacity_sorted": ((space_size,), np.float64),
            "ratio_by_capacity": ((space_size,), np.float64),
            "ratio_sorted": ((space_size,), np.float64),
            "ratio_blocks": ((n_blocks, block_size), np.float64),
        }
        for which, (shape, dtype) in expected.items():
            if arrays[which].shape != shape or \
                    arrays[which].dtype != dtype:
                raise ValueError(f"malformed snapshot array {which!r}")
        rows = arrays["frontier_rows"]
        if rows.size and (
                rows[0] < 0 or rows[-1] >= space_size
                or np.any(np.diff(rows) <= 0)):
            raise ValueError("frontier rows out of range or unsorted")
        return arrays

    def load_index(self, evaluation: SpaceEvaluation,
                   capacities_gips: np.ndarray, *,
                   block_size: int | None = None):
        """The persisted :class:`~repro.core.selection.FrontierIndex`
        for this evaluation, or ``None``.

        A hit memory-maps all six snapshot arrays (``mmap_mode="r"``) and
        rehydrates the index without any pass over the space — the
        millisecond warm-start path.  The evaluation's ``capacity_order``
        cache is primed from the snapshot too, so downstream index
        builds (e.g. ``MinCostIndex``) skip their O(S log S) argsort.
        Any inconsistency is a miss and the caller rebuilds; never
        raises.
        """
        from repro.core.selection import DEFAULT_FEASIBILITY_BLOCK, FrontierIndex

        if block_size is None:
            block_size = DEFAULT_FEASIBILITY_BLOCK
        with get_tracer().span("snapshot.load",
                               {"block_size": block_size}) as span:
            key = evaluation_cache_key(evaluation.space.catalog,
                                       capacities_gips)
            try:
                arrays = self._load_index_arrays(key, block_size,
                                                 evaluation.space.size)
            except (OSError, ValueError, KeyError):
                global_registry().counter(
                    "index_snapshot_misses_total").increment()
                span.set_attribute("hit", False)
                return None
            global_registry().counter(
                "index_snapshot_hits_total").increment()
            span.set_attribute("hit", True)
            span.set_attribute("frontier",
                               int(arrays["frontier_rows"].size))
            if "_capacity_order" not in evaluation.__dict__:
                object.__setattr__(evaluation, "_capacity_order",
                                   arrays["capacity_order"])
            return FrontierIndex.from_arrays(
                evaluation,
                frontier_rows=arrays["frontier_rows"],
                capacity_sorted=arrays["capacity_sorted"],
                ratio_by_capacity=arrays["ratio_by_capacity"],
                ratio_sorted=arrays["ratio_sorted"],
                ratio_blocks=arrays["ratio_blocks"],
                block_size=block_size,
            )

    def store_index(self, index, capacities_gips: np.ndarray) -> str:
        """Persist one frontier index; returns its content-hash key.

        Forces the feasibility structure (its sorts must exist to be
        saved — that cost is paid once here, never again by loaders).
        Uses the same crash-safe discipline as :meth:`store`: arrays are
        renamed into place first, the metadata file that marks the
        snapshot valid lands last, temporaries are PID-suffixed, and a
        writer that finds a valid snapshot already present skips the
        rewrite.
        """
        with get_tracer().span("snapshot.store",
                               {"block_size": index.block_size}):
            evaluation = index.evaluation
            key = evaluation_cache_key(evaluation.space.catalog,
                                       capacities_gips)
            block_size = index.block_size
            if self._index_is_valid(key, block_size,
                                    evaluation.space.size):
                return key
            index.ensure_feasibility()
            self.cache_dir.mkdir(parents=True, exist_ok=True)
            arrays = {
                "frontier_rows": index.frontier_rows,
                "capacity_order": evaluation.capacity_order(),
                "capacity_sorted": index._capacity_sorted,
                "ratio_by_capacity": index._ratio_by_capacity,
                "ratio_sorted": index._ratio_sorted,
                "ratio_blocks": index._ratio_blocks,
            }
            for which in _INDEX_ARRAYS:
                target = self._index_array_path(key, block_size, which)
                tmp = target.with_suffix(f".tmp{os.getpid()}")
                with open(tmp, "wb") as fh:
                    np.save(fh, np.ascontiguousarray(arrays[which]))
                os.replace(tmp, target)
            meta = {
                "version": _FORMAT_VERSION,
                "key": key,
                "space_size": evaluation.space.size,
                "block_size": block_size,
                "frontier_size": int(index.frontier_rows.size),
                "type_names": evaluation.space.catalog.names,
            }
            meta_path = self._index_meta_path(key, block_size)
            tmp = meta_path.with_suffix(f".tmp{os.getpid()}")
            tmp.write_text(json.dumps(meta, indent=2), encoding="utf-8")
            os.replace(tmp, meta_path)
            return key

    def index_snapshots(self) -> list[IndexSnapshotEntry]:
        """All readable index snapshots currently on disk."""
        found: list[IndexSnapshotEntry] = []
        if not self.cache_dir.is_dir():
            return found
        for meta_path in sorted(self.cache_dir.glob("*.index-b*.meta.json")):
            try:
                meta = json.loads(meta_path.read_text(encoding="utf-8"))
                key = meta["key"]
                block_size = int(meta["block_size"])
                size = sum(
                    self._index_array_path(key, block_size, which)
                    .stat().st_size
                    for which in _INDEX_ARRAYS
                ) + meta_path.stat().st_size
                found.append(IndexSnapshotEntry(
                    key=key,
                    block_size=block_size,
                    space_size=int(meta["space_size"]),
                    frontier_size=int(meta["frontier_size"]),
                    bytes_on_disk=size,
                ))
            except (OSError, ValueError, KeyError):
                continue
        return found

    # -- sweep checkpoints -----------------------------------------------------

    def sweep_checkpoint(self, space: ConfigurationSpace,
                         capacities_gips: np.ndarray,
                         *, chunk_size: int = DEFAULT_CHUNK
                         ) -> SweepCheckpoint:
        """The shard checkpoint for (catalog, capacities) sweeps.

        Lives beside the final artefacts under ``<key>.sweep/`` with the
        same content-hash key, so a resumed sweep can only ever pick up
        shards produced for the identical space and measurement.
        """
        key = evaluation_cache_key(space.catalog, capacities_gips)
        return SweepCheckpoint(self.cache_dir / f"{key}.sweep", key=key,
                               space_size=space.size, chunk_size=chunk_size)

    def sweep_checkpoints(self) -> list[tuple[str, int, int]]:
        """``(key, n_shards, bytes)`` for every checkpoint dir on disk."""
        if not self.cache_dir.is_dir():
            return []
        found: list[tuple[str, int, int]] = []
        for path in sorted(self.cache_dir.glob("*.sweep")):
            if not path.is_dir():
                continue
            shards = [p for p in path.iterdir()
                      if _SPAN_FILE_RE.match(p.name)]
            size = sum(p.stat().st_size for p in path.iterdir()
                       if p.is_file())
            found.append((path.name[:-len(".sweep")], len(shards), size))
        return found

    # -- loadgen traces --------------------------------------------------------

    def _trace_path(self, key: str) -> Path:
        return self.cache_dir / f"{key}.trace.jsonl"

    def _trace_meta_path(self, key: str) -> Path:
        return self.cache_dir / f"{key}.trace.meta.json"

    def store_trace(self, jsonl: str, *, name: str, seed: int,
                    requests: int, duration_s: float) -> str:
        """Persist one loadgen trace document; returns its content key.

        The key is the SHA-256 of the JSONL text itself, so a trace is
        stored once no matter how often it is regenerated — the
        determinism contract of :mod:`repro.loadgen.trace` made concrete.
        Takes the serialized text rather than a ``Trace`` object to keep
        this module free of upward imports (the cache sits below
        ``repro.loadgen`` in the layering).

        Write discipline matches evaluations: payload first (tmp + atomic
        rename), the ``.trace.meta.json`` marker last.
        """
        key = hashlib.sha256(jsonl.encode("utf-8")).hexdigest()
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        target = self._trace_path(key)
        tmp = target.with_suffix(f".tmp{os.getpid()}")
        tmp.write_text(jsonl, encoding="utf-8")
        os.replace(tmp, target)
        meta = {
            "version": _FORMAT_VERSION,
            "key": key,
            "kind": "trace",
            "name": name,
            "seed": int(seed),
            "requests": int(requests),
            "duration_s": float(duration_s),
        }
        meta_path = self._trace_meta_path(key)
        tmp = meta_path.with_suffix(f".tmp{os.getpid()}")
        tmp.write_text(json.dumps(meta, indent=2), encoding="utf-8")
        os.replace(tmp, meta_path)
        return key

    def load_trace(self, key: str) -> "str | None":
        """The stored JSONL text for ``key`` (None when absent/invalid)."""
        meta_path = self._trace_meta_path(key)
        trace_path = self._trace_path(key)
        if not (meta_path.is_file() and trace_path.is_file()):
            return None
        try:
            meta = json.loads(meta_path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        if meta.get("version") != _FORMAT_VERSION or meta.get("key") != key:
            return None
        return trace_path.read_text(encoding="utf-8")

    def trace_entries(self) -> list[TraceEntry]:
        """All valid stored traces currently on disk."""
        found: list[TraceEntry] = []
        if not self.cache_dir.is_dir():
            return found
        for meta_path in sorted(self.cache_dir.glob("*.trace.meta.json")):
            try:
                meta = json.loads(meta_path.read_text(encoding="utf-8"))
                key = meta["key"]
                size = (self._trace_path(key).stat().st_size
                        + meta_path.stat().st_size)
                found.append(TraceEntry(
                    key=key,
                    name=str(meta.get("name", "trace")),
                    seed=int(meta.get("seed", 0)),
                    requests=int(meta["requests"]),
                    duration_s=float(meta["duration_s"]),
                    bytes_on_disk=size,
                ))
            except (OSError, ValueError, KeyError):
                continue
        return found

    # -- maintenance -----------------------------------------------------------

    def entries(self) -> list[CacheEntry]:
        """All valid *evaluation* entries currently on disk.

        Index snapshots and loadgen traces share the cache directory and
        the ``.meta.json`` marker convention but are distinct artifact
        kinds — both are filtered out here (and listed by
        :meth:`index_snapshots` / :meth:`trace_entries` instead), so a
        directory full of replay traces never inflates the evaluation
        count ``cache info`` reports.
        """
        found: list[CacheEntry] = []
        if not self.cache_dir.is_dir():
            return found
        for meta_path in sorted(self.cache_dir.glob("*.meta.json")):
            if ".index-b" in meta_path.name:  # index snapshots, not entries
                continue
            if ".trace." in meta_path.name:  # loadgen traces, not entries
                continue
            try:
                meta = json.loads(meta_path.read_text(encoding="utf-8"))
                key = meta["key"]
                size = sum(
                    self._array_path(key, which).stat().st_size
                    for which in ("capacity", "unit_cost")
                ) + meta_path.stat().st_size
                found.append(CacheEntry(
                    key=key,
                    space_size=int(meta["space_size"]),
                    type_names=tuple(meta.get("type_names", ())),
                    bytes_on_disk=size,
                ))
            except (OSError, ValueError, KeyError):
                continue
        return found

    def total_bytes(self) -> int:
        """Disk footprint of all valid entries."""
        return sum(e.bytes_on_disk for e in self.entries())

    def clear(self) -> int:
        """Delete every entry, index snapshot, trace and sweep checkpoint.

        Returns the number of evaluation entries removed (snapshots,
        traces and checkpoints are removed alongside, uncounted)."""
        removed = 0
        for entry in self.entries():
            for path in (self._meta_path(entry.key),
                         self._array_path(entry.key, "capacity"),
                         self._array_path(entry.key, "unit_cost")):
                try:
                    path.unlink()
                except OSError:
                    pass
            removed += 1
        if self.cache_dir.is_dir():
            for pattern in ("*.index-b*", "*.trace.*"):
                for path in self.cache_dir.glob(pattern):
                    try:
                        path.unlink()
                    except OSError:
                        pass
            for path in self.cache_dir.glob("*.sweep"):
                shutil.rmtree(path, ignore_errors=True)
        return removed
