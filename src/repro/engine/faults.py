"""Fault injection: node crashes during execution.

On-demand instances fail rarely but not never; long-running elastic
applications (the paper's runs last up to 72 hours) eventually meet a
failure.  This module executes a task-based workload under a per-node
crash hazard: a crashed node's in-flight tasks are lost and re-queued on
the survivors, and its slots accept no further work.  The resulting
slowdown-versus-hazard curve is the engine-side complement of the spot
package's interruption study.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.apps.base import ExecutionStyle, Workload
from repro.engine.cluster import SimCluster
from repro.errors import SimulationError

__all__ = ["FaultModel", "FaultyOutcome", "simulate_with_failures"]


@dataclass(frozen=True)
class FaultModel:
    """Exponential per-node crash hazard.

    ``crash_rate_per_hour`` is the failure intensity of one node; a node's
    crash time is drawn once per run from Exp(rate).  Rate 0 disables
    faults.
    """

    crash_rate_per_hour: float = 0.0

    def __post_init__(self) -> None:
        if self.crash_rate_per_hour < 0:
            raise SimulationError("crash rate must be non-negative")

    def sample_crash_seconds(self, rng: np.random.Generator,
                             n_nodes: int) -> np.ndarray:
        """Per-node crash times in seconds (inf when rate is zero)."""
        if self.crash_rate_per_hour == 0:
            return np.full(n_nodes, np.inf)
        return rng.exponential(1.0 / self.crash_rate_per_hour,
                               size=n_nodes) * 3600.0


@dataclass(frozen=True)
class FaultyOutcome:
    """Result of a failure-injected execution."""

    makespan_seconds: float
    crashed_nodes: int
    retried_tasks: int
    wasted_seconds: float

    @property
    def survived(self) -> bool:
        """Whether the workload completed (some node outlived the work)."""
        return np.isfinite(self.makespan_seconds)


def simulate_with_failures(
    workload: Workload,
    cluster: SimCluster,
    fault_model: FaultModel,
    rng: np.random.Generator,
    *,
    jitter_sigma: float = 0.03,
) -> FaultyOutcome:
    """Execute a task-based workload under per-node crash faults.

    Greedy earliest-finish scheduling; a task whose execution crosses its
    node's crash time is aborted at the crash (its partial work is
    wasted) and re-queued.  Raises :class:`SimulationError` when every
    node crashes before the work drains (nothing can finish).
    """
    if workload.style not in (ExecutionStyle.INDEPENDENT,
                              ExecutionStyle.WORKQUEUE):
        raise SimulationError("fault injection supports task-based workloads")
    assert workload.task_gi is not None

    slot_rates = cluster.slot_rates()
    # Map slots to their node index for crash lookup.
    slot_node = np.concatenate([
        np.full(node.vcpus, k, dtype=np.int64)
        for k, node in enumerate(cluster.nodes)
    ])
    crash_at = fault_model.sample_crash_seconds(rng, cluster.n_nodes)

    pending = list(np.asarray(workload.task_gi, dtype=float))
    pending.reverse()  # pop() from the end = queue order
    heap: list[tuple[float, int]] = [(0.0, s) for s in range(slot_rates.size)]
    heapq.heapify(heap)
    makespan = 0.0
    retried = 0
    wasted = 0.0
    crashed_nodes: set[int] = set()

    while pending:
        if not heap:
            raise SimulationError(
                "all nodes crashed before the workload completed")
        free_at, slot = heapq.heappop(heap)
        node = int(slot_node[slot])
        if free_at >= crash_at[node]:
            crashed_nodes.add(node)
            continue  # slot is gone; do not re-push
        gi = pending.pop()
        jitter = rng.lognormal(0.0, jitter_sigma) if jitter_sigma > 0 else 1.0
        duration = gi / (slot_rates[slot] * jitter)
        finish = free_at + duration
        if finish > crash_at[node]:
            # Task dies with the node; requeue it, retire the slot.
            crashed_nodes.add(node)
            wasted += crash_at[node] - free_at
            pending.append(gi)
            retried += 1
            makespan = max(makespan, float(crash_at[node]))
            continue
        makespan = max(makespan, finish)
        heapq.heappush(heap, (finish, slot))

    return FaultyOutcome(
        makespan_seconds=makespan,
        crashed_nodes=len(crashed_nodes),
        retried_tasks=retried,
        wasted_seconds=wasted,
    )
