"""Cluster view of a provisioned lease for one application.

Translates provider-level instances into the flat arrays the schedulers
consume: per-node *effective* rates (ground-truth app rate × the
instance's launch-time contention factor) and per-node vCPU counts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.base import ElasticApplication
from repro.cloud.instance import Instance
from repro.errors import SimulationError

__all__ = ["NodeState", "SimCluster"]


@dataclass(frozen=True)
class NodeState:
    """One node as the schedulers see it.

    ``rate_gips`` is the node's *effective* rate (launch-time contention
    applied); ``nominal_rate_gips`` is the type's uncontended rate — what
    a static partitioner believes about the node, since contention is
    invisible until the run executes.
    """

    instance_id: str
    type_name: str
    vcpus: int
    rate_gips: float
    nominal_rate_gips: float

    @property
    def rate_per_vcpu_gips(self) -> float:
        """Effective rate of one vCPU slot."""
        return self.rate_gips / self.vcpus

    @property
    def contention(self) -> float:
        """Effective / nominal rate — the hidden slowdown of this node."""
        return self.rate_gips / self.nominal_rate_gips


class SimCluster:
    """Nodes of one lease, with app-specific effective rates.

    Parameters
    ----------
    instances:
        Provisioned instances (from a :class:`~repro.cloud.provider.Lease`).
    app:
        The application whose performance profile sets nominal rates.
    """

    def __init__(self, instances: list[Instance], app: ElasticApplication):
        if not instances:
            raise SimulationError("cluster needs at least one node")
        self.nodes = [
            NodeState(
                instance_id=inst.instance_id,
                type_name=inst.itype.name,
                vcpus=inst.itype.vcpus,
                rate_gips=app.true_rate_gips(inst.itype) * inst.contention_factor,
                nominal_rate_gips=app.true_rate_gips(inst.itype),
            )
            for inst in instances
        ]

    # -- aggregate views ------------------------------------------------------

    @property
    def n_nodes(self) -> int:
        """Number of nodes."""
        return len(self.nodes)

    @property
    def total_vcpus(self) -> int:
        """Total vCPU slots across nodes."""
        return sum(node.vcpus for node in self.nodes)

    @property
    def total_rate_gips(self) -> float:
        """Aggregate effective rate in GI/s (the engine's true ``U``)."""
        return float(sum(node.rate_gips for node in self.nodes))

    def node_rates(self) -> np.ndarray:
        """Per-node effective rates (GI/s)."""
        return np.array([node.rate_gips for node in self.nodes])

    def node_nominal_rates(self) -> np.ndarray:
        """Per-node nominal (uncontended) rates (GI/s)."""
        return np.array([node.nominal_rate_gips for node in self.nodes])

    def node_contentions(self) -> np.ndarray:
        """Per-node hidden slowdown factors (effective / nominal)."""
        return np.array([node.contention for node in self.nodes])

    def slot_rates(self) -> np.ndarray:
        """Per-vCPU-slot effective rates (GI/s), node order preserved."""
        return np.concatenate([
            np.full(node.vcpus, node.rate_per_vcpu_gips) for node in self.nodes
        ])

    def ideal_seconds(self, total_gi: float) -> float:
        """Perfect-parallelism execution time: work / aggregate rate."""
        if total_gi <= 0:
            raise SimulationError("work must be positive")
        return total_gi / self.total_rate_gips
