"""Top-level engine entry points: execute an app run on a configuration.

:func:`run_on_configuration` is what Table IV's "Actual" columns come
from: provision the configuration from a simulated provider, execute the
workload with the style-appropriate scheduler, terminate, and settle the
hourly-quantized bill.

:func:`time_single_node_run` is the measurement layer's stopwatch: the
wall time of a scale-down run on a single instance, used to derive
measured capacities ``W_i`` (Section IV-B).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.apps.base import ElasticApplication
from repro.cloud.catalog import Catalog
from repro.cloud.instance import InstanceType
from repro.cloud.pricing import BillingModel, HourlyQuantizedBilling
from repro.cloud.provider import CloudProvider
from repro.cloud.virtualization import VirtualizationModel
from repro.engine.cluster import SimCluster
from repro.engine.schedulers import ScheduleOutcome, simulate_workload
from repro.errors import ConfigurationError
from repro.units import seconds_to_hours
from repro.utils.rng import derive_rng

__all__ = ["EngineConfig", "ExecutionReport", "run_on_configuration",
           "time_single_node_run"]


@dataclass(frozen=True)
class EngineConfig:
    """Engine realism knobs.

    Attributes
    ----------
    node_startup_seconds:
        Provisioning-to-ready time per node (VM boot, image pull, data
        staging).  Applies once per run — all nodes boot in parallel but
        the run starts when the last is ready.  Billed.
    startup_straggler_sigma:
        Log-normal spread of per-node boot time around the nominal value.
    jitter_sigma:
        Per-task / per-step runtime jitter passed to the schedulers.
    virtualization:
        Launch-time contention model for the provider.
    billing:
        Billing model for "actual" costs (hourly-quantized by default,
        as EC2 billed in 2017).
    """

    node_startup_seconds: float = 180.0
    startup_straggler_sigma: float = 0.15
    jitter_sigma: float = 0.03
    virtualization: VirtualizationModel = field(default_factory=VirtualizationModel)
    billing: BillingModel = field(default_factory=HourlyQuantizedBilling)

    @classmethod
    def ideal(cls) -> "EngineConfig":
        """A fully deterministic, overhead-free engine (model assumptions).

        With this config the engine reproduces the analytical model
        exactly (up to billing linearity) — used by tests to verify the
        engine and the model agree when the model's assumptions hold.
        """
        from repro.cloud.pricing import LinearBilling

        return cls(
            node_startup_seconds=0.0,
            startup_straggler_sigma=0.0,
            jitter_sigma=0.0,
            virtualization=VirtualizationModel.noiseless(),
            billing=LinearBilling(),
        )


@dataclass(frozen=True)
class ExecutionReport:
    """Everything one engine run produced."""

    app_name: str
    n: float
    a: float
    configuration: tuple[int, ...]
    time_hours: float
    cost_dollars: float
    ideal_time_hours: float
    total_gi: float
    utilization: float
    n_units: int
    startup_hours: float

    @property
    def overhead_fraction(self) -> float:
        """(actual - ideal) / ideal — what the analytical model missed."""
        return (self.time_hours - self.ideal_time_hours) / self.ideal_time_hours


def run_on_configuration(
    app: ElasticApplication,
    n: float,
    a: float,
    configuration: tuple[int, ...] | list[int],
    catalog: Catalog,
    *,
    config: EngineConfig | None = None,
    seed: int = 0,
) -> ExecutionReport:
    """Execute ``app(n, a)`` on ``configuration`` and return the report.

    The run provisions fresh instances (sampling new contention factors),
    boots them, executes the workload, terminates, and bills — mirroring
    one of the paper's validation executions end to end.
    """
    cfg = config or EngineConfig()
    if sum(configuration) == 0:
        raise ConfigurationError("cannot execute on the empty configuration")
    provider = CloudProvider(
        catalog,
        virtualization=cfg.virtualization,
        billing_model=cfg.billing,
        seed=seed,
    )
    lease = provider.provision(configuration)
    cluster = SimCluster(lease.instances, app)
    workload = app.workload(n, a)

    rng = derive_rng(seed, "engine-run", app.name, n, a, tuple(configuration))
    if cfg.node_startup_seconds > 0:
        boots = cfg.node_startup_seconds * (
            rng.lognormal(0.0, cfg.startup_straggler_sigma, size=cluster.n_nodes)
            if cfg.startup_straggler_sigma > 0
            else 1.0
        )
        startup_seconds = float(boots.max()) if hasattr(boots, "max") else float(boots)
    else:
        startup_seconds = 0.0

    outcome: ScheduleOutcome = simulate_workload(
        workload, cluster, rng, jitter_sigma=cfg.jitter_sigma
    )
    elapsed_seconds = startup_seconds + outcome.makespan_seconds
    elapsed_hours = seconds_to_hours(elapsed_seconds)
    billed = provider.terminate(lease, now_hours=elapsed_hours)

    return ExecutionReport(
        app_name=app.name,
        n=n,
        a=a,
        configuration=tuple(int(v) for v in configuration),
        time_hours=elapsed_hours,
        cost_dollars=billed,
        ideal_time_hours=seconds_to_hours(cluster.ideal_seconds(workload.total_gi)),
        total_gi=workload.total_gi,
        utilization=outcome.utilization,
        n_units=outcome.n_units,
        startup_hours=seconds_to_hours(startup_seconds),
    )


def time_single_node_run(
    app: ElasticApplication,
    n: float,
    a: float,
    itype: InstanceType,
    *,
    config: EngineConfig | None = None,
    seed: int = 0,
    include_startup: bool = False,
) -> float:
    """Wall-clock seconds of a scale-down run on one instance of ``itype``.

    This is the cloud half of CELIA's characterization: the user launches
    one instance, runs ``P(n', a')``, and times it.  By default the timer
    starts when the application starts (the user SSHes in after boot), so
    node startup is excluded; pass ``include_startup=True`` to model a
    cruder protocol that times from the provisioning call.
    """
    cfg = config or EngineConfig()
    rng = derive_rng(seed, "baseline-run", app.name, n, a, itype.name)
    contention = cfg.virtualization.sample_contention(rng)

    # Build a one-node cluster directly (no provider round trip needed).
    from repro.cloud.instance import Instance

    inst = Instance(instance_id="i-baseline", itype=itype,
                    contention_factor=contention)
    cluster = SimCluster([inst], app)
    workload = app.workload(n, a)
    outcome = simulate_workload(workload, cluster, rng,
                                jitter_sigma=cfg.jitter_sigma)
    elapsed = outcome.makespan_seconds
    if include_startup:
        elapsed += cfg.node_startup_seconds
    return float(elapsed)
