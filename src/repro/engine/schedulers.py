"""Execution-style schedulers: how a workload maps onto a cluster.

Three schedulers mirror the paper's three applications:

* :func:`simulate_independent` — x264: one process per clip, no
  communication; tasks are placed longest-first onto vCPU slots.
* :func:`simulate_bsp` — galaxy: MPI-style bulk-synchronous steps; work is
  statically partitioned in proportion to nominal node rates, each step
  ends with a barrier (slowest node gates) plus a communication phase.
* :func:`simulate_workqueue` — sand: Work-Queue master–worker; the master
  serializes task dispatch, workers pull greedily, load imbalance shows up
  as a completion tail.

All three return a :class:`ScheduleOutcome` with the makespan and
utilization so reports can show where time was lost relative to the
analytical model's perfect-parallelism assumption.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.apps.base import ExecutionStyle, Workload
from repro.engine.cluster import SimCluster
from repro.errors import SimulationError

__all__ = [
    "ScheduleOutcome",
    "simulate_independent",
    "simulate_bsp",
    "simulate_workqueue",
    "simulate_worksteal",
    "simulate_workload",
]


@dataclass(frozen=True)
class ScheduleOutcome:
    """Result of scheduling one workload on one cluster."""

    makespan_seconds: float
    busy_cpu_seconds: float
    total_cpu_seconds: float
    n_units: int

    @property
    def utilization(self) -> float:
        """Busy fraction of the cluster over the makespan."""
        if self.total_cpu_seconds == 0:
            return 0.0
        return self.busy_cpu_seconds / self.total_cpu_seconds


def _check(workload: Workload, expected: ExecutionStyle) -> None:
    if workload.style is not expected:
        raise SimulationError(
            f"scheduler expects {expected.value} workloads, got {workload.style.value}"
        )


def simulate_independent(workload: Workload, cluster: SimCluster,
                         rng: np.random.Generator,
                         *, jitter_sigma: float = 0.03) -> ScheduleOutcome:
    """Greedy longest-processing-time placement of independent tasks.

    Each vCPU slot is a worker; tasks (sorted descending) go to the slot
    that will finish them earliest given its speed.  Per-task log-normal
    jitter models runtime variation on shared hosts.
    """
    _check(workload, ExecutionStyle.INDEPENDENT)
    assert workload.task_gi is not None
    rates = cluster.slot_rates()
    n_slots = rates.size

    tasks = np.sort(np.asarray(workload.task_gi, dtype=float))[::-1]
    if jitter_sigma > 0:
        jitter = rng.lognormal(0.0, jitter_sigma, size=tasks.size)
    else:
        jitter = np.ones(tasks.size)

    # Heap of (finish_time_if_assigned_now ... we track slot free times).
    heap: list[tuple[float, int]] = [(0.0, s) for s in range(n_slots)]
    heapq.heapify(heap)
    busy = 0.0
    makespan = 0.0
    for gi, jit in zip(tasks, jitter):
        free_at, slot = heapq.heappop(heap)
        duration = gi / (rates[slot] * jit)
        finish = free_at + duration
        busy += duration
        makespan = max(makespan, finish)
        heapq.heappush(heap, (finish, slot))

    return ScheduleOutcome(
        makespan_seconds=makespan,
        busy_cpu_seconds=busy,
        total_cpu_seconds=makespan * n_slots,
        n_units=tasks.size,
    )


def simulate_bsp(workload: Workload, cluster: SimCluster,
                 rng: np.random.Generator,
                 *, jitter_sigma: float = 0.03) -> ScheduleOutcome:
    """Bulk-synchronous execution with per-step barrier and communication.

    Work in each step is statically partitioned proportional to *nominal*
    node rates — an MPI code divides masses using what it knows about the
    instance types, not the hidden contention of each host.  Every step
    then ends at a barrier gated by the slowest node (worst contention ×
    worst jitter), the systematic slowdown the analytical model cannot
    see, followed by a communication phase.

    Vectorized over (steps × nodes): no Python loop over the 8,000 steps
    of the paper's galaxy runs.
    """
    _check(workload, ExecutionStyle.BSP)
    n_nodes = cluster.n_nodes
    # Nominal-rate partition: each node's share takes base_step_seconds
    # on an uncontended host; node i actually needs base / contention_i.
    base_step_seconds = workload.step_gi / float(cluster.node_nominal_rates().sum())
    inv_contention = 1.0 / cluster.node_contentions()

    if jitter_sigma > 0:
        jitter = rng.lognormal(0.0, jitter_sigma, size=(workload.n_steps, n_nodes))
        # Slowest node per step gates the barrier.
        step_compute = base_step_seconds * (inv_contention[None, :] / jitter).max(axis=1)
    else:
        step_compute = np.full(
            workload.n_steps, base_step_seconds * float(inv_contention.max())
        )

    compute_total = float(step_compute.sum())
    comm_total = workload.comm_seconds_per_step * workload.n_steps
    makespan = compute_total + comm_total

    # Useful work per step is what the cluster's effective rates could do.
    busy = workload.n_steps * workload.step_gi / cluster.total_rate_gips * n_nodes
    return ScheduleOutcome(
        makespan_seconds=makespan,
        busy_cpu_seconds=busy,
        total_cpu_seconds=makespan * n_nodes,
        n_units=workload.n_steps,
    )


def simulate_workqueue(workload: Workload, cluster: SimCluster,
                       rng: np.random.Generator,
                       *, jitter_sigma: float = 0.03) -> ScheduleOutcome:
    """Master–worker execution with serialized dispatch.

    The master spends ``dispatch_seconds`` of serial work per task
    (creating, serializing, and shipping it — Work Queue's behaviour); a
    free worker slot cannot start until the master gets to it.  Tasks are
    dispatched in queue order (no LPT: the master does not know task
    durations), so heterogeneous tasks create a completion tail.
    """
    _check(workload, ExecutionStyle.WORKQUEUE)
    assert workload.task_gi is not None
    rates = cluster.slot_rates()
    n_slots = rates.size
    tasks = np.asarray(workload.task_gi, dtype=float)
    if jitter_sigma > 0:
        jitter = rng.lognormal(0.0, jitter_sigma, size=tasks.size)
    else:
        jitter = np.ones(tasks.size)

    heap: list[tuple[float, int]] = [(0.0, s) for s in range(n_slots)]
    heapq.heapify(heap)
    master_free = 0.0
    busy = 0.0
    makespan = 0.0
    for gi, jit in zip(tasks, jitter):
        slot_free, slot = heapq.heappop(heap)
        dispatch_start = max(master_free, slot_free)
        master_free = dispatch_start + workload.dispatch_seconds
        duration = gi / (rates[slot] * jit)
        finish = master_free + duration
        busy += duration
        makespan = max(makespan, finish)
        heapq.heappush(heap, (finish, slot))

    return ScheduleOutcome(
        makespan_seconds=makespan,
        busy_cpu_seconds=busy,
        total_cpu_seconds=makespan * n_slots,
        n_units=tasks.size,
    )


def simulate_worksteal(workload: Workload, cluster: SimCluster,
                       rng: np.random.Generator,
                       *, jitter_sigma: float = 0.03) -> ScheduleOutcome:
    """Decentralized work stealing — an engine extension beyond the paper.

    Accepts INDEPENDENT or WORKQUEUE workloads.  Tasks start evenly
    pre-partitioned across vCPU slots in queue order (no global
    knowledge); an idle slot steals the next task from the most-loaded
    remaining queue.  Eliminates the master's dispatch serialization at
    the price of steal latency — the ablation benches compare it against
    :func:`simulate_workqueue` to quantify Work Queue's master bottleneck.

    The implementation exploits that with per-task stealing from a shared
    pool, work stealing degenerates to ideal greedy list scheduling plus
    a per-steal latency; that equivalence keeps it exact and fast.
    """
    if workload.style not in (ExecutionStyle.INDEPENDENT,
                              ExecutionStyle.WORKQUEUE):
        raise SimulationError(
            "work stealing applies to task-based workloads only")
    assert workload.task_gi is not None
    rates = cluster.slot_rates()
    n_slots = rates.size
    tasks = np.asarray(workload.task_gi, dtype=float)
    if jitter_sigma > 0:
        jitter = rng.lognormal(0.0, jitter_sigma, size=tasks.size)
    else:
        jitter = np.ones(tasks.size)
    steal_latency = 0.002  # seconds per task acquisition

    heap: list[tuple[float, int]] = [(0.0, s) for s in range(n_slots)]
    heapq.heapify(heap)
    busy = 0.0
    makespan = 0.0
    for gi, jit in zip(tasks, jitter):
        free_at, slot = heapq.heappop(heap)
        duration = gi / (rates[slot] * jit)
        finish = free_at + steal_latency + duration
        busy += duration
        makespan = max(makespan, finish)
        heapq.heappush(heap, (finish, slot))

    return ScheduleOutcome(
        makespan_seconds=makespan,
        busy_cpu_seconds=busy,
        total_cpu_seconds=makespan * n_slots,
        n_units=tasks.size,
    )


def simulate_workload(workload: Workload, cluster: SimCluster,
                      rng: np.random.Generator,
                      *, jitter_sigma: float = 0.03) -> ScheduleOutcome:
    """Dispatch to the scheduler matching the workload's style."""
    if workload.style is ExecutionStyle.INDEPENDENT:
        return simulate_independent(workload, cluster, rng, jitter_sigma=jitter_sigma)
    if workload.style is ExecutionStyle.BSP:
        return simulate_bsp(workload, cluster, rng, jitter_sigma=jitter_sigma)
    if workload.style is ExecutionStyle.WORKQUEUE:
        return simulate_workqueue(workload, cluster, rng, jitter_sigma=jitter_sigma)
    raise SimulationError(f"no scheduler for style {workload.style}")
