"""Discrete-event execution engine — the simulated "actual" runs.

The analytical CELIA models predict time and cost; Table IV validates
those predictions against *measured* executions on EC2.  This engine plays
EC2's role: it executes an application's task decomposition on a cluster
of provisioned instances with the mechanisms the analytical model ignores
(per-instance contention, runtime jitter, BSP barrier losses, master
dispatch serialization, node startup, hourly billing), producing the
"Actual" columns.
"""

from repro.engine.events import EventSimulator
from repro.engine.cluster import SimCluster, NodeState
from repro.engine.schedulers import (
    simulate_independent,
    simulate_bsp,
    simulate_workqueue,
    ScheduleOutcome,
)
from repro.engine.runner import (
    EngineConfig,
    ExecutionReport,
    run_on_configuration,
    time_single_node_run,
)

__all__ = [
    "EventSimulator",
    "SimCluster",
    "NodeState",
    "simulate_independent",
    "simulate_bsp",
    "simulate_workqueue",
    "ScheduleOutcome",
    "EngineConfig",
    "ExecutionReport",
    "run_on_configuration",
    "time_single_node_run",
]
