"""A minimal discrete-event simulation core.

A classic event-heap simulator: schedule callbacks at future times, run
until the heap drains or a horizon is reached.  The work-queue scheduler
is built on it, and it is exported for users extending the engine with
new execution styles (e.g. pipelined or DAG-structured workloads).
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Callable

from repro.errors import SimulationError

__all__ = ["EventSimulator"]


class EventSimulator:
    """Event heap with a monotonically advancing clock (seconds)."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._counter = itertools.count()
        self._now = 0.0
        self._processed = 0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events executed so far."""
        return self._processed

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        heapq.heappush(self._heap, (self._now + delay, next(self._counter), callback))

    def schedule_at(self, time: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` at absolute time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} before current time {self._now}"
            )
        heapq.heappush(self._heap, (time, next(self._counter), callback))

    def run(self, *, horizon: float = float("inf"),
            max_events: int = 50_000_000) -> float:
        """Process events in time order until the heap drains.

        Returns the final clock value.  ``horizon`` bounds simulated time
        (events beyond it stay unprocessed); ``max_events`` guards against
        runaway event loops.
        """
        while self._heap:
            time, _, callback = self._heap[0]
            if time > horizon:
                break
            heapq.heappop(self._heap)
            if time < self._now:
                raise SimulationError("event heap produced time travel")
            self._now = time
            self._processed += 1
            if self._processed > max_events:
                raise SimulationError(f"exceeded {max_events} events")
            callback()
        return self._now
