"""`PlannerService` — warm, batched, metered Algorithm-1 serving.

The pipeline's artefacts (catalog → characterization → space evaluation →
:class:`~repro.core.selection.FrontierIndex`) are pure functions of a
*space signature* ``(app, quota, seed)``; once built, every query against
them is sub-millisecond.  A one-shot process pays the whole chain per
request.  This service keeps the chain **warm** — built once per
signature, behind an async lock — and answers ``select`` / ``predict`` /
``plan`` requests from it.

Three serving mechanics sit on top of the warm state:

* **micro-batching** — concurrent ``select`` requests that share a space
  signature are coalesced (for at most ``batch_window_s``, up to
  ``max_batch``) into one vectorized
  :meth:`~repro.core.selection.FrontierIndex.select_batch` pass, whose
  per-query results are bit-identical to individual calls;
* **admission control** — at most ``max_queue_depth`` requests may be
  admitted-but-unfinished; the next one is rejected immediately with
  :class:`ServiceSaturatedError` (backpressure, not an unbounded queue),
  and each admitted request carries a deadline after which it resolves to
  :class:`RequestTimeoutError`;
* **metering** — every decision increments a
  :class:`~repro.service.metrics.MetricsRegistry` counter, moves a gauge
  or lands in a latency histogram, snapshotted by the ``/metrics``
  endpoint.

Identical requests are answered from a bounded LRU result cache without
consuming queue capacity.  All heavy computation runs in executor
threads, so the event loop — and with it admission control — stays
responsive while a batch is being evaluated.
"""

from __future__ import annotations

import asyncio
import json
import time
from collections import OrderedDict
from collections.abc import Callable
from dataclasses import dataclass

from repro.apps import application_by_name
from repro.cloud.catalog import Catalog, ec2_catalog
from repro.core.celia import Celia
from repro.core.planner import max_accuracy_plan, max_problem_size_plan
from repro.errors import ReproError, ValidationError
from repro.obs.trace import get_tracer
from repro.service.faults import ServiceFaults
from repro.service.metrics import MetricsRegistry
from repro.service.serialize import (
    plan_to_dict,
    prediction_to_dict,
    selection_to_dict,
)

__all__ = [
    "KNOWN_APPS",
    "PlannerService",
    "RequestTimeoutError",
    "ServiceConfig",
    "ServiceSaturatedError",
    "SpaceSignature",
]

#: Applications the service will warm state for.
KNOWN_APPS = ("x264", "galaxy", "sand")


class ServiceSaturatedError(ReproError):
    """The admission queue is full; the request was rejected unstarted."""

    def __init__(self, message: str, *, queue_depth: int, max_queue_depth: int):
        super().__init__(message)
        self.queue_depth = queue_depth
        self.max_queue_depth = max_queue_depth


class RequestTimeoutError(ReproError):
    """An admitted request missed its deadline before completing."""

    def __init__(self, message: str, *, timeout_s: float):
        super().__init__(message)
        self.timeout_s = timeout_s


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables of one :class:`PlannerService` instance."""

    #: Admitted-but-unfinished request cap (backpressure threshold).
    max_queue_depth: int = 64
    #: How long a select request may wait for peers to share its batch.
    batch_window_s: float = 0.002
    #: Hard cap on requests coalesced into one vectorized pass.
    max_batch: int = 32
    #: Entries kept in the canonical-request result cache.
    result_cache_size: int = 1024
    #: LRU cap on warm signatures (None = unbounded).  With a fleet of
    #: shards serving an open tenant population this is the RAM bound:
    #: the least-recently-used signature's state is dropped and lazily
    #: rebuilt on its next request — a millisecond mmap when the index
    #: snapshot is on disk, bit-identical either way.
    max_warm_states: "int | None" = None
    #: Deadline applied when a request does not carry its own.
    default_timeout_s: float = 30.0
    #: Catalog quota used for signatures that do not override it.
    default_quota: int = 5
    #: Measurement seed used for signatures that do not override it.
    default_seed: int = 0
    #: Space-sweep parallelism forwarded to :class:`Celia`.
    workers: "int | str | None" = "auto"
    #: Evaluation-cache directory forwarded to :class:`Celia`.
    cache_dir: "str | bool | None" = None

    def __post_init__(self) -> None:
        if self.max_queue_depth < 1:
            raise ValidationError("max_queue_depth must be >= 1")
        if self.max_batch < 1:
            raise ValidationError("max_batch must be >= 1")
        if self.batch_window_s < 0:
            raise ValidationError("batch_window_s must be non-negative")
        if self.result_cache_size < 0:
            raise ValidationError("result_cache_size must be non-negative")
        if self.default_timeout_s <= 0:
            raise ValidationError("default_timeout_s must be positive")
        if self.max_warm_states is not None and self.max_warm_states < 1:
            raise ValidationError("max_warm_states must be >= 1 (or None)")


@dataclass(frozen=True, slots=True)
class SpaceSignature:
    """What the warm state depends on — the micro-batching key."""

    app: str
    quota: int
    seed: int


class _WarmState:
    """Everything needed to answer queries for one signature."""

    def __init__(self, celia: Celia, app) -> None:
        self.celia = celia
        self.app = app
        # Force every lazy artefact now, inside the executor thread that
        # builds the state, so queries never pay for them on the loop.
        self.evaluation = celia.evaluation(app)
        self.index = celia.selection_index(app)
        self.min_cost = celia.min_cost_index(app)
        self.demand_model = celia.demand_model(app)


class _PendingSelect:
    """One select query waiting for its batch to flush."""

    __slots__ = ("demand_gi", "deadline_hours", "budget_dollars", "top",
                 "cache_key", "future")

    def __init__(self, demand_gi: float, deadline_hours: float,
                 budget_dollars: float, top: int, cache_key: str,
                 future: asyncio.Future):
        self.demand_gi = demand_gi
        self.deadline_hours = deadline_hours
        self.budget_dollars = budget_dollars
        self.top = top
        self.cache_key = cache_key
        self.future = future


class PlannerService:
    """Asyncio planning service over warm CELIA state.

    Parameters
    ----------
    config:
        Queueing/batching/caching tunables (:class:`ServiceConfig`).
    faults:
        Optional induced slowness (:class:`ServiceFaults`) for tests and
        load studies.
    metrics:
        A registry to record into; a private one is created if omitted.
    catalog_factory:
        Maps a quota to a :class:`Catalog`; defaults to the paper's
        Table III catalog.  Lets tests serve tiny spaces.
    """

    def __init__(
        self,
        *,
        config: ServiceConfig | None = None,
        faults: ServiceFaults | None = None,
        metrics: MetricsRegistry | None = None,
        catalog_factory: Callable[[int], Catalog] | None = None,
    ) -> None:
        self.config = config or ServiceConfig()
        self.faults = faults or ServiceFaults()
        self.metrics = metrics or MetricsRegistry()
        self._catalog_factory = catalog_factory or (
            lambda quota: ec2_catalog(max_nodes_per_type=quota))
        self._states: OrderedDict[SpaceSignature, _WarmState] = OrderedDict()
        self._state_locks: dict[SpaceSignature, asyncio.Lock] = {}
        self._pending: dict[SpaceSignature, list[_PendingSelect]] = {}
        self._flush_handles: dict[SpaceSignature, asyncio.TimerHandle] = {}
        self._result_cache: OrderedDict[str, dict] = OrderedDict()
        self._in_flight = 0

    # -- signatures and warm state ---------------------------------------------

    def signature(self, app: str, *, quota: int | None = None,
                  seed: int | None = None) -> SpaceSignature:
        """The space signature a request resolves to."""
        if app not in KNOWN_APPS:
            raise ValidationError(
                f"unknown application {app!r}; expected one of {KNOWN_APPS}")
        return SpaceSignature(
            app=app,
            quota=self.config.default_quota if quota is None else int(quota),
            seed=self.config.default_seed if seed is None else int(seed),
        )

    @property
    def warm_signatures(self) -> tuple[SpaceSignature, ...]:
        """Signatures whose state is currently warm."""
        return tuple(self._states)

    async def warm(self, app: str, *, quota: int | None = None,
                   seed: int | None = None) -> SpaceSignature:
        """Build (or reuse) the warm state for one signature."""
        signature = self.signature(app, quota=quota, seed=seed)
        await self._ensure_state(signature)
        return signature

    async def _ensure_state(self, signature: SpaceSignature) -> _WarmState:
        state = self._states.get(signature)
        if state is not None:
            self._states.move_to_end(signature)  # LRU touch
            return state
        lock = self._state_locks.setdefault(signature, asyncio.Lock())
        async with lock:
            state = self._states.get(signature)  # racing warmers: reuse
            if state is not None:
                self._states.move_to_end(signature)
            if state is None:
                t0 = time.perf_counter()
                state = await asyncio.get_running_loop().run_in_executor(
                    None, self._build_state, signature)
                self._states[signature] = state
                self.metrics.gauge("warm_signatures").set(len(self._states))
                self.metrics.histogram("warm_build_s").observe(
                    time.perf_counter() - t0)
                sweep = state.evaluation.sweep_stats()
                if sweep is not None:
                    # A warmup that found checkpoint shards resumed from
                    # them instead of re-sweeping; surface the split.
                    self.metrics.counter("warm_spans_resumed").increment(
                        sweep.spans_resumed)
                    self.metrics.counter("warm_spans_swept").increment(
                        sweep.spans_evaluated)
                if state.celia.last_index_from_snapshot:
                    # The frontier index was memory-mapped from a
                    # persisted snapshot instead of rebuilt.
                    self.metrics.counter("warm_from_snapshot").increment()
                    self.metrics.histogram("warm_load_s").observe(
                        state.celia.last_index_load_s)
                self._evict_excess()
        return state

    def _evict_excess(self) -> None:
        """Drop least-recently-used warm states over ``max_warm_states``.

        Signatures with a pending micro-batch are skipped — their flush
        callback still needs the state — and picked up by a later
        eviction pass.  An evicted signature rebuilds lazily (and
        bit-identically) on its next request.
        """
        limit = self.config.max_warm_states
        if limit is None:
            return
        while len(self._states) > limit:
            # Never the most-recent entry (the state just ensured for the
            # caller) and never one with a pending micro-batch — its
            # flush callback still resolves through ``self._states``.
            candidates = list(self._states)[:-1]
            victim = next((s for s in candidates if s not in self._pending),
                          None)
            if victim is None:
                return  # everything old is mid-batch; try again later
            del self._states[victim]
            self._state_locks.pop(victim, None)
            self.metrics.counter("warm_evictions").increment()
            self.metrics.gauge("warm_signatures").set(len(self._states))

    def _build_state(self, signature: SpaceSignature) -> _WarmState:
        self.faults.on_warm()
        celia = Celia(
            self._catalog_factory(signature.quota),
            seed=signature.seed,
            workers=self.config.workers,
            cache_dir=self.config.cache_dir,
        )
        return _WarmState(celia, application_by_name(signature.app,
                                                     seed=signature.seed))

    # -- admission, caching, timeouts ------------------------------------------

    @property
    def queue_depth(self) -> int:
        """Requests currently admitted and unfinished."""
        return self._in_flight

    def _admit(self) -> None:
        if self._in_flight >= self.config.max_queue_depth:
            self.metrics.counter("rejected_saturated").increment()
            raise ServiceSaturatedError(
                f"queue full ({self._in_flight} in flight, "
                f"max {self.config.max_queue_depth}); retry later",
                queue_depth=self._in_flight,
                max_queue_depth=self.config.max_queue_depth,
            )
        self._in_flight += 1
        self.metrics.gauge("queue_depth").set(self._in_flight)

    def _release(self) -> None:
        self._in_flight -= 1
        self.metrics.gauge("queue_depth").set(self._in_flight)

    @staticmethod
    def _cache_key(kind: str, signature: SpaceSignature, **fields) -> str:
        payload = {"kind": kind, "app": signature.app,
                   "quota": signature.quota, "seed": signature.seed}
        payload.update(fields)
        return json.dumps(payload, sort_keys=True)

    def _cache_get(self, key: str) -> dict | None:
        cached = self._result_cache.get(key)
        if cached is None:
            self.metrics.counter("cache_misses").increment()
            return None
        self._result_cache.move_to_end(key)
        self.metrics.counter("cache_hits").increment()
        return cached

    def _cache_put(self, key: str, payload: dict) -> None:
        if self.config.result_cache_size == 0:
            return
        self._result_cache[key] = payload
        self._result_cache.move_to_end(key)
        while len(self._result_cache) > self.config.result_cache_size:
            self._result_cache.popitem(last=False)

    async def _with_deadline(self, awaitable, timeout_s: float | None,
                             kind: str):
        timeout = (self.config.default_timeout_s
                   if timeout_s is None else float(timeout_s))
        if timeout <= 0:
            raise ValidationError("timeout_s must be positive")
        try:
            return await asyncio.wait_for(awaitable, timeout)
        except asyncio.TimeoutError:
            self.metrics.counter("rejected_timeout").increment()
            raise RequestTimeoutError(
                f"{kind} request missed its {timeout:g}s deadline",
                timeout_s=timeout,
            ) from None

    def _respond(self, kind: str, payload: dict, *, cached: bool,
                 t0: float) -> dict:
        latency = time.perf_counter() - t0
        self.metrics.counter("requests_total").increment()
        self.metrics.counter(f"requests_{kind}").increment()
        self.metrics.histogram(f"latency_{kind}_s").observe(latency)
        return {"kind": kind, "cached": cached, "result": payload}

    # -- select: micro-batched -------------------------------------------------

    async def select(self, app: str, n: float, a: float,
                     deadline_hours: float, budget_dollars: float,
                     *, top: int = 0, quota: int | None = None,
                     seed: int | None = None,
                     timeout_s: float | None = None) -> dict:
        """Algorithm 1 under (deadline, budget), batched across callers."""
        t0 = time.perf_counter()
        signature = self.signature(app, quota=quota, seed=seed)
        key = self._cache_key("select", signature, n=float(n), a=float(a),
                              deadline_hours=float(deadline_hours),
                              budget_dollars=float(budget_dollars),
                              top=int(top))
        cached = self._cache_get(key)
        if cached is not None:
            return self._respond("select", cached, cached=True, t0=t0)
        self._admit()
        try:
            payload = await self._with_deadline(
                self._select_uncached(signature, key, float(n), float(a),
                                      float(deadline_hours),
                                      float(budget_dollars), int(top)),
                timeout_s, "select")
        finally:
            self._release()
        return self._respond("select", payload, cached=False, t0=t0)

    async def _select_uncached(self, signature: SpaceSignature, key: str,
                               n: float, a: float, deadline_hours: float,
                               budget_dollars: float, top: int) -> dict:
        state = await self._ensure_state(signature)
        demand = state.celia.demand_gi(state.app, n, a)
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        pending = _PendingSelect(demand, deadline_hours, budget_dollars,
                                 top, key, future)
        batch = self._pending.setdefault(signature, [])
        batch.append(pending)
        if len(batch) >= self.config.max_batch:
            self._flush(signature)
        elif len(batch) == 1:
            self._flush_handles[signature] = \
                asyncio.get_running_loop().call_later(
                    self.config.batch_window_s,
                    self._flush, signature)
        return await future

    def _flush(self, signature: SpaceSignature) -> None:
        """Move the signature's pending queries into one executor batch."""
        handle = self._flush_handles.pop(signature, None)
        if handle is not None:
            handle.cancel()
        batch = self._pending.pop(signature, [])
        if not batch:
            return
        state = self._states[signature]
        self.metrics.counter("batches_total").increment()
        self.metrics.histogram("batch_size").observe(len(batch))
        loop = asyncio.get_running_loop()
        task = loop.run_in_executor(None, self._compute_batch, state, batch)
        task.add_done_callback(lambda t: self._resolve_batch(t, batch))

    def _compute_batch(self, state: _WarmState,
                       batch: list[_PendingSelect]) -> list[dict]:
        self.faults.on_compute()
        results = state.index.select_batch(
            [p.demand_gi for p in batch],
            [p.deadline_hours for p in batch],
            [p.budget_dollars for p in batch],
        )
        return [selection_to_dict(result, top=p.top)
                for result, p in zip(results, batch)]

    def _resolve_batch(self, task, batch: list[_PendingSelect]) -> None:
        error = task.exception()
        payloads = None if error is not None else task.result()
        for i, p in enumerate(batch):
            if p.future.done():  # timed out and cancelled while computing
                continue
            if error is not None:
                p.future.set_exception(error)
            else:
                self._cache_put(p.cache_key, payloads[i])
                p.future.set_result(payloads[i])

    # -- predict / plan: per-request compute -----------------------------------

    async def predict(self, app: str, n: float, a: float,
                      configuration: "list[int] | tuple[int, ...]",
                      *, quota: int | None = None, seed: int | None = None,
                      timeout_s: float | None = None) -> dict:
        """Eq. 2/5 prediction for one explicit configuration."""
        t0 = time.perf_counter()
        signature = self.signature(app, quota=quota, seed=seed)
        config = [int(v) for v in configuration]
        key = self._cache_key("predict", signature, n=float(n), a=float(a),
                              configuration=config)
        cached = self._cache_get(key)
        if cached is not None:
            return self._respond("predict", cached, cached=True, t0=t0)
        self._admit()
        try:
            payload = await self._with_deadline(
                self._compute_simple(signature, key, self._predict_payload,
                                     float(n), float(a), tuple(config)),
                timeout_s, "predict")
        finally:
            self._release()
        return self._respond("predict", payload, cached=False, t0=t0)

    def _predict_payload(self, state: _WarmState, n: float, a: float,
                         configuration: tuple[int, ...]) -> dict:
        return prediction_to_dict(
            state.celia.predict(state.app, n, a, configuration))

    async def plan(self, app: str, deadline_hours: float,
                   budget_dollars: float, *, fix_size: float | None = None,
                   fix_accuracy: float | None = None,
                   knob_range: tuple[float, float],
                   integral: bool = False, quota: int | None = None,
                   seed: int | None = None,
                   timeout_s: float | None = None) -> dict:
        """Best affordable accuracy (or problem size) under (T', C')."""
        t0 = time.perf_counter()
        if (fix_size is None) == (fix_accuracy is None):
            raise ValidationError(
                "exactly one of fix_size / fix_accuracy must be given")
        signature = self.signature(app, quota=quota, seed=seed)
        lo, hi = (float(knob_range[0]), float(knob_range[1]))
        key = self._cache_key(
            "plan", signature, deadline_hours=float(deadline_hours),
            budget_dollars=float(budget_dollars), fix_size=fix_size,
            fix_accuracy=fix_accuracy, range=[lo, hi],
            integral=bool(integral))
        cached = self._cache_get(key)
        if cached is not None:
            return self._respond("plan", cached, cached=True, t0=t0)
        self._admit()
        try:
            payload = await self._with_deadline(
                self._compute_simple(signature, key, self._plan_payload,
                                     float(deadline_hours),
                                     float(budget_dollars), fix_size,
                                     fix_accuracy, (lo, hi), bool(integral)),
                timeout_s, "plan")
        finally:
            self._release()
        return self._respond("plan", payload, cached=False, t0=t0)

    def _plan_payload(self, state: _WarmState, deadline_hours: float,
                      budget_dollars: float, fix_size: float | None,
                      fix_accuracy: float | None,
                      knob_range: tuple[float, float],
                      integral: bool) -> dict:
        if fix_size is not None:
            plan = max_accuracy_plan(
                state.demand_model, state.min_cost, float(fix_size),
                knob_range, deadline_hours, budget_dollars,
                integral=integral)
        else:
            plan = max_problem_size_plan(
                state.demand_model, state.min_cost, float(fix_accuracy),
                knob_range, deadline_hours, budget_dollars,
                integral=integral)
        return plan_to_dict(plan)

    async def replan(self, app: str, remaining_gi: float,
                     residual_deadline_hours: float,
                     residual_budget_dollars: float, *,
                     n: float | None = None, accuracy: float | None = None,
                     min_accuracy: float | None = None,
                     work_done_gi: float = 0.0, efficiency: float = 1.0,
                     quota: int | None = None, seed: int | None = None,
                     timeout_s: float | None = None) -> dict:
        """Re-plan over residual state for a closed-loop runtime.

        Finds the cheapest configuration finishing ``remaining_gi`` GI
        within the residual envelope.  When none exists and the caller
        supplies its run parameters (``n``, current ``accuracy``), the
        accuracy knob is degraded minimally
        (:func:`repro.runtime.controller.degraded_accuracy_search`) —
        the same search the in-process controller runs, exposed over
        HTTP.  Not cached: residual states are effectively unique.
        Every call lands in ``replans_total``; degraded answers also in
        ``degradations_total``.
        """
        t0 = time.perf_counter()
        if remaining_gi <= 0:
            raise ValidationError("remaining_gi must be positive")
        if not 0 < efficiency <= 1:
            raise ValidationError("efficiency must be in (0, 1]")
        signature = self.signature(app, quota=quota, seed=seed)
        self._admit()
        try:
            payload = await self._with_deadline(
                self._compute_replan(signature, float(remaining_gi),
                                     float(residual_deadline_hours),
                                     float(residual_budget_dollars),
                                     n, accuracy, min_accuracy,
                                     float(work_done_gi), float(efficiency)),
                timeout_s, "replan")
        finally:
            self._release()
        self.metrics.counter("replans_total").increment()
        if payload.get("degraded"):
            self.metrics.counter("degradations_total").increment()
        return self._respond("replan", payload, cached=False, t0=t0)

    async def _compute_replan(self, signature: SpaceSignature,
                              remaining_gi: float, residual_t: float,
                              residual_c: float, n: float | None,
                              accuracy: float | None,
                              min_accuracy: float | None,
                              work_done_gi: float,
                              efficiency: float) -> dict:
        state = await self._ensure_state(signature)

        def compute() -> dict:
            self.faults.on_compute()
            return self._replan_payload(state, remaining_gi, residual_t,
                                        residual_c, n, accuracy,
                                        min_accuracy, work_done_gi,
                                        efficiency)

        return await asyncio.get_running_loop().run_in_executor(None, compute)

    def _replan_payload(self, state: _WarmState, remaining_gi: float,
                        residual_t: float, residual_c: float,
                        n: float | None, accuracy: float | None,
                        min_accuracy: float | None, work_done_gi: float,
                        efficiency: float) -> dict:
        from repro.errors import InfeasibleError
        from repro.runtime.controller import degraded_accuracy_search

        base = {
            "remaining_gi": remaining_gi,
            "residual_deadline_hours": residual_t,
            "residual_budget_dollars": residual_c,
            "efficiency": efficiency,
        }
        try:
            answer = state.min_cost.query(remaining_gi / efficiency,
                                          residual_t,
                                          budget_dollars=residual_c)
        except InfeasibleError:
            answer = None
        if answer is not None:
            return {**base, "feasible": True, "degraded": False,
                    "configuration": list(answer.configuration),
                    "time_hours": answer.time_hours,
                    "cost_dollars": answer.cost_dollars}
        if n is None or accuracy is None:
            return {**base, "feasible": False, "degraded": False,
                    "detail": "no feasible configuration; supply n and "
                              "accuracy to search degraded plans"}
        floor = (float(min_accuracy) if min_accuracy is not None
                 else float(min(state.app.scale_down_grid()[1])))
        found = degraded_accuracy_search(
            lambda acc: state.celia.demand_gi(state.app, float(n), acc),
            state.min_cost, floor=floor, current=float(accuracy),
            integral=state.app.accuracy_integral,
            residual_deadline_hours=residual_t,
            residual_budget_dollars=residual_c,
            work_done_gi=work_done_gi, efficiency=efficiency)
        if found is None:
            return {**base, "feasible": False, "degraded": False,
                    "accuracy_floor": floor,
                    "detail": "infeasible even at the accuracy floor"}
        degraded_accuracy, degraded_answer = found
        return {**base, "feasible": True, "degraded": True,
                "accuracy": degraded_accuracy,
                "accuracy_score": state.app.accuracy_score(degraded_accuracy),
                "configuration": list(degraded_answer.configuration),
                "time_hours": degraded_answer.time_hours,
                "cost_dollars": degraded_answer.cost_dollars}

    async def _compute_simple(self, signature: SpaceSignature, key: str,
                              fn, *args) -> dict:
        """Warm the state, run ``fn`` in an executor, cache its payload."""
        state = await self._ensure_state(signature)

        def compute() -> dict:
            self.faults.on_compute()
            return fn(state, *args)

        payload = await asyncio.get_running_loop().run_in_executor(
            None, compute)
        self._cache_put(key, payload)
        return payload

    # -- generic request dispatch (used by the HTTP front-end) -----------------

    async def handle(self, request: dict) -> dict:
        """Dispatch one decoded JSON request by its ``kind`` field.

        Arguments:
            request: The decoded JSON body; must be an object whose
                ``kind`` is one of ``select``/``predict``/``plan``/
                ``replan``, plus that kind's fields (see ``docs/api.md``).

        Returns the response envelope ``{"kind", "cached", "result"}``.

        Raises:
            ValidationError: Malformed or unknown-kind requests.
            ServiceSaturatedError: Admission queue full.
            RequestTimeoutError: Deadline missed while queued/running.
            InfeasibleError: No configuration satisfies the envelope.
        """
        if not isinstance(request, dict):
            raise ValidationError("request body must be a JSON object")
        kind = request.get("kind")
        with get_tracer().span(f"service.{kind}"):
            return await self._handle_inner(kind, request)

    async def _handle_inner(self, kind, request: dict) -> dict:
        common = {k: request.get(k) for k in ("quota", "seed", "timeout_s")}
        try:
            if kind == "select":
                return await self.select(
                    request["app"], float(request["n"]), float(request["a"]),
                    float(request["deadline_hours"]),
                    float(request["budget_dollars"]),
                    top=int(request.get("top", 0)), **common)
            if kind == "predict":
                return await self.predict(
                    request["app"], float(request["n"]), float(request["a"]),
                    request["configuration"], **common)
            if kind == "plan":
                knob_range = request["range"]
                if not (isinstance(knob_range, (list, tuple))
                        and len(knob_range) == 2):
                    raise ValidationError("range must be [lo, hi]")
                return await self.plan(
                    request["app"], float(request["deadline_hours"]),
                    float(request["budget_dollars"]),
                    fix_size=request.get("fix_size"),
                    fix_accuracy=request.get("fix_accuracy"),
                    knob_range=(float(knob_range[0]), float(knob_range[1])),
                    integral=bool(request.get("integral", False)), **common)
            if kind == "replan":
                return await self.replan(
                    request["app"], float(request["remaining_gi"]),
                    float(request["residual_deadline_hours"]),
                    float(request["residual_budget_dollars"]),
                    n=request.get("n"), accuracy=request.get("accuracy"),
                    min_accuracy=request.get("min_accuracy"),
                    work_done_gi=float(request.get("work_done_gi", 0.0)),
                    efficiency=float(request.get("efficiency", 1.0)),
                    **common)
        except (KeyError, TypeError) as exc:
            raise ValidationError(f"malformed {kind} request: {exc}") from exc
        raise ValidationError(
            f"unknown request kind {kind!r}; "
            f"expected select/predict/plan/replan")
