"""Canonical JSON shapes for planning results.

One serializer per result type, shared by ``celia ... --json``, the
planning service's responses and the client — so a scripted caller sees
the same schema whether it shells out to the CLI or talks HTTP, and
tests can assert bit-identical payloads across the two paths.

All functions return plain ``dict``/``list``/``float`` trees ready for
``json.dumps``; nothing here depends on the service runtime.
"""

from __future__ import annotations

from repro.core.celia import Prediction
from repro.core.optimizer import OptimizerAnswer
from repro.core.planner import Plan
from repro.core.selection import ParetoPoint, SelectionResult

__all__ = [
    "pareto_point_to_dict",
    "selection_to_dict",
    "prediction_to_dict",
    "optimizer_answer_to_dict",
    "plan_to_dict",
]


def pareto_point_to_dict(point: ParetoPoint) -> dict:
    """One frontier point with its predictions."""
    return {
        "configuration": list(point.configuration),
        "time_hours": point.time_hours,
        "cost_dollars": point.cost_dollars,
        "capacity_gips": point.capacity_gips,
        "unit_cost_per_hour": point.unit_cost_per_hour,
    }


def selection_to_dict(result: SelectionResult, *, top: int = 0) -> dict:
    """An Algorithm-1 result; ``top`` > 0 trims the frontier list.

    ``pareto_count`` always reflects the full frontier even when the
    list is trimmed; ``cost_span``/``max_saving_fraction`` are ``None``
    for infeasible selections instead of raising.
    """
    points = result.pareto[:top] if top else result.pareto
    feasible = bool(result.pareto)
    return {
        "demand_gi": result.demand_gi,
        "deadline_hours": result.deadline_hours,
        "budget_dollars": result.budget_dollars,
        "total_configurations": result.total_configurations,
        "feasible_count": result.feasible_count,
        "pareto_count": result.pareto_count,
        "pareto": [pareto_point_to_dict(p) for p in points],
        "cost_span": list(result.cost_span) if feasible else None,
        "max_saving_fraction": (result.max_saving_fraction
                                if feasible else None),
    }


def prediction_to_dict(prediction: Prediction) -> dict:
    """Eq. 2/5 prediction for one configuration."""
    return {
        "configuration": list(prediction.configuration),
        "demand_gi": prediction.demand_gi,
        "capacity_gips": prediction.capacity_gips,
        "unit_cost_per_hour": prediction.unit_cost_per_hour,
        "time_hours": prediction.time_hours,
        "cost_dollars": prediction.cost_dollars,
    }


def optimizer_answer_to_dict(answer: OptimizerAnswer) -> dict:
    """A min-cost/min-time optimum."""
    return {
        "configuration": list(answer.configuration),
        "time_hours": answer.time_hours,
        "cost_dollars": answer.cost_dollars,
        "capacity_gips": answer.capacity_gips,
        "unit_cost_per_hour": answer.unit_cost_per_hour,
    }


def plan_to_dict(plan: Plan) -> dict:
    """A planned run (best affordable accuracy or problem size)."""
    return {
        "knob": plan.knob,
        "value": plan.value,
        "fixed_value": plan.fixed_value,
        "deadline_hours": plan.deadline_hours,
        "budget_dollars": plan.budget_dollars,
        "answer": optimizer_answer_to_dict(plan.answer),
    }
