"""repro.service — a batched, metered planning service over warm state.

The serving layer of the reproduction: keep the expensive pipeline
artefacts (catalog → evaluation cache → frontier index) warm in one
long-lived process, coalesce concurrent selections into vectorized
batches, apply admission control, and expose everything over stdlib
JSON-over-HTTP with live metrics.

    service = PlannerService()
    response = await service.select("galaxy", 65536, 8000, 24, 350)

    # or over the wire:
    #   celia serve --port 8337
    client = PlannerClient(port=8337)
    response = client.select("galaxy", n=65536, a=8000,
                             deadline_hours=24, budget_dollars=350)
"""

from repro.service.client import PlannerClient
from repro.service.faults import ServiceFaults
from repro.service.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.service.planner import (
    KNOWN_APPS,
    PlannerService,
    RequestTimeoutError,
    ServiceConfig,
    ServiceSaturatedError,
    SpaceSignature,
)
from repro.service.serialize import (
    optimizer_answer_to_dict,
    pareto_point_to_dict,
    plan_to_dict,
    prediction_to_dict,
    selection_to_dict,
)
from repro.service.server import PlannerServer, run_server

__all__ = [
    "KNOWN_APPS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PlannerClient",
    "PlannerServer",
    "PlannerService",
    "RequestTimeoutError",
    "ServiceConfig",
    "ServiceFaults",
    "ServiceSaturatedError",
    "SpaceSignature",
    "optimizer_answer_to_dict",
    "pareto_point_to_dict",
    "plan_to_dict",
    "prediction_to_dict",
    "selection_to_dict",
    "run_server",
]
