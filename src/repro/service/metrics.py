"""Compatibility shim: the metrics primitives moved to ``repro.obs``.

The service grew the registry first; once the sweep supervisor, cache
and runtime controller needed the same primitives they were lifted into
:mod:`repro.obs.metrics` as the shared implementation.  This module
keeps every historical import path working —
``from repro.service.metrics import MetricsRegistry`` and friends are
part of the service's public API and must not break.
"""

from repro.obs.metrics import (DEFAULT_WINDOW, PERCENTILES, Counter, Gauge,
                               Histogram, MetricsRegistry)

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "DEFAULT_WINDOW", "PERCENTILES"]
