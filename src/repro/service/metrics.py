"""Service instrumentation: counters, gauges and latency histograms.

The planning service answers many small requests, so its health is a
statistical object — a single slow request means nothing, the p99 does.
This module provides the three classic primitives behind a
``/metrics``-style endpoint:

* :class:`Counter` — monotone event count (requests served, rejections);
* :class:`Gauge` — instantaneous level (queue depth, warm signatures);
* :class:`Histogram` — bounded-memory sample reservoir reporting
  ``p50``/``p95``/``p99`` alongside count/sum/min/max.

A :class:`MetricsRegistry` names and owns them and renders one
JSON-serializable :meth:`~MetricsRegistry.snapshot` of everything.  All
primitives are guarded by a lock so the asyncio front-end and executor
worker threads can record concurrently.
"""

from __future__ import annotations

import threading
from collections import deque

from repro.errors import ValidationError

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

#: Samples retained per histogram; older observations fall out of the
#: window, so percentiles describe recent behavior (what an operator
#: watching a dashboard actually wants).
DEFAULT_WINDOW = 4096

#: Percentiles reported by every histogram snapshot.
PERCENTILES = (50.0, 95.0, 99.0)


class Counter:
    """A monotonically increasing event count."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0

    def increment(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValidationError("counters only move forward")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class Gauge:
    """An instantaneous level that can move both ways."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, delta: float) -> None:
        with self._lock:
            self._value += float(delta)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Sliding-window sample distribution with percentile snapshots.

    Keeps the last ``window`` observations in a ring buffer plus
    all-time count/sum, so :meth:`snapshot` is exact over the window and
    cheap — one sort of at most ``window`` floats.
    """

    def __init__(self, window: int = DEFAULT_WINDOW) -> None:
        if window < 1:
            raise ValidationError("histogram window must be >= 1")
        self._lock = threading.Lock()
        self._samples: deque[float] = deque(maxlen=window)
        self._count = 0
        self._sum = 0.0

    def observe(self, value: float) -> None:
        with self._lock:
            self._samples.append(float(value))
            self._count += 1
            self._sum += float(value)

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def samples(self) -> tuple[float, ...]:
        """The observations currently in the window, oldest first."""
        with self._lock:
            return tuple(self._samples)

    def snapshot(self) -> dict:
        """count/sum/min/max plus the :data:`PERCENTILES` over the window."""
        with self._lock:
            samples = sorted(self._samples)
            count, total = self._count, self._sum
        out: dict = {"count": count, "sum": total}
        if not samples:
            out.update({"min": None, "max": None})
            out.update({f"p{p:g}": None for p in PERCENTILES})
            return out
        out["min"] = samples[0]
        out["max"] = samples[-1]
        last = len(samples) - 1
        for p in PERCENTILES:
            # Nearest-rank on the sorted window.
            rank = min(last, round(p / 100.0 * last))
            out[f"p{p:g}"] = samples[int(rank)]
        return out


class MetricsRegistry:
    """Named collection of metrics rendering one JSON snapshot."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """The counter called ``name`` (created on first use)."""
        with self._lock:
            return self._counters.setdefault(name, Counter())

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name`` (created on first use)."""
        with self._lock:
            return self._gauges.setdefault(name, Gauge())

    def histogram(self, name: str, *, window: int = DEFAULT_WINDOW
                  ) -> Histogram:
        """The histogram called ``name`` (created on first use)."""
        with self._lock:
            return self._histograms.setdefault(name, Histogram(window))

    def snapshot(self) -> dict:
        """Every metric's current value, ready for ``json.dumps``."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {k: c.value for k, c in sorted(counters.items())},
            "gauges": {k: g.value for k, g in sorted(gauges.items())},
            "histograms": {k: h.snapshot()
                           for k, h in sorted(histograms.items())},
        }
