"""Stdlib JSON-over-HTTP front-end for :class:`PlannerService`.

A deliberately small HTTP/1.1 server on ``asyncio.start_server`` — no
frameworks, one connection per request — exposing:

* ``POST /v1/select`` / ``/v1/predict`` / ``/v1/plan`` / ``/v1/replan``
  — a JSON request body (the path supplies the ``kind`` field);
* ``GET /metrics`` — the live metrics snapshot: the service's own
  request/latency series merged with the process-global registry
  (``sweep_*``, ``eval_cache_*``, ``runtime_*`` — see
  ``docs/observability.md``);
* ``GET /metrics.txt`` — the same snapshot as a flat text exposition;
* ``GET /healthz`` — liveness, warm-state readiness and drain status.

Library errors map to typed JSON error envelopes::

    {"error": {"code": "saturated", "message": "..."}}

with the status codes a load balancer expects: 400 for malformed or
invalid requests, 422 for infeasible plans, 503 (+ ``Retry-After``) when
admission control rejects or the server is draining, 504 for missed
request deadlines.

Shutdown is graceful: ``run_server`` installs a SIGTERM/SIGINT handler
that stops accepting connections, lets in-flight requests finish (up to
a drain timeout), then exits — so a rolling restart never drops work
mid-computation.
"""

from __future__ import annotations

import asyncio
import json
import signal

from repro.errors import InfeasibleError, ReproError, ValidationError
from repro.obs.metrics import global_registry, merge_snapshots, render_text
from repro.service.planner import (
    PlannerService,
    RequestTimeoutError,
    ServiceSaturatedError,
)

__all__ = ["PlannerServer", "dispatch_request", "run_server"]

_MAX_BODY_BYTES = 1 << 20
_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 413: "Payload Too Large",
            422: "Unprocessable Entity", 429: "Too Many Requests",
            500: "Internal Server Error", 503: "Service Unavailable",
            504: "Gateway Timeout"}

_POST_ROUTES = {"/v1/select": "select", "/v1/predict": "predict",
                "/v1/plan": "plan", "/v1/replan": "replan"}


def _error_body(code: str, message: str) -> dict:
    return {"error": {"code": code, "message": message}}


async def dispatch_request(service: PlannerService,
                           request: dict) -> tuple[int, dict]:
    """Run one decoded request; map library errors to (status, envelope).

    The single source of truth for the service's HTTP error contract,
    shared by :class:`PlannerServer` and the fleet shard workers
    (:mod:`repro.fleet.worker`) so a request answers identically whether
    it reached the service directly or through the shard router.
    """
    try:
        return 200, await service.handle(request)
    except ServiceSaturatedError as exc:
        return 503, _error_body("saturated", str(exc))
    except RequestTimeoutError as exc:
        return 504, _error_body("deadline_exceeded", str(exc))
    except InfeasibleError as exc:
        return 422, _error_body("infeasible", str(exc))
    except ValidationError as exc:
        return 400, _error_body("invalid_request", str(exc))
    except ReproError as exc:
        return 400, _error_body("error", str(exc))


class PlannerServer:
    """Owns the listening socket and request/response framing."""

    def __init__(self, service: PlannerService, *, host: str = "127.0.0.1",
                 port: int = 0, expected_warm: tuple[str, ...] = ()):
        self.service = service
        self.host = host
        self.port = port  # 0 → ephemeral; replaced by the bound port
        self.expected_warm = tuple(expected_warm)
        self._server: asyncio.AbstractServer | None = None
        self._in_flight = 0
        self._draining = False
        self._idle = asyncio.Event()
        self._idle.set()

    @property
    def in_flight(self) -> int:
        """Connections currently being served."""
        return self._in_flight

    @property
    def draining(self) -> bool:
        """True once graceful shutdown has begun."""
        return self._draining

    @property
    def ready(self) -> bool:
        """Readiness: accepting requests and all expected state is warm."""
        if self._draining:
            return False
        warm_apps = {s.app for s in self.service.warm_signatures}
        return all(app in warm_apps for app in self.expected_warm)

    async def start(self) -> None:
        """Bind and start accepting connections (non-blocking)."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def drain(self, *, timeout_s: float = 10.0) -> bool:
        """Graceful shutdown: refuse new work, wait for in-flight requests.

        Marks the server draining (new requests get 503 + ``Retry-After``,
        ``/healthz`` flips unready so load balancers stop routing here),
        stops the listener, then waits up to ``timeout_s`` for in-flight
        requests to complete.  Returns True if the server drained fully,
        False if the timeout expired with requests still running.
        """
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        try:
            await asyncio.wait_for(self._idle.wait(), timeout_s)
            return True
        except asyncio.TimeoutError:
            return False

    def _metrics_snapshot(self) -> dict:
        """Service registry merged with the process-global one.

        Service series keep their historical names (``requests_*``,
        ``latency_*`` …) so existing scrapers see unchanged output; the
        global registry contributes the prefixed supervisor/cache/
        runtime series on top.
        """
        return merge_snapshots(global_registry().snapshot(),
                               self.service.metrics.snapshot())

    # -- request handling ------------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        self._in_flight += 1
        self._idle.clear()
        try:
            try:
                status, body = await self._handle_request(reader)
            except Exception as exc:  # last-resort: never kill the server
                status, body = 500, _error_body("internal", str(exc))
            if isinstance(body, str):  # text exposition (/metrics.txt)
                content_type = "text/plain; charset=utf-8"
                payload = body.encode("utf-8")
            else:
                content_type = "application/json"
                payload = json.dumps(body).encode("utf-8")
            head = (f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
                    f"Content-Type: {content_type}\r\n"
                    f"Content-Length: {len(payload)}\r\n"
                    + ("Retry-After: 1\r\n" if status == 503 else "")
                    + "Connection: close\r\n\r\n").encode("ascii")
            try:
                writer.write(head + payload)
                await writer.drain()
            except (ConnectionError, OSError):
                pass  # client went away; nothing to do
            finally:
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionError, OSError):
                    pass
        finally:
            self._in_flight -= 1
            if self._in_flight == 0:
                self._idle.set()

    async def _handle_request(self, reader: asyncio.StreamReader
                              ) -> tuple[int, dict]:
        request_line = (await reader.readline()).decode("latin-1").strip()
        if not request_line:
            return 400, _error_body("invalid_request", "empty request")
        parts = request_line.split()
        if len(parts) != 3:
            return 400, _error_body("invalid_request",
                                    f"malformed request line {request_line!r}")
        method, path, _version = parts
        content_length = 0
        while True:
            line = (await reader.readline()).decode("latin-1")
            if line in ("\r\n", "\n", ""):
                break
            name, _, value = line.partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    return 400, _error_body("invalid_request",
                                            "bad Content-Length")
        if content_length > _MAX_BODY_BYTES:
            return 413, _error_body("payload_too_large",
                                    f"body over {_MAX_BODY_BYTES} bytes")

        if method == "GET":
            if path == "/healthz":
                return 200, {
                    "status": "draining" if self._draining else "ok",
                    "ready": self.ready,
                    "draining": self._draining,
                    "in_flight": self._in_flight,
                    "expected_warm": list(self.expected_warm),
                    "warm_signatures": [
                        {"app": s.app, "quota": s.quota, "seed": s.seed}
                        for s in self.service.warm_signatures
                    ],
                }
            if path == "/metrics":
                return 200, self._metrics_snapshot()
            if path == "/metrics.txt":
                return 200, render_text(self._metrics_snapshot())
            return 404, _error_body("not_found", f"no route {path!r}")

        if method != "POST":
            return 405, _error_body("method_not_allowed",
                                    f"{method} not supported")
        if self._draining:
            # Health and metrics stay observable during the drain; new
            # work is turned away so in-flight requests can finish.
            return 503, _error_body(
                "draining", "server is shutting down; retry elsewhere")
        kind = _POST_ROUTES.get(path)
        if kind is None:
            return 404, _error_body("not_found", f"no route {path!r}")
        raw = await reader.readexactly(content_length) if content_length \
            else b""
        try:
            request = json.loads(raw.decode("utf-8")) if raw else {}
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return 400, _error_body("invalid_request", f"bad JSON: {exc}")
        if not isinstance(request, dict):
            return 400, _error_body("invalid_request",
                                    "body must be a JSON object")
        request["kind"] = kind
        return await self._dispatch(request)

    async def _dispatch(self, request: dict) -> tuple[int, dict]:
        return await dispatch_request(self.service, request)


def run_server(service: PlannerService, *, host: str = "127.0.0.1",
               port: int = 8337, warm_apps: tuple[str, ...] = (),
               ready_callback=None, drain_timeout_s: float = 10.0) -> None:
    """Blocking entry point used by ``celia serve``.

    ``warm_apps`` are warmed before the ready callback fires, so the
    first real request never pays the state build (and ``/healthz``
    reports unready until they are warm).  SIGTERM and SIGINT trigger a
    graceful drain: the listener closes, in-flight requests get up to
    ``drain_timeout_s`` to finish, then the process exits.
    """

    async def _run() -> None:
        server = PlannerServer(service, host=host, port=port,
                               expected_warm=warm_apps)
        await server.start()
        shutdown = asyncio.Event()
        loop = asyncio.get_running_loop()
        installed: list[signal.Signals] = []
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, shutdown.set)
                installed.append(sig)
            except (NotImplementedError, RuntimeError):
                pass  # platform without signal support; Ctrl-C still works
        for app in warm_apps:
            await service.warm(app)
        if ready_callback is not None:
            ready_callback(server)
        serve_task = asyncio.create_task(server.serve_forever())
        try:
            await shutdown.wait()
            drained = await server.drain(timeout_s=drain_timeout_s)
            if not drained:
                print(f"drain timeout ({drain_timeout_s:g}s) expired with "
                      f"{server.in_flight} request(s) in flight",
                      flush=True)
        finally:
            serve_task.cancel()
            try:
                await serve_task
            except (asyncio.CancelledError, Exception):
                pass
            for sig in installed:
                loop.remove_signal_handler(sig)

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        pass
