"""Stdlib JSON-over-HTTP front-end for :class:`PlannerService`.

A deliberately small HTTP/1.1 server on ``asyncio.start_server`` — no
frameworks, one connection per request — exposing:

* ``POST /v1/select`` / ``/v1/predict`` / ``/v1/plan`` — a JSON request
  body (the path supplies the ``kind`` field);
* ``GET /metrics`` — the live metrics snapshot;
* ``GET /healthz`` — liveness plus the warm signatures.

Library errors map to typed JSON error envelopes::

    {"error": {"code": "saturated", "message": "..."}}

with the status codes a load balancer expects: 400 for malformed or
invalid requests, 422 for infeasible plans, 503 (+ ``Retry-After``) when
admission control rejects, 504 for missed request deadlines.
"""

from __future__ import annotations

import asyncio
import json

from repro.errors import InfeasibleError, ReproError, ValidationError
from repro.service.planner import (
    PlannerService,
    RequestTimeoutError,
    ServiceSaturatedError,
)

__all__ = ["PlannerServer", "run_server"]

_MAX_BODY_BYTES = 1 << 20
_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 413: "Payload Too Large",
            422: "Unprocessable Entity", 500: "Internal Server Error",
            503: "Service Unavailable", 504: "Gateway Timeout"}

_POST_ROUTES = {"/v1/select": "select", "/v1/predict": "predict",
                "/v1/plan": "plan"}


def _error_body(code: str, message: str) -> dict:
    return {"error": {"code": code, "message": message}}


class PlannerServer:
    """Owns the listening socket and request/response framing."""

    def __init__(self, service: PlannerService, *, host: str = "127.0.0.1",
                 port: int = 0):
        self.service = service
        self.host = host
        self.port = port  # 0 → ephemeral; replaced by the bound port
        self._server: asyncio.AbstractServer | None = None

    async def start(self) -> None:
        """Bind and start accepting connections (non-blocking)."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- request handling ------------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            status, body = await self._handle_request(reader)
        except Exception as exc:  # last-resort: never kill the server
            status, body = 500, _error_body("internal", str(exc))
        payload = json.dumps(body).encode("utf-8")
        head = (f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(payload)}\r\n"
                + ("Retry-After: 1\r\n" if status == 503 else "")
                + "Connection: close\r\n\r\n").encode("ascii")
        try:
            writer.write(head + payload)
            await writer.drain()
        except (ConnectionError, OSError):
            pass  # client went away; nothing to do
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _handle_request(self, reader: asyncio.StreamReader
                              ) -> tuple[int, dict]:
        request_line = (await reader.readline()).decode("latin-1").strip()
        if not request_line:
            return 400, _error_body("invalid_request", "empty request")
        parts = request_line.split()
        if len(parts) != 3:
            return 400, _error_body("invalid_request",
                                    f"malformed request line {request_line!r}")
        method, path, _version = parts
        content_length = 0
        while True:
            line = (await reader.readline()).decode("latin-1")
            if line in ("\r\n", "\n", ""):
                break
            name, _, value = line.partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    return 400, _error_body("invalid_request",
                                            "bad Content-Length")
        if content_length > _MAX_BODY_BYTES:
            return 413, _error_body("payload_too_large",
                                    f"body over {_MAX_BODY_BYTES} bytes")

        if method == "GET":
            if path == "/healthz":
                return 200, {
                    "status": "ok",
                    "warm_signatures": [
                        {"app": s.app, "quota": s.quota, "seed": s.seed}
                        for s in self.service.warm_signatures
                    ],
                }
            if path == "/metrics":
                return 200, self.service.metrics.snapshot()
            return 404, _error_body("not_found", f"no route {path!r}")

        if method != "POST":
            return 405, _error_body("method_not_allowed",
                                    f"{method} not supported")
        kind = _POST_ROUTES.get(path)
        if kind is None:
            return 404, _error_body("not_found", f"no route {path!r}")
        raw = await reader.readexactly(content_length) if content_length \
            else b""
        try:
            request = json.loads(raw.decode("utf-8")) if raw else {}
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return 400, _error_body("invalid_request", f"bad JSON: {exc}")
        if not isinstance(request, dict):
            return 400, _error_body("invalid_request",
                                    "body must be a JSON object")
        request["kind"] = kind
        return await self._dispatch(request)

    async def _dispatch(self, request: dict) -> tuple[int, dict]:
        try:
            return 200, await self.service.handle(request)
        except ServiceSaturatedError as exc:
            return 503, _error_body("saturated", str(exc))
        except RequestTimeoutError as exc:
            return 504, _error_body("deadline_exceeded", str(exc))
        except InfeasibleError as exc:
            return 422, _error_body("infeasible", str(exc))
        except ValidationError as exc:
            return 400, _error_body("invalid_request", str(exc))
        except ReproError as exc:
            return 400, _error_body("error", str(exc))


def run_server(service: PlannerService, *, host: str = "127.0.0.1",
               port: int = 8337, warm_apps: tuple[str, ...] = (),
               ready_callback=None) -> None:
    """Blocking entry point used by ``celia serve`` (Ctrl-C to stop).

    ``warm_apps`` are warmed before the ready callback fires, so the
    first real request never pays the state build.
    """

    async def _run() -> None:
        server = PlannerServer(service, host=host, port=port)
        await server.start()
        for app in warm_apps:
            await service.warm(app)
        if ready_callback is not None:
            ready_callback(server)
        try:
            await server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await server.stop()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        pass
