"""Blocking stdlib client for the planning service.

A thin convenience wrapper over :mod:`http.client` that speaks the
server's JSON schema and raises the same typed exceptions the in-process
service raises — so a caller can swap `PlannerService` for a remote
`PlannerClient` without changing its error handling::

    client = PlannerClient(port=8337)
    response = client.select("galaxy", n=65536, a=8000,
                             deadline_hours=24, budget_dollars=350)
    for point in response["result"]["pareto"]:
        print(point["configuration"], point["cost_dollars"])

Transient failures — refused/dropped connections, socket timeouts, and
503 responses (admission-control saturation or a draining server) — are
retried with capped exponential backoff and deterministic jitter, but
only for idempotent requests (every built-in endpoint is a pure query).
Definitive answers (2xx, 4xx, 504) are never retried.  When the retry
budget runs out the client raises a typed
:class:`~repro.errors.ServiceUnavailableError` recording how many
attempts were made — transport errors are always wrapped, never
re-raised raw.

A fleet's 503 ``worker_lost`` envelope (the owning shard died
mid-request) gets special treatment: one immediate idempotency-gated
replay with no backoff — the dead worker has already left routing, so
the replay lands on the re-routed shard — then a typed
:class:`~repro.errors.WorkerLostError` if the replay fails too.
"""

from __future__ import annotations

import http.client
import json
import socket
import time

from repro.errors import (
    InfeasibleError,
    ReproError,
    ServiceUnavailableError,
    ValidationError,
    WorkerLostError,
)
from repro.service.planner import RequestTimeoutError, ServiceSaturatedError
from repro.utils.rng import derive_rng

__all__ = ["PlannerClient"]

_ERROR_TYPES = {
    "saturated": lambda msg: ServiceSaturatedError(
        msg, queue_depth=-1, max_queue_depth=-1),
    "draining": lambda msg: ServiceUnavailableError(msg, attempts=1),
    "deadline_exceeded": lambda msg: RequestTimeoutError(msg, timeout_s=-1.0),
    "infeasible": lambda msg: InfeasibleError(msg),
    "invalid_request": ValidationError,
    "worker_lost": lambda msg: WorkerLostError(msg),
}

#: Connection-level failures that are safe to retry for idempotent
#: requests: the server never started (refused), or the socket died in
#: transit.  HTTP errors with definitive status codes are NOT here.
_TRANSIENT_ERRORS = (ConnectionError, socket.timeout, TimeoutError,
                     http.client.HTTPException, OSError)


class PlannerClient:
    """One service endpoint; a fresh connection per call (the server
    closes after each response).

    Parameters
    ----------
    max_attempts:
        Total tries per request (1 = no retries).
    backoff_base_s / backoff_cap_s:
        Exponential backoff schedule between attempts, capped.
    jitter_fraction:
        Deterministic ±jitter/2 spread on each backoff, derived from
        ``retry_seed`` so test runs reproduce their exact sleep pattern.

    Raises
    ------
    ValidationError
        From the constructor when ``max_attempts < 1``; from any
        endpoint when the server rejects the request as invalid (400).
    InfeasibleError
        When the requested plan has no feasible configuration (422).
    ServiceSaturatedError / RequestTimeoutError
        Admission-control rejection (503) after retries run out, or a
        missed per-request deadline (504).
    ServiceUnavailableError
        When the retry budget is exhausted on transient transport
        failures or a draining server.
    WorkerLostError
        When a fleet shard died mid-request and the single re-routed
        replay failed as well (idempotent requests only; non-idempotent
        ones surface it on the first failure).
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8337,
                 *, timeout_s: float = 60.0, max_attempts: int = 4,
                 backoff_base_s: float = 0.05, backoff_cap_s: float = 2.0,
                 jitter_fraction: float = 0.25, retry_seed: int = 0,
                 sleep=time.sleep):
        if max_attempts < 1:
            raise ValidationError("max_attempts must be >= 1")
        self.host = host
        self.port = port
        self.timeout_s = timeout_s
        self.max_attempts = max_attempts
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        self.jitter_fraction = jitter_fraction
        self.retry_seed = retry_seed
        self._sleep = sleep

    # -- transport -------------------------------------------------------------

    def _backoff_s(self, attempt: int) -> float:
        """Capped exponential backoff with deterministic jitter."""
        base = min(self.backoff_base_s * (2.0 ** (attempt - 1)),
                   self.backoff_cap_s)
        rng = derive_rng(self.retry_seed, "client-backoff", attempt)
        jitter = 1.0 + self.jitter_fraction * (float(rng.uniform()) - 0.5)
        return base * jitter

    def _request(self, method: str, path: str, body: dict | None = None,
                 *, idempotent: bool = True) -> dict:
        """One HTTP exchange, with bounded retries of transient failures.

        Non-idempotent requests are attempted exactly once — a dropped
        connection leaves the outcome unknown, and replaying it could
        apply the effect twice.  4xx/422/504 responses are definitive
        and never retried regardless.
        """
        attempts = self.max_attempts if idempotent else 1
        worker_lost_retry = idempotent  # one dedicated replay, ever
        last_error: Exception | None = None
        attempt = 0
        total = 0
        while True:
            total += 1
            try:
                return self._request_once(method, path, body)
            except WorkerLostError as exc:
                # A fleet shard died holding the request.  The front end
                # has already dropped it from routing, so an immediate
                # replay lands on the re-routed shard — but only once,
                # and only for idempotent requests.
                if worker_lost_retry:
                    worker_lost_retry = False
                    continue
                raise WorkerLostError(str(exc), attempts=total) from exc
            except (ServiceSaturatedError, ServiceUnavailableError) as exc:
                last_error = exc  # 503: the server asked us to back off
            except _TRANSIENT_ERRORS as exc:
                last_error = exc
            attempt += 1
            if attempt >= attempts:
                break
            self._sleep(self._backoff_s(attempt))
        if attempts == 1 and isinstance(last_error, ReproError):
            raise last_error  # no retry budget: surface the typed original
        raise ServiceUnavailableError(
            f"{method} {path} failed after {total} attempt(s): "
            f"{last_error}", attempts=total) from last_error

    def _request_once(self, method: str, path: str,
                      body: dict | None = None) -> dict:
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout_s)
        try:
            payload = json.dumps(body).encode("utf-8") if body is not None \
                else None
            headers = {"Content-Type": "application/json"} if payload else {}
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            decoded = json.loads(response.read().decode("utf-8"))
        finally:
            conn.close()
        if response.status == 200:
            return decoded
        error = decoded.get("error", {}) if isinstance(decoded, dict) else {}
        code = error.get("code", "error")
        message = error.get("message", f"HTTP {response.status}")
        raise _ERROR_TYPES.get(code, ReproError)(message)

    # -- endpoints -------------------------------------------------------------

    def select(self, app: str, *, n: float, a: float, deadline_hours: float,
               budget_dollars: float, top: int = 0,
               quota: int | None = None, seed: int | None = None,
               timeout_s: float | None = None) -> dict:
        """POST /v1/select — the Pareto frontier under (T', C')."""
        body = {"app": app, "n": n, "a": a,
                "deadline_hours": deadline_hours,
                "budget_dollars": budget_dollars, "top": top}
        body.update(self._common(quota, seed, timeout_s))
        return self._request("POST", "/v1/select", body)

    def predict(self, app: str, *, n: float, a: float,
                configuration: "list[int] | tuple[int, ...]",
                quota: int | None = None, seed: int | None = None,
                timeout_s: float | None = None) -> dict:
        """POST /v1/predict — time/cost of one configuration."""
        body = {"app": app, "n": n, "a": a,
                "configuration": list(configuration)}
        body.update(self._common(quota, seed, timeout_s))
        return self._request("POST", "/v1/predict", body)

    def plan(self, app: str, *, deadline_hours: float,
             budget_dollars: float, knob_range: tuple[float, float],
             fix_size: float | None = None,
             fix_accuracy: float | None = None, integral: bool = False,
             quota: int | None = None, seed: int | None = None,
             timeout_s: float | None = None) -> dict:
        """POST /v1/plan — best affordable accuracy or problem size."""
        body = {"app": app, "deadline_hours": deadline_hours,
                "budget_dollars": budget_dollars,
                "range": list(knob_range), "integral": integral}
        if fix_size is not None:
            body["fix_size"] = fix_size
        if fix_accuracy is not None:
            body["fix_accuracy"] = fix_accuracy
        body.update(self._common(quota, seed, timeout_s))
        return self._request("POST", "/v1/plan", body)

    def replan(self, app: str, *, remaining_gi: float,
               residual_deadline_hours: float,
               residual_budget_dollars: float,
               n: float | None = None, accuracy: float | None = None,
               min_accuracy: float | None = None,
               work_done_gi: float = 0.0, efficiency: float = 1.0,
               quota: int | None = None, seed: int | None = None,
               timeout_s: float | None = None) -> dict:
        """POST /v1/replan — re-plan over residual state; degrade if
        ``n`` and the current ``accuracy`` are supplied."""
        body = {"app": app, "remaining_gi": remaining_gi,
                "residual_deadline_hours": residual_deadline_hours,
                "residual_budget_dollars": residual_budget_dollars,
                "work_done_gi": work_done_gi, "efficiency": efficiency}
        if n is not None:
            body["n"] = n
        if accuracy is not None:
            body["accuracy"] = accuracy
        if min_accuracy is not None:
            body["min_accuracy"] = min_accuracy
        body.update(self._common(quota, seed, timeout_s))
        return self._request("POST", "/v1/replan", body)

    def metrics(self) -> dict:
        """GET /metrics — the live metrics snapshot."""
        return self._request("GET", "/metrics")

    def health(self) -> dict:
        """GET /healthz — liveness and warm signatures."""
        return self._request("GET", "/healthz")

    @staticmethod
    def _common(quota, seed, timeout_s) -> dict:
        out = {}
        if quota is not None:
            out["quota"] = quota
        if seed is not None:
            out["seed"] = seed
        if timeout_s is not None:
            out["timeout_s"] = timeout_s
        return out
