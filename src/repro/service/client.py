"""Blocking stdlib client for the planning service.

A thin convenience wrapper over :mod:`http.client` that speaks the
server's JSON schema and raises the same typed exceptions the in-process
service raises — so a caller can swap `PlannerService` for a remote
`PlannerClient` without changing its error handling::

    client = PlannerClient(port=8337)
    response = client.select("galaxy", n=65536, a=8000,
                             deadline_hours=24, budget_dollars=350)
    for point in response["result"]["pareto"]:
        print(point["configuration"], point["cost_dollars"])

Transient failures — refused/dropped connections, socket timeouts, and
503 responses (admission-control saturation or a draining server) — are
retried with capped exponential backoff and deterministic jitter, but
only for idempotent requests (every built-in endpoint is a pure query).
Definitive answers (2xx, 4xx, 504) are never retried.  When the retry
budget runs out the client raises a typed
:class:`~repro.errors.ServiceUnavailableError` recording how many
attempts were made — transport errors are always wrapped, never
re-raised raw.

A fleet's 503 ``worker_lost`` envelope (the owning shard died
mid-request) gets special treatment: one immediate idempotency-gated
replay with no backoff — the dead worker has already left routing, so
the replay lands on the re-routed shard — then a typed
:class:`~repro.errors.WorkerLostError` if the replay fails too.

Three mechanisms keep a retrying client from amplifying a fleet-wide
incident (see :mod:`repro.service.resilience`):

* shed responses (503 ``overloaded`` / 429 ``too_many_requests``)
  carry a ``Retry-After`` hint, and the client honors it — the sleep
  before the next attempt is at least the hint (with the same
  deterministic jitter), never an immediate hammer;
* a **retry budget** caps the ratio of retries to requests, so a broad
  outage degrades to ~10% extra traffic instead of
  ``max_attempts``-fold;
* a **circuit breaker** opens after consecutive fully-failed request
  cycles and fails fast (:class:`~repro.errors.CircuitOpenError`,
  no network I/O) until a half-open probe proves the service back.
"""

from __future__ import annotations

import http.client
import json
import socket
import time

from repro.errors import (
    CircuitOpenError,
    FleetOverloadedError,
    InfeasibleError,
    ReproError,
    ServiceUnavailableError,
    ValidationError,
    WorkerLostError,
)
from repro.service.planner import RequestTimeoutError, ServiceSaturatedError
from repro.service.resilience import CircuitBreaker, RetryBudget
from repro.utils.rng import derive_rng

__all__ = ["PlannerClient"]

_ERROR_TYPES = {
    "saturated": lambda msg: ServiceSaturatedError(
        msg, queue_depth=-1, max_queue_depth=-1),
    "draining": lambda msg: ServiceUnavailableError(msg, attempts=1),
    "deadline_exceeded": lambda msg: RequestTimeoutError(msg, timeout_s=-1.0),
    "infeasible": lambda msg: InfeasibleError(msg),
    "invalid_request": ValidationError,
    "worker_lost": lambda msg: WorkerLostError(msg),
    "overloaded": lambda msg: FleetOverloadedError(msg),
    "too_many_requests": lambda msg: FleetOverloadedError(msg),
}

#: Connection-level failures that are safe to retry for idempotent
#: requests: the server never started (refused), or the socket died in
#: transit.  HTTP errors with definitive status codes are NOT here.
_TRANSIENT_ERRORS = (ConnectionError, socket.timeout, TimeoutError,
                     http.client.HTTPException, OSError)


class PlannerClient:
    """One service endpoint; a fresh connection per call (the server
    closes after each response).

    Parameters
    ----------
    max_attempts:
        Total tries per request (1 = no retries).
    backoff_base_s / backoff_cap_s:
        Exponential backoff schedule between attempts, capped.
    jitter_fraction:
        Deterministic ±jitter/2 spread on each backoff, derived from
        ``retry_seed`` so test runs reproduce their exact sleep pattern.

    Raises
    ------
    ValidationError
        From the constructor when ``max_attempts < 1``; from any
        endpoint when the server rejects the request as invalid (400).
    InfeasibleError
        When the requested plan has no feasible configuration (422).
    ServiceSaturatedError / RequestTimeoutError
        Admission-control rejection (503) after retries run out, or a
        missed per-request deadline (504).
    ServiceUnavailableError
        When the retry budget is exhausted on transient transport
        failures or a draining server.
    WorkerLostError
        When a fleet shard died mid-request and the single re-routed
        replay failed as well (idempotent requests only; non-idempotent
        ones surface it on the first failure).
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8337,
                 *, timeout_s: float = 60.0, max_attempts: int = 4,
                 backoff_base_s: float = 0.05, backoff_cap_s: float = 2.0,
                 jitter_fraction: float = 0.25, retry_seed: int = 0,
                 sleep=time.sleep, breaker_failures: int = 5,
                 breaker_reset_s: float = 5.0,
                 retry_budget_ratio: float = 0.1,
                 retry_budget_initial: float = 10.0,
                 clock=time.monotonic):
        if max_attempts < 1:
            raise ValidationError("max_attempts must be >= 1")
        self.host = host
        self.port = port
        self.timeout_s = timeout_s
        self.max_attempts = max_attempts
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        self.jitter_fraction = jitter_fraction
        self.retry_seed = retry_seed
        self._sleep = sleep
        #: Circuit breaker over whole request cycles (0 disables).
        self.breaker = CircuitBreaker(
            failure_threshold=breaker_failures,
            reset_timeout_s=breaker_reset_s,
            clock=clock) if breaker_failures > 0 else None
        #: Retry budget shared by every request this client makes
        #: (ratio <= 0 disables).
        self.retry_budget = RetryBudget(
            ratio=retry_budget_ratio,
            initial=retry_budget_initial) if retry_budget_ratio > 0 else None

    # -- transport -------------------------------------------------------------

    def _backoff_s(self, attempt: int) -> float:
        """Capped exponential backoff with deterministic jitter."""
        base = min(self.backoff_base_s * (2.0 ** (attempt - 1)),
                   self.backoff_cap_s)
        rng = derive_rng(self.retry_seed, "client-backoff", attempt)
        jitter = 1.0 + self.jitter_fraction * (float(rng.uniform()) - 0.5)
        return base * jitter

    def _retry_delay_s(self, attempt: int, last_error) -> float:
        """Backoff for ``attempt``, honoring a server ``Retry-After``.

        A shed response's hint is a floor, not a replacement: the sleep
        is the larger of the exponential backoff and the (jittered)
        hint, so clients neither hammer a shedding fleet immediately
        nor synchronize their retries on the exact hint boundary.
        """
        base = self._backoff_s(attempt)
        hinted = getattr(last_error, "retry_after_s", None)
        if not hinted:
            return base
        rng = derive_rng(self.retry_seed, "client-retry-after", attempt)
        jitter = 1.0 + self.jitter_fraction * (float(rng.uniform()) - 0.5)
        return max(base, float(hinted) * jitter)

    def _request(self, method: str, path: str, body: dict | None = None,
                 *, idempotent: bool = True) -> dict:
        """One HTTP exchange, with bounded retries of transient failures.

        Non-idempotent requests are attempted exactly once — a dropped
        connection leaves the outcome unknown, and replaying it could
        apply the effect twice.  4xx/422/504 responses are definitive
        and never retried regardless.

        The circuit breaker scores whole request cycles, not attempts:
        only a cycle that exhausts its retries counts as a failure, and
        any response from the service — including definitive errors —
        counts as a success.  The retry budget is spent per retry (the
        ``worker_lost`` replay excepted: the fleet has already rerouted,
        so the replay is the cheap path, not amplification).
        """
        if self.breaker is not None and not self.breaker.allow():
            raise CircuitOpenError(
                f"{method} {path} not sent: circuit open for another "
                f"{self.breaker.remaining_s():.3f}s",
                retry_after_s=self.breaker.remaining_s())
        if self.retry_budget is not None:
            self.retry_budget.deposit()
        attempts = self.max_attempts if idempotent else 1
        worker_lost_retry = idempotent  # one dedicated replay, ever
        last_error: Exception | None = None
        budget_dry = False
        attempt = 0
        total = 0
        while True:
            total += 1
            try:
                result = self._request_once(method, path, body)
            except WorkerLostError as exc:
                # A fleet shard died holding the request.  The front end
                # has already dropped it from routing, so an immediate
                # replay lands on the re-routed shard — but only once,
                # and only for idempotent requests.
                if worker_lost_retry:
                    worker_lost_retry = False
                    continue
                self._record_failure()
                raise WorkerLostError(str(exc), attempts=total) from exc
            except (ServiceSaturatedError, ServiceUnavailableError) as exc:
                last_error = exc  # 503: the server asked us to back off
            except _TRANSIENT_ERRORS as exc:
                last_error = exc
            except ReproError:
                # Definitive typed answer (400/422/504): the service is
                # alive and responding, so the breaker resets.
                self._record_success()
                raise
            else:
                self._record_success()
                return result
            attempt += 1
            if attempt >= attempts:
                break
            if self.retry_budget is not None \
                    and not self.retry_budget.spend():
                budget_dry = True
                break
            self._sleep(self._retry_delay_s(attempt, last_error))
        self._record_failure()
        if attempts == 1 and isinstance(last_error, ReproError):
            raise last_error  # no retry budget: surface the typed original
        suffix = " (retry budget exhausted)" if budget_dry else ""
        raise ServiceUnavailableError(
            f"{method} {path} failed after {total} attempt(s){suffix}: "
            f"{last_error}", attempts=total) from last_error

    def _record_success(self) -> None:
        if self.breaker is not None:
            self.breaker.record_success()

    def _record_failure(self) -> None:
        if self.breaker is not None:
            self.breaker.record_failure()

    def _request_once(self, method: str, path: str,
                      body: dict | None = None) -> dict:
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout_s)
        try:
            payload = json.dumps(body).encode("utf-8") if body is not None \
                else None
            headers = {"Content-Type": "application/json"} if payload else {}
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            retry_after = response.getheader("Retry-After")
            decoded = json.loads(response.read().decode("utf-8"))
        finally:
            conn.close()
        if response.status == 200:
            return decoded
        error = decoded.get("error", {}) if isinstance(decoded, dict) else {}
        code = error.get("code", "error")
        message = error.get("message", f"HTTP {response.status}")
        exc = _ERROR_TYPES.get(code, ReproError)(message)
        if retry_after is not None:
            try:
                exc.retry_after_s = float(retry_after)
            except (TypeError, ValueError):
                pass  # unparsable hint; exponential backoff still applies
        raise exc

    # -- endpoints -------------------------------------------------------------

    def select(self, app: str, *, n: float, a: float, deadline_hours: float,
               budget_dollars: float, top: int = 0,
               quota: int | None = None, seed: int | None = None,
               timeout_s: float | None = None) -> dict:
        """POST /v1/select — the Pareto frontier under (T', C')."""
        body = {"app": app, "n": n, "a": a,
                "deadline_hours": deadline_hours,
                "budget_dollars": budget_dollars, "top": top}
        body.update(self._common(quota, seed, timeout_s))
        return self._request("POST", "/v1/select", body)

    def predict(self, app: str, *, n: float, a: float,
                configuration: "list[int] | tuple[int, ...]",
                quota: int | None = None, seed: int | None = None,
                timeout_s: float | None = None) -> dict:
        """POST /v1/predict — time/cost of one configuration."""
        body = {"app": app, "n": n, "a": a,
                "configuration": list(configuration)}
        body.update(self._common(quota, seed, timeout_s))
        return self._request("POST", "/v1/predict", body)

    def plan(self, app: str, *, deadline_hours: float,
             budget_dollars: float, knob_range: tuple[float, float],
             fix_size: float | None = None,
             fix_accuracy: float | None = None, integral: bool = False,
             quota: int | None = None, seed: int | None = None,
             timeout_s: float | None = None) -> dict:
        """POST /v1/plan — best affordable accuracy or problem size."""
        body = {"app": app, "deadline_hours": deadline_hours,
                "budget_dollars": budget_dollars,
                "range": list(knob_range), "integral": integral}
        if fix_size is not None:
            body["fix_size"] = fix_size
        if fix_accuracy is not None:
            body["fix_accuracy"] = fix_accuracy
        body.update(self._common(quota, seed, timeout_s))
        return self._request("POST", "/v1/plan", body)

    def replan(self, app: str, *, remaining_gi: float,
               residual_deadline_hours: float,
               residual_budget_dollars: float,
               n: float | None = None, accuracy: float | None = None,
               min_accuracy: float | None = None,
               work_done_gi: float = 0.0, efficiency: float = 1.0,
               quota: int | None = None, seed: int | None = None,
               timeout_s: float | None = None) -> dict:
        """POST /v1/replan — re-plan over residual state; degrade if
        ``n`` and the current ``accuracy`` are supplied."""
        body = {"app": app, "remaining_gi": remaining_gi,
                "residual_deadline_hours": residual_deadline_hours,
                "residual_budget_dollars": residual_budget_dollars,
                "work_done_gi": work_done_gi, "efficiency": efficiency}
        if n is not None:
            body["n"] = n
        if accuracy is not None:
            body["accuracy"] = accuracy
        if min_accuracy is not None:
            body["min_accuracy"] = min_accuracy
        body.update(self._common(quota, seed, timeout_s))
        return self._request("POST", "/v1/replan", body)

    def metrics(self) -> dict:
        """GET /metrics — the live metrics snapshot."""
        return self._request("GET", "/metrics")

    def health(self) -> dict:
        """GET /healthz — liveness and warm signatures."""
        return self._request("GET", "/healthz")

    @staticmethod
    def _common(quota, seed, timeout_s) -> dict:
        out = {}
        if quota is not None:
            out["quota"] = quota
        if seed is not None:
            out["seed"] = seed
        if timeout_s is not None:
            out["timeout_s"] = timeout_s
        return out
