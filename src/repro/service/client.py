"""Blocking stdlib client for the planning service.

A thin convenience wrapper over :mod:`http.client` that speaks the
server's JSON schema and raises the same typed exceptions the in-process
service raises — so a caller can swap `PlannerService` for a remote
`PlannerClient` without changing its error handling::

    client = PlannerClient(port=8337)
    response = client.select("galaxy", n=65536, a=8000,
                             deadline_hours=24, budget_dollars=350)
    for point in response["result"]["pareto"]:
        print(point["configuration"], point["cost_dollars"])
"""

from __future__ import annotations

import http.client
import json

from repro.errors import InfeasibleError, ReproError, ValidationError
from repro.service.planner import RequestTimeoutError, ServiceSaturatedError

__all__ = ["PlannerClient"]

_ERROR_TYPES = {
    "saturated": lambda msg: ServiceSaturatedError(
        msg, queue_depth=-1, max_queue_depth=-1),
    "deadline_exceeded": lambda msg: RequestTimeoutError(msg, timeout_s=-1.0),
    "infeasible": lambda msg: InfeasibleError(msg),
    "invalid_request": ValidationError,
}


class PlannerClient:
    """One service endpoint; a fresh connection per call (the server
    closes after each response)."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8337,
                 *, timeout_s: float = 60.0):
        self.host = host
        self.port = port
        self.timeout_s = timeout_s

    # -- transport -------------------------------------------------------------

    def _request(self, method: str, path: str,
                 body: dict | None = None) -> dict:
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout_s)
        try:
            payload = json.dumps(body).encode("utf-8") if body is not None \
                else None
            headers = {"Content-Type": "application/json"} if payload else {}
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            decoded = json.loads(response.read().decode("utf-8"))
        finally:
            conn.close()
        if response.status == 200:
            return decoded
        error = decoded.get("error", {}) if isinstance(decoded, dict) else {}
        code = error.get("code", "error")
        message = error.get("message", f"HTTP {response.status}")
        raise _ERROR_TYPES.get(code, ReproError)(message)

    # -- endpoints -------------------------------------------------------------

    def select(self, app: str, *, n: float, a: float, deadline_hours: float,
               budget_dollars: float, top: int = 0,
               quota: int | None = None, seed: int | None = None,
               timeout_s: float | None = None) -> dict:
        """POST /v1/select — the Pareto frontier under (T', C')."""
        body = {"app": app, "n": n, "a": a,
                "deadline_hours": deadline_hours,
                "budget_dollars": budget_dollars, "top": top}
        body.update(self._common(quota, seed, timeout_s))
        return self._request("POST", "/v1/select", body)

    def predict(self, app: str, *, n: float, a: float,
                configuration: "list[int] | tuple[int, ...]",
                quota: int | None = None, seed: int | None = None,
                timeout_s: float | None = None) -> dict:
        """POST /v1/predict — time/cost of one configuration."""
        body = {"app": app, "n": n, "a": a,
                "configuration": list(configuration)}
        body.update(self._common(quota, seed, timeout_s))
        return self._request("POST", "/v1/predict", body)

    def plan(self, app: str, *, deadline_hours: float,
             budget_dollars: float, knob_range: tuple[float, float],
             fix_size: float | None = None,
             fix_accuracy: float | None = None, integral: bool = False,
             quota: int | None = None, seed: int | None = None,
             timeout_s: float | None = None) -> dict:
        """POST /v1/plan — best affordable accuracy or problem size."""
        body = {"app": app, "deadline_hours": deadline_hours,
                "budget_dollars": budget_dollars,
                "range": list(knob_range), "integral": integral}
        if fix_size is not None:
            body["fix_size"] = fix_size
        if fix_accuracy is not None:
            body["fix_accuracy"] = fix_accuracy
        body.update(self._common(quota, seed, timeout_s))
        return self._request("POST", "/v1/plan", body)

    def metrics(self) -> dict:
        """GET /metrics — the live metrics snapshot."""
        return self._request("GET", "/metrics")

    def health(self) -> dict:
        """GET /healthz — liveness and warm signatures."""
        return self._request("GET", "/healthz")

    @staticmethod
    def _common(quota, seed, timeout_s) -> dict:
        out = {}
        if quota is not None:
            out["quota"] = quota
        if seed is not None:
            out["seed"] = seed
        if timeout_s is not None:
            out["timeout_s"] = timeout_s
        return out
