"""Client-side resilience primitives: circuit breaker + retry budget.

Retries are load amplification: when the fleet is sick, every client
retrying on its own schedule multiplies the traffic exactly when
capacity is lowest.  These two primitives bound that amplification from
the client side, complementing the fleet's server-side shedding:

* :class:`CircuitBreaker` — after ``failure_threshold`` *consecutive*
  fully-failed request cycles the breaker opens and requests fail
  locally (:class:`~repro.errors.CircuitOpenError`, no network I/O)
  for ``reset_timeout_s``.  It then moves to **half-open** and admits
  exactly one probe request; success closes the breaker, failure
  re-opens it for another timeout.  States: ``closed`` → ``open`` →
  ``half-open`` → (``closed`` | ``open``).

* :class:`RetryBudget` — a token bucket that caps the fleet-wide ratio
  of retries to requests.  Every first attempt deposits ``ratio``
  tokens; every retry spends one.  Under healthy traffic the bucket
  stays full and retries are free; in a broad outage the bucket drains
  and clients degrade to ~``ratio`` retries per request instead of
  ``max_attempts``-fold amplification.  ``initial`` pre-funds the
  bucket so low-volume clients still get their early retries.

Both are deliberately clock-injectable and lock-guarded: the planner
client is used from thread pools in the benchmarks.
"""

from __future__ import annotations

import threading
import time

from repro.errors import ValidationError

__all__ = ["CircuitBreaker", "RetryBudget"]


class CircuitBreaker:
    """Consecutive-failure circuit breaker with half-open probing."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(self, *, failure_threshold: int = 5,
                 reset_timeout_s: float = 5.0, clock=time.monotonic):
        if failure_threshold < 1:
            raise ValidationError("failure_threshold must be >= 1")
        if reset_timeout_s <= 0:
            raise ValidationError("reset_timeout_s must be positive")
        self.failure_threshold = failure_threshold
        self.reset_timeout_s = reset_timeout_s
        self._clock = clock
        self._lock = threading.Lock()
        self._failures = 0
        self._state = self.CLOSED
        self._opened_at = 0.0

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def allow(self) -> bool:
        """May a request go out now?

        In the open state this flips to half-open once the reset
        timeout has elapsed, admitting exactly one probe; further
        callers are refused until that probe reports back.
        """
        with self._lock:
            if self._state == self.CLOSED:
                return True
            if self._state == self.OPEN:
                if self._clock() - self._opened_at < self.reset_timeout_s:
                    return False
                self._state = self.HALF_OPEN
                return True
            return False  # half-open: the probe slot is taken

    def remaining_s(self) -> float:
        """Seconds until the next half-open probe slot (0 if allowed)."""
        with self._lock:
            if self._state != self.OPEN:
                return 0.0
            elapsed = self._clock() - self._opened_at
            return max(0.0, self.reset_timeout_s - elapsed)

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            self._state = self.CLOSED

    def record_failure(self) -> None:
        """One fully-failed request cycle (all attempts exhausted)."""
        with self._lock:
            if self._state == self.HALF_OPEN:
                # The probe failed; back to open for a fresh timeout.
                self._state = self.OPEN
                self._opened_at = self._clock()
                return
            self._failures += 1
            if self._failures >= self.failure_threshold:
                self._state = self.OPEN
                self._opened_at = self._clock()


class RetryBudget:
    """Token bucket bounding the retry:request ratio."""

    def __init__(self, *, ratio: float = 0.1, initial: float = 10.0,
                 cap: float = 100.0):
        if ratio <= 0:
            raise ValidationError("ratio must be positive")
        if cap <= 0 or initial < 0:
            raise ValidationError("cap must be positive, initial >= 0")
        self.ratio = ratio
        self.cap = cap
        self._lock = threading.Lock()
        self._tokens = min(float(initial), float(cap))

    @property
    def tokens(self) -> float:
        with self._lock:
            return self._tokens

    def deposit(self) -> None:
        """Fund the bucket: called once per first attempt."""
        with self._lock:
            self._tokens = min(self.cap, self._tokens + self.ratio)

    def spend(self) -> bool:
        """Take one token for a retry; False means the budget is dry."""
        with self._lock:
            if self._tokens < 1.0:
                return False
            self._tokens -= 1.0
            return True
