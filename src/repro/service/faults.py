"""Induced service slowness — the serving-side analog of `engine.faults`.

The execution engine injects node crashes to study how a cluster degrades;
the planning service needs the equivalent for *itself*: what happens to
admission control, queue depth and deadlines when computation is suddenly
slow (a cold cache, a noisy neighbor, a stop-the-world hiccup)?

:class:`ServiceFaults` adds deterministic delays at the two points where
real slowness appears — state warming and per-batch compute — so tests
and benchmarks can saturate the service on purpose and assert the typed
rejection / deadline behavior without relying on machine speed.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.errors import ValidationError

__all__ = ["ServiceFaults"]


@dataclass(frozen=True)
class ServiceFaults:
    """Deterministic compute-path delays, injected inside worker threads.

    ``warm_delay_s`` stretches the one-time per-signature state build;
    ``compute_delay_s`` stretches every batch evaluation.  Zero (the
    default) disables the fault entirely.
    """

    warm_delay_s: float = 0.0
    compute_delay_s: float = 0.0

    def __post_init__(self) -> None:
        if self.warm_delay_s < 0 or self.compute_delay_s < 0:
            raise ValidationError("fault delays must be non-negative")

    def on_warm(self) -> None:
        """Apply the warm-path delay (runs in an executor thread)."""
        if self.warm_delay_s > 0:
            time.sleep(self.warm_delay_s)

    def on_compute(self) -> None:
        """Apply the compute-path delay (runs in an executor thread)."""
        if self.compute_delay_s > 0:
            time.sleep(self.compute_delay_s)
