"""Process-parallel configuration-space evaluation.

The full-space sweep (``ConfigurationSpace.evaluate``) is embarrassingly
parallel: every linear index decodes and reduces independently, and the
two outputs are disjoint writes.  This module partitions the index range
``1..S`` across a :class:`~concurrent.futures.ProcessPoolExecutor` whose
workers write decoded-chunk reductions directly into
``multiprocessing.shared_memory``-backed float64 arrays, so no result
pickling or concatenation happens on the way back.

Bit-identity with the serial path is guaranteed by construction: worker
spans are aligned to the *same* chunk grid the serial loop uses, so every
chunk is decoded into an identical ``(k, M)`` int16 matrix and reduced by
an identical matmul — each output row is the same floating-point
reduction regardless of which process computed it.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from multiprocessing import shared_memory
from typing import TYPE_CHECKING

import numpy as np

from repro.core.capacity import capacity_per_type
from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.configspace import ConfigurationSpace

__all__ = [
    "AUTO_WORKERS_THRESHOLD",
    "available_workers",
    "resolve_workers",
    "partition_chunks",
    "evaluate_parallel",
]

#: Below this space size ``workers="auto"`` stays serial — process pool
#: startup (~10 ms/worker) dwarfs the sweep itself for small catalogs.
AUTO_WORKERS_THRESHOLD = 1 << 19

#: Contiguous spans handed out per worker; mild oversubscription keeps the
#: pool busy if one worker is descheduled.
_TASKS_PER_WORKER = 4


def available_workers() -> int:
    """Number of CPUs this process may actually run on."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def resolve_workers(workers: int | str | None, size: int,
                    *, threshold: int = AUTO_WORKERS_THRESHOLD) -> int:
    """Normalize the ``workers`` knob to an explicit worker count.

    ``None`` (and 1) mean serial; ``"auto"`` picks serial below
    ``threshold`` configurations and one worker per available CPU above
    it; an explicit integer is used as given.
    """
    if workers is None:
        return 1
    if isinstance(workers, str):
        if workers != "auto":
            raise ConfigurationError(
                f"workers must be an integer, None or 'auto', got {workers!r}"
            )
        if size < threshold:
            return 1
        return min(available_workers(), max(1, size // threshold))
    count = int(workers)
    if count < 1:
        raise ConfigurationError("workers must be >= 1")
    return count


def partition_chunks(total: int, chunk_size: int,
                     n_parts: int) -> list[tuple[int, int]]:
    """Split linear indices ``1..total`` into contiguous ``(start, stop)`` spans.

    Span boundaries always fall on the serial chunk grid (``1 + k·chunk``)
    so a worker sweeping its span chunk-by-chunk reproduces exactly the
    matrices the serial loop would build — the bit-identity invariant.
    """
    if total < 1:
        raise ConfigurationError("cannot partition an empty space")
    if chunk_size < 1:
        raise ConfigurationError("chunk size must be >= 1")
    n_chunks = -(-total // chunk_size)
    n_parts = max(1, min(n_parts, n_chunks))
    base, extra = divmod(n_chunks, n_parts)
    spans: list[tuple[int, int]] = []
    chunk = 0
    for part in range(n_parts):
        take = base + (1 if part < extra else 0)
        start = 1 + chunk * chunk_size
        chunk += take
        stop = min(1 + chunk * chunk_size, total + 1)
        spans.append((start, stop))
    return spans


def _attach(name: str) -> shared_memory.SharedMemory:
    """Attach to a parent-owned segment without adopting its lifetime.

    Python < 3.13 registers every attach with the resource tracker, which
    would either unlink the segment when a worker exits (spawn) or cancel
    the parent's registration on explicit unregister (fork, where the
    tracker's name set is shared).  Suppressing registration during the
    attach keeps the parent the sole owner under both start methods.
    """
    try:
        from multiprocessing import resource_tracker

        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
    except Exception:  # pragma: no cover - tracker API is CPython-internal
        return shared_memory.SharedMemory(name=name)
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


def _evaluate_span(args: tuple) -> int:
    """Worker: decode one span chunk-by-chunk into the shared outputs."""
    (cap_name, cost_name, total, start, stop, chunk_size,
     strides, radices, capacities, prices) = args
    cap_shm = _attach(cap_name)
    cost_shm = _attach(cost_name)
    try:
        capacity = np.ndarray((total,), dtype=np.float64, buffer=cap_shm.buf)
        unit_cost = np.ndarray((total,), dtype=np.float64, buffer=cost_shm.buf)
        for c_start in range(start, stop, chunk_size):
            c_stop = min(c_start + chunk_size, stop)
            idx = np.arange(c_start, c_stop, dtype=np.int64)
            matrix = ((idx[:, None] // strides[None, :])
                      % radices[None, :]).astype(np.int16)
            capacity[c_start - 1:c_stop - 1] = matrix @ capacities
            unit_cost[c_start - 1:c_stop - 1] = matrix @ prices
        del capacity, unit_cost  # release buffer exports before close()
        return stop - start
    finally:
        cap_shm.close()
        cost_shm.close()


def evaluate_parallel(space: "ConfigurationSpace",
                      capacities_gips: np.ndarray,
                      *,
                      workers: int,
                      chunk_size: int) -> tuple[np.ndarray, np.ndarray]:
    """Evaluate the whole space with ``workers`` processes.

    Returns ``(capacity_gips, unit_cost_per_hour)`` — bit-identical to
    the serial sweep.  Peak extra memory is the two shared S-length
    float64 segments plus one decoded chunk per live worker.
    """
    if workers < 2:
        raise ConfigurationError("parallel evaluation needs >= 2 workers")
    w = np.ascontiguousarray(capacity_per_type(capacities_gips))
    prices = space.catalog.prices
    total = space.size
    spans = partition_chunks(total, chunk_size, workers * _TASKS_PER_WORKER)

    cap_shm = shared_memory.SharedMemory(create=True, size=total * 8)
    cost_shm = shared_memory.SharedMemory(create=True, size=total * 8)
    try:
        tasks = [
            (cap_shm.name, cost_shm.name, total, start, stop, chunk_size,
             space.strides, space.radices, w, prices)
            for start, stop in spans
        ]
        with ProcessPoolExecutor(max_workers=workers) as pool:
            covered = sum(pool.map(_evaluate_span, tasks))
        if covered != total:  # pragma: no cover - partition() guarantees this
            raise ConfigurationError(
                f"workers covered {covered} of {total} configurations"
            )
        view = np.ndarray((total,), dtype=np.float64, buffer=cap_shm.buf)
        capacity = view.copy()
        del view
        view = np.ndarray((total,), dtype=np.float64, buffer=cost_shm.buf)
        unit_cost = view.copy()
        del view
    finally:
        cap_shm.close()
        cap_shm.unlink()
        cost_shm.close()
        cost_shm.unlink()
    return capacity, unit_cost
