"""Fleet health: the resilience timeline and the heartbeat prober.

Two pieces the rest of the fleet's failure handling hangs off:

* :class:`FleetTimeline` — an append-only audit trail of resilience
  events (injected faults, ring ejections, re-admissions, respawns).
  Every event carries a monotone sequence number and, when it stems
  from a scheduled chaos fault, the fault's *logical* offset.  The
  :meth:`FleetTimeline.normalized` view groups event kinds per worker
  and drops wall-clock timestamps, so two same-seed chaos runs can be
  compared for byte-identical resilience behavior without fighting
  scheduler jitter — the determinism contract
  ``benchmarks/bench_fleetchaos.py`` and the CI fleet-chaos job assert.

* :class:`HealthMonitor` — the front door's answer to the failure mode
  a crash monitor cannot see: a worker that is *alive but not
  answering* (SIGSTOP, deadlock, runaway GC).  It pings every worker
  on a fixed cadence with a hard probe deadline; ``max_missed``
  consecutive missed probes eject the worker from the consistent-hash
  ring (its keys fall back exactly where permanent removal would put
  them — see :meth:`repro.fleet.hashing.HashRing.route`), and the
  first answered probe after an ejection re-admits it.  Ejection and
  re-admission are pure routing-set operations: no process is killed,
  so a worker that was merely stalled rejoins with its warm state
  intact.

Probe metrics land in the process-global registry
(``fleet_probe_latency_s``, ``fleet_ejections_total``,
``fleet_readmissions_total``), which the front end already merges into
the fleet-wide ``/metrics`` view.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass

from repro.fleet.rpc import WorkerGone
from repro.obs.metrics import global_registry

__all__ = ["FleetTimeline", "HealthMonitor", "TimelineEvent"]

#: Events retained by a timeline; older entries are dropped from the
#: front.  High enough that a bench run never wraps, low enough that a
#: long-lived fleet's timeline cannot grow without bound.
_MAX_EVENTS = 8192


@dataclass(frozen=True, slots=True)
class TimelineEvent:
    """One resilience event on the fleet's audit trail."""

    seq: int
    kind: str
    worker: str
    #: Logical offset of a scheduled chaos fault (None for reactive
    #: events like ejections, whose wall timing is not deterministic).
    at_s: "float | None"
    wall_s: float
    detail: str = ""

    def to_dict(self) -> dict:
        return {"seq": self.seq, "kind": self.kind, "worker": self.worker,
                "at_s": self.at_s, "wall_s": self.wall_s,
                "detail": self.detail}


class FleetTimeline:
    """Append-only, bounded record of fleet resilience events."""

    def __init__(self) -> None:
        self._events: list[TimelineEvent] = []
        self._seq = 0

    def record(self, kind: str, worker: str, *, at_s: "float | None" = None,
               detail: str = "") -> TimelineEvent:
        event = TimelineEvent(seq=self._seq, kind=kind, worker=worker,
                              at_s=at_s, wall_s=time.monotonic(),
                              detail=detail)
        self._seq += 1
        self._events.append(event)
        if len(self._events) > _MAX_EVENTS:
            del self._events[: len(self._events) - _MAX_EVENTS]
        return event

    def events(self) -> tuple[TimelineEvent, ...]:
        return tuple(self._events)

    def to_dicts(self) -> list[dict]:
        return [event.to_dict() for event in self._events]

    def normalized(self) -> "dict[str, tuple[str, ...]]":
        """Per-worker event-kind sequences, wall clock stripped.

        Events for *one* worker are causally ordered (a fault precedes
        the ejection it causes, which precedes the re-admission), so
        the per-worker sequence is deterministic for a seeded chaos
        plan; the interleaving *across* workers depends on scheduler
        timing and is deliberately not part of this view.
        """
        out: dict[str, list[str]] = {}
        for event in self._events:
            out.setdefault(event.worker, []).append(event.kind)
        return {worker: tuple(kinds) for worker, kinds in out.items()}


class HealthMonitor:
    """Deadline-based heartbeat probing with ring ejection/re-admission.

    ``fleet`` must provide the supervisor surface: ``worker_ids``,
    ``link(wid)``, ``down``, ``restarting(wid)``, ``eject(wid,
    reason=...)`` and ``readmit(wid, reason=...)``.
    """

    def __init__(self, fleet, *, interval_s: float = 0.5,
                 timeout_s: float = 2.0, max_missed: int = 2):
        self.fleet = fleet
        self.interval_s = interval_s
        self.timeout_s = timeout_s
        self.max_missed = max_missed
        self._missed: dict[str, int] = {}
        registry = global_registry()
        self._probe_latency = registry.histogram("fleet_probe_latency_s")
        self._probes_missed = registry.counter("fleet_probes_missed_total")

    async def run(self) -> None:
        """Probe forever (cancelled by the supervisor on shutdown)."""
        while True:
            await asyncio.sleep(self.interval_s)
            await self.probe_all()

    async def probe_all(self) -> None:
        """One probe round, all workers concurrently.

        Concurrency matters: probes carry a deadline, and probing a
        hung worker sequentially would delay every other worker's
        health verdict by ``timeout_s`` per stall.
        """
        await asyncio.gather(
            *(self._probe(wid) for wid in self.fleet.worker_ids),
            return_exceptions=True)

    async def _probe(self, worker_id: str) -> None:
        if self.fleet.restarting(worker_id):
            return  # the restart owns this worker's routing state
        try:
            link = self.fleet.link(worker_id)
        except KeyError:
            return  # mid-spawn; the next round sees the link
        started = time.monotonic()
        try:
            status, _ = await link.call({"kind": "__ping__"},
                                        timeout_s=self.timeout_s)
            answered = status == 200
        except WorkerGone:
            answered = False
        if answered:
            self._probe_latency.observe(time.monotonic() - started)
            self._missed[worker_id] = 0
            if worker_id in self.fleet.down:
                self.fleet.readmit(worker_id,
                                   reason="health probe answered")
            return
        self._probes_missed.increment()
        missed = self._missed.get(worker_id, 0) + 1
        self._missed[worker_id] = missed
        if missed >= self.max_missed and worker_id not in self.fleet.down:
            self.fleet.eject(
                worker_id,
                reason=f"missed {missed} probes "
                       f"(deadline {self.timeout_s:g}s)")
