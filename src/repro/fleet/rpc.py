"""Framed RPC between the fleet front end and its shard workers.

One frame is a compact JSON header line followed by a raw payload of
``len`` bytes over a persistent Unix-domain stream::

    front end -> worker   {"id":7,"kind":"select","len":132}\n<132 bytes>
    worker -> front end   {"id":7,"status":200,"len":6367}\n<6367 bytes>

The payload is the request/response JSON **as raw bytes**: the front
end forwards the client's HTTP body without re-serializing it, and
streams the worker's response bytes straight into the HTTP response
without a decode/encode round trip — on the 6 KB select responses that
saves two full JSON passes per request, which is most of what makes the
fleet hot path cheaper than connection-per-request serving.

The link stays open for the worker's whole life, so a routed request
costs one write and one read — no per-request connection setup, no HTTP
re-parse on the hop.  Requests are dispatched concurrently on the worker
and responses may come back out of order; the ``id`` correlates them.

:class:`WorkerLink` is the front-end side: it multiplexes concurrent
calls over the stream and fails every pending call with
:class:`WorkerGone` the moment the stream drops (worker crash or
restart), which is the signal the router uses to re-route the shard.
"""

from __future__ import annotations

import asyncio
import json
import time

__all__ = ["WorkerGone", "WorkerLink", "encode_frame",
           "encode_reply_frame", "encode_request_frame"]


class WorkerGone(Exception):
    """The worker's stream dropped with this request un-answered."""

    def __init__(self, worker_id: str, detail: str = "stream closed"):
        super().__init__(f"worker {worker_id} lost: {detail}")
        self.worker_id = worker_id


def encode_frame(header: dict, payload: bytes = b"") -> bytes:
    """Header line + raw payload.  ``len`` is derived, never passed."""
    header = {**header, "len": len(payload)}
    line = json.dumps(header, separators=(",", ":")).encode("utf-8")
    return line + b"\n" + payload


def encode_request_frame(frame_id: int, kind: str, payload: bytes) -> bytes:
    """Hot-path :func:`encode_frame` for request headers.

    ``kind`` comes from the route table / control vocabulary (plain
    ASCII identifiers), so the header can be built with an f-string
    instead of ``json.dumps`` — worth ~25µs on every routed request.
    """
    return (f'{{"id":{frame_id},"kind":"{kind}","len":{len(payload)}}}\n'
            .encode("ascii") + payload)


def encode_reply_frame(frame_id: int, status: int, payload: bytes) -> bytes:
    """Hot-path :func:`encode_frame` for integer-keyed reply headers."""
    return (f'{{"id":{frame_id},"status":{status},"len":{len(payload)}}}\n'
            .encode("ascii") + payload)


class WorkerLink:
    """Persistent multiplexed connection to one shard worker."""

    def __init__(self, worker_id: str, socket_path: str):
        self.worker_id = worker_id
        self.socket_path = socket_path
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._read_task: asyncio.Task | None = None
        self._pending: dict[int, asyncio.Future] = {}
        self._next_id = 0
        self.up = False
        #: Injected network faults (:class:`repro.fleet.chaos.LinkFaults`
        #: or None).  Consulted per call; chaos-only, never set in
        #: normal operation.
        self.faults = None
        # Outbound frames queued within one loop tick coalesce into a
        # single ``send`` syscall — at high concurrency that is one
        # write per batch of routed requests instead of one per request.
        self._out: list[bytes] = []
        self._flush_scheduled = False

    async def connect(self, *, timeout_s: float = 30.0,
                      poll_s: float = 0.05) -> None:
        """Connect (retrying until the socket exists) and start reading."""
        deadline = time.monotonic() + timeout_s
        last_error: Exception | None = None
        while time.monotonic() < deadline:
            try:
                self._reader, self._writer = \
                    await asyncio.open_unix_connection(self.socket_path)
                break
            except (ConnectionError, FileNotFoundError, OSError) as exc:
                last_error = exc
                await asyncio.sleep(poll_s)
        else:
            raise WorkerGone(self.worker_id,
                             f"no socket after {timeout_s:g}s "
                             f"({last_error})") from last_error
        self.up = True
        self._read_task = asyncio.ensure_future(self._read_loop())
        # A ping proves the worker is actually serving, not just bound.
        await self.call({"kind": "__ping__"}, timeout_s=timeout_s)

    async def _read_loop(self) -> None:
        assert self._reader is not None
        detail = "stream closed"
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                header = json.loads(line)
                length = header.get("len", 0)
                payload = await self._reader.readexactly(length) if length \
                    else b""
                future = self._pending.pop(header["id"], None)
                if future is not None and not future.done():
                    future.set_result((header["status"], payload))
        except (ConnectionError, OSError, ValueError, KeyError,
                asyncio.IncompleteReadError) as exc:
            detail = f"read failed: {exc}"
        self.up = False
        error = WorkerGone(self.worker_id, detail)
        for future in self._pending.values():
            if not future.done():
                future.set_exception(error)
        self._pending.clear()

    async def call_raw(self, kind: str, payload: bytes = b"",
                       *, timeout_s: float | None = None
                       ) -> tuple[int, bytes]:
        """Send one frame; await ``(status, raw response bytes)``.

        The hot path: ``payload`` is the client's JSON body verbatim and
        the returned bytes go into the HTTP response verbatim — no JSON
        decode/encode on the front-end side of the hop.
        """
        if not self.up or self._writer is None:
            raise WorkerGone(self.worker_id, "link is down")
        faults = self.faults
        if faults is not None:
            if faults.delay_s > 0:
                await asyncio.sleep(faults.delay_s)
            if faults.drop():
                # The frame is never written.  With a deadline the
                # caller sees exactly what a lost frame looks like (no
                # reply until the timeout); without one, failing fast
                # beats awaiting a reply that can never arrive.
                if timeout_s is None:
                    raise WorkerGone(self.worker_id,
                                     "frame dropped (injected fault)")
                await asyncio.sleep(timeout_s)
                raise WorkerGone(self.worker_id,
                                 f"no reply in {timeout_s:g}s")
        self._next_id += 1
        frame_id = self._next_id
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._pending[frame_id] = future
        self._out.append(encode_request_frame(frame_id, kind, payload))
        if not self._flush_scheduled:
            self._flush_scheduled = True
            loop.call_soon(self._flush)
        try:
            if timeout_s is None:
                return await future
            return await asyncio.wait_for(future, timeout_s)
        except asyncio.TimeoutError:
            self._pending.pop(frame_id, None)
            raise WorkerGone(self.worker_id,
                             f"no reply in {timeout_s:g}s") from None

    def _flush(self) -> None:
        """Write every frame queued this tick in one transport write.

        A write failure just marks the link down; the read loop notices
        the broken stream immediately and fails all pending calls with
        :class:`WorkerGone`, which is the normal crash path.
        """
        self._flush_scheduled = False
        data = b"".join(self._out)
        self._out.clear()
        if not data or self._writer is None:
            return
        try:
            self._writer.write(data)
        except (ConnectionError, OSError):
            self.up = False

    async def call(self, request: dict,
                   *, timeout_s: float | None = None) -> tuple[int, dict]:
        """Structured convenience: dict in, ``(status, dict)`` out."""
        request = dict(request)
        kind = request.pop("kind", "")
        payload = json.dumps(request,
                             separators=(",", ":")).encode("utf-8") \
            if request else b""
        status, raw = await self.call_raw(kind, payload,
                                          timeout_s=timeout_s)
        return status, json.loads(raw) if raw else {}

    async def close(self) -> None:
        """Tear the link down; pending calls fail with :class:`WorkerGone`."""
        self.up = False
        self._out.clear()
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._writer = None
        if self._read_task is not None:
            self._read_task.cancel()
            try:
                await self._read_task
            except (asyncio.CancelledError, Exception):
                pass
            self._read_task = None
