"""Fleet lifecycle: spawn shard workers, keep them alive, restart them.

:class:`PlannerFleet` owns the moving parts the front end routes over:

* one **subprocess per worker** running ``python -m repro.fleet.worker``
  (each with its own :class:`~repro.service.planner.PlannerService` and
  Unix-domain socket in a private temp directory);
* one persistent :class:`~repro.fleet.rpc.WorkerLink` per worker;
* the consistent-hash :class:`~repro.fleet.hashing.HashRing` mapping
  warm keys onto workers;
* a **monitor task** that respawns any worker whose process dies, and
  re-admits it to routing once its socket answers a ping.

Restarts are graceful: :meth:`PlannerFleet.restart_worker` first drops
the worker from routing (the front end's fallback path covers requests
in flight), sends SIGTERM so the worker drains, waits for exit, spawns
the replacement, and re-admits it once connected.  Warm state for that
shard is rebuilt lazily on the next routed request — a millisecond mmap
of the shared content-addressed snapshot when a cache dir is configured.

All workers share one ``cache_dir``, so the expensive sweep/frontier
build happens once fleet-wide and every other worker maps the same
snapshot file read-only.
"""

from __future__ import annotations

import asyncio
import os
import shutil
import signal
import subprocess
import sys
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

import repro
from repro.errors import ValidationError
from repro.fleet.frontend import FleetFrontend
from repro.fleet.hashing import DEFAULT_VNODES, HashRing, warm_key
from repro.fleet.health import FleetTimeline, HealthMonitor
from repro.fleet.rpc import WorkerGone, WorkerLink
from repro.obs.metrics import global_registry

__all__ = ["FleetConfig", "PlannerFleet", "run_fleet"]


@dataclass(frozen=True)
class FleetConfig:
    """Everything needed to stand up a planner fleet."""

    #: Number of shard worker processes.
    workers: int = 2
    #: Front-end bind address.
    host: str = "127.0.0.1"
    port: int = 8337
    #: Defaults forwarded to every worker's ``ServiceConfig`` (and used
    #: by the router to complete partial warm keys).
    quota: int = 5
    seed: int = 0
    #: LRU cap on warm signatures per worker (None → unbounded).
    max_warm: "int | None" = None
    max_queue: int = 64
    batch_window_ms: float = 2.0
    max_batch: int = 32
    timeout_s: float = 30.0
    #: Space-sweep parallelism inside each shard.  Defaults to 1: the
    #: fleet's processes are the parallelism.
    sweep_workers: "int | str" = 1
    #: Shared snapshot cache directory (None → library default,
    #: False → disabled).  Sharing it across workers makes warm-state
    #: rebuild an mmap, not a sweep.
    cache_dir: "str | bool | None" = None
    #: Apps warmed on their owning shard before the fleet reports ready.
    warm_apps: tuple = field(default_factory=tuple)
    vnodes: int = DEFAULT_VNODES
    #: Seconds a worker gets to drain on SIGTERM.
    drain_timeout_s: float = 10.0
    #: Seconds to wait for a spawned worker's socket + ping.
    connect_timeout_s: float = 30.0
    #: Monitor poll interval for crashed-worker respawn.
    monitor_interval_s: float = 0.5
    #: Front-end deadline per routed worker call (None → unbounded).
    #: The backstop for hung workers: a stalled call turns into
    #: :class:`WorkerGone` and the request reroutes.
    call_timeout_s: "float | None" = None
    #: Per-worker in-flight cap; excess requests are shed with a typed
    #: 503 + ``Retry-After`` (None → unbounded).
    max_inflight: "int | None" = None
    #: Fleet-wide in-flight cap; excess requests get a typed 429
    #: (None → unbounded).
    max_total_inflight: "int | None" = None
    #: ``Retry-After`` hint (seconds) on shed responses.
    shed_retry_after_s: float = 1.0
    #: Heartbeat probing (hung-worker ejection + re-admission).
    health_probes: bool = True
    probe_interval_s: float = 0.5
    probe_timeout_s: float = 2.0
    #: Consecutive missed probes before a worker is ejected.
    probe_max_missed: int = 2

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValidationError("fleet needs at least one worker")
        if self.connect_timeout_s <= 0:
            raise ValidationError("connect_timeout_s must be positive")
        if self.call_timeout_s is not None and self.call_timeout_s <= 0:
            raise ValidationError("call_timeout_s must be positive")
        if self.max_inflight is not None and self.max_inflight < 1:
            raise ValidationError("max_inflight must be >= 1")
        if self.max_total_inflight is not None \
                and self.max_total_inflight < 1:
            raise ValidationError("max_total_inflight must be >= 1")
        if self.shed_retry_after_s <= 0:
            raise ValidationError("shed_retry_after_s must be positive")
        if self.probe_interval_s <= 0 or self.probe_timeout_s <= 0:
            raise ValidationError("probe intervals must be positive")
        if self.probe_max_missed < 1:
            raise ValidationError("probe_max_missed must be >= 1")


class WorkerHandle:
    """One shard worker subprocess and its socket path."""

    def __init__(self, worker_id: str, socket_path: str):
        self.worker_id = worker_id
        self.socket_path = socket_path
        self.process: "subprocess.Popen | None" = None

    @property
    def pid(self) -> "int | None":
        return self.process.pid if self.process is not None else None

    def alive(self) -> bool:
        return self.process is not None and self.process.poll() is None

    def spawn(self, config: FleetConfig) -> None:
        # A -c shim instead of ``-m repro.fleet.worker``: runpy would
        # warn about re-executing a module the package already imported.
        shim = ("import sys; from repro.fleet.worker import main; "
                "sys.exit(main(sys.argv[1:]))")
        argv = [sys.executable, "-c", shim,
                "--socket", self.socket_path,
                "--worker-id", self.worker_id,
                "--quota", str(config.quota),
                "--seed", str(config.seed),
                "--max-queue", str(config.max_queue),
                "--batch-window-ms", str(config.batch_window_ms),
                "--max-batch", str(config.max_batch),
                "--timeout", str(config.timeout_s),
                "--sweep-workers", str(config.sweep_workers),
                "--drain-timeout", str(config.drain_timeout_s)]
        if config.max_warm is not None:
            argv += ["--max-warm", str(config.max_warm)]
        if config.cache_dir is False:
            argv += ["--no-cache"]
        elif config.cache_dir is not None:
            argv += ["--cache-dir", str(config.cache_dir)]
        env = dict(os.environ)
        src_root = str(Path(repro.__file__).parents[1])
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = src_root + (os.pathsep + existing
                                        if existing else "")
        if os.path.exists(self.socket_path):
            os.unlink(self.socket_path)  # stale socket from a dead worker
        self.process = subprocess.Popen(argv, env=env)

    def terminate(self, *, timeout_s: float) -> None:
        """SIGTERM (graceful drain), escalating to SIGKILL on timeout."""
        if self.process is None:
            return
        if self.process.poll() is None:
            self.process.send_signal(signal.SIGTERM)
            try:
                self.process.wait(timeout=timeout_s)
            except subprocess.TimeoutExpired:
                self.process.kill()
                self.process.wait()
        self.process = None


class PlannerFleet:
    """The worker processes, their links, and the routing ring."""

    def __init__(self, config: "FleetConfig | None" = None):
        self.config = config or FleetConfig()
        self.ring = HashRing(vnodes=self.config.vnodes)
        self._handles: dict[str, WorkerHandle] = {}
        self._links: dict[str, WorkerLink] = {}
        self._down: set[str] = set()
        self._restart_locks: dict[str, asyncio.Lock] = {}
        self._socket_dir: "str | None" = None
        self._monitor_task: "asyncio.Task | None" = None
        self._health_task: "asyncio.Task | None" = None
        self._stopping = False
        #: Resilience audit trail (faults, ejections, re-admissions).
        self.timeline = FleetTimeline()
        #: Apps warmed via :meth:`warm` — the front end's readiness
        #: contract checks ``expected_warm`` against this.
        self.warmed_apps: set = set()
        registry = global_registry()
        self._ejections = registry.counter("fleet_ejections_total")
        self._readmissions = registry.counter("fleet_readmissions_total")
        # key → owner memo for the healthy-ring fast path.  Ring
        # membership is fixed after start(), so entries stay valid for
        # the fleet's whole life; the memo is simply bypassed while any
        # worker is down (exclusions change the answer).
        self._route_memo: dict[str, str] = {}

    # -- routing surface (used by FleetFrontend) -------------------------------

    @property
    def worker_ids(self) -> tuple:
        return tuple(sorted(self._handles))

    @property
    def default_quota(self) -> int:
        return self.config.quota

    @property
    def default_seed(self) -> int:
        return self.config.seed

    def route(self, key: str, *, exclude=frozenset()) -> str:
        """The live owner of ``key`` (down workers are skipped)."""
        if not exclude and not self._down:
            worker = self._route_memo.get(key)
            if worker is None:
                worker = self.ring.route(key)
                if len(self._route_memo) >= 4096:
                    self._route_memo.clear()
                self._route_memo[key] = worker
            return worker
        return self.ring.route(key, exclude=self._down | set(exclude))

    def link(self, worker_id: str) -> WorkerLink:
        return self._links[worker_id]

    @property
    def down(self) -> frozenset:
        """Workers currently ejected from routing."""
        return frozenset(self._down)

    def worker_pid(self, worker_id: str) -> "int | None":
        handle = self._handles.get(worker_id)
        return handle.pid if handle is not None else None

    def restarting(self, worker_id: str) -> bool:
        """True while an explicit restart owns this worker's state."""
        lock = self._restart_locks.get(worker_id)
        return lock is not None and lock.locked()

    def eject(self, worker_id: str, *, reason: str = "") -> None:
        """Drop a worker from routing (its keys fall to ring neighbors).

        Idempotent: only the closed→open transition is recorded, so
        concurrent detectors (health prober, crash monitor, in-flight
        ``WorkerGone``) produce one timeline event per incident.
        """
        if worker_id not in self._handles or worker_id in self._down:
            return
        self._down.add(worker_id)
        self._ejections.increment()
        self.timeline.record("ejected", worker_id, detail=reason)

    def readmit(self, worker_id: str, *, reason: str = "") -> None:
        """Return an ejected worker to routing (state transitions only)."""
        if worker_id not in self._down:
            return
        self._down.discard(worker_id)
        self._readmissions.increment()
        self.timeline.record("readmitted", worker_id, detail=reason)

    def note_lost(self, worker_id: str) -> None:
        """Drop a worker from routing; probes/monitor re-admit it."""
        self.eject(worker_id, reason="lost mid-request")

    def describe(self) -> dict:
        """Topology for ``GET /fleet``."""
        return {
            "workers": [
                {"id": wid,
                 "pid": self._handles[wid].pid,
                 "socket": self._handles[wid].socket_path,
                 "alive": self._handles[wid].alive(),
                 "routable": wid not in self._down and
                             self._links[wid].up}
                for wid in self.worker_ids
            ],
            "vnodes": self.config.vnodes,
            "quota": self.config.quota,
            "seed": self.config.seed,
        }

    # -- lifecycle -------------------------------------------------------------

    async def start(self) -> None:
        """Spawn every worker, connect its link, join it to the ring."""
        self._socket_dir = tempfile.mkdtemp(prefix="celia-fleet-")
        try:
            for index in range(self.config.workers):
                wid = f"w{index}"
                handle = WorkerHandle(
                    wid, os.path.join(self._socket_dir, f"{wid}.sock"))
                handle.spawn(self.config)
                self._handles[wid] = handle
                self._restart_locks[wid] = asyncio.Lock()
            for wid, handle in self._handles.items():
                link = WorkerLink(wid, handle.socket_path)
                await link.connect(timeout_s=self.config.connect_timeout_s)
                self._links[wid] = link
                self.ring.add_worker(wid)
        except BaseException:
            await self.stop()
            raise
        self._monitor_task = asyncio.ensure_future(self._monitor())
        if self.config.health_probes:
            monitor = HealthMonitor(
                self, interval_s=self.config.probe_interval_s,
                timeout_s=self.config.probe_timeout_s,
                max_missed=self.config.probe_max_missed)
            self._health_task = asyncio.ensure_future(monitor.run())

    async def stop(self) -> None:
        """Tear the whole fleet down (drain, close links, rm sockets)."""
        self._stopping = True
        for attr in ("_monitor_task", "_health_task"):
            task = getattr(self, attr)
            if task is not None:
                task.cancel()
                try:
                    await task
                except (asyncio.CancelledError, Exception):
                    pass
                setattr(self, attr, None)
        for link in self._links.values():
            await link.close()
        self._links.clear()
        for handle in self._handles.values():
            handle.terminate(timeout_s=self.config.drain_timeout_s)
        self._handles.clear()
        self._down.clear()
        if self._socket_dir is not None:
            shutil.rmtree(self._socket_dir, ignore_errors=True)
            self._socket_dir = None

    async def warm(self, app: str, *, quota: "int | None" = None,
                   seed: "int | None" = None) -> str:
        """Warm one signature's state on its owning shard; returns owner."""
        q = self.config.quota if quota is None else int(quota)
        s = self.config.seed if seed is None else int(seed)
        worker = self.route(warm_key(app, q, s))
        status, body = await self._links[worker].call(
            {"kind": "__warm__", "app": app, "quota": q, "seed": s},
            timeout_s=self.config.connect_timeout_s * 4)
        if status != 200:
            raise ValidationError(
                f"warm({app!r}) failed on {worker}: {body}")
        self.warmed_apps.add(app)
        return worker

    async def restart_worker(self, worker_id: str) -> None:
        """Gracefully restart one worker and wait for it to rejoin.

        The worker leaves routing first (its keys fall back to the ring's
        next owner), drains on SIGTERM, and is re-admitted once the
        replacement process answers a ping.  Warm state rebuilds lazily
        from the shared snapshot cache on the next routed request.
        """
        if worker_id not in self._handles:
            raise ValidationError(f"no worker {worker_id!r} in the fleet")
        async with self._restart_locks[worker_id]:
            self.eject(worker_id, reason="restart requested")
            handle = self._handles[worker_id]
            link = self._links.get(worker_id)
            if link is not None:
                await link.close()
            # terminate() blocks on the drain; run it off-loop so the
            # front end keeps serving rerouted requests meanwhile.
            await asyncio.get_running_loop().run_in_executor(
                None, lambda: handle.terminate(
                    timeout_s=self.config.drain_timeout_s))
            handle.spawn(self.config)
            link = WorkerLink(worker_id, handle.socket_path)
            await link.connect(timeout_s=self.config.connect_timeout_s)
            self._links[worker_id] = link
            self.readmit(worker_id, reason="respawned and answering")

    async def _monitor(self) -> None:
        """Respawn workers whose process died (crash, OOM-kill...)."""
        while not self._stopping:
            await asyncio.sleep(self.config.monitor_interval_s)
            for wid, handle in list(self._handles.items()):
                if self._restart_locks[wid].locked():
                    continue  # an explicit restart is already in charge
                link = self._links.get(wid)
                if handle.alive() and (link is None or link.up):
                    continue
                self.eject(wid, reason="process died"
                           if not handle.alive() else "link down")
                try:
                    await self.restart_worker(wid)
                except (WorkerGone, ValidationError, OSError):
                    continue  # still down; retried on the next tick


def run_fleet(config: FleetConfig, *, ready_callback=None,
              drain_timeout_s: float = 10.0, chaos_plan=None) -> None:
    """Blocking entry point used by ``celia fleet serve``.

    Stands the fleet up, warms ``config.warm_apps`` on their owning
    shards, then serves until SIGTERM/SIGINT, which drains the front end
    (stop accepting, finish in-flight, force-close hung connections)
    before the workers are terminated.

    ``chaos_plan`` (a :class:`repro.fleet.chaos.FleetChaosPlan`) starts
    a fault injector against the fleet's own workers once it is ready —
    ``celia fleet serve --chaos S`` for resilience rehearsal.
    """

    async def _run() -> None:
        fleet = PlannerFleet(config)
        await fleet.start()
        frontend = FleetFrontend(
            fleet, host=config.host, port=config.port,
            call_timeout_s=config.call_timeout_s,
            max_inflight=config.max_inflight,
            max_total_inflight=config.max_total_inflight,
            shed_retry_after_s=config.shed_retry_after_s,
            expected_warm=tuple(config.warm_apps))
        chaos_task: "asyncio.Task | None" = None
        try:
            await frontend.start()
            shutdown = asyncio.Event()
            loop = asyncio.get_running_loop()
            installed: list = []
            for sig in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(sig, shutdown.set)
                    installed.append(sig)
                except (NotImplementedError, RuntimeError):
                    pass  # platform without signal support
            for app in config.warm_apps:
                await fleet.warm(app)
            if chaos_plan is not None:
                from repro.fleet.chaos import ChaosInjector
                injector = ChaosInjector(fleet, chaos_plan)
                chaos_task = asyncio.create_task(injector.run())
            if ready_callback is not None:
                ready_callback(frontend)
            serve_task = asyncio.create_task(frontend.serve_forever())
            try:
                await shutdown.wait()
                completed = await frontend.drain(timeout_s=drain_timeout_s)
                if not completed:
                    print(f"fleet drain timeout ({drain_timeout_s:g}s) "
                          f"expired; closing hung connections",
                          file=sys.stderr, flush=True)
            finally:
                for task in (serve_task, chaos_task):
                    if task is None:
                        continue
                    task.cancel()
                    try:
                        await task
                    except (asyncio.CancelledError, Exception):
                        pass
                for sig in installed:
                    loop.remove_signal_handler(sig)
        finally:
            await fleet.stop()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:  # pragma: no cover - interactive interrupt
        pass
