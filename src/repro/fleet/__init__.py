"""``repro.fleet`` — the sharded planner fleet.

A multi-process deployment of :class:`~repro.service.planner.
PlannerService`: an asyncio keep-alive HTTP front end
(:mod:`~repro.fleet.frontend`) consistent-hashes each request's warm key
``(app, quota, seed)`` (:mod:`~repro.fleet.hashing`) onto one of N shard
worker processes (:mod:`~repro.fleet.worker`), reached over persistent
framed Unix-domain links (:mod:`~repro.fleet.rpc`) and supervised —
spawn, monitor, graceful restart — by :mod:`~repro.fleet.supervisor`.

Sharding keeps each tenant signature's warm state on exactly one
worker, bounded by an LRU (``max_warm``) and rebuilt lazily from the
shared content-addressed snapshot cache, so fleet RAM scales with the
*active* tenant set, not the historical one.  Start one with::

    celia fleet serve --workers 2 --warm small --port 8337

See ``docs/ops.md`` for the operator runbook.
"""

from repro.fleet.chaos import (
    FLEET_FAULT_KINDS,
    ChaosInjector,
    FleetChaosPlan,
    FleetFault,
    LinkFaults,
    fleet_chaos_names,
    fleet_chaos_plan,
)
from repro.fleet.frontend import FleetFrontend
from repro.fleet.hashing import DEFAULT_VNODES, HashRing, ring_hash, warm_key
from repro.fleet.health import FleetTimeline, HealthMonitor, TimelineEvent
from repro.fleet.rpc import WorkerGone, WorkerLink, encode_frame
from repro.fleet.supervisor import FleetConfig, PlannerFleet, run_fleet
from repro.fleet.worker import ShardWorker

__all__ = [
    "DEFAULT_VNODES",
    "FLEET_FAULT_KINDS",
    "ChaosInjector",
    "FleetChaosPlan",
    "FleetConfig",
    "FleetFault",
    "FleetFrontend",
    "FleetTimeline",
    "HashRing",
    "HealthMonitor",
    "LinkFaults",
    "PlannerFleet",
    "ShardWorker",
    "TimelineEvent",
    "WorkerGone",
    "WorkerLink",
    "encode_frame",
    "fleet_chaos_names",
    "fleet_chaos_plan",
    "ring_hash",
    "run_fleet",
    "warm_key",
]
