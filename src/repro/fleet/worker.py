"""One fleet shard: a :class:`PlannerService` behind a JSONL socket.

Each worker process owns the warm state for the warm-key shard the
router assigns it, and answers framed requests (see
:mod:`repro.fleet.rpc`) over a Unix-domain socket.  Planning requests
flow through the exact same
:func:`repro.service.server.dispatch_request` path the single-process
HTTP server uses, so a select answered by a shard is byte-identical to
one answered by ``celia serve``.

Beyond the planning kinds the worker answers control frames:

* ``__ping__``    — liveness (the router's readiness probe);
* ``__health__``  — worker id, pid and warm signatures;
* ``__metrics__`` — the worker's service registry merged with its
  process-global one, for the fleet-wide ``/metrics`` merge;
* ``__warm__``    — build (or snapshot-load) one signature's state.

Repeated planning requests ride a second-level memo: once the service
answers a request from its result cache the worker remembers the
*serialized* response bytes (LRU, same capacity as the result cache)
and replays the frame without re-dispatching or re-encoding — with the
shard router pinning each warm key to one worker, a shard's repeat
traffic never pays the JSON encode twice.

Warm state is bounded: ``--max-warm`` forwards to
``ServiceConfig.max_warm_states``, so an unbounded tenant population
evicts least-recently-used shard state instead of exhausting RAM, and a
shared ``--cache-dir`` makes the rebuild a millisecond mmap of the
content-addressed index snapshot — pages shared with every other worker
that mapped the same file.

Run as ``python -m repro.fleet.worker --socket PATH --worker-id w0 ...``
(normally by :class:`repro.fleet.supervisor.PlannerFleet`, not by hand).
SIGTERM drains: in-flight frames finish, then the process exits.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import signal
import sys
from collections import OrderedDict

from repro.fleet.rpc import encode_frame, encode_reply_frame
from repro.obs.metrics import global_registry, merge_snapshots
from repro.service.planner import PlannerService, ServiceConfig
from repro.service.server import dispatch_request

__all__ = ["ShardWorker", "build_service", "main"]


class _ReplyStream:
    """Coalesces reply frames written within one event-loop tick.

    Concurrent frames on a connection resolve independently; queuing
    their replies and flushing once per tick turns N ``send`` syscalls
    into one.  Worst-case buffering is bounded by the in-flight window
    (the front end's admission control), so no drain is needed here.
    """

    def __init__(self, writer: asyncio.StreamWriter):
        self._writer = writer
        self._out: list[bytes] = []
        self._scheduled = False

    def send(self, data: bytes) -> None:
        self._out.append(data)
        if not self._scheduled:
            self._scheduled = True
            asyncio.get_running_loop().call_soon(self._flush)

    def _flush(self) -> None:
        self._scheduled = False
        data = b"".join(self._out)
        self._out.clear()
        if not data:
            return
        try:
            self._writer.write(data)
        except (ConnectionError, OSError, RuntimeError):
            pass  # link died mid-reply; the router re-routes


class ShardWorker:
    """Serves one :class:`PlannerService` over a framed JSONL socket."""

    def __init__(self, service: PlannerService, *, worker_id: str,
                 socket_path: str):
        self.service = service
        self.worker_id = worker_id
        self.socket_path = socket_path
        self._server: asyncio.AbstractServer | None = None
        self._tasks: set[asyncio.Task] = set()
        # Serialized-response memo for the raw-byte hot path: once the
        # service answers a planning request from its result cache
        # (``"cached": true``) the response bytes are stable for every
        # repeat, so the worker can skip the dispatch *and* the 6 KB
        # ``json.dumps`` and replay the frame verbatim.  Keyed by the
        # request payload bytes and LRU-bounded by the same
        # ``result_cache_size`` as the service cache it shadows.
        self._raw_responses: OrderedDict[tuple[str, bytes], bytes] = \
            OrderedDict()
        self._raw_hits = service.metrics.counter("raw_response_hits")
        self._draining = False
        # Injected per-frame latency (chaos ``slow`` fault); set via the
        # ``__chaos__`` control frame, 0 in normal operation.
        self._slow_s = 0.0

    async def start(self) -> None:
        self._server = await asyncio.start_unix_server(
            self._handle_connection, path=self.socket_path)

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    async def stop(self, *, drain_timeout_s: float = 10.0) -> None:
        """Stop accepting frames, let in-flight ones finish, close."""
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._tasks:
            await asyncio.wait(self._tasks, timeout=drain_timeout_s)

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        replies = _ReplyStream(writer)
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                header = json.loads(line)
                length = header.get("len", 0)
                payload = await reader.readexactly(length) if length else b""
                # Serve raw-memo hits inline: no task spawn, no dispatch,
                # no re-encode — the repeat path is a dict lookup.
                raw = self._raw_lookup(header.get("kind"), payload)
                if raw is not None:
                    replies.send(encode_reply_frame(header["id"], 200, raw))
                    continue
                task = asyncio.ensure_future(
                    self._serve_frame(header, payload, replies))
                self._tasks.add(task)
                task.add_done_callback(self._tasks.discard)
        except (ConnectionError, OSError, ValueError, KeyError,
                asyncio.IncompleteReadError):
            pass  # router went away; the supervisor decides what's next
        except asyncio.CancelledError:
            # Only swallow cancellation during drain (loop teardown on
            # shutdown).  Mid-operation cancellation must propagate, or
            # the caller's cancel silently drops an in-flight reply and
            # leaves the task looking finished.
            if not self._draining:
                raise
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    def _raw_lookup(self, kind, payload: bytes) -> "bytes | None":
        """Serialized-response memo hit for a planning frame, or None."""
        if not kind or kind.startswith("__"):
            return None
        if self._slow_s > 0:
            return None  # an injected-slow shard must not answer fast
        raw = self._raw_responses.get((kind, payload))
        if raw is not None:
            self._raw_responses.move_to_end((kind, payload))
            self._raw_hits.increment()
        return raw

    async def _serve_frame(self, header: dict, payload: bytes,
                           replies: _ReplyStream) -> None:
        kind = header.get("kind")
        try:
            if self._slow_s > 0 and kind and not kind.startswith("__"):
                await asyncio.sleep(self._slow_s)
            request = json.loads(payload) if payload else {}
            if not isinstance(request, dict):
                raise ValueError("request payload must be a JSON object")
            request["kind"] = kind
            status, body = await self._dispatch(request)
        except Exception as exc:  # never kill the worker on one frame
            status, body = 500, {"error": {"code": "internal",
                                           "message": str(exc)}}
        # Default (spaced) separators so the response bytes — which the
        # front end forwards verbatim — match ``celia serve`` exactly.
        raw = json.dumps(body).encode("utf-8")
        if kind and not kind.startswith("__") and status == 200 \
                and body.get("cached"):
            limit = self.service.config.result_cache_size
            if limit > 0:
                self._raw_responses[(kind, payload)] = raw
                while len(self._raw_responses) > limit:
                    self._raw_responses.popitem(last=False)
        frame_id = header.get("id")
        if isinstance(frame_id, int):
            replies.send(encode_reply_frame(frame_id, status, raw))
        else:  # pragma: no cover - malformed header, defensive
            replies.send(encode_frame({"id": frame_id, "status": status},
                                      raw))

    async def _dispatch(self, request: dict) -> tuple[int, dict]:
        kind = request.get("kind")
        if kind == "__ping__":
            return 200, {"ok": True, "worker": self.worker_id}
        if kind == "__health__":
            return 200, {
                "worker": self.worker_id,
                "warm_signatures": [
                    {"app": s.app, "quota": s.quota, "seed": s.seed}
                    for s in self.service.warm_signatures],
            }
        if kind == "__chaos__":
            self._slow_s = max(0.0, float(request.get("slow_s", 0.0)))
            return 200, {"worker": self.worker_id, "slow_s": self._slow_s}
        if kind == "__metrics__":
            return 200, merge_snapshots(global_registry().snapshot(),
                                        self.service.metrics.snapshot())
        if kind == "__warm__":
            signature = await self.service.warm(
                request["app"], quota=request.get("quota"),
                seed=request.get("seed"))
            return 200, {"worker": self.worker_id, "app": signature.app,
                         "quota": signature.quota, "seed": signature.seed}
        return await dispatch_request(self.service, request)


def build_service(args: argparse.Namespace) -> PlannerService:
    config = ServiceConfig(
        max_queue_depth=args.max_queue,
        batch_window_s=args.batch_window_ms / 1000.0,
        max_batch=args.max_batch,
        default_timeout_s=args.timeout,
        default_quota=args.quota,
        default_seed=args.seed,
        max_warm_states=args.max_warm,
        workers=args.sweep_workers,
        cache_dir=False if args.no_cache else args.cache_dir,
    )
    return PlannerService(config=config)


def _parse_sweep_workers(raw: str) -> "int | str":
    if raw == "auto":
        return "auto"
    try:
        return int(raw)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"--sweep-workers must be an integer or 'auto', got {raw!r}"
        ) from None


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.fleet.worker",
        description="One planner-fleet shard worker (spawned by "
                    "`celia fleet serve`).")
    parser.add_argument("--socket", required=True,
                        help="Unix-domain socket path to serve on")
    parser.add_argument("--worker-id", default="w0")
    parser.add_argument("--quota", type=int, default=5)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--max-warm", type=int, default=None,
                        help="LRU cap on warm signatures (default unbounded)")
    parser.add_argument("--max-queue", type=int, default=64)
    parser.add_argument("--batch-window-ms", type=float, default=2.0)
    parser.add_argument("--max-batch", type=int, default=32)
    parser.add_argument("--timeout", type=float, default=30.0)
    parser.add_argument("--sweep-workers", type=_parse_sweep_workers,
                        default=1,
                        help="space-sweep parallelism inside the shard "
                             "(default 1: the fleet is the parallelism)")
    parser.add_argument("--cache-dir", default=None)
    parser.add_argument("--no-cache", action="store_true")
    parser.add_argument("--drain-timeout", type=float, default=10.0)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    async def _run() -> None:
        worker = ShardWorker(build_service(args), worker_id=args.worker_id,
                             socket_path=args.socket)
        await worker.start()
        shutdown = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, shutdown.set)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
        print(f"fleet worker {args.worker_id} serving on {args.socket}",
              file=sys.stderr, flush=True)
        await shutdown.wait()
        await worker.stop(drain_timeout_s=args.drain_timeout)

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:  # pragma: no cover - interactive interrupt
        pass
    return 0


if __name__ == "__main__":
    sys.exit(main())
