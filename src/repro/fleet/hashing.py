"""Consistent hashing for the planner fleet's shard router.

Warm planner state is keyed by the *warm key* ``(app, quota, seed)`` —
everything a :class:`~repro.service.planner.PlannerService` builds for
one tenant signature.  The fleet partitions those keys across worker
processes with a classic consistent-hash ring:

* every worker owns ``vnodes`` pseudo-random points ("virtual nodes")
  on a 64-bit ring, derived by hashing ``"{worker}#{v}"``;
* a key routes to the owner of the first ring point at or after the
  key's own hash (wrapping around);
* adding a worker steals only the key ranges that now fall to its new
  points, and removing a worker reassigns only the ranges it owned —
  every other key keeps its placement.  That stability is what makes
  rolling restarts cheap: a restart invalidates one shard's warm state,
  not the whole fleet's.

Hashes come from :func:`hashlib.blake2b`, not Python's builtin ``hash``
(which is salted per process): two processes — or two runs a week
apart — always agree on where a key lives, which the CI fleet-smoke
job asserts end to end.
"""

from __future__ import annotations

import bisect
import hashlib
from collections.abc import Iterable

from repro.errors import ValidationError

__all__ = ["DEFAULT_VNODES", "HashRing", "ring_hash", "warm_key"]

#: Virtual nodes per worker.  64 keeps the max/mean load imbalance for a
#: handful of workers under ~30% while the ring stays a few KB.
DEFAULT_VNODES = 64


def ring_hash(value: str) -> int:
    """Deterministic 64-bit position of ``value`` on the ring."""
    digest = hashlib.blake2b(value.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


def warm_key(app: str, quota: int, seed: int) -> str:
    """The canonical routing key for one warm-state signature."""
    return f"{app}|{int(quota)}|{int(seed)}"


class HashRing:
    """A consistent-hash ring mapping string keys to worker ids."""

    def __init__(self, workers: Iterable[str] = (),
                 *, vnodes: int = DEFAULT_VNODES):
        if vnodes < 1:
            raise ValidationError("vnodes must be >= 1")
        self.vnodes = vnodes
        self._workers: set[str] = set()
        self._points: list[int] = []      # sorted ring positions
        self._owners: list[str] = []      # worker id per position
        for worker in workers:
            self.add_worker(worker)

    @property
    def workers(self) -> tuple[str, ...]:
        """Current members, sorted for stable iteration."""
        return tuple(sorted(self._workers))

    def __len__(self) -> int:
        return len(self._workers)

    def __contains__(self, worker: str) -> bool:
        return worker in self._workers

    def add_worker(self, worker: str) -> None:
        """Insert ``worker``'s virtual nodes (idempotent-hostile: once)."""
        if worker in self._workers:
            raise ValidationError(f"worker {worker!r} already on the ring")
        self._workers.add(worker)
        for v in range(self.vnodes):
            point = ring_hash(f"{worker}#{v}")
            at = bisect.bisect_left(self._points, point)
            self._points.insert(at, point)
            self._owners.insert(at, worker)

    def remove_worker(self, worker: str) -> None:
        """Drop ``worker``; only its keys get new owners."""
        if worker not in self._workers:
            raise ValidationError(f"worker {worker!r} not on the ring")
        self._workers.discard(worker)
        keep = [i for i, owner in enumerate(self._owners) if owner != worker]
        self._points = [self._points[i] for i in keep]
        self._owners = [self._owners[i] for i in keep]

    def route(self, key: str, *, exclude: frozenset[str] | set[str] = frozenset()
              ) -> str:
        """The worker owning ``key``, skipping ``exclude`` (down workers).

        Excluding a worker routes its keys exactly where they would land
        if it left the ring — so a fallback during a restart agrees with
        the post-restart placement of a permanently removed member.
        """
        candidates = self._workers - set(exclude)
        if not candidates:
            raise ValidationError("no workers available on the ring")
        if not self._points:  # pragma: no cover - candidates implies points
            raise ValidationError("empty ring")
        start = bisect.bisect_right(self._points, ring_hash(key))
        n = len(self._points)
        for step in range(n):
            owner = self._owners[(start + step) % n]
            if owner in candidates:
                return owner
        raise ValidationError("no workers available on the ring")
