"""Seeded, deterministic fault injection for the planner fleet.

The sweep layer rehearses worker loss with :mod:`repro.parallel.faults`
and the adaptive runtime rehearses cloud failures with
:mod:`repro.runtime.chaos`; this module is the fleet's analog — it
breaks the *serving* path on a schedule so the resilience machinery
(health probing, ring ejection, load shedding, client circuit breaking)
can be validated deterministically instead of by hoping production
finds the bugs first.

A :class:`FleetChaosPlan` is a seeded list of :class:`FleetFault`\\ s,
each naming a worker, a fault kind and a logical offset:

* ``kill``  — SIGKILL the worker process (crash; the supervisor's
  monitor respawns it);
* ``hang``  — SIGSTOP for ``duration_s`` then SIGCONT (alive but
  unresponsive — the case only deadline-based health probing catches);
* ``slow``  — the worker sleeps ``delay_s`` before answering each
  planning frame for ``duration_s`` (degraded shard);
* ``delay`` — every RPC frame to the worker waits ``delay_s`` before
  being written for ``duration_s`` (slow network path);
* ``drop``  — each frame to the worker is dropped with probability
  ``drop_rate`` for ``duration_s``, using a generator derived from the
  plan seed so the loss pattern replays exactly (lossy network path).

:class:`ChaosInjector` replays a plan against a live
:class:`~repro.fleet.supervisor.PlannerFleet`, recording every applied
fault on the fleet's :class:`~repro.fleet.health.FleetTimeline` with
its *scheduled* offset — two same-seed runs therefore produce
identical per-worker timelines, which is the determinism contract
``benchmarks/bench_fleetchaos.py`` asserts.

Named scenarios (``fleet_chaos_names()``) mirror the runtime's chaos
catalog: ``celia fleet serve --chaos kill-hang-slow`` boots a fleet
that starts sabotaging itself the moment it reports ready.
"""

from __future__ import annotations

import asyncio
import os
import signal
import time
from dataclasses import dataclass

from repro.errors import ValidationError
from repro.fleet.rpc import WorkerGone
from repro.utils.rng import derive_rng

__all__ = ["FLEET_FAULT_KINDS", "ChaosInjector", "FleetChaosPlan",
           "FleetFault", "LinkFaults", "fleet_chaos_names",
           "fleet_chaos_plan"]

FLEET_FAULT_KINDS = ("kill", "hang", "slow", "delay", "drop")

#: Kinds that act for a window and need an explicit end step.
_WINDOWED = ("hang", "slow", "delay", "drop")


@dataclass(frozen=True, slots=True)
class FleetFault:
    """One scheduled fault against one fleet worker."""

    worker: str
    kind: str
    #: Logical offset (seconds after the injector starts).
    at_s: float
    #: Window length for hang/slow/delay/drop.
    duration_s: float = 0.0
    #: Injected latency for slow (per answered frame) / delay (per sent
    #: frame).
    delay_s: float = 0.0
    #: Per-frame drop probability for ``drop``.
    drop_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FLEET_FAULT_KINDS:
            raise ValidationError(
                f"unknown fleet fault kind {self.kind!r}; "
                f"expected one of {FLEET_FAULT_KINDS}")
        if self.at_s < 0:
            raise ValidationError("fault at_s must be >= 0")
        if self.kind in _WINDOWED and self.duration_s <= 0:
            raise ValidationError(
                f"{self.kind} fault needs a positive duration_s")
        if self.kind in ("slow", "delay") and self.delay_s <= 0:
            raise ValidationError(
                f"{self.kind} fault needs a positive delay_s")
        if self.kind == "drop" and not 0.0 < self.drop_rate <= 1.0:
            raise ValidationError(
                "drop fault needs drop_rate in (0, 1]")

    def to_dict(self) -> dict:
        return {"worker": self.worker, "kind": self.kind,
                "at_s": self.at_s, "duration_s": self.duration_s,
                "delay_s": self.delay_s, "drop_rate": self.drop_rate}


@dataclass(frozen=True)
class FleetChaosPlan:
    """A seeded, ordered schedule of fleet faults."""

    faults: tuple = ()
    seed: int = 0
    name: str = "custom"

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))

    def __add__(self, other: "FleetChaosPlan") -> "FleetChaosPlan":
        return FleetChaosPlan(faults=self.faults + other.faults,
                              seed=self.seed,
                              name=f"{self.name}+{other.name}")

    @property
    def horizon_s(self) -> float:
        """Offset at which the last fault window has closed."""
        return max((f.at_s + f.duration_s for f in self.faults),
                   default=0.0)

    def steps(self) -> "list[tuple[float, str, FleetFault]]":
        """Expand to ``(offset, action, fault)`` steps, time-ordered.

        Windowed faults contribute a start and an end step; the sort is
        stable on ``(offset, fault position)`` so plans replay in one
        deterministic order even with coinciding offsets.
        """
        out: list[tuple[float, str, FleetFault]] = []
        for fault in self.faults:
            if fault.kind == "kill":
                out.append((fault.at_s, "kill", fault))
                continue
            out.append((fault.at_s, f"{fault.kind}-start", fault))
            out.append((fault.at_s + fault.duration_s,
                        f"{fault.kind}-end", fault))
        out.sort(key=lambda step: step[0])
        return out

    def to_dict(self) -> dict:
        return {"name": self.name, "seed": self.seed,
                "faults": [fault.to_dict() for fault in self.faults]}


def _w(index: int, workers: int) -> str:
    return f"w{index % workers}"


def _plan_worker_kill(workers: int, seed: int) -> FleetChaosPlan:
    """One worker SIGKILLed early; the monitor must respawn it."""
    return FleetChaosPlan(name="worker-kill", seed=seed, faults=(
        FleetFault(_w(1, workers), "kill", 1.0),))


def _plan_worker_hang(workers: int, seed: int) -> FleetChaosPlan:
    """One worker stalls (SIGSTOP) for 2s, then resumes."""
    return FleetChaosPlan(name="worker-hang", seed=seed, faults=(
        FleetFault(_w(1, workers), "hang", 1.0, duration_s=2.0),))


def _plan_slow_shard(workers: int, seed: int) -> FleetChaosPlan:
    """One shard answers 50ms late for 3s (degraded, not down)."""
    return FleetChaosPlan(name="slow-shard", seed=seed, faults=(
        FleetFault(_w(0, workers), "slow", 1.0, duration_s=3.0,
                   delay_s=0.05),))


def _plan_frame_delay(workers: int, seed: int) -> FleetChaosPlan:
    """Frames to one worker wait 20ms on the wire for 2s."""
    return FleetChaosPlan(name="frame-delay", seed=seed, faults=(
        FleetFault(_w(1, workers), "delay", 1.0, duration_s=2.0,
                   delay_s=0.02),))


def _plan_frame_loss(workers: int, seed: int) -> FleetChaosPlan:
    """30% of frames to one worker vanish for 2s (seeded pattern)."""
    return FleetChaosPlan(name="frame-loss", seed=seed, faults=(
        FleetFault(_w(1, workers), "drop", 1.0, duration_s=2.0,
                   drop_rate=0.3),))


def _plan_kill_hang_slow(workers: int, seed: int) -> FleetChaosPlan:
    """The bench chain: a crash, then a hang, then a slow shard."""
    return FleetChaosPlan(name="kill-hang-slow", seed=seed, faults=(
        FleetFault(_w(1, workers), "kill", 1.0),
        FleetFault(_w(2, workers), "hang", 3.5, duration_s=2.0),
        FleetFault(_w(0, workers), "slow", 6.0, duration_s=1.5,
                   delay_s=0.05),))


_SCENARIOS = {
    "worker-kill": _plan_worker_kill,
    "worker-hang": _plan_worker_hang,
    "slow-shard": _plan_slow_shard,
    "frame-delay": _plan_frame_delay,
    "frame-loss": _plan_frame_loss,
    "kill-hang-slow": _plan_kill_hang_slow,
}


def fleet_chaos_names() -> tuple:
    """Catalog of named fleet chaos scenarios."""
    return tuple(sorted(_SCENARIOS))


def fleet_chaos_plan(name: str, *, workers: int = 2,
                     seed: int = 0) -> FleetChaosPlan:
    """Build the named scenario for a fleet of ``workers`` workers."""
    builder = _SCENARIOS.get(name)
    if builder is None:
        raise ValidationError(
            f"unknown chaos scenario {name!r}; "
            f"known: {', '.join(fleet_chaos_names())}")
    if workers < 1:
        raise ValidationError("chaos plan needs at least one worker")
    return builder(workers, seed)


class LinkFaults:
    """Network-shaped faults applied by :class:`WorkerLink.call_raw`.

    ``delay_s`` stalls every outbound frame; ``drop_rate`` makes each
    frame vanish (never written) with that probability, drawn from a
    generator derived from ``(seed, "link-faults", worker_id)`` — the
    drop pattern is a property of the plan, not of wall-clock timing.
    """

    def __init__(self, *, delay_s: float = 0.0, drop_rate: float = 0.0,
                 seed: int = 0, worker_id: str = ""):
        self.delay_s = delay_s
        self.drop_rate = drop_rate
        self._rng = derive_rng(seed, "link-faults", worker_id)

    def drop(self) -> bool:
        """Deterministically decide this frame's fate."""
        if self.drop_rate <= 0.0:
            return False
        return bool(float(self._rng.uniform()) < self.drop_rate)


class ChaosInjector:
    """Replays a :class:`FleetChaosPlan` against a live fleet.

    Every applied fault is recorded on ``fleet.timeline`` with its
    *scheduled* offset (``at_s``), so the timeline's per-worker view is
    identical across same-seed runs regardless of scheduler jitter.
    """

    def __init__(self, fleet, plan: FleetChaosPlan):
        self.fleet = fleet
        self.plan = plan
        #: pids captured at SIGSTOP time, so the matching SIGCONT goes
        #: to the process that was stopped even if the monitor has
        #: respawned the worker id meanwhile.
        self._stopped: dict[str, int] = {}

    async def run(self) -> None:
        """Apply every step of the plan at its scheduled offset."""
        started = time.monotonic()
        for offset, action, fault in self.plan.steps():
            delay = started + offset - time.monotonic()
            if delay > 0:
                await asyncio.sleep(delay)
            try:
                await self._apply(action, fault)
            except (ProcessLookupError, KeyError, OSError,
                    WorkerGone) as exc:
                # The target vanished between scheduling and firing
                # (e.g. killed by an earlier fault); record the miss so
                # the timeline still tells the whole story.
                self.fleet.timeline.record(
                    f"fault-{action}-missed", fault.worker,
                    at_s=fault.at_s, detail=str(exc))

    async def _apply(self, action: str, fault: FleetFault) -> None:
        worker = fault.worker
        timeline = self.fleet.timeline
        if action == "kill":
            timeline.record("fault-kill", worker, at_s=fault.at_s)
            os.kill(self._pid(worker), signal.SIGKILL)
        elif action == "hang-start":
            pid = self._pid(worker)
            timeline.record("fault-hang", worker, at_s=fault.at_s,
                            detail=f"SIGSTOP for {fault.duration_s:g}s")
            self._stopped[worker] = pid
            os.kill(pid, signal.SIGSTOP)
        elif action == "hang-end":
            pid = self._stopped.pop(worker, None)
            timeline.record("fault-hang-end", worker,
                            at_s=fault.at_s + fault.duration_s)
            if pid is not None:
                os.kill(pid, signal.SIGCONT)
        elif action == "slow-start":
            timeline.record("fault-slow", worker, at_s=fault.at_s,
                            detail=f"+{fault.delay_s:g}s per frame")
            await self._set_slow(worker, fault.delay_s)
        elif action == "slow-end":
            timeline.record("fault-slow-end", worker,
                            at_s=fault.at_s + fault.duration_s)
            await self._set_slow(worker, 0.0)
        elif action == "delay-start":
            timeline.record("fault-delay", worker, at_s=fault.at_s,
                            detail=f"+{fault.delay_s:g}s per frame")
            self.fleet.link(worker).faults = LinkFaults(
                delay_s=fault.delay_s, seed=self.plan.seed,
                worker_id=worker)
        elif action == "drop-start":
            timeline.record("fault-drop", worker, at_s=fault.at_s,
                            detail=f"p={fault.drop_rate:g}")
            self.fleet.link(worker).faults = LinkFaults(
                drop_rate=fault.drop_rate, seed=self.plan.seed,
                worker_id=worker)
        elif action in ("delay-end", "drop-end"):
            timeline.record(f"fault-{action.split('-')[0]}-end", worker,
                            at_s=fault.at_s + fault.duration_s)
            self.fleet.link(worker).faults = None
        else:  # pragma: no cover - steps() only emits the above
            raise ValidationError(f"unknown chaos action {action!r}")

    def _pid(self, worker: str) -> int:
        pid = self.fleet.worker_pid(worker)
        if pid is None:
            raise ProcessLookupError(f"worker {worker} has no process")
        return pid

    async def _set_slow(self, worker: str, slow_s: float) -> None:
        await self.fleet.link(worker).call(
            {"kind": "__chaos__", "slow_s": slow_s}, timeout_s=5.0)
