"""Asyncio HTTP front end and shard router for the planner fleet.

This replaces the single-process server's connection-per-request hot
path: connections are **keep-alive** (HTTP/1.1 pipelining of sequential
requests over one socket), and each planning request costs one framed
write/read on a persistent Unix-domain link to the owning shard worker
(:mod:`repro.fleet.rpc`) instead of a fresh connection and HTTP parse.

Routing is deterministic: the request's warm key ``(app, quota, seed)``
hashes onto the consistent ring (:mod:`repro.fleet.hashing`), so every
request for one tenant signature lands on the worker holding that
signature's warm state.  When a worker drops mid-request the router
retries **once** against the fallback owner — the worker the ring would
pick if the dead one left — and surfaces a typed ``worker_lost`` (503)
envelope if the retry fails too.

Routes:

* ``POST /v1/select`` / ``/v1/predict`` / ``/v1/plan`` / ``/v1/replan``
  — routed to the owning shard; answers are byte-identical to
  ``celia serve`` because both ends share
  :func:`repro.service.server.dispatch_request`;
* ``GET  /healthz``     — fleet liveness + per-worker link status;
* ``GET  /fleet``       — topology: workers, sockets, routing counts;
* ``GET  /metrics``     — every worker's snapshot relabeled with
  ``{worker="..."}`` and merged with the router's own series;
* ``GET  /metrics.txt`` — the same, as a flat text exposition;
* ``POST /fleet/restart`` — gracefully restart one worker
  (``{"worker": "w1"}``) and wait for it to rejoin.
"""

from __future__ import annotations

import asyncio
import json
import socket
import time
from collections import OrderedDict

from repro.errors import ValidationError
from repro.fleet.hashing import warm_key
from repro.fleet.rpc import WorkerGone
from repro.obs.metrics import (
    MetricsRegistry,
    global_registry,
    label_snapshot,
    merge_snapshots,
    render_text,
)
from repro.service.server import _MAX_BODY_BYTES, _POST_ROUTES, _REASONS

__all__ = ["FleetFrontend"]

_MAX_HEAD_BYTES = 1 << 14


def _error_body(code: str, message: str) -> dict:
    return {"error": {"code": code, "message": message}}


class FleetFrontend:
    """Keep-alive HTTP listener that routes requests to shard workers.

    ``fleet`` is the routing surface (normally a
    :class:`repro.fleet.supervisor.PlannerFleet`) and must provide:
    ``worker_ids``, ``default_quota``, ``default_seed``,
    ``route(key, exclude=...)``, ``link(worker_id)``,
    ``note_lost(worker_id)``, ``restart_worker(worker_id)`` and
    ``describe()``.
    """

    def __init__(self, fleet, *, host: str = "127.0.0.1", port: int = 0,
                 call_timeout_s: "float | None" = None,
                 max_inflight: "int | None" = None,
                 max_total_inflight: "int | None" = None,
                 shed_retry_after_s: float = 1.0,
                 expected_warm: tuple = ()):
        self.fleet = fleet
        self.host = host
        self.port = port  # 0 → ephemeral; replaced by the bound port
        #: ``None`` (the default) trusts the worker's own request
        #: timeout (``ServiceConfig.default_timeout_s`` → 504) and the
        #: link's crash detection (:class:`WorkerGone`); a float adds a
        #: per-call ``wait_for`` on top, which costs ~60µs per request.
        #: It is also the hung-worker backstop: a SIGSTOPped worker
        #: holds the frame forever, and only this deadline turns that
        #: into a :class:`WorkerGone` reroute.
        self.call_timeout_s = call_timeout_s
        #: Per-worker in-flight cap.  A worker already serving this many
        #: routed calls sheds further ones with a typed 503
        #: ``overloaded`` envelope + ``Retry-After`` instead of queueing
        #: without bound behind a slow shard.
        self.max_inflight = max_inflight
        #: Fleet-wide cap across all routed calls; beyond it requests
        #: get a typed 429 ``too_many_requests``.
        self.max_total_inflight = max_total_inflight
        self.shed_retry_after_s = shed_retry_after_s
        #: Apps that must be warmed before ``/healthz`` reports ready —
        #: the same readiness contract as the single server.
        self.expected_warm = tuple(expected_warm)
        self.metrics = MetricsRegistry()
        self._server: asyncio.AbstractServer | None = None
        self._in_flight = 0
        self._worker_inflight: dict = {}
        self._draining = False
        self._idle = asyncio.Event()
        self._idle.set()
        self._conn_tasks: set = set()
        # Raw body bytes → warm key, so repeat planning requests skip
        # the JSON parse entirely (routing is the only reason the front
        # end ever looks inside a body).  Small bodies only, LRU-bounded.
        self._route_keys: "OrderedDict[bytes, str]" = OrderedDict()
        # Hot-path metric objects, resolved once — each registry lookup
        # costs a lock and a label format, too much at thousands of rps.
        self._requests_total = self.metrics.counter("fleet_requests_total")
        self._shed_total = self.metrics.counter("fleet_shed_total")
        self._request_latency = \
            self.metrics.histogram("fleet_request_latency_s")
        self._routed_counters: dict = {}
        # Head-block parse memo: keep-alive clients repeat the same few
        # header blocks verbatim, so parsing each distinct block once
        # covers virtually all requests.
        self._head_cache: dict = {}

    @property
    def in_flight(self) -> int:
        """Requests currently being served."""
        return self._in_flight

    @property
    def draining(self) -> bool:
        """True once graceful shutdown has begun."""
        return self._draining

    async def start(self) -> None:
        """Bind and start accepting connections (non-blocking)."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def drain(self, *, timeout_s: float = 10.0) -> bool:
        """Refuse new work, finish in-flight requests, close connections.

        Returns True when every in-flight request finished inside the
        timeout.  Either way the surviving connection tasks — idle
        keep-alive readers and, on timeout, requests hung behind a dead
        shard — are cancelled, so drain always leaves the front end
        fully quiesced instead of leaking tasks that outlive it.
        """
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        completed = True
        try:
            await asyncio.wait_for(self._idle.wait(), timeout_s)
        except asyncio.TimeoutError:
            completed = False
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        return completed

    # -- connection handling ---------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            sock = writer.get_extra_info("socket")
            if sock is not None:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:  # pragma: no cover - non-TCP transport
            pass
        try:
            while True:
                keep_alive = await self._serve_one(reader, writer)
                if not keep_alive:
                    break
        except (ConnectionError, OSError):
            pass  # client went away mid-stream
        except asyncio.CancelledError:
            # drain() cancels connection tasks once in-flight work is
            # done (or timed out); any other cancellation propagates.
            if not self._draining:
                raise
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    async def _serve_one(self, reader: asyncio.StreamReader,
                         writer: asyncio.StreamWriter) -> bool:
        """Serve one request on the connection; True to keep it open."""
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError:
            return False  # clean EOF between requests
        except asyncio.LimitOverrunError:
            await self._write_response(
                writer, 400,
                _error_body("invalid_request",
                            f"header block over {_MAX_HEAD_BYTES} bytes"),
                keep_alive=False)
            return False

        parsed = self._head_cache.get(head)
        if parsed is None:
            parsed = self._parse_head(head)
            if parsed[4] is None and len(head) <= 1024:
                if len(self._head_cache) >= 256:
                    self._head_cache.clear()
                self._head_cache[head] = parsed
        method, path, want_keep_alive, content_length, parse_error = parsed
        if parse_error is not None:
            await self._write_response(writer, 400,
                                       _error_body("invalid_request",
                                                   parse_error),
                                       keep_alive=False)
            return False
        if content_length > _MAX_BODY_BYTES:
            await self._write_response(
                writer, 413,
                _error_body("payload_too_large",
                            f"body over {_MAX_BODY_BYTES} bytes"),
                keep_alive=False)
            return False
        raw = await reader.readexactly(content_length) if content_length \
            else b""

        self._in_flight += 1
        self._idle.clear()
        started = time.monotonic()
        try:
            try:
                status, body = await self._handle_request(method, path, raw)
            except Exception as exc:  # last-resort: never kill the router
                status, body = 500, _error_body("internal", str(exc))
            self._requests_total.increment()
            self._request_latency.observe(time.monotonic() - started)
            keep = want_keep_alive and not self._draining
            await self._write_response(writer, status, body, keep_alive=keep)
            return keep
        finally:
            self._in_flight -= 1
            if self._in_flight == 0:
                self._idle.set()

    @staticmethod
    def _parse_head(head: bytes
                    ) -> "tuple[str, str, bool, int, str | None]":
        """``(method, path, keep_alive, content_length, error)``."""
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split()
        if len(parts) != 3:
            return "", "", False, 0, f"malformed request line {lines[0]!r}"
        method, path, version = parts
        keep_alive = not version.endswith("/1.0")
        content_length = 0
        for line in lines[1:]:
            if not line:
                continue
            name, _, value = line.partition(":")
            name = name.strip().lower()
            if name == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    return method, path, keep_alive, 0, "bad Content-Length"
            elif name == "connection":
                token = value.strip().lower()
                if token == "close":
                    keep_alive = False
                elif token == "keep-alive":
                    keep_alive = True
        return method, path, keep_alive, content_length, None

    async def _write_response(self, writer: asyncio.StreamWriter, status: int,
                              body, *, keep_alive: bool) -> None:
        if isinstance(body, str):  # text exposition (/metrics.txt)
            content_type = "text/plain; charset=utf-8"
            payload = body.encode("utf-8")
        elif isinstance(body, bytes):  # worker response, forwarded verbatim
            content_type = "application/json"
            payload = body
        else:
            content_type = "application/json"
            payload = json.dumps(body).encode("utf-8")
        head = (f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(payload)}\r\n"
                + (f"Retry-After: {self.shed_retry_after_s:g}\r\n"
                   if status in (503, 429) else "")
                + ("Connection: keep-alive\r\n" if keep_alive
                   else "Connection: close\r\n")
                + "\r\n").encode("ascii")
        writer.write(head + payload)
        # drain() is a no-op below the transport's high-water mark but
        # still costs a coroutine round trip; only pay it when the
        # buffer actually backed up (a slow-reading client).
        if writer.transport.get_write_buffer_size() > (1 << 16):
            await writer.drain()

    # -- request handling ------------------------------------------------------

    async def _handle_request(self, method: str, path: str,
                              raw: bytes) -> tuple[int, dict]:
        if method == "GET":
            if path == "/healthz":
                return 200, await self._healthz()
            if path == "/fleet":
                return 200, self.fleet.describe()
            if path == "/fleet/timeline":
                return 200, self._timeline_view()
            if path == "/metrics":
                return 200, await self._metrics_snapshot()
            if path == "/metrics.txt":
                return 200, render_text(await self._metrics_snapshot())
            return 404, _error_body("not_found", f"no route {path!r}")
        if method != "POST":
            return 405, _error_body("method_not_allowed",
                                    f"{method} not supported")
        if self._draining:
            return 503, _error_body(
                "draining", "fleet is shutting down; retry elsewhere")
        if self.max_total_inflight is not None \
                and self._in_flight > self.max_total_inflight:
            self._shed_total.increment()
            return 429, self._shed_body(
                "too_many_requests",
                f"fleet at in-flight cap {self.max_total_inflight}")

        kind = _POST_ROUTES.get(path)
        if kind is not None:
            key = self._route_keys.get(raw)
            if key is not None:
                self._route_keys.move_to_end(raw)
                return await self._route_request(kind, key, raw)

        try:
            request = json.loads(raw.decode("utf-8")) if raw else {}
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return 400, _error_body("invalid_request", f"bad JSON: {exc}")
        if not isinstance(request, dict):
            return 400, _error_body("invalid_request",
                                    "body must be a JSON object")

        if path == "/fleet/restart":
            return await self._restart(request)
        if kind is None:
            return 404, _error_body("not_found", f"no route {path!r}")
        key = warm_key(str(request.get("app", "")),
                       request.get("quota", self.fleet.default_quota),
                       request.get("seed", self.fleet.default_seed))
        if len(raw) <= 4096:  # memo small bodies only
            self._route_keys[raw] = key
            while len(self._route_keys) > 1024:
                self._route_keys.popitem(last=False)
        return await self._route_request(kind, key, raw)

    async def _healthz(self) -> dict:
        links = {wid: self.fleet.link(wid).up for wid in self.fleet.worker_ids}
        ejected = sorted(getattr(self.fleet, "down", ()))
        warmed = getattr(self.fleet, "warmed_apps", None)
        warm_ok = warmed is None \
            or set(self.expected_warm) <= set(warmed)
        return {
            "status": "draining" if self._draining else "ok",
            "ready": not self._draining and all(links.values())
            and not ejected and warm_ok,
            "draining": self._draining,
            "in_flight": self._in_flight,
            "workers": links,
            "ejected": ejected,
            "expected_warm": list(self.expected_warm),
            "warm_ok": warm_ok,
        }

    def _timeline_view(self) -> dict:
        """``GET /fleet/timeline``: the resilience audit trail."""
        timeline = getattr(self.fleet, "timeline", None)
        if timeline is None:
            return {"events": [], "normalized": {}}
        return {
            "events": timeline.to_dicts(),
            "normalized": {worker: list(kinds) for worker, kinds
                           in sorted(timeline.normalized().items())},
        }

    def _shed_body(self, code: str, message: str) -> dict:
        """Typed shed envelope; the hint rides in body and header both."""
        body = _error_body(code, message)
        body["error"]["retry_after_s"] = self.shed_retry_after_s
        return body

    async def _metrics_snapshot(self) -> dict:
        """Router series + every worker's snapshot tagged ``{worker=…}``."""
        per_worker: list[dict] = []
        for wid in self.fleet.worker_ids:
            try:
                status, body = await self.fleet.link(wid).call(
                    {"kind": "__metrics__"}, timeout_s=self.call_timeout_s)
            except WorkerGone:
                self.metrics.counter("fleet_scrape_errors_total").increment()
                continue
            if status == 200:
                per_worker.append(label_snapshot(body, {"worker": wid}))
        return merge_snapshots(global_registry().snapshot(),
                               self.metrics.snapshot(), *per_worker)

    async def _restart(self, request: dict) -> tuple[int, dict]:
        worker = request.get("worker")
        if worker not in self.fleet.worker_ids:
            return 404, _error_body("not_found",
                                    f"no worker {worker!r} in the fleet")
        await self.fleet.restart_worker(worker)
        return 200, {"restarted": worker}

    async def _route_request(self, kind: str, key: str,
                             raw: bytes) -> tuple[int, bytes]:
        """Route by warm key; forward ``raw`` body bytes verbatim.

        The body is parsed (at most once per distinct body — see
        ``_route_keys``) only to derive the warm key; the payload
        crossing the worker hop (and the response bytes coming back
        into the HTTP reply) never re-serialize.
        """
        try:
            worker = self.fleet.route(key)
        except ValidationError as exc:
            self.metrics.counter("fleet_worker_lost_total").increment()
            return 503, _error_body("worker_lost", str(exc))
        shed = self._shed_check(worker)
        if shed is not None:
            return shed
        counts = self._worker_inflight
        counts[worker] = counts.get(worker, 0) + 1
        try:
            status, body = await self.fleet.link(worker).call_raw(
                kind, raw, timeout_s=self.call_timeout_s)
        except WorkerGone as exc:
            self.fleet.note_lost(exc.worker_id)
            lost = exc
        else:
            self._routed(worker).increment()
            return status, body
        finally:
            counts[worker] -= 1
        return await self._reroute(key, kind, raw, lost=lost)

    def _shed_check(self, worker: str) -> "tuple[int, dict] | None":
        """Deterministic load shedding at the per-worker in-flight cap.

        Shedding at admission (rather than queueing) keeps a slow or
        stalling shard from absorbing the whole front end's concurrency
        budget: the 503 + ``Retry-After`` pushes the wait onto clients,
        whose retry backoff spreads the load in time.
        """
        limit = self.max_inflight
        if limit is None \
                or self._worker_inflight.get(worker, 0) < limit:
            return None
        self._shed_total.increment()
        return 503, self._shed_body(
            "overloaded", f"worker {worker} at in-flight cap {limit}")

    def _routed(self, worker: str):
        counter = self._routed_counters.get(worker)
        if counter is None:
            counter = self.metrics.counter("fleet_routed",
                                           labels={"worker": worker})
            self._routed_counters[worker] = counter
        return counter

    async def _reroute(self, key: str, kind: str, raw: bytes,
                       *, lost: WorkerGone) -> tuple[int, bytes]:
        """One retry against the fallback owner after a worker drop."""
        self.metrics.counter("fleet_reroutes_total").increment()
        try:
            fallback = self.fleet.route(key,
                                        exclude={lost.worker_id})
        except ValidationError as exc:
            self.metrics.counter("fleet_worker_lost_total").increment()
            return 503, _error_body("worker_lost", f"{lost}; {exc}")
        shed = self._shed_check(fallback)
        if shed is not None:
            return shed
        counts = self._worker_inflight
        counts[fallback] = counts.get(fallback, 0) + 1
        try:
            status, body = await self.fleet.link(fallback).call_raw(
                kind, raw, timeout_s=self.call_timeout_s)
        except WorkerGone as exc:
            self.fleet.note_lost(exc.worker_id)
            self.metrics.counter("fleet_worker_lost_total").increment()
            return 503, _error_body(
                "worker_lost",
                f"{lost} and fallback failed: {exc}")
        finally:
            counts[fallback] -= 1
        self._routed(fallback).increment()
        return status, body
