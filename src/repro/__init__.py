"""repro — reproduction of *CELIA: Cost-time Performance of Elastic
Applications on Cloud* (Rathnayake, Loghin, Teo — ICPP 2017).

Quick start::

    from repro import Celia, ec2_catalog, GalaxyApp

    celia = Celia(ec2_catalog())
    app = GalaxyApp()
    result = celia.select(app, n=65536, a=8000,
                          deadline_hours=24, budget_dollars=350)
    for point in result.pareto:
        print(point.configuration, point.time_hours, point.cost_dollars)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every reproduced table and figure.
"""

from repro.apps import (
    ElasticApplication,
    ExecutionStyle,
    GalaxyApp,
    SandApp,
    SyntheticApp,
    X264App,
    application_by_name,
    paper_applications,
)
from repro.cloud import Catalog, CloudProvider, InstanceType, ec2_catalog, make_catalog
from repro.core import (
    Celia,
    ConfigurationSpace,
    FrontierIndex,
    MinCostIndex,
    MinTimeIndex,
    Prediction,
    SelectionResult,
    characterize_resources,
    deadline_tightening_study,
    fixed_time_scaling,
    select_configurations,
)

# After repro.core: repro.cache depends on repro.core.configspace, which
# the core package's own import of the Celia facade already initialized.
from repro.cache import EvaluationCache
from repro.engine import EngineConfig, ExecutionReport, run_on_configuration
from repro.errors import InfeasibleError, ReproError
from repro.measurement import PerfCounter, fit_separable_demand, measure_demand_grid
from repro.pareto import eps_sort, pareto_mask_2d

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # applications
    "ElasticApplication",
    "ExecutionStyle",
    "X264App",
    "GalaxyApp",
    "SandApp",
    "SyntheticApp",
    "paper_applications",
    "application_by_name",
    # cloud
    "Catalog",
    "InstanceType",
    "CloudProvider",
    "ec2_catalog",
    "make_catalog",
    # core
    "Celia",
    "Prediction",
    "ConfigurationSpace",
    "EvaluationCache",
    "FrontierIndex",
    "SelectionResult",
    "select_configurations",
    "MinCostIndex",
    "MinTimeIndex",
    "characterize_resources",
    "fixed_time_scaling",
    "deadline_tightening_study",
    # engine
    "EngineConfig",
    "ExecutionReport",
    "run_on_configuration",
    # measurement
    "PerfCounter",
    "measure_demand_grid",
    "fit_separable_demand",
    # pareto
    "eps_sort",
    "pareto_mask_2d",
    # errors
    "ReproError",
    "InfeasibleError",
]
