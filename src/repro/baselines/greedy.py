"""Greedy cost-efficiency packing.

Adds nodes in descending capacity-per-dollar order until the deadline's
required capacity is met.  This is the "obvious" heuristic the exhaustive
search is measured against: it is near-optimal while one category has
spare quota, but over-shoots at category boundaries because it can only
add whole nodes of the current best type — exactly where the paper's
cost-gradient breaks (Observation 2) live.
"""

from __future__ import annotations

import numpy as np

from repro.cloud.catalog import Catalog
from repro.core.optimizer import OptimizerAnswer
from repro.errors import InfeasibleError, ValidationError
from repro.units import SECONDS_PER_HOUR

__all__ = ["greedy_min_cost"]


def greedy_min_cost(
    catalog: Catalog,
    capacities_gips: np.ndarray,
    demand_gi: float,
    deadline_hours: float,
) -> OptimizerAnswer:
    """Pack capacity greedily by GI/s-per-dollar until the deadline fits."""
    if demand_gi <= 0 or deadline_hours <= 0:
        raise ValidationError("demand and deadline must be positive")
    capacities = np.asarray(capacities_gips, dtype=float)
    if capacities.shape != (len(catalog),):
        raise ValidationError("capacities must align with the catalog")

    required = demand_gi / (deadline_hours * SECONDS_PER_HOUR)
    prices = catalog.prices
    efficiency = capacities / prices
    order = np.argsort(efficiency)[::-1]  # best GI/s per dollar first

    config = np.zeros(len(catalog), dtype=np.int64)
    total_capacity = 0.0
    for type_index in order:
        quota = catalog.quotas[type_index]
        while config[type_index] < quota and total_capacity < required:
            config[type_index] += 1
            total_capacity += capacities[type_index]
        if total_capacity >= required:
            break
    if total_capacity < required:
        raise InfeasibleError(
            f"even the full quota provides {total_capacity:.1f} GI/s, "
            f"below the required {required:.1f} GI/s",
            deadline_hours=deadline_hours,
        )

    unit_cost = float(config @ prices)
    time_h = demand_gi / total_capacity / SECONDS_PER_HOUR
    return OptimizerAnswer(
        configuration=tuple(int(v) for v in config),
        time_hours=time_h,
        cost_dollars=time_h * unit_cost,
        capacity_gips=total_capacity,
        unit_cost_per_hour=unit_cost,
    )
