"""Reactive autoscaling — the resource-elasticity alternative to CELIA.

The paper's related work (Mao et al., AWS Auto Scaling) meets deadlines
by *reacting*: monitor progress, grow or shrink the allocation each
epoch.  CELIA instead commits to one statically optimal configuration up
front.  The two philosophies trade differently under uncertainty:

* with an accurate demand estimate, the static plan is cheapest (it
  never over-provisions and pays no scaling lag);
* when demand was *under*-estimated, the static plan simply misses the
  deadline, while the autoscaler notices the slip and buys capacity —
  at a premium.

:func:`simulate_autoscaler` plays the reactive policy on the simulated
cloud, epoch by epoch, against the *true* demand, while its planning
believes a (possibly wrong) estimate only through what it observes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cloud.catalog import Catalog
from repro.errors import ValidationError
from repro.units import SECONDS_PER_HOUR
from repro.utils.rng import derive_rng

__all__ = ["AutoscaleOutcome", "simulate_autoscaler"]


@dataclass(frozen=True)
class AutoscaleOutcome:
    """Result of one autoscaled execution."""

    completed_on_time: bool
    elapsed_hours: float
    cost_dollars: float
    scaling_actions: int
    peak_nodes: int
    configuration_history: tuple[tuple[int, ...], ...]

    @property
    def epochs(self) -> int:
        """Number of scaling epochs executed."""
        return len(self.configuration_history)


def _greedy_capacity(catalog: Catalog, capacities: np.ndarray,
                     required_gips: float) -> np.ndarray:
    """Cheapest-per-GI/s greedy packing reaching ``required_gips``."""
    config = np.zeros(len(catalog), dtype=np.int64)
    if required_gips <= 0:
        return config
    efficiency = capacities / catalog.prices
    order = np.argsort(efficiency)[::-1]
    total = 0.0
    for i in order:
        while config[i] < catalog.quotas[i] and total < required_gips:
            config[i] += 1
            total += capacities[i]
        if total >= required_gips:
            break
    return config


def simulate_autoscaler(
    catalog: Catalog,
    capacities_gips: np.ndarray,
    true_demand_gi: float,
    deadline_hours: float,
    *,
    epoch_hours: float = 1.0,
    headroom: float = 1.05,
    jitter_sigma: float = 0.03,
    max_epochs: int = 10_000,
    seed: int = 0,
) -> AutoscaleOutcome:
    """Reactive deadline-driven autoscaling against the true demand.

    Policy per epoch: from the work actually remaining, compute the rate
    needed to finish by the deadline, multiply by ``headroom``, and
    provision the greedy cheapest capacity mix that reaches it (scaling
    both up and down).  Execution then burns one epoch of work at the
    provisioned (jittered) rate and bills the epoch at full hours.

    The autoscaler never needs a demand *model* — it observes remaining
    work directly — which is exactly its advantage over a static plan
    built on a wrong estimate.
    """
    capacities = np.asarray(capacities_gips, dtype=float)
    if capacities.shape != (len(catalog),):
        raise ValidationError("capacities must align with the catalog")
    if true_demand_gi <= 0 or deadline_hours <= 0:
        raise ValidationError("demand and deadline must be positive")
    if epoch_hours <= 0 or headroom < 1.0:
        raise ValidationError("epoch must be positive and headroom >= 1")

    remaining = true_demand_gi
    now = 0.0
    cost = 0.0
    actions = 0
    peak = 0
    history: list[tuple[int, ...]] = []
    previous = np.zeros(len(catalog), dtype=np.int64)
    rng = derive_rng(seed, "autoscaler")

    for _ in range(max_epochs):
        if remaining <= 0:
            return AutoscaleOutcome(
                completed_on_time=now <= deadline_hours,
                elapsed_hours=now,
                cost_dollars=cost,
                scaling_actions=actions,
                peak_nodes=peak,
                configuration_history=tuple(history),
            )
        time_left = max(deadline_hours - now, epoch_hours)
        required = remaining / (time_left * SECONDS_PER_HOUR) * headroom
        config = _greedy_capacity(catalog, capacities, required)
        if config.sum() == 0:
            config = previous.copy() if previous.sum() else \
                _greedy_capacity(catalog, capacities, 1e-9)
        if not np.array_equal(config, previous):
            actions += 1
            previous = config.copy()
        history.append(tuple(int(v) for v in config))
        peak = max(peak, int(config.sum()))

        rate = float(config @ capacities)
        jitter = rng.lognormal(0.0, jitter_sigma) if jitter_sigma else 1.0
        work_done = rate * jitter * epoch_hours * SECONDS_PER_HOUR
        if work_done >= remaining:
            # Partial epoch; EC2 2017 still bills the full hour.
            fraction = remaining / work_done
            now += fraction * epoch_hours
            cost += float(config @ catalog.prices) * np.ceil(epoch_hours)
            remaining = 0.0
        else:
            remaining -= work_done
            now += epoch_hours
            cost += float(config @ catalog.prices) * epoch_hours
    raise ValidationError("autoscaler exceeded max_epochs — check inputs")
