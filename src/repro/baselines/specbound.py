"""Spec-sheet capacity estimation — the baseline the paper rejects.

Section IV-B: "One way to estimate this rate is to use the base CPU
frequency obtained from the specification, and to derive an upper-bound
of the performance.  However, different applications have different
execution profiles and different instruction execution rates."  This
module implements exactly that estimator so the resulting prediction
error can be measured against CELIA's measured capacities.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import ElasticApplication
from repro.cloud.catalog import Catalog
from repro.errors import ValidationError

__all__ = ["spec_capacities", "spec_prediction_error"]


def spec_capacities(catalog: Catalog,
                    *, instructions_per_cycle: float = 1.0) -> np.ndarray:
    """Frequency × vCPUs × assumed IPC for every type (GI/s).

    The assumed IPC is application-independent — the estimator's defining
    flaw.  With the default IPC of 1.0 this is the "one instruction per
    cycle per hyper-thread" rule of thumb.
    """
    if instructions_per_cycle <= 0:
        raise ValidationError("assumed IPC must be positive")
    return np.array([
        t.spec_gips_upper_bound(instructions_per_cycle) for t in catalog
    ])


def spec_prediction_error(app: ElasticApplication, catalog: Catalog,
                          measured_capacities: np.ndarray,
                          *, instructions_per_cycle: float = 1.0) -> np.ndarray:
    """Per-type relative error of the spec estimate vs measured capacity.

    Positive values mean the spec sheet over-promises (it usually does:
    real IPC per hyper-thread is application dependent and typically
    below 1 for memory-bound codes, above for cache-friendly ones).
    """
    measured = np.asarray(measured_capacities, dtype=float)
    if measured.shape != (len(catalog),):
        raise ValidationError("measured capacities must align with catalog")
    spec = spec_capacities(catalog, instructions_per_cycle=instructions_per_cycle)
    return (spec - measured) / measured
