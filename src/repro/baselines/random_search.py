"""Random-sampling configuration search.

Samples configurations uniformly from the space and keeps the cheapest
feasible one — the simplest possible search, and the natural lower bar
for the ablation: how many samples does it take to get close to the
exhaustive optimum that CELIA computes exactly?
"""

from __future__ import annotations

import numpy as np

from repro.cloud.catalog import Catalog
from repro.core.capacity import configuration_capacity
from repro.core.costmodel import configuration_unit_cost
from repro.core.optimizer import OptimizerAnswer
from repro.errors import InfeasibleError, ValidationError
from repro.units import SECONDS_PER_HOUR

__all__ = ["random_search_min_cost"]


def random_search_min_cost(
    catalog: Catalog,
    capacities_gips: np.ndarray,
    demand_gi: float,
    deadline_hours: float,
    *,
    n_samples: int = 10_000,
    rng: np.random.Generator | None = None,
) -> OptimizerAnswer:
    """Cheapest deadline-meeting configuration among random samples.

    Raises :class:`InfeasibleError` when no sampled configuration meets
    the deadline (which may happen even when feasible configurations
    exist — the defining weakness of sampling).
    """
    if n_samples < 1:
        raise ValidationError("need at least one sample")
    if demand_gi <= 0 or deadline_hours <= 0:
        raise ValidationError("demand and deadline must be positive")
    rng = rng or np.random.default_rng()

    quotas = catalog.quota_vector
    samples = rng.integers(0, quotas + 1, size=(n_samples, len(catalog)))
    nonempty = samples.sum(axis=1) > 0
    samples = samples[nonempty]
    if samples.shape[0] == 0:
        raise InfeasibleError("all random samples were empty configurations")

    capacity = configuration_capacity(samples, capacities_gips)
    unit_cost = configuration_unit_cost(samples, catalog.prices)
    times = demand_gi / capacity / SECONDS_PER_HOUR
    costs = times * unit_cost
    feasible = times < deadline_hours
    if not feasible.any():
        raise InfeasibleError(
            f"none of {n_samples} random samples met the "
            f"{deadline_hours:g} h deadline",
            deadline_hours=deadline_hours,
        )
    best = int(np.flatnonzero(feasible)[np.argmin(costs[feasible])])
    return OptimizerAnswer(
        configuration=tuple(int(v) for v in samples[best]),
        time_hours=float(times[best]),
        cost_dollars=float(costs[best]),
        capacity_gips=float(capacity[best]),
        unit_cost_per_hour=float(unit_cost[best]),
    )
