"""Baseline strategies CELIA is compared against.

The paper argues for (a) *measured* capacities over spec-sheet estimates
(Section IV-B) and (b) *exhaustive* search over heuristics (its Algorithm
1 "guarantees to find all optimal configurations").  This package
implements the alternatives so both claims can be quantified:

* :mod:`~repro.baselines.specbound` — capacity from the spec-sheet
  frequency (the strawman the paper rejects);
* :mod:`~repro.baselines.random_search` — uniform random configuration
  sampling;
* :mod:`~repro.baselines.greedy` — pack capacity by cost-efficiency;
* :mod:`~repro.baselines.hillclimb` — local search in configuration
  space (a CherryPick-flavoured sequential optimizer);
* :mod:`~repro.baselines.comparison` — a harness measuring each
  baseline's optimality gap against the exhaustive optimum.
"""

from repro.baselines.specbound import spec_capacities, spec_prediction_error
from repro.baselines.random_search import random_search_min_cost
from repro.baselines.greedy import greedy_min_cost
from repro.baselines.hillclimb import hillclimb_min_cost
from repro.baselines.autoscale import AutoscaleOutcome, simulate_autoscaler
from repro.baselines.comparison import BaselineOutcome, compare_baselines

__all__ = [
    "spec_capacities",
    "spec_prediction_error",
    "random_search_min_cost",
    "greedy_min_cost",
    "hillclimb_min_cost",
    "AutoscaleOutcome",
    "simulate_autoscaler",
    "BaselineOutcome",
    "compare_baselines",
]
