"""Local search in configuration space (CherryPick-flavoured).

Sequential optimizers for cloud configuration (CherryPick and kin)
evaluate a handful of configurations and move locally.  This baseline
captures that shape: start from a random feasible configuration, try
single-node moves (add one node, remove one node, swap a node of one
type for a node of another), accept strict cost improvements that keep
the deadline, repeat until no move helps, with random restarts.

Against CELIA's exhaustive search this quantifies how often local search
strands in a local optimum of the discrete cost landscape.
"""

from __future__ import annotations

import numpy as np

from repro.cloud.catalog import Catalog
from repro.core.optimizer import OptimizerAnswer
from repro.errors import InfeasibleError, ValidationError
from repro.units import SECONDS_PER_HOUR

__all__ = ["hillclimb_min_cost"]


def _evaluate(config: np.ndarray, capacities: np.ndarray, prices: np.ndarray,
              demand_gi: float) -> tuple[float, float]:
    """(time_hours, cost) of one configuration."""
    capacity = float(config @ capacities)
    if capacity == 0:
        return float("inf"), float("inf")
    time_h = demand_gi / capacity / SECONDS_PER_HOUR
    return time_h, time_h * float(config @ prices)


def _neighbors(config: np.ndarray, quotas: np.ndarray):
    """Yield all single-change neighbors (add / remove / swap one node)."""
    m = config.size
    for i in range(m):
        if config[i] < quotas[i]:
            up = config.copy()
            up[i] += 1
            yield up
        if config[i] > 0:
            down = config.copy()
            down[i] -= 1
            if down.sum() > 0:
                yield down
            for j in range(m):
                if j != i and config[j] < quotas[j]:
                    swap = config.copy()
                    swap[i] -= 1
                    swap[j] += 1
                    yield swap


def hillclimb_min_cost(
    catalog: Catalog,
    capacities_gips: np.ndarray,
    demand_gi: float,
    deadline_hours: float,
    *,
    restarts: int = 5,
    max_steps: int = 500,
    rng: np.random.Generator | None = None,
) -> OptimizerAnswer:
    """Best configuration found by restarted steepest-descent local search."""
    if demand_gi <= 0 or deadline_hours <= 0:
        raise ValidationError("demand and deadline must be positive")
    if restarts < 1 or max_steps < 1:
        raise ValidationError("restarts and max_steps must be >= 1")
    rng = rng or np.random.default_rng()
    capacities = np.asarray(capacities_gips, dtype=float)
    prices = catalog.prices
    quotas = catalog.quota_vector

    best_config: np.ndarray | None = None
    best_cost = float("inf")
    for _ in range(restarts):
        # Start from a random feasible point; fall back to the full quota.
        current = rng.integers(0, quotas + 1, size=len(catalog))
        t, _ = _evaluate(current, capacities, prices, demand_gi)
        if not (t < deadline_hours):
            current = quotas.copy()
            t, _ = _evaluate(current, capacities, prices, demand_gi)
            if not (t < deadline_hours):
                continue  # even the full space cannot meet the deadline
        _, current_cost = _evaluate(current, capacities, prices, demand_gi)

        for _ in range(max_steps):
            improved = False
            for cand in _neighbors(current, quotas):
                t, c = _evaluate(cand, capacities, prices, demand_gi)
                if t < deadline_hours and c < current_cost - 1e-12:
                    current, current_cost = cand, c
                    improved = True
            if not improved:
                break
        if current_cost < best_cost:
            best_cost = current_cost
            best_config = current

    if best_config is None:
        raise InfeasibleError(
            "no feasible configuration found from any restart",
            deadline_hours=deadline_hours,
        )
    time_h, cost = _evaluate(best_config, capacities, prices, demand_gi)
    return OptimizerAnswer(
        configuration=tuple(int(v) for v in best_config),
        time_hours=time_h,
        cost_dollars=cost,
        capacity_gips=float(best_config @ capacities),
        unit_cost_per_hour=float(best_config @ prices),
    )
