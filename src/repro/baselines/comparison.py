"""Baseline-vs-exhaustive comparison harness (ablation A1 in DESIGN.md)."""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.baselines.greedy import greedy_min_cost
from repro.baselines.hillclimb import hillclimb_min_cost
from repro.baselines.random_search import random_search_min_cost
from repro.cloud.catalog import Catalog
from repro.core.optimizer import MinCostIndex, OptimizerAnswer
from repro.errors import InfeasibleError

__all__ = ["BaselineOutcome", "compare_baselines"]


@dataclass(frozen=True)
class BaselineOutcome:
    """One strategy's result on one (demand, deadline) problem."""

    strategy: str
    answer: OptimizerAnswer | None  # None when the strategy found nothing
    optimal_cost: float
    wall_seconds: float

    @property
    def found(self) -> bool:
        """Whether the strategy produced any feasible configuration."""
        return self.answer is not None

    @property
    def optimality_gap(self) -> float:
        """cost/optimal − 1 (``inf`` when nothing was found)."""
        if self.answer is None:
            return float("inf")
        return self.answer.cost_dollars / self.optimal_cost - 1.0


def compare_baselines(
    catalog: Catalog,
    capacities_gips: np.ndarray,
    index: MinCostIndex,
    demand_gi: float,
    deadline_hours: float,
    *,
    random_samples: int = 10_000,
    hillclimb_restarts: int = 5,
    seed: int = 0,
) -> list[BaselineOutcome]:
    """Run every strategy on one problem and report gaps vs exhaustive.

    The exhaustive optimum comes from the (already built) MinCostIndex;
    its reported wall time covers only the O(log S) query, since the
    index amortizes across the whole evaluation.
    """
    t0 = time.perf_counter()
    optimal = index.query(demand_gi, deadline_hours)
    exhaustive_seconds = time.perf_counter() - t0
    optimal_cost = optimal.cost_dollars

    outcomes = [
        BaselineOutcome(
            strategy="exhaustive",
            answer=optimal,
            optimal_cost=optimal_cost,
            wall_seconds=exhaustive_seconds,
        )
    ]

    rng = np.random.default_rng(seed)
    runs = [
        ("greedy", lambda: greedy_min_cost(
            catalog, capacities_gips, demand_gi, deadline_hours)),
        ("random-search", lambda: random_search_min_cost(
            catalog, capacities_gips, demand_gi, deadline_hours,
            n_samples=random_samples, rng=rng)),
        ("hill-climb", lambda: hillclimb_min_cost(
            catalog, capacities_gips, demand_gi, deadline_hours,
            restarts=hillclimb_restarts, rng=rng)),
    ]
    for name, run in runs:
        t0 = time.perf_counter()
        try:
            answer = run()
        except InfeasibleError:
            answer = None
        outcomes.append(
            BaselineOutcome(
                strategy=name,
                answer=answer,
                optimal_cost=optimal_cost,
                wall_seconds=time.perf_counter() - t0,
            )
        )
    return outcomes
