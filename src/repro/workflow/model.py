"""Analytical workflow time/cost model and workflow-aware selection.

Two lower bounds govern a workflow's makespan on configuration ``G_j``:

* the **work bound** — Eq. 2 applied to total demand: ``D_total / U_j``;
* the **critical-path bound** — dependent stages serialize, and each
  stage on the chain needs at least one task's time on the fastest vCPU
  present: ``CP_gi / W_vcpu_max(G_j)``.

The model predicts ``T = max(work bound, critical-path bound)`` — tight
in both regimes the engine exhibits (wide workflows saturate capacity;
deep chains are latency-bound and *more capacity does not help*, which
is exactly the phenomenon single-application CELIA cannot express).

Selection generalizes Algorithm 1: feasibility and the Pareto filter are
applied over (predicted T, C) for every configuration, computed chunk-
wise (the per-config fastest-vCPU rate is a masked max, still
vectorized).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cloud.catalog import Catalog
from repro.core.configspace import DEFAULT_CHUNK, ConfigurationSpace
from repro.errors import ValidationError
from repro.pareto.frontier import pareto_mask_2d
from repro.units import SECONDS_PER_HOUR
from repro.workflow.dag import WorkflowDAG

__all__ = ["WorkflowPrediction", "predict_workflow",
           "select_workflow_configurations", "WorkflowSelection",
           "WorkflowParetoPoint"]


@dataclass(frozen=True, slots=True)
class WorkflowPrediction:
    """Predicted makespan and cost of a workflow on one configuration."""

    time_hours: float
    cost_dollars: float
    work_bound_hours: float
    critical_path_bound_hours: float

    @property
    def latency_bound(self) -> bool:
        """True when the critical path, not capacity, limits the run."""
        return self.critical_path_bound_hours > self.work_bound_hours


def _per_vcpu_rates(catalog: Catalog, capacities_gips: np.ndarray
                    ) -> np.ndarray:
    return np.asarray(capacities_gips, dtype=float) / catalog.vcpus


def predict_workflow(
    workflow: WorkflowDAG,
    configuration: np.ndarray | tuple[int, ...],
    catalog: Catalog,
    capacities_gips: np.ndarray,
) -> WorkflowPrediction:
    """Two-bound prediction for one explicit configuration."""
    config = np.asarray(configuration, dtype=np.int64)
    if config.shape != (len(catalog),):
        raise ValidationError("configuration width must match the catalog")
    if config.sum() == 0:
        raise ValidationError("configuration must contain at least one node")
    capacities = np.asarray(capacities_gips, dtype=float)
    if capacities.shape != (len(catalog),):
        raise ValidationError("capacities must align with the catalog")

    total_capacity = float(config @ capacities)
    unit_cost = float(config @ catalog.prices)
    per_vcpu = _per_vcpu_rates(catalog, capacities)
    fastest_vcpu = float(per_vcpu[config > 0].max())

    work_bound = workflow.total_gi / total_capacity / SECONDS_PER_HOUR
    _, cp_gi = workflow.critical_path()
    cp_bound = cp_gi / fastest_vcpu / SECONDS_PER_HOUR
    time_hours = max(work_bound, cp_bound)
    return WorkflowPrediction(
        time_hours=time_hours,
        cost_dollars=time_hours * unit_cost,
        work_bound_hours=work_bound,
        critical_path_bound_hours=cp_bound,
    )


@dataclass(frozen=True, slots=True)
class WorkflowParetoPoint:
    """One Pareto-optimal configuration for a workflow."""

    configuration: tuple[int, ...]
    time_hours: float
    cost_dollars: float
    latency_bound: bool


@dataclass(frozen=True)
class WorkflowSelection:
    """Workflow-aware Algorithm 1 output."""

    total_configurations: int
    feasible_count: int
    pareto: tuple[WorkflowParetoPoint, ...]
    deadline_hours: float
    budget_dollars: float

    @property
    def pareto_count(self) -> int:
        """Number of frontier configurations."""
        return len(self.pareto)


def select_workflow_configurations(
    workflow: WorkflowDAG,
    catalog: Catalog,
    capacities_gips: np.ndarray,
    deadline_hours: float,
    budget_dollars: float,
    *,
    chunk_size: int = DEFAULT_CHUNK,
) -> WorkflowSelection:
    """Exhaustive workflow selection with the two-bound time model.

    Chunk-wise over the space: capacity and unit cost come from matrix
    products as usual; the per-configuration fastest-vCPU rate is a
    masked maximum over the types a configuration uses.
    """
    if deadline_hours <= 0 or budget_dollars <= 0:
        raise ValidationError("deadline and budget must be positive")
    capacities = np.asarray(capacities_gips, dtype=float)
    if capacities.shape != (len(catalog),):
        raise ValidationError("capacities must align with the catalog")

    space = ConfigurationSpace(catalog)
    prices = catalog.prices
    per_vcpu = _per_vcpu_rates(catalog, capacities)
    total_gi = workflow.total_gi
    _, cp_gi = workflow.critical_path()

    feasible_count = 0
    cand_t: list[np.ndarray] = []
    cand_c: list[np.ndarray] = []
    cand_i: list[np.ndarray] = []
    for start, matrix in space.iter_chunks(chunk_size):
        capacity = matrix @ capacities
        unit_cost = matrix @ prices
        used = matrix > 0
        fastest = np.where(used, per_vcpu[None, :], 0.0).max(axis=1)
        work_bound = total_gi / capacity
        cp_bound = cp_gi / fastest
        times = np.maximum(work_bound, cp_bound) / SECONDS_PER_HOUR
        costs = times * unit_cost
        mask = (times < deadline_hours) & (costs < budget_dollars)
        n_f = int(np.count_nonzero(mask))
        feasible_count += n_f
        if n_f == 0:
            continue
        t_f, c_f = times[mask], costs[mask]
        rows = np.flatnonzero(mask) + start - 1
        local = pareto_mask_2d(t_f, c_f)
        cand_t.append(t_f[local])
        cand_c.append(c_f[local])
        cand_i.append(rows[local])

    pareto_points: list[WorkflowParetoPoint] = []
    if cand_t:
        all_t = np.concatenate(cand_t)
        all_c = np.concatenate(cand_c)
        all_i = np.concatenate(cand_i)
        final = pareto_mask_2d(all_t, all_c)
        order = np.argsort(all_t[final], kind="stable")
        for t, c, row in zip(all_t[final][order], all_c[final][order],
                             all_i[final][order]):
            config = space.decode(int(row) + 1)[0]
            fastest = float(per_vcpu[config > 0].max())
            cp_bound_h = cp_gi / fastest / SECONDS_PER_HOUR
            work_bound_h = total_gi / float(config @ capacities) \
                / SECONDS_PER_HOUR
            pareto_points.append(
                WorkflowParetoPoint(
                    configuration=tuple(int(v) for v in config),
                    time_hours=float(t),
                    cost_dollars=float(c),
                    latency_bound=cp_bound_h > work_bound_h,
                )
            )
    return WorkflowSelection(
        total_configurations=space.size,
        feasible_count=feasible_count,
        pareto=tuple(pareto_points),
        deadline_hours=deadline_hours,
        budget_dollars=budget_dollars,
    )
