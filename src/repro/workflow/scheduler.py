"""Discrete-event workflow execution with precedence constraints.

Validates the analytical two-bound model the way Table IV validates
Eq. 2: execute the workflow on a simulated cluster using list scheduling
— a stage becomes *ready* when all its predecessors complete; tasks of
ready stages are pulled by free vCPU slots in topological order.

Built directly on :class:`~repro.engine.events.EventSimulator`, making
this module the engine's showcase consumer of the DES core.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine.cluster import SimCluster
from repro.engine.events import EventSimulator
from repro.errors import SimulationError
from repro.units import seconds_to_hours
from repro.workflow.dag import WorkflowDAG

__all__ = ["WorkflowReport", "execute_workflow"]


@dataclass(frozen=True)
class WorkflowReport:
    """Result of one workflow execution."""

    makespan_hours: float
    stage_finish_hours: dict[str, float]
    busy_fraction: float
    n_tasks: int

    def finish_order(self) -> list[str]:
        """Stage names ordered by completion time."""
        return sorted(self.stage_finish_hours,
                      key=lambda k: self.stage_finish_hours[k])


def execute_workflow(
    workflow: WorkflowDAG,
    cluster: SimCluster,
    *,
    rng: np.random.Generator | None = None,
    jitter_sigma: float = 0.0,
) -> WorkflowReport:
    """Run the workflow to completion on the cluster.

    Scheduling policy: FIFO over ready tasks (stages become ready in
    topological order as predecessors finish); each free slot takes the
    next ready task.  Per-task log-normal jitter optional.
    """
    rng = rng or np.random.default_rng(0)
    sim = EventSimulator()
    slot_rates = cluster.slot_rates()
    n_slots = slot_rates.size

    remaining_preds = {
        stage.name: len(workflow.predecessors(stage.name))
        for stage in workflow.stages
    }
    remaining_tasks = {s.name: s.n_tasks for s in workflow.stages}
    ready_tasks: list[tuple[str, float]] = []  # (stage, task_gi) FIFO
    free_slots: list[int] = list(range(n_slots))
    stage_finish: dict[str, float] = {}
    busy_seconds = 0.0
    total_tasks = sum(s.n_tasks for s in workflow.stages)

    def enqueue_stage(name: str) -> None:
        stage = workflow.stage(name)
        ready_tasks.extend((name, stage.task_gi) for _ in range(stage.n_tasks))

    def dispatch() -> None:
        nonlocal busy_seconds
        while free_slots and ready_tasks:
            slot = free_slots.pop()
            stage_name, gi = ready_tasks.pop(0)
            jitter = (rng.lognormal(0.0, jitter_sigma)
                      if jitter_sigma > 0 else 1.0)
            duration = gi / (slot_rates[slot] * jitter)
            busy_seconds += duration
            sim.schedule(duration, lambda s=slot, n=stage_name: finish(s, n))

    def finish(slot: int, stage_name: str) -> None:
        free_slots.append(slot)
        remaining_tasks[stage_name] -= 1
        if remaining_tasks[stage_name] == 0:
            stage_finish[stage_name] = sim.now
            for succ in workflow.graph.successors(stage_name):
                remaining_preds[succ] -= 1
                if remaining_preds[succ] == 0:
                    enqueue_stage(succ)
        dispatch()

    for stage in workflow.stages:
        if remaining_preds[stage.name] == 0:
            enqueue_stage(stage.name)
    dispatch()
    makespan_seconds = sim.run()

    if any(count != 0 for count in remaining_tasks.values()):
        raise SimulationError("workflow did not drain — scheduling bug")
    return WorkflowReport(
        makespan_hours=seconds_to_hours(makespan_seconds),
        stage_finish_hours={k: seconds_to_hours(v)
                            for k, v in stage_finish.items()},
        busy_fraction=busy_seconds / (makespan_seconds * n_slots)
        if makespan_seconds > 0 else 0.0,
        n_tasks=total_tasks,
    )
