"""Workflows — CELIA extended to DAGs of inter-dependent stages.

The paper optimizes single "highly-parallelizable" applications and cites
workflow schedulers (Mao & Humphrey, Kllapi et al., Zhou et al.) as
complementary related work.  This package closes that gap: a workflow is
a DAG of *stages* (each a bag of independent tasks), and CELIA's
time/cost machinery generalizes with one change — predicted time becomes
the maximum of the work bound ``D_total / U_j`` and the *critical-path*
bound (the chain of dependent stages cannot finish faster than its
serial executions on the fastest vCPU), so wide-but-shallow and
narrow-but-deep workflows price differently on the same configuration.

Contents:

* :mod:`~repro.workflow.dag` — the stage DAG (networkx-backed),
  demand aggregation, critical-path extraction, common topology builders;
* :mod:`~repro.workflow.model` — the two-bound analytical time model and
  workflow-aware configuration selection over the full space;
* :mod:`~repro.workflow.scheduler` — a discrete-event precedence
  scheduler that executes workflows on simulated clusters, validating
  the analytical bound the way Table IV validates Eq. 2.
"""

from repro.workflow.dag import Stage, WorkflowDAG, chain, fork_join, diamond
from repro.workflow.model import (
    WorkflowPrediction,
    predict_workflow,
    select_workflow_configurations,
)
from repro.workflow.scheduler import WorkflowReport, execute_workflow

__all__ = [
    "Stage",
    "WorkflowDAG",
    "chain",
    "fork_join",
    "diamond",
    "WorkflowPrediction",
    "predict_workflow",
    "select_workflow_configurations",
    "WorkflowReport",
    "execute_workflow",
]
