"""Workflow DAGs: stages of independent tasks with precedence edges.

A :class:`Stage` is a bag of ``n_tasks`` independent tasks of
``task_gi`` GI each (the natural granularity of the paper's
applications: encode jobs, alignment chunks, simulation phases).  A
:class:`WorkflowDAG` wires stages with precedence edges — a stage may
start only when all its predecessors have *completely* finished (stage-
barrier semantics, as in Pegasus/Montage-style scientific workflows).

The graph lives in a :class:`networkx.DiGraph`, which provides cycle
detection, topological order and longest-path (critical path) machinery.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.errors import ValidationError

__all__ = ["Stage", "WorkflowDAG", "chain", "fork_join", "diamond"]


@dataclass(frozen=True, slots=True)
class Stage:
    """One workflow stage: ``n_tasks`` independent tasks of equal size."""

    name: str
    n_tasks: int
    task_gi: float

    def __post_init__(self) -> None:
        if self.n_tasks < 1:
            raise ValidationError(f"stage {self.name}: n_tasks must be >= 1")
        if self.task_gi <= 0:
            raise ValidationError(f"stage {self.name}: task_gi must be > 0")

    @property
    def total_gi(self) -> float:
        """Total work of the stage."""
        return self.n_tasks * self.task_gi


class WorkflowDAG:
    """A directed acyclic graph of stages.

    Parameters
    ----------
    stages:
        All stages, uniquely named.
    edges:
        (predecessor_name, successor_name) pairs.
    """

    def __init__(self, stages: list[Stage],
                 edges: list[tuple[str, str]] | None = None):
        if not stages:
            raise ValidationError("workflow needs at least one stage")
        names = [s.name for s in stages]
        if len(set(names)) != len(names):
            raise ValidationError(f"duplicate stage names: {names}")
        self._stages = {s.name: s for s in stages}
        graph = nx.DiGraph()
        graph.add_nodes_from(names)
        for pred, succ in edges or []:
            if pred not in self._stages or succ not in self._stages:
                raise ValidationError(
                    f"edge ({pred}, {succ}) references unknown stages")
            graph.add_edge(pred, succ)
        if not nx.is_directed_acyclic_graph(graph):
            raise ValidationError("workflow graph contains a cycle")
        self.graph = graph

    # -- introspection -------------------------------------------------------

    @property
    def stages(self) -> list[Stage]:
        """All stages in topological order."""
        return [self._stages[name] for name in nx.topological_sort(self.graph)]

    def stage(self, name: str) -> Stage:
        """Stage lookup by name."""
        try:
            return self._stages[name]
        except KeyError:
            raise ValidationError(f"no stage named {name!r}") from None

    def predecessors(self, name: str) -> list[str]:
        """Names of stages that must finish before ``name`` starts."""
        self.stage(name)
        return sorted(self.graph.predecessors(name))

    def __len__(self) -> int:
        return len(self._stages)

    # -- demand aggregates ------------------------------------------------------

    @property
    def total_gi(self) -> float:
        """Total work across all stages (the workflow's ``D``)."""
        return sum(s.total_gi for s in self._stages.values())

    def critical_path(self) -> tuple[list[str], float]:
        """(stage names, serial GI) of the heaviest dependency chain.

        The weight of a chain is the sum over its stages of the *serial
        residue* — one task's GI per stage under stage-barrier semantics
        a successor waits for the whole stage; with unlimited slots a
        stage still takes at least one task's duration, so the chain
        cannot beat Σ task_gi along the path.
        """
        def weight(name: str) -> float:
            return self._stages[name].task_gi

        best_path: list[str] = []
        best_weight = -1.0
        # Longest path by node weights: dynamic programming over topo order.
        dist: dict[str, float] = {}
        prev: dict[str, str | None] = {}
        for name in nx.topological_sort(self.graph):
            preds = list(self.graph.predecessors(name))
            if preds:
                best_pred = max(preds, key=lambda p: dist[p])
                dist[name] = dist[best_pred] + weight(name)
                prev[name] = best_pred
            else:
                dist[name] = weight(name)
                prev[name] = None
            if dist[name] > best_weight:
                best_weight = dist[name]
                end = name
        # Reconstruct.
        node: str | None = end
        while node is not None:
            best_path.append(node)
            node = prev[node]
        best_path.reverse()
        return best_path, best_weight

    def level_widths(self) -> list[int]:
        """Task counts per topological generation (a parallelism profile)."""
        return [
            sum(self._stages[name].n_tasks for name in generation)
            for generation in nx.topological_generations(self.graph)
        ]


# -- common topology builders ----------------------------------------------------


def chain(stage_sizes: list[tuple[int, float]], *,
          prefix: str = "s") -> WorkflowDAG:
    """A linear pipeline: s0 → s1 → ... with given (n_tasks, task_gi)."""
    stages = [Stage(name=f"{prefix}{k}", n_tasks=n, task_gi=gi)
              for k, (n, gi) in enumerate(stage_sizes)]
    edges = [(f"{prefix}{k}", f"{prefix}{k + 1}")
             for k in range(len(stages) - 1)]
    return WorkflowDAG(stages, edges)


def fork_join(n_branches: int, branch_tasks: int, branch_task_gi: float,
              *, setup_gi: float = 1.0, join_gi: float = 1.0) -> WorkflowDAG:
    """setup → N parallel branches → join (map-reduce shape)."""
    if n_branches < 1:
        raise ValidationError("need at least one branch")
    stages = [Stage(name="setup", n_tasks=1, task_gi=setup_gi)]
    edges = []
    for b in range(n_branches):
        name = f"branch{b}"
        stages.append(Stage(name=name, n_tasks=branch_tasks,
                            task_gi=branch_task_gi))
        edges.append(("setup", name))
        edges.append((name, "join"))
    stages.append(Stage(name="join", n_tasks=1, task_gi=join_gi))
    return WorkflowDAG(stages, edges)


def diamond(top_gi: float, left: tuple[int, float], right: tuple[int, float],
            bottom_gi: float) -> WorkflowDAG:
    """top → {left, right} → bottom."""
    stages = [
        Stage(name="top", n_tasks=1, task_gi=top_gi),
        Stage(name="left", n_tasks=left[0], task_gi=left[1]),
        Stage(name="right", n_tasks=right[0], task_gi=right[1]),
        Stage(name="bottom", n_tasks=1, task_gi=bottom_gi),
    ]
    edges = [("top", "left"), ("top", "right"),
             ("left", "bottom"), ("right", "bottom")]
    return WorkflowDAG(stages, edges)
