"""Exception hierarchy for the CELIA reproduction.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still distinguishing configuration errors from runtime simulation failures.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "CatalogError",
    "QuotaExceededError",
    "ProvisioningError",
    "TransientProvisioningError",
    "InsufficientCapacityError",
    "ApiThrottledError",
    "ProvisioningExhaustedError",
    "MeasurementError",
    "FittingError",
    "InfeasibleError",
    "SimulationError",
    "ValidationError",
    "ServiceUnavailableError",
    "WorkerLostError",
    "FleetOverloadedError",
    "CircuitOpenError",
]


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigurationError(ReproError):
    """An invalid cloud configuration was constructed or requested.

    Raised, for example, when a configuration vector has negative node
    counts, has the wrong dimensionality for its catalog, or is the empty
    (all-zero) configuration where a non-empty one is required.
    """


class CatalogError(ReproError):
    """A resource catalog is malformed (duplicate types, bad prices...)."""


class QuotaExceededError(ConfigurationError):
    """A configuration requests more nodes of a type than its quota allows."""


class ProvisioningError(ReproError):
    """The simulated provider could not satisfy a provisioning request."""


class TransientProvisioningError(ProvisioningError):
    """A provisioning failure that may succeed on retry.

    Real IaaS APIs fail transiently all the time (capacity shortfalls,
    request throttling); callers are expected to back off and retry
    rather than give up.  Subclasses identify the retry-relevant cause.
    """


class InsufficientCapacityError(TransientProvisioningError):
    """The provider is temporarily out of capacity for one instance type.

    Mirrors EC2's ``InsufficientInstanceCapacity``: the account quota
    allows the request but the underlying pool cannot place it right
    now.  Retrying later — or substituting a different type — may
    succeed.
    """

    def __init__(self, message: str, *, type_index: int, type_name: str):
        super().__init__(message)
        self.type_index = type_index
        self.type_name = type_name


class ApiThrottledError(TransientProvisioningError):
    """The provisioning API rejected the call for rate limiting.

    Throttling is request-scoped, not type-scoped: backing off and
    replaying the identical request is the only remedy (substituting
    types does not help).
    """


class ProvisioningExhaustedError(ProvisioningError):
    """A bounded retry loop gave up without obtaining a lease."""

    def __init__(self, message: str, *, attempts: int,
                 elapsed_seconds: float):
        super().__init__(message)
        self.attempts = attempts
        self.elapsed_seconds = elapsed_seconds


class MeasurementError(ReproError):
    """A baseline measurement could not be performed or is inconsistent."""


class FittingError(ReproError):
    """Demand-model fitting failed (rank deficiency, too few samples...)."""


class InfeasibleError(ReproError):
    """No configuration satisfies the given deadline and budget."""

    def __init__(self, message: str, *, deadline_hours: float | None = None,
                 budget_dollars: float | None = None):
        super().__init__(message)
        self.deadline_hours = deadline_hours
        self.budget_dollars = budget_dollars


class SimulationError(ReproError):
    """The discrete-event execution engine reached an inconsistent state."""


class ValidationError(ReproError):
    """An input value failed validation (out of the meaningful range)."""


class ServiceUnavailableError(ReproError):
    """A remote planning service stayed unreachable through bounded retries.

    Raised by :class:`~repro.service.client.PlannerClient` after its
    retry budget is spent on connection failures and 503 responses; the
    last underlying error is attached as ``__cause__``.
    """

    def __init__(self, message: str, *, attempts: int):
        super().__init__(message)
        self.attempts = attempts


class WorkerLostError(ServiceUnavailableError):
    """A fleet shard worker died while holding this request.

    The fleet front end returns this as a 503 ``worker_lost`` envelope
    when the owning shard dropped mid-request and the one fallback
    attempt failed too.  :class:`~repro.service.client.PlannerClient`
    replays an idempotent request exactly once — the dead worker has
    already left routing, so the replay lands on the re-routed shard —
    and raises this (never a raw ``ConnectionError``) if that also
    fails.
    """

    def __init__(self, message: str, *, attempts: int = 1):
        super().__init__(message, attempts=attempts)


class FleetOverloadedError(ServiceUnavailableError):
    """The fleet shed this request at an in-flight cap.

    Returned as a typed 503 ``overloaded`` (per-worker cap) or 429
    ``too_many_requests`` (fleet-wide cap) envelope carrying a
    ``Retry-After`` hint; ``retry_after_s`` mirrors that hint so
    :class:`~repro.service.client.PlannerClient` can pace its retry
    instead of hammering a saturated fleet.
    """

    def __init__(self, message: str, *, attempts: int = 1,
                 retry_after_s: float | None = None):
        super().__init__(message, attempts=attempts)
        self.retry_after_s = retry_after_s


class CircuitOpenError(ServiceUnavailableError):
    """The client's circuit breaker is open: the request was not sent.

    After ``failure_threshold`` consecutive failed request cycles the
    breaker stops traffic locally for ``reset_timeout_s``, then lets a
    single half-open probe through; ``retry_after_s`` says how long
    until that probe slot opens.
    """

    def __init__(self, message: str, *, retry_after_s: float = 0.0):
        super().__init__(message, attempts=0)
        self.retry_after_s = retry_after_s
