"""Exception hierarchy for the CELIA reproduction.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still distinguishing configuration errors from runtime simulation failures.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "CatalogError",
    "QuotaExceededError",
    "ProvisioningError",
    "MeasurementError",
    "FittingError",
    "InfeasibleError",
    "SimulationError",
    "ValidationError",
]


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigurationError(ReproError):
    """An invalid cloud configuration was constructed or requested.

    Raised, for example, when a configuration vector has negative node
    counts, has the wrong dimensionality for its catalog, or is the empty
    (all-zero) configuration where a non-empty one is required.
    """


class CatalogError(ReproError):
    """A resource catalog is malformed (duplicate types, bad prices...)."""


class QuotaExceededError(ConfigurationError):
    """A configuration requests more nodes of a type than its quota allows."""


class ProvisioningError(ReproError):
    """The simulated provider could not satisfy a provisioning request."""


class MeasurementError(ReproError):
    """A baseline measurement could not be performed or is inconsistent."""


class FittingError(ReproError):
    """Demand-model fitting failed (rank deficiency, too few samples...)."""


class InfeasibleError(ReproError):
    """No configuration satisfies the given deadline and budget."""

    def __init__(self, message: str, *, deadline_hours: float | None = None,
                 budget_dollars: float | None = None):
        super().__init__(message)
        self.deadline_hours = deadline_hours
        self.budget_dollars = budget_dollars


class SimulationError(ReproError):
    """The discrete-event execution engine reached an inconsistent state."""


class ValidationError(ReproError):
    """An input value failed validation (out of the meaningful range)."""
