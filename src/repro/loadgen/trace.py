"""Reproducible multi-tenant request traces.

A trace is an immutable, fully materialized sequence of planner requests
with *open-loop* arrival timestamps: each record says when the request
enters the system relative to trace start, independent of how fast the
service answers.  Traces are the contract between the workload generator
(:mod:`repro.loadgen.tenants`), the replayer (:mod:`repro.loadgen.replay`)
and the capacity experiment — they serialize to JSONL so a trace generated
once can be replayed against any deployment, diffed byte-for-byte, and
content-addressed by the evaluation cache.

Determinism contract: for a fixed generator config and seed the JSONL
serialization is **byte-identical across processes**.  Every numeric field
is a plain Python ``float``/``int`` (``repr``-based JSON encoding is exact
and stable), records are emitted in sorted arrival order with a stable
tie-break, and ``json.dumps(..., sort_keys=True)`` fixes key order.
"""

from __future__ import annotations

import json
from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ValidationError

__all__ = [
    "TRACE_FORMAT_VERSION",
    "REQUEST_KINDS",
    "TraceRequest",
    "Trace",
    "merge_sorted",
]

#: Bumped whenever the JSONL schema changes incompatibly.
TRACE_FORMAT_VERSION = 1

_HEADER_KIND = "trace-header"

#: Request kinds the replayer knows how to fire (service POST routes).
REQUEST_KINDS = ("select", "predict")


@dataclass(frozen=True, slots=True)
class TraceRequest:
    """One planner request at a scheduled arrival offset.

    ``arrival_s`` is seconds since trace start; ``request_id`` is the dense
    global arrival index (0..N-1) and doubles as the deterministic
    tie-break for simultaneous arrivals.  ``(app, quota, seed)`` is the
    warm-state signature the fleet routes on; ``(n, a)`` is the demand
    point, unique per request so result caches cannot short-circuit the
    replay.
    """

    request_id: int
    arrival_s: float
    tenant: str
    app: str
    quota: int
    seed: int
    n: float
    a: float
    deadline_hours: float
    budget_dollars: float
    kind: str = "select"
    burst: bool = False

    def __post_init__(self) -> None:
        if self.kind not in REQUEST_KINDS:
            raise ValidationError(
                f"unknown request kind {self.kind!r}; choose from {REQUEST_KINDS}"
            )
        if self.arrival_s < 0:
            raise ValidationError("arrival_s must be >= 0")

    def body(self) -> dict:
        """The JSON body POSTed to ``/v1/<kind>``."""
        return {
            "app": self.app,
            "n": self.n,
            "a": self.a,
            "deadline_hours": self.deadline_hours,
            "budget_dollars": self.budget_dollars,
            "quota": self.quota,
            "seed": self.seed,
        }

    def warm_key(self) -> tuple[str, int, int]:
        """The warm-state signature the fleet shards on."""
        return (self.app, self.quota, self.seed)

    def to_dict(self) -> dict:
        return {
            "request_id": self.request_id,
            "arrival_s": float(self.arrival_s),
            "tenant": self.tenant,
            "app": self.app,
            "quota": int(self.quota),
            "seed": int(self.seed),
            "n": float(self.n),
            "a": float(self.a),
            "deadline_hours": float(self.deadline_hours),
            "budget_dollars": float(self.budget_dollars),
            "kind": self.kind,
            "burst": bool(self.burst),
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "TraceRequest":
        try:
            return cls(
                request_id=int(payload["request_id"]),
                arrival_s=float(payload["arrival_s"]),
                tenant=str(payload["tenant"]),
                app=str(payload["app"]),
                quota=int(payload["quota"]),
                seed=int(payload["seed"]),
                n=float(payload["n"]),
                a=float(payload["a"]),
                deadline_hours=float(payload["deadline_hours"]),
                budget_dollars=float(payload["budget_dollars"]),
                kind=str(payload.get("kind", "select")),
                burst=bool(payload.get("burst", False)),
            )
        except KeyError as exc:  # pragma: no cover - defensive
            raise ValidationError(f"trace record missing field {exc}") from None


@dataclass(frozen=True)
class Trace:
    """An ordered, validated request trace plus its generator provenance."""

    name: str
    seed: int
    duration_s: float
    requests: tuple[TraceRequest, ...]
    config: Mapping = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "requests", tuple(self.requests))
        object.__setattr__(self, "config", dict(self.config))
        self.validate()

    # -- introspection ----------------------------------------------------

    def __len__(self) -> int:
        return len(self.requests)

    @property
    def tenants(self) -> tuple[str, ...]:
        return tuple(sorted({r.tenant for r in self.requests}))

    @property
    def warm_keys(self) -> tuple[tuple[str, int, int], ...]:
        return tuple(sorted({r.warm_key() for r in self.requests}))

    def offered_rps(self) -> float:
        """Mean offered request rate over the trace duration."""
        if self.duration_s <= 0:
            return 0.0
        return len(self.requests) / self.duration_s

    def validate(self) -> None:
        """Raise :class:`ValidationError` on any structural violation."""
        if self.duration_s <= 0:
            raise ValidationError("trace duration_s must be positive")
        previous = -1.0
        for index, request in enumerate(self.requests):
            if request.request_id != index:
                raise ValidationError(
                    f"request_id {request.request_id} at position {index}: "
                    "ids must be dense in arrival order"
                )
            if request.arrival_s < previous:
                raise ValidationError(
                    f"arrivals out of order at request {index}"
                )
            if request.arrival_s > self.duration_s:
                raise ValidationError(
                    f"request {index} arrives after trace end"
                )
            previous = request.arrival_s

    # -- JSONL round-trip -------------------------------------------------

    def header(self) -> dict:
        return {
            "kind": _HEADER_KIND,
            "version": TRACE_FORMAT_VERSION,
            "name": self.name,
            "seed": int(self.seed),
            "duration_s": float(self.duration_s),
            "requests": len(self.requests),
            "tenants": list(self.tenants),
            "config": dict(self.config),
        }

    def to_jsonl(self) -> str:
        lines = [json.dumps(self.header(), sort_keys=True)]
        lines.extend(
            json.dumps(request.to_dict(), sort_keys=True)
            for request in self.requests
        )
        return "\n".join(lines) + "\n"

    @classmethod
    def from_jsonl(cls, text: str) -> "Trace":
        lines = [line for line in text.splitlines() if line.strip()]
        if not lines:
            raise ValidationError("empty trace document")
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError as exc:
            raise ValidationError(f"bad trace header: {exc}") from None
        if header.get("kind") != _HEADER_KIND:
            raise ValidationError("first line is not a trace header")
        version = header.get("version")
        if version != TRACE_FORMAT_VERSION:
            raise ValidationError(
                f"trace format version {version!r} unsupported "
                f"(expected {TRACE_FORMAT_VERSION})"
            )
        requests = tuple(
            TraceRequest.from_dict(json.loads(line)) for line in lines[1:]
        )
        if len(requests) != int(header.get("requests", -1)):
            raise ValidationError(
                f"header promises {header.get('requests')} requests, "
                f"document has {len(requests)}"
            )
        return cls(
            name=str(header.get("name", "trace")),
            seed=int(header.get("seed", 0)),
            duration_s=float(header["duration_s"]),
            requests=requests,
            config=header.get("config", {}),
        )

    def write(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_jsonl(), encoding="utf-8")
        return path

    @classmethod
    def read(cls, path: str | Path) -> "Trace":
        return cls.from_jsonl(Path(path).read_text(encoding="utf-8"))


def merge_sorted(streams: Iterable[Iterable[TraceRequest]]) -> list[TraceRequest]:
    """Merge per-tenant request streams into global arrival order.

    The tie-break (arrival, tenant, original position) is total and
    deterministic, so the merged order — and therefore the assigned dense
    ``request_id`` — never depends on dict/iteration order.
    """
    tagged = [
        (request.arrival_s, request.tenant, position, request)
        for stream in streams
        for position, request in enumerate(stream)
    ]
    tagged.sort(key=lambda item: item[:3])
    merged = []
    for index, (_, _, _, request) in enumerate(tagged):
        merged.append(
            TraceRequest(
                request_id=index,
                arrival_s=request.arrival_s,
                tenant=request.tenant,
                app=request.app,
                quota=request.quota,
                seed=request.seed,
                n=request.n,
                a=request.a,
                deadline_hours=request.deadline_hours,
                budget_dollars=request.budget_dollars,
                kind=request.kind,
                burst=request.burst,
            )
        )
    return merged
