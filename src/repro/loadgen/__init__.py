"""Trace-driven multi-tenant load generation and replay.

The package closes ROADMAP item 5's loop: CELIA plans cost-time
frontiers for elastic applications, and :mod:`repro.loadgen` applies the
same discipline to the planner *service* itself —

* :mod:`repro.loadgen.trace` — reproducible request traces (dataclass
  records, byte-stable JSONL round-trip);
* :mod:`repro.loadgen.tenants` — the seeded generator: Zipf-weighted
  tenants, non-homogeneous Poisson sessions (diurnal + burst modulated),
  heavy-tail think times, per-app feasible demand envelopes;
* :mod:`repro.loadgen.replay` — the open-loop asyncio replayer
  (coordinated-omission-free latency, typed shed classification,
  per-tenant ``repro.obs`` metrics);
* :mod:`repro.loadgen.report` — deterministic replay reports with
  per-tenant percentiles and structural invariants.

The ``capacity`` experiment (:mod:`repro.experiments.capacity_exp`)
sweeps fleet shard count against trace intensity and selects the
cheapest fleet meeting a p99 SLO — CELIA's frontier selection pointed at
the service that hosts it.  See ``docs/loadgen.md``.
"""

from repro.loadgen.replay import (Observation, ReplayResult, SHED_CODES,
                                  prewarm, replay_trace, replay_trace_sync)
from repro.loadgen.report import ReplayReport, TenantStats, check_invariants
from repro.loadgen.tenants import (APP_ENVELOPES, TenantProfile,
                                   WorkloadConfig, generate_trace, tenant_mix)
from repro.loadgen.trace import (TRACE_FORMAT_VERSION, Trace, TraceRequest,
                                 merge_sorted)

__all__ = [
    "APP_ENVELOPES",
    "Observation",
    "ReplayReport",
    "ReplayResult",
    "SHED_CODES",
    "TRACE_FORMAT_VERSION",
    "TenantProfile",
    "TenantStats",
    "Trace",
    "TraceRequest",
    "WorkloadConfig",
    "check_invariants",
    "generate_trace",
    "merge_sorted",
    "prewarm",
    "replay_trace",
    "replay_trace_sync",
    "tenant_mix",
]
