"""Trace-replay reports: deterministic aggregation of a replay run.

A :class:`ReplayReport` is computed from the raw observations, not from
the metrics histograms: percentiles are exact over *all* samples (no
sliding-window truncation) and, because observations are keyed by the
trace's dense ``request_id``, the aggregation is **independent of
completion order** — replaying the same responses under any concurrency
interleaving yields an identical report.  That property is load-bearing:
the determinism tests shuffle observation order and assert byte-equal
report JSON.

The report answers the operator questions a replay exists to ask:

* did the service keep its availability under this trace
  (``availability`` counts sheds apart from errors)?
* what latency did each tenant actually see (per-tenant p50/p95/p99
  measured from *intended* arrival — coordinated-omission-free)?
* was the replayer itself honest (``max_lag_s`` bounds scheduling skew;
  a lagging replayer under-drives the service)?
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ValidationError
from repro.loadgen.replay import ReplayResult
from repro.utils.tables import TextTable

__all__ = ["TenantStats", "ReplayReport", "check_invariants"]

_PCTS = (50.0, 95.0, 99.0)


def _percentile(ordered: "list[float]", p: float) -> float:
    """Nearest-rank percentile on a sorted, non-empty list."""
    last = len(ordered) - 1
    return ordered[min(last, round(p / 100.0 * last))]


@dataclass(frozen=True, slots=True)
class TenantStats:
    """One tenant's slice of a replay."""

    tenant: str
    requests: int
    ok: int
    shed: int
    infeasible: int
    errors: int
    p50_s: float
    p95_s: float
    p99_s: float
    max_s: float

    def to_dict(self) -> dict:
        return {
            "tenant": self.tenant,
            "requests": self.requests,
            "ok": self.ok,
            "shed": self.shed,
            "infeasible": self.infeasible,
            "errors": self.errors,
            "p50_s": self.p50_s,
            "p95_s": self.p95_s,
            "p99_s": self.p99_s,
            "max_s": self.max_s,
        }


@dataclass(frozen=True)
class ReplayReport:
    """Aggregated view of one replay run (JSON round-trip + table render)."""

    trace_name: str
    trace_seed: int
    duration_s: float
    time_scale: float
    wall_s: float
    requests: int
    ok: int
    shed: int
    infeasible: int
    errors: int
    availability: float
    offered_rps: float
    achieved_rps: float
    p50_s: float
    p95_s: float
    p99_s: float
    max_s: float
    max_lag_s: float
    peak_inflight: int
    tenants: tuple[TenantStats, ...]
    burst_p99_s: float = 0.0
    calm_p99_s: float = 0.0
    server_metrics: dict = field(default_factory=dict)

    # -- construction -----------------------------------------------------

    @classmethod
    def from_result(cls, result: ReplayResult) -> "ReplayReport":
        observations = sorted(result.observations,
                              key=lambda obs: obs.request_id)
        counts = {"ok": 0, "shed": 0, "infeasible": 0, "error": 0}
        latencies: list[float] = []
        burst_lat: list[float] = []
        calm_lat: list[float] = []
        by_tenant: dict[str, list] = {}
        max_lag = 0.0
        for obs in observations:
            counts[obs.status] += 1
            by_tenant.setdefault(obs.tenant, []).append(obs)
            max_lag = max(max_lag, obs.lag_s)
            if obs.status == "ok":
                latencies.append(obs.latency_s)
                (burst_lat if obs.burst else calm_lat).append(obs.latency_s)
        latencies.sort()
        burst_lat.sort()
        calm_lat.sort()

        tenants = []
        for tenant in sorted(by_tenant):
            rows = by_tenant[tenant]
            ok_lat = sorted(o.latency_s for o in rows if o.status == "ok")
            tenants.append(TenantStats(
                tenant=tenant,
                requests=len(rows),
                ok=sum(1 for o in rows if o.status == "ok"),
                shed=sum(1 for o in rows if o.status == "shed"),
                infeasible=sum(1 for o in rows if o.status == "infeasible"),
                errors=sum(1 for o in rows if o.status == "error"),
                p50_s=_percentile(ok_lat, 50.0) if ok_lat else 0.0,
                p95_s=_percentile(ok_lat, 95.0) if ok_lat else 0.0,
                p99_s=_percentile(ok_lat, 99.0) if ok_lat else 0.0,
                max_s=ok_lat[-1] if ok_lat else 0.0,
            ))

        total = len(observations)
        answered = counts["ok"] + counts["error"]
        wall = max(result.wall_s, 1e-9)
        return cls(
            trace_name=result.trace_name,
            trace_seed=result.trace_seed,
            duration_s=result.duration_s,
            time_scale=result.time_scale,
            wall_s=result.wall_s,
            requests=total,
            ok=counts["ok"],
            shed=counts["shed"],
            infeasible=counts["infeasible"],
            errors=counts["error"],
            availability=(counts["ok"] / answered) if answered else 1.0,
            offered_rps=total / (result.duration_s / result.time_scale)
            if result.duration_s > 0 else 0.0,
            achieved_rps=counts["ok"] / wall,
            p50_s=_percentile(latencies, 50.0) if latencies else 0.0,
            p95_s=_percentile(latencies, 95.0) if latencies else 0.0,
            p99_s=_percentile(latencies, 99.0) if latencies else 0.0,
            max_s=latencies[-1] if latencies else 0.0,
            max_lag_s=max_lag,
            peak_inflight=result.peak_inflight,
            tenants=tuple(tenants),
            burst_p99_s=_percentile(burst_lat, 99.0) if burst_lat else 0.0,
            calm_p99_s=_percentile(calm_lat, 99.0) if calm_lat else 0.0,
            server_metrics=dict(result.server_metrics),
        )

    # -- serialization ----------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "trace_name": self.trace_name,
            "trace_seed": self.trace_seed,
            "duration_s": self.duration_s,
            "time_scale": self.time_scale,
            "wall_s": self.wall_s,
            "requests": self.requests,
            "ok": self.ok,
            "shed": self.shed,
            "infeasible": self.infeasible,
            "errors": self.errors,
            "availability": self.availability,
            "offered_rps": self.offered_rps,
            "achieved_rps": self.achieved_rps,
            "p50_s": self.p50_s,
            "p95_s": self.p95_s,
            "p99_s": self.p99_s,
            "max_s": self.max_s,
            "max_lag_s": self.max_lag_s,
            "peak_inflight": self.peak_inflight,
            "burst_p99_s": self.burst_p99_s,
            "calm_p99_s": self.calm_p99_s,
            "tenants": [t.to_dict() for t in self.tenants],
            "server_metrics": self.server_metrics,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ReplayReport":
        try:
            tenants = tuple(
                TenantStats(**row) for row in payload.get("tenants", ()))
            return cls(
                trace_name=str(payload["trace_name"]),
                trace_seed=int(payload["trace_seed"]),
                duration_s=float(payload["duration_s"]),
                time_scale=float(payload["time_scale"]),
                wall_s=float(payload["wall_s"]),
                requests=int(payload["requests"]),
                ok=int(payload["ok"]),
                shed=int(payload["shed"]),
                infeasible=int(payload["infeasible"]),
                errors=int(payload["errors"]),
                availability=float(payload["availability"]),
                offered_rps=float(payload["offered_rps"]),
                achieved_rps=float(payload["achieved_rps"]),
                p50_s=float(payload["p50_s"]),
                p95_s=float(payload["p95_s"]),
                p99_s=float(payload["p99_s"]),
                max_s=float(payload["max_s"]),
                max_lag_s=float(payload["max_lag_s"]),
                peak_inflight=int(payload["peak_inflight"]),
                tenants=tenants,
                burst_p99_s=float(payload.get("burst_p99_s", 0.0)),
                calm_p99_s=float(payload.get("calm_p99_s", 0.0)),
                server_metrics=dict(payload.get("server_metrics", {})),
            )
        except (KeyError, TypeError) as exc:
            raise ValidationError(f"bad replay report: {exc}") from None

    def save(self, path: "str | Path") -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True)
                        + "\n", encoding="utf-8")
        return path

    @classmethod
    def load(cls, path: "str | Path") -> "ReplayReport":
        return cls.from_dict(
            json.loads(Path(path).read_text(encoding="utf-8")))

    # -- rendering --------------------------------------------------------

    def render(self) -> str:
        lines = [
            f"trace {self.trace_name} (seed {self.trace_seed}): "
            f"{self.requests} requests over {self.duration_s:g}s "
            f"at x{self.time_scale:g} "
            f"({self.offered_rps:.1f} offered rps, wall {self.wall_s:.1f}s)",
            f"  ok {self.ok}  shed {self.shed}  "
            f"infeasible {self.infeasible}  errors {self.errors}  "
            f"availability {self.availability:.4f}",
            f"  latency p50 {self.p50_s * 1e3:.1f}ms  "
            f"p95 {self.p95_s * 1e3:.1f}ms  p99 {self.p99_s * 1e3:.1f}ms  "
            f"max {self.max_s * 1e3:.1f}ms  "
            f"(burst p99 {self.burst_p99_s * 1e3:.1f}ms, "
            f"calm p99 {self.calm_p99_s * 1e3:.1f}ms)",
            f"  peak inflight {self.peak_inflight}  "
            f"max replayer lag {self.max_lag_s * 1e3:.1f}ms",
            "",
        ]
        table = TextTable(
            ["tenant", "requests", "ok", "shed", "err",
             "p50 ms", "p95 ms", "p99 ms"])
        for t in self.tenants:
            table.add_row([
                t.tenant, str(t.requests), str(t.ok), str(t.shed),
                str(t.errors + t.infeasible),
                f"{t.p50_s * 1e3:.1f}", f"{t.p95_s * 1e3:.1f}",
                f"{t.p99_s * 1e3:.1f}",
            ])
        lines.append(table.render())
        return "\n".join(lines)


def check_invariants(report: ReplayReport) -> "list[str]":
    """Structural invariants every honest replay report satisfies.

    Returns a list of violations (empty = sound).  The CI loadgen-smoke
    job runs this against a live replay; the tests run it against
    synthetic results.
    """
    problems = []
    if report.ok + report.shed + report.infeasible + report.errors \
            != report.requests:
        problems.append("status counts do not sum to total requests")
    if not 0.0 <= report.availability <= 1.0:
        problems.append("availability outside [0, 1]")
    if report.tenants:
        if sum(t.requests for t in report.tenants) != report.requests:
            problems.append("tenant request counts do not sum to total")
        if sum(t.ok for t in report.tenants) != report.ok:
            problems.append("tenant ok counts do not sum to total ok")
    if not report.p50_s <= report.p95_s <= report.p99_s <= report.max_s:
        problems.append("percentiles not monotone")
    for t in report.tenants:
        if t.ok and not t.p50_s <= t.p95_s <= t.p99_s <= t.max_s:
            problems.append(f"tenant {t.tenant} percentiles not monotone")
    if report.wall_s < 0 or report.max_lag_s < 0:
        problems.append("negative timing field")
    if report.peak_inflight < 0:
        problems.append("negative peak_inflight")
    return problems
