"""Seeded multi-tenant workload generation.

Each tenant is an independent seeded stream (``derive_rng(seed, "loadgen",
tenant)``), so adding or removing tenants never perturbs the others — the
same keyed-stream discipline :mod:`repro.utils.rng` gives the simulator.

The traffic model composes four classic ingredients:

* **Session arrivals** follow a non-homogeneous Poisson process, sampled
  by Lewis–Shedler thinning against the peak rate.  The instantaneous
  rate is the tenant's base rate modulated by a *diurnal* sinusoid
  (per-tenant phase) and multiplied during *burst episodes* (a seeded
  Poisson process of exponentially-sized windows).
* **Sessions** issue a geometric number of requests separated by
  **heavy-tail Pareto think times** — the open-loop replayer preserves
  these gaps regardless of service latency.
* **Demand points** ``(n, a)`` are drawn log-uniformly from a per-app
  feasibility envelope, so every request body is unique (result caches
  cannot short-circuit a replay) yet stays inside the planner's feasible
  region at the trace's quota.
* **Tenant weights** are Zipf-skewed: a few heavy tenants dominate, a
  long tail trickles.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping

from repro.errors import ValidationError
from repro.loadgen.trace import Trace, TraceRequest, merge_sorted
from repro.utils.rng import derive_rng

__all__ = [
    "APP_ENVELOPES",
    "TenantProfile",
    "WorkloadConfig",
    "tenant_mix",
    "generate_trace",
]

#: Per-app demand envelopes (n_lo, n_hi, a_lo, a_hi) known feasible at
#: quota >= 2 under the default 48 h / $350 deadline-budget pair.
APP_ENVELOPES: Mapping[str, tuple[float, float, float, float]] = {
    "x264": (600.0, 1800.0, 1.0, 40.0),
    "galaxy": (65536.0, 65536.0, 2000.0, 8000.0),
    "sand": (4.0e6, 6.4e7, 0.04, 0.04),
}

#: Demand fields each paper app validates as integers (clip counts, mass
#: counts, step counts, sequence counts); drawn values are rounded.
_INTEGER_FIELDS: Mapping[str, tuple[str, ...]] = {
    "x264": ("n",),
    "galaxy": ("n", "a"),
    "sand": ("n",),
}


@dataclass(frozen=True, slots=True)
class TenantProfile:
    """Static traffic identity of one tenant."""

    tenant: str
    app: str
    quota: int
    seed: int
    request_rate_per_s: float
    requests_per_session: float
    diurnal_phase: float

    def session_rate_per_s(self) -> float:
        return self.request_rate_per_s / max(self.requests_per_session, 1.0)


@dataclass(frozen=True)
class WorkloadConfig:
    """Knobs of the generator.  All stochastic choices derive from ``seed``."""

    tenants: int = 6
    duration_s: float = 30.0
    mean_rps: float = 20.0
    seed: int = 0
    apps: tuple[str, ...] = ("galaxy", "x264", "sand")
    quota: int = 2
    #: Planner measurement seeds cycled across tenants; together with the
    #: app this determines the warm-state signature each tenant hits.
    planner_seeds: tuple[int, ...] = (0,)
    #: Zipf exponent for the tenant weight distribution (0 = uniform).
    tenant_skew: float = 1.1
    #: Relative amplitude of the diurnal sinusoid, in [0, 1).
    diurnal_amplitude: float = 0.4
    #: One synthetic "day", compressed to trace scale.
    diurnal_period_s: float = 60.0
    #: Expected burst episodes per tenant per minute of trace.
    bursts_per_minute: float = 1.0
    #: Mean burst episode length (exponential).
    burst_len_s: float = 3.0
    #: Arrival-rate multiplier inside a burst episode.
    burst_multiplier: float = 4.0
    #: Mean requests per session (geometric).
    requests_per_session: float = 4.0
    #: Pareto tail exponent for think times (< 2 means infinite variance).
    think_alpha: float = 1.6
    #: Minimum think time between requests of one session.
    think_min_s: float = 0.05
    deadline_hours: float = 48.0
    budget_dollars: float = 350.0
    name: str = "loadgen"
    envelopes: Mapping[str, tuple[float, float, float, float]] = field(
        default_factory=lambda: dict(APP_ENVELOPES)
    )

    def __post_init__(self) -> None:
        if self.tenants < 1:
            raise ValidationError("need at least one tenant")
        if self.duration_s <= 0:
            raise ValidationError("duration_s must be positive")
        if self.mean_rps <= 0:
            raise ValidationError("mean_rps must be positive")
        if not 0 <= self.diurnal_amplitude < 1:
            raise ValidationError("diurnal_amplitude must be in [0, 1)")
        if self.burst_multiplier < 1:
            raise ValidationError("burst_multiplier must be >= 1")
        if self.think_alpha <= 1:
            raise ValidationError("think_alpha must exceed 1 (finite mean)")
        unknown = [a for a in self.apps if a not in self.envelopes]
        if unknown:
            raise ValidationError(
                f"no demand envelope for apps {unknown}; "
                f"known: {sorted(self.envelopes)}"
            )

    def to_dict(self) -> dict:
        """JSON-serializable echo stored in the trace header."""
        return {
            "tenants": self.tenants,
            "duration_s": float(self.duration_s),
            "mean_rps": float(self.mean_rps),
            "seed": int(self.seed),
            "apps": list(self.apps),
            "quota": int(self.quota),
            "planner_seeds": list(self.planner_seeds),
            "tenant_skew": float(self.tenant_skew),
            "diurnal_amplitude": float(self.diurnal_amplitude),
            "diurnal_period_s": float(self.diurnal_period_s),
            "bursts_per_minute": float(self.bursts_per_minute),
            "burst_len_s": float(self.burst_len_s),
            "burst_multiplier": float(self.burst_multiplier),
            "requests_per_session": float(self.requests_per_session),
            "think_alpha": float(self.think_alpha),
            "think_min_s": float(self.think_min_s),
            "deadline_hours": float(self.deadline_hours),
            "budget_dollars": float(self.budget_dollars),
            "name": self.name,
        }


def tenant_mix(config: WorkloadConfig) -> tuple[TenantProfile, ...]:
    """Deterministic tenant population for a config.

    Tenant ``i`` gets Zipf weight ``1/(i+1)^skew`` of the aggregate
    request rate, the ``i``-th app and planner seed round-robin, and a
    seeded diurnal phase so tenants do not peak in lockstep.
    """
    weights = [1.0 / (i + 1) ** config.tenant_skew for i in range(config.tenants)]
    total = sum(weights)
    profiles = []
    for i in range(config.tenants):
        tenant = f"t{i:02d}"
        rng = derive_rng(config.seed, "loadgen", "phase", tenant)
        profiles.append(
            TenantProfile(
                tenant=tenant,
                app=config.apps[i % len(config.apps)],
                quota=config.quota,
                seed=config.planner_seeds[i % len(config.planner_seeds)],
                request_rate_per_s=config.mean_rps * weights[i] / total,
                requests_per_session=config.requests_per_session,
                diurnal_phase=float(rng.uniform(0.0, 2.0 * math.pi)),
            )
        )
    return tuple(profiles)


def _burst_episodes(
    config: WorkloadConfig, rng
) -> list[tuple[float, float]]:
    """Seeded burst windows [(start, end), ...] within the trace."""
    expected = config.bursts_per_minute * config.duration_s / 60.0
    count = int(rng.poisson(expected))
    if count == 0:
        return []
    starts = sorted(float(s) for s in rng.uniform(0.0, config.duration_s, size=count))
    lengths = [float(x) for x in rng.exponential(config.burst_len_s, size=count)]
    return [
        (start, min(start + length, config.duration_s))
        for start, length in zip(starts, lengths)
    ]


def _in_burst(t: float, episodes: list[tuple[float, float]]) -> bool:
    return any(start <= t < end for start, end in episodes)


def _rate_at(
    t: float,
    profile: TenantProfile,
    config: WorkloadConfig,
    episodes: list[tuple[float, float]],
) -> float:
    diurnal = 1.0 + config.diurnal_amplitude * math.sin(
        2.0 * math.pi * t / config.diurnal_period_s + profile.diurnal_phase
    )
    rate = profile.session_rate_per_s() * diurnal
    if _in_burst(t, episodes):
        rate *= config.burst_multiplier
    return rate


def _think_time(rng, config: WorkloadConfig) -> float:
    # Pareto via inverse CDF: heavy tail with exponent think_alpha.
    u = float(rng.uniform(0.0, 1.0))
    return config.think_min_s * (1.0 - u) ** (-1.0 / config.think_alpha)


def _demand_point(rng, config: WorkloadConfig, app: str) -> tuple[float, float]:
    n_lo, n_hi, a_lo, a_hi = config.envelopes[app]
    integral = _INTEGER_FIELDS.get(app, ())

    def log_uniform(lo: float, hi: float, field: str) -> float:
        if lo == hi:
            value = float(lo)
        else:
            value = float(math.exp(rng.uniform(math.log(lo), math.log(hi))))
        if field in integral:
            value = float(max(round(value), math.ceil(lo)))
        return value

    return log_uniform(n_lo, n_hi, "n"), log_uniform(a_lo, a_hi, "a")


def _tenant_stream(
    profile: TenantProfile, config: WorkloadConfig
) -> list[TraceRequest]:
    """All requests of one tenant, in arrival order (request_id unset)."""
    rng = derive_rng(config.seed, "loadgen", "tenant", profile.tenant)
    episodes = _burst_episodes(config, rng)
    # Lewis–Shedler thinning: sample a homogeneous process at the peak
    # rate, then keep each point with probability rate(t) / peak.
    peak = (
        profile.session_rate_per_s()
        * (1.0 + config.diurnal_amplitude)
        * config.burst_multiplier
    )
    requests: list[TraceRequest] = []
    t = 0.0
    while True:
        t += float(rng.exponential(1.0 / peak))
        if t >= config.duration_s:
            break
        if float(rng.uniform(0.0, 1.0)) * peak > _rate_at(t, profile, config, episodes):
            continue
        session_len = int(rng.geometric(1.0 / max(profile.requests_per_session, 1.0)))
        arrival = t
        in_burst = _in_burst(t, episodes)
        for _ in range(session_len):
            if arrival >= config.duration_s:
                break
            n, a = _demand_point(rng, config, profile.app)
            requests.append(
                TraceRequest(
                    request_id=0,  # assigned after the global merge
                    arrival_s=arrival,
                    tenant=profile.tenant,
                    app=profile.app,
                    quota=profile.quota,
                    seed=profile.seed,
                    n=n,
                    a=a,
                    deadline_hours=config.deadline_hours,
                    budget_dollars=config.budget_dollars,
                    burst=in_burst,
                )
            )
            arrival += _think_time(rng, config)
    return requests


def generate_trace(config: WorkloadConfig) -> Trace:
    """Generate the full deterministic trace for a workload config."""
    profiles = tenant_mix(config)
    streams = [_tenant_stream(profile, config) for profile in profiles]
    return Trace(
        name=config.name,
        seed=config.seed,
        duration_s=config.duration_s,
        requests=tuple(merge_sorted(streams)),
        config=config.to_dict(),
    )
