"""Open-loop trace replay against a planner service or fleet.

The replayer fires every trace request at its *scheduled* timestamp, no
matter how the previous requests fared — the open-loop discipline that
avoids **coordinated omission**: a closed-loop client that waits for each
response before sending the next one silently stops measuring exactly
when the service stalls, and its percentiles flatter the server.  Here:

* each request gets its own asyncio task woken at
  ``start + arrival_s / time_scale``;
* latency is measured from the request's *intended* arrival, so queueing
  delay caused by a slow service (including scheduling lag in the
  replayer itself, reported separately as ``lag_s``) stays in the
  distribution;
* one fresh connection per request — the measurement includes connection
  acceptance, which is the first thing an overloaded accept loop drops.

Responses are classified, never retried (a replay is a measurement, not
a delivery guarantee):

* ``ok`` — HTTP 200;
* ``shed`` — typed admission-control rejections (``overloaded``,
  ``too_many_requests``, ``saturated``, ``draining``): the protection
  mechanism working as designed, counted apart from failures;
* ``infeasible`` — HTTP 422 with the planner's typed infeasibility: the
  service answered correctly, the demand point was outside the
  deadline–budget region;
* ``error`` — anything else (5xx, transport resets, timeouts).

Per-tenant counters and latency histograms land in a
:class:`repro.obs.MetricsRegistry` (``loadgen_*`` series with a
``tenant`` label) so a replay exposes the same observability surface as
the services it drives.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass, field

from repro.loadgen.trace import Trace, TraceRequest
from repro.obs.metrics import MetricsRegistry

__all__ = [
    "SHED_CODES",
    "Observation",
    "ReplayResult",
    "replay_trace",
    "replay_trace_sync",
    "prewarm",
]

#: Typed error codes that mean "admission control declined", not "failed".
SHED_CODES = frozenset({"overloaded", "too_many_requests", "saturated",
                        "draining"})

_STATUSES = ("ok", "shed", "infeasible", "error")


@dataclass(frozen=True, slots=True)
class Observation:
    """What happened to one trace request during a replay."""

    request_id: int
    tenant: str
    arrival_s: float       # scheduled arrival (trace time)
    status: str            # ok | shed | infeasible | error
    http_status: int       # 0 on transport failure
    code: str              # typed error code ("" for 200s)
    latency_s: float       # intended arrival -> response (open-loop)
    service_s: float       # actual send -> response
    lag_s: float           # replayer scheduling lag (actual - intended send)
    burst: bool


@dataclass(frozen=True)
class ReplayResult:
    """One replay run: observations in request order plus run context."""

    trace_name: str
    trace_seed: int
    duration_s: float
    time_scale: float
    wall_s: float
    observations: tuple[Observation, ...]
    peak_inflight: int
    server_metrics: dict = field(default_factory=dict)

    def counts(self) -> dict:
        out = {status: 0 for status in _STATUSES}
        for obs in self.observations:
            out[obs.status] += 1
        return out


async def _post(host: str, port: int, path: str, body: dict,
                timeout_s: float) -> tuple[int, bytes]:
    payload = json.dumps(body).encode("utf-8")
    frame = (f"POST {path} HTTP/1.1\r\nHost: loadgen\r\n"
             f"Content-Type: application/json\r\n"
             f"Content-Length: {len(payload)}\r\n"
             f"Connection: close\r\n\r\n").encode("ascii") + payload
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(frame)
        await writer.drain()
        head = await asyncio.wait_for(reader.readuntil(b"\r\n\r\n"),
                                      timeout_s)
        lines = head.decode("latin-1").split("\r\n")
        status = int(lines[0].split()[1])
        content_length = 0
        for line in lines[1:]:
            name, _, value = line.partition(":")
            if name.strip().lower() == "content-length":
                content_length = int(value.strip())
        body_bytes = (await asyncio.wait_for(
            reader.readexactly(content_length), timeout_s)
            if content_length else b"")
        return status, body_bytes
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover - teardown race
            pass


def _classify(status: int, body: bytes) -> tuple[str, str]:
    """Map an HTTP response to (replay status, typed code)."""
    if status == 200:
        return "ok", ""
    code = ""
    try:
        code = json.loads(body)["error"]["code"]
    except (ValueError, KeyError, TypeError):
        pass
    if code in SHED_CODES:
        return "shed", code
    if status == 422 or code == "infeasible":
        return "infeasible", code or "infeasible"
    return "error", code or f"http_{status}"


async def _fetch_metrics(host: str, port: int, timeout_s: float) -> dict:
    """Best-effort GET /metrics after the replay (empty dict on failure)."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(b"GET /metrics HTTP/1.1\r\nHost: loadgen\r\n"
                     b"Connection: close\r\n\r\n")
        await writer.drain()
        raw = await asyncio.wait_for(reader.read(), timeout_s)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover - teardown race
            pass
    head, _, body = raw.partition(b"\r\n\r\n")
    if not head.startswith(b"HTTP/1.1 200"):
        return {}
    try:
        return json.loads(body)
    except ValueError:
        return {}


async def replay_trace(trace: Trace, *, host: str = "127.0.0.1",
                       port: int, time_scale: float = 1.0,
                       timeout_s: float = 30.0,
                       registry: "MetricsRegistry | None" = None,
                       fetch_server_metrics: bool = True) -> ReplayResult:
    """Replay ``trace`` open-loop and return every observation.

    ``time_scale`` compresses trace time: 2.0 replays a 30 s trace in
    15 s of wall time (arrival gaps shrink, offered rate doubles).
    Latencies are always reported in wall seconds.
    """
    if time_scale <= 0:
        raise ValueError("time_scale must be positive")
    registry = registry if registry is not None else MetricsRegistry()
    loop = asyncio.get_running_loop()
    inflight = 0
    peak_inflight = 0
    inflight_gauge = registry.gauge("loadgen_inflight")
    # Small grace so the earliest tasks are all scheduled before t0.
    t0 = loop.time() + 0.05
    wall_start = time.perf_counter()

    async def fire(request: TraceRequest) -> Observation:
        nonlocal inflight, peak_inflight
        intended = t0 + request.arrival_s / time_scale
        delay = intended - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        send_at = loop.time()
        lag = max(0.0, send_at - intended)
        inflight += 1
        peak_inflight = max(peak_inflight, inflight)
        inflight_gauge.set(inflight)
        try:
            status, body = await _post(
                host, port, f"/v1/{request.kind}", request.body(), timeout_s)
            outcome, code = _classify(status, body)
        except (ConnectionError, OSError, asyncio.IncompleteReadError):
            status, outcome, code = 0, "error", "connection"
        except asyncio.TimeoutError:
            status, outcome, code = 0, "error", "timeout"
        finally:
            inflight -= 1
            inflight_gauge.set(inflight)
        done = loop.time()
        labels = {"tenant": request.tenant}
        registry.counter("loadgen_requests_total",
                         labels={**labels, "status": outcome}).increment()
        if outcome == "ok":
            registry.histogram("loadgen_latency_s",
                               labels=labels).observe(done - intended)
        return Observation(
            request_id=request.request_id,
            tenant=request.tenant,
            arrival_s=request.arrival_s,
            status=outcome,
            http_status=status,
            code=code,
            latency_s=done - intended,
            service_s=done - send_at,
            lag_s=lag,
            burst=request.burst,
        )

    observations = await asyncio.gather(
        *(fire(request) for request in trace.requests))
    wall_s = time.perf_counter() - wall_start
    server_metrics: dict = {}
    if fetch_server_metrics:
        try:
            server_metrics = await _fetch_metrics(host, port, timeout_s)
        except (ConnectionError, OSError, asyncio.TimeoutError):
            server_metrics = {}
    return ReplayResult(
        trace_name=trace.name,
        trace_seed=trace.seed,
        duration_s=trace.duration_s,
        time_scale=time_scale,
        wall_s=wall_s,
        observations=tuple(
            sorted(observations, key=lambda obs: obs.request_id)),
        peak_inflight=peak_inflight,
        server_metrics=server_metrics,
    )


def replay_trace_sync(trace: Trace, **kwargs) -> ReplayResult:
    """Blocking wrapper around :func:`replay_trace`."""
    return asyncio.run(replay_trace(trace, **kwargs))


async def prewarm(trace: Trace, *, host: str = "127.0.0.1", port: int,
                  timeout_s: float = 120.0) -> dict:
    """Send one untimed request per warm-state signature in the trace.

    First contact with a cold ``(app, quota, seed)`` pays the sweep +
    frontier build; replaying a trace without prewarming measures state
    construction, not steady-state service.  Returns
    ``{warm_key: http_status}`` — callers decide whether non-200s are
    acceptable.
    """
    statuses: dict = {}
    for app, quota, seed in trace.warm_keys:
        first = next(r for r in trace.requests
                     if r.warm_key() == (app, quota, seed))
        status, _ = await _post(host, port, f"/v1/{first.kind}",
                                first.body(), timeout_s)
        statuses[f"{app}/q{quota}/s{seed}"] = status
    return statuses
