"""Seeded, reproducible chaos scenarios for closed-loop execution.

A :class:`ChaosScenario` composes the three failure families the runtime
must survive into one named, auditable object:

* **provisioning faults** — transient capacity shortfalls and API
  throttling injected into ``CloudProvider.provision``
  (:class:`~repro.cloud.faults.ProvisioningFaultModel`);
* **mid-run node crashes** — the exponential per-node hazard of
  :class:`repro.engine.faults.FaultModel`, reused verbatim;
* **stragglers** — a seeded fraction of nodes launching at a fraction
  of their nominal rate (hidden contention the planner cannot see);
* **spot-market stress** — surges on the spot market's price level,
  volatility and capacity-reclaim hazard, applied through
  :meth:`ChaosScenario.market_config` when a run buys mixed
  on-demand+spot capacity (:mod:`repro.market`).  Pure on-demand runs
  are unaffected.

Scenarios are pure data: all randomness is sampled downstream from RNGs
derived off ``(seed, scenario)`` keys, so one scenario replayed with one
seed yields one timeline, bill and verdict — the reproducibility the
acceptance criteria demand.  The built-in catalog
(:data:`SCENARIOS`) spans calm to perfect-storm and is what the CLI's
``--chaos`` flag, the experiment and the benchmark all draw from.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cloud.faults import ProvisioningFaultModel
from repro.engine.faults import FaultModel
from repro.errors import ValidationError
from repro.utils.rng import spawn_seed

__all__ = ["ChaosScenario", "SCENARIOS", "chaos_scenario", "scenario_names"]


@dataclass(frozen=True)
class ChaosScenario:
    """One named composition of provisioning, crash and straggler faults."""

    name: str
    #: Probability a provision attempt hits a per-type capacity shortfall.
    insufficient_capacity_rate: float = 0.0
    #: Probability a provision attempt is throttled by the API.
    throttle_rate: float = 0.0
    #: Exponential per-node crash hazard during execution (1/hour).
    crash_rate_per_hour: float = 0.0
    #: Fraction of launched nodes that straggle.
    straggler_fraction: float = 0.0
    #: Rate divisor applied to straggling nodes (>1 slows them down).
    straggler_slowdown: float = 1.0
    #: Extra spot capacity-reclaim hazard (per hour) on top of the
    #: market's baseline; only bites runs buying spot capacity.
    spot_reclaim_rate_per_hour: float = 0.0
    #: Multiplier on the spot market's long-run mean price.
    spot_price_surge: float = 1.0
    #: Multiplier on the spot market's volatility.
    spot_volatility_surge: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("scenario needs a name")
        if not 0 <= self.straggler_fraction <= 1:
            raise ValidationError("straggler_fraction must be in [0, 1]")
        if self.straggler_slowdown < 1:
            raise ValidationError("straggler_slowdown must be >= 1")
        if self.spot_reclaim_rate_per_hour < 0:
            raise ValidationError("spot reclaim rate must be non-negative")
        if self.spot_price_surge <= 0 or self.spot_volatility_surge <= 0:
            raise ValidationError("spot surge multipliers must be positive")

    def provisioning_faults(self, seed: int) -> ProvisioningFaultModel:
        """The provisioning injector for one run of this scenario."""
        return ProvisioningFaultModel(
            insufficient_capacity_rate=self.insufficient_capacity_rate,
            throttle_rate=self.throttle_rate,
            seed=spawn_seed(seed, "chaos-provision", self.name),
        )

    def fault_model(self) -> FaultModel:
        """The mid-run crash hazard (``repro.engine.faults`` reused)."""
        return FaultModel(crash_rate_per_hour=self.crash_rate_per_hour)

    def market_config(self, base=None):
        """The scenario's view of the spot market.

        Applies this scenario's surges on top of a baseline
        :class:`~repro.market.SpotMarketConfig` (nominal defaults when
        omitted).  Imported lazily so pure on-demand runs never touch
        :mod:`repro.market`.
        """
        from dataclasses import replace

        from repro.market import SpotMarketConfig

        base = base or SpotMarketConfig()
        return replace(
            base,
            reclaim_rate_per_hour=(base.reclaim_rate_per_hour
                                   + self.spot_reclaim_rate_per_hour),
            price_surge=base.price_surge * self.spot_price_surge,
            volatility_surge=(base.volatility_surge
                              * self.spot_volatility_surge),
        )

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "insufficient_capacity_rate": self.insufficient_capacity_rate,
            "throttle_rate": self.throttle_rate,
            "crash_rate_per_hour": self.crash_rate_per_hour,
            "straggler_fraction": self.straggler_fraction,
            "straggler_slowdown": self.straggler_slowdown,
            "spot_reclaim_rate_per_hour": self.spot_reclaim_rate_per_hour,
            "spot_price_surge": self.spot_price_surge,
            "spot_volatility_surge": self.spot_volatility_surge,
        }


#: The built-in scenario catalog (see docs/ops.md for the runbook).
SCENARIOS: dict[str, ChaosScenario] = {
    scenario.name: scenario
    for scenario in (
        # Baseline: the substrate behaves; adaptive should match static.
        ChaosScenario(name="calm"),
        # Control-plane pain only: every other provision call fails
        # transiently; execution itself is clean.
        ChaosScenario(name="flaky-control-plane",
                      insufficient_capacity_rate=0.3, throttle_rate=0.2),
        # Data-plane pain only: nodes crash at a rate where a multi-hour
        # run expects to lose several.
        ChaosScenario(name="crashy", crash_rate_per_hour=0.05),
        # Hidden contention: a third of the fleet runs at quarter speed.
        ChaosScenario(name="stragglers", straggler_fraction=0.3,
                      straggler_slowdown=4.0),
        # Everything at once, harder: the graceful-degradation stressor.
        ChaosScenario(name="perfect-storm",
                      insufficient_capacity_rate=0.4, throttle_rate=0.2,
                      crash_rate_per_hour=0.08, straggler_fraction=0.25,
                      straggler_slowdown=4.0),
        # Spot capacity dries up: the provider reclaims spot pools
        # aggressively while on-demand capacity is also tight — the
        # fall-back-to-on-demand stressor for mixed purchasing.
        ChaosScenario(name="spot-squeeze",
                      insufficient_capacity_rate=0.2,
                      spot_reclaim_rate_per_hour=0.15),
        # The market runs hot: the mean price more than doubles and
        # volatility triples, so fixed bids get out-bid and spot savings
        # evaporate — the bid-policy stressor.
        ChaosScenario(name="price-spike",
                      spot_price_surge=2.2, spot_volatility_surge=3.0),
    )
}


def scenario_names() -> tuple[str, ...]:
    """Catalog order of the built-in scenarios."""
    return tuple(SCENARIOS)


def chaos_scenario(name: str) -> ChaosScenario:
    """Look up a built-in scenario by name."""
    try:
        return SCENARIOS[name]
    except KeyError:
        raise ValidationError(
            f"unknown chaos scenario {name!r}; "
            f"choose from {sorted(SCENARIOS)}") from None
