"""Fluid-rate execution of a lease with crashes and stragglers.

The adaptive controller needs something the batch engine
(:mod:`repro.engine`) deliberately does not offer: the ability to stop
the simulation at an arbitrary instant, read off how much work has been
retired, and resume or abandon the lease.  This module provides that as
a *fluid* model — each surviving node retires work at its effective rate
(GI/s), and aggregate progress is piecewise-linear between crash events.

The fluid view is the continuum limit of the task-based schedulers (for
the paper's task counts the discrepancy is under one task's worth of
work) and is exactly integrable, which buys the property the acceptance
criteria demand: *bit-stable timelines under a fixed seed*, with no
dependence on task interleaving.

Crash times come from :class:`repro.engine.faults.FaultModel` — the same
hazard model the batch fault study uses — sampled once per lease from a
derived RNG.  Stragglers are nodes whose effective rate is scaled down
at launch (seeded), invisible to the controller until progress lags.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine.faults import FaultModel
from repro.errors import ValidationError
from repro.units import SECONDS_PER_HOUR
from repro.utils.rng import derive_rng

__all__ = ["LeaseExecution", "AdvanceResult"]


@dataclass(frozen=True, slots=True)
class AdvanceResult:
    """What happened between two controller observations."""

    #: Simulated time the advance stopped at (hours, absolute).
    now_hours: float
    #: Work retired during the advance (GI).
    work_done_gi: float
    #: Node indices (into the lease) that crashed during the advance,
    #: in crash-time order.
    crashed: tuple[int, ...]
    #: The workload's remaining demand hit zero.
    completed: bool
    #: Every node is dead; no further progress is possible.
    stalled: bool


class LeaseExecution:
    """Progress tracker for one lease running one (residual) workload.

    Parameters
    ----------
    rates_gips:
        Per-node effective rates, stragglers already applied.
    crash_at_hours:
        Per-node absolute crash times (``inf`` = never), typically
        ``start_hours + FaultModel.sample_crash_seconds(...) / 3600``.
    start_hours:
        When the nodes become ready (post-boot); work accrues from here.
    """

    def __init__(self, rates_gips: np.ndarray, crash_at_hours: np.ndarray,
                 start_hours: float):
        if rates_gips.shape != crash_at_hours.shape:
            raise ValidationError("rates and crash times must align")
        if np.any(rates_gips < 0):
            raise ValidationError("node rates must be non-negative")
        self.rates = rates_gips.astype(float)
        self.crash_at = crash_at_hours.astype(float)
        self.now_hours = float(start_hours)
        self._alive = self.crash_at > self.now_hours

    @classmethod
    def launch(cls, nominal_rates_gips: np.ndarray, *, start_hours: float,
               fault_model: FaultModel, straggler_fraction: float,
               straggler_slowdown: float, seed: int,
               lease_id: int) -> "LeaseExecution":
        """Build an execution with seeded crashes and stragglers applied."""
        n = nominal_rates_gips.size
        crash_rng = derive_rng(seed, "crash", lease_id)
        crash_at = (start_hours
                    + fault_model.sample_crash_seconds(crash_rng, n)
                    / SECONDS_PER_HOUR)
        rates = nominal_rates_gips.astype(float).copy()
        if straggler_fraction > 0 and straggler_slowdown > 1:
            straggler_rng = derive_rng(seed, "straggler", lease_id)
            mask = straggler_rng.uniform(size=n) < straggler_fraction
            rates[mask] /= straggler_slowdown
        return cls(rates, crash_at, start_hours)

    # -- observations ----------------------------------------------------------

    @property
    def alive_mask(self) -> np.ndarray:
        return self._alive.copy()

    @property
    def surviving_nodes(self) -> int:
        return int(np.count_nonzero(self._alive))

    @property
    def current_rate_gips(self) -> float:
        """Aggregate rate of the nodes alive right now."""
        return float(self.rates[self._alive].sum())

    def projected_finish_hours(self, remaining_gi: float) -> float:
        """When the remaining work drains *if no further node crashes*.

        This is the controller's (optimistic) projection — actual crash
        times are hidden from it, exactly as a real monitor only sees
        current capacity.  ``inf`` when nothing is alive.
        """
        if remaining_gi <= 0:
            return self.now_hours
        rate = self.current_rate_gips
        if rate <= 0:
            return float("inf")
        return self.now_hours + remaining_gi / rate / SECONDS_PER_HOUR

    # -- advancing -------------------------------------------------------------

    def advance(self, until_hours: float, remaining_gi: float) -> AdvanceResult:
        """Integrate progress from ``now`` to at most ``until_hours``.

        Stops early on completion or when every node is dead.  Exact
        piecewise integration over crash events — no time stepping — so
        results carry no discretization error and are reproducible to
        the last bit.
        """
        if until_hours < self.now_hours:
            raise ValidationError("cannot advance backwards in time")
        done = 0.0
        crashed: list[int] = []
        while True:
            alive_idx = np.flatnonzero(self._alive)
            if remaining_gi - done <= 0:
                return AdvanceResult(self.now_hours, done, tuple(crashed),
                                     completed=True, stalled=False)
            if alive_idx.size == 0:
                return AdvanceResult(self.now_hours, done, tuple(crashed),
                                     completed=False, stalled=True)
            rate = float(self.rates[alive_idx].sum())
            next_crash = float(self.crash_at[alive_idx].min())
            horizon = min(until_hours, next_crash)
            if rate > 0:
                finish = (self.now_hours
                          + (remaining_gi - done) / rate / SECONDS_PER_HOUR)
                if finish <= horizon:
                    done = remaining_gi
                    self.now_hours = finish
                    continue  # loop exits via the completed branch
                done += rate * (horizon - self.now_hours) * SECONDS_PER_HOUR
            elif horizon == until_hours and next_crash > until_hours:
                # Zero-rate cluster and no crash before the horizon:
                # nothing further can change this advance.
                self.now_hours = until_hours
                return AdvanceResult(self.now_hours, done, tuple(crashed),
                                     completed=False, stalled=False)
            self.now_hours = horizon
            if horizon == next_crash and next_crash <= until_hours:
                dying = alive_idx[self.crash_at[alive_idx] <= next_crash]
                for node in dying.tolist():
                    self._alive[node] = False
                    crashed.append(int(node))
                continue
            return AdvanceResult(self.now_hours, done, tuple(crashed),
                                 completed=False, stalled=False)
