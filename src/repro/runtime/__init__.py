"""Closed-loop adaptive execution of CELIA plans.

The planning stack (:mod:`repro.core`) answers *what to buy*; this
package keeps the answer honest at run time: provisioning with retries
and fallback (:mod:`repro.runtime.retry`), fluid-rate execution under
crashes and stragglers (:mod:`repro.runtime.execution`), seeded chaos
scenarios (:mod:`repro.runtime.chaos`), a typed audit trail
(:mod:`repro.runtime.events`), and the re-planning / degrading
controller itself (:mod:`repro.runtime.controller`).
"""

from repro.runtime.chaos import (
    SCENARIOS,
    ChaosScenario,
    chaos_scenario,
    scenario_names,
)
from repro.runtime.controller import (
    AdaptiveController,
    RuntimeConfig,
    RuntimeReport,
    degraded_accuracy_search,
)
from repro.runtime.events import (
    DegradationDecision,
    ExecutionTimeline,
    FallbackToOnDemand,
    InfeasiblePlan,
    Migration,
    NodeCrash,
    ProvisionAttempt,
    ReplanDecision,
    SpotInterruption,
    SpotPurchase,
    event_to_dict,
)
from repro.runtime.execution import AdvanceResult, LeaseExecution
from repro.runtime.retry import RetryPolicy, provision_with_retry

__all__ = [
    "AdaptiveController",
    "RuntimeConfig",
    "RuntimeReport",
    "degraded_accuracy_search",
    "ChaosScenario",
    "SCENARIOS",
    "chaos_scenario",
    "scenario_names",
    "RetryPolicy",
    "provision_with_retry",
    "LeaseExecution",
    "AdvanceResult",
    "ExecutionTimeline",
    "ProvisionAttempt",
    "NodeCrash",
    "ReplanDecision",
    "DegradationDecision",
    "Migration",
    "InfeasiblePlan",
    "SpotPurchase",
    "SpotInterruption",
    "FallbackToOnDemand",
    "event_to_dict",
]
