"""Typed, auditable events of one closed-loop execution.

Every decision the adaptive controller makes — each provisioning
attempt, crash, re-plan, accuracy degradation, migration and the final
verdict — lands in an append-only :class:`ExecutionTimeline` as a frozen
dataclass with a simulated timestamp.  The timeline is the audit trail
the acceptance criteria demand: identical seeds must reproduce it
bit-for-bit, and an operator reading it must be able to reconstruct why
the run ended where it did.

All events serialize to plain dicts (``event_to_dict``) so the CLI's
``--json`` output, the experiment harness and the benchmark all share
one schema.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

__all__ = [
    "ProvisionAttempt",
    "NodeCrash",
    "ReplanDecision",
    "DegradationDecision",
    "Migration",
    "InfeasiblePlan",
    "SpotPurchase",
    "SpotInterruption",
    "FallbackToOnDemand",
    "RuntimeEvent",
    "ExecutionTimeline",
    "event_to_dict",
]


@dataclass(frozen=True, slots=True)
class ProvisionAttempt:
    """One call into ``CloudProvider.provision`` and what it returned."""

    at_hours: float
    attempt: int
    configuration: tuple[int, ...]
    outcome: str  # "ok" | "throttled" | "insufficient_capacity" | "quota"
    detail: str = ""
    backoff_seconds: float = 0.0
    substituted_type: str | None = None


@dataclass(frozen=True, slots=True)
class NodeCrash:
    """A node of the active lease died mid-run."""

    at_hours: float
    instance_id: str
    type_name: str
    surviving_nodes: int


@dataclass(frozen=True, slots=True)
class ReplanDecision:
    """The controller re-ran frontier selection over residual state."""

    at_hours: float
    reason: str  # "crash" | "spot-interruption" | "deviation"
    #           | "provisioning" | "stall"
    remaining_gi: float
    residual_deadline_hours: float
    residual_budget_dollars: float
    feasible: bool
    configuration: tuple[int, ...] | None
    projected_time_hours: float | None
    projected_cost_dollars: float | None


@dataclass(frozen=True, slots=True)
class DegradationDecision:
    """Accuracy was lowered to restore feasibility — the elasticity knob.

    ``from_accuracy``/``to_accuracy`` are the knob values;
    ``score_before``/``score_after`` their normalized output-quality
    scores, so the audit trail records exactly how much quality was
    traded for feasibility (and that the trade was minimal: ``to_accuracy``
    is the largest feasible knob value found).
    """

    at_hours: float
    from_accuracy: float
    to_accuracy: float
    score_before: float
    score_after: float
    remaining_gi_before: float
    remaining_gi_after: float
    configuration: tuple[int, ...]
    reason: str


@dataclass(frozen=True, slots=True)
class Migration:
    """The active lease was replaced by a different configuration."""

    at_hours: float
    from_configuration: tuple[int, ...]
    to_configuration: tuple[int, ...]
    lease_bill_dollars: float


@dataclass(frozen=True, slots=True)
class InfeasiblePlan:
    """No configuration — even at the accuracy floor — can restore
    feasibility; the run stops with an explicit verdict instead of a
    silent overrun."""

    at_hours: float
    remaining_gi: float
    residual_deadline_hours: float
    residual_budget_dollars: float
    accuracy_floor: float
    detail: str


@dataclass(frozen=True, slots=True)
class SpotPurchase:
    """A configuration was split into an on-demand + spot purchasing
    vector and priced against the market before launch."""

    at_hours: float
    configuration: tuple[int, ...]
    ondemand: tuple[int, ...]
    spot: tuple[int, ...]
    bid_policy: str
    expected_cost_dollars: float
    ondemand_cost_dollars: float
    interruption_risk: float


@dataclass(frozen=True, slots=True)
class SpotInterruption:
    """The market reclaimed a spot node: the price crossed its pool's
    bid, or the provider took the capacity back."""

    at_hours: float
    instance_id: str
    type_name: str
    bid_price: float
    market_price: float
    surviving_nodes: int


@dataclass(frozen=True, slots=True)
class FallbackToOnDemand:
    """The controller stopped buying spot capacity for this run —
    interruptions exceeded the tolerance or the residual slack got too
    thin to gamble."""

    at_hours: float
    interruptions: int
    reason: str


RuntimeEvent = (ProvisionAttempt | NodeCrash | ReplanDecision
                | DegradationDecision | Migration | InfeasiblePlan
                | SpotPurchase | SpotInterruption | FallbackToOnDemand)

_EVENT_KINDS = {
    ProvisionAttempt: "provision_attempt",
    NodeCrash: "node_crash",
    ReplanDecision: "replan",
    DegradationDecision: "degradation",
    Migration: "migration",
    InfeasiblePlan: "infeasible_plan",
    SpotPurchase: "spot_purchase",
    SpotInterruption: "spot_interruption",
    FallbackToOnDemand: "fallback_on_demand",
}


def event_to_dict(event: RuntimeEvent) -> dict:
    """One event as a JSON-ready dict with a ``kind`` discriminator."""
    payload = {"kind": _EVENT_KINDS[type(event)]}
    data = asdict(event)
    for key, value in data.items():
        if isinstance(value, tuple):
            data[key] = list(value)
    payload.update(data)
    return payload


class ExecutionTimeline:
    """Append-only, time-ordered record of one execution's events."""

    def __init__(self) -> None:
        self._events: list[RuntimeEvent] = []

    def record(self, event: RuntimeEvent) -> None:
        self._events.append(event)

    @property
    def events(self) -> tuple[RuntimeEvent, ...]:
        return tuple(self._events)

    def count(self, event_type: type) -> int:
        """How many recorded events are of ``event_type``."""
        return sum(isinstance(e, event_type) for e in self._events)

    def to_dicts(self) -> list[dict]:
        return [event_to_dict(e) for e in self._events]

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self):
        return iter(self._events)
