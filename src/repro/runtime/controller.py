"""The closed-loop adaptive execution controller.

CELIA up to now *plans*: Algorithm 1 picks a configuration whose
predicted time and cost fit ``(T', C')``.  This module *executes* the
plan against the simulated cloud and keeps the promise when the cloud
misbehaves:

1. **provision** the configuration through :class:`CloudProvider`, with
   bounded retries, capped-exponential deterministic-jitter backoff and
   Pareto-adjacent type fallback (:mod:`repro.runtime.retry`) — waiting
   burns simulated deadline, and is accounted as such;
2. **monitor** execution progress (instructions retired, current
   aggregate rate, projected finish and bill) on a fixed cadence;
3. on **deviation** — a crash, a straggler-induced lag, a projected
   deadline or budget breach — terminate the lease, **re-plan** over
   residual state (remaining estimated demand, ``T' − t`` deadline,
   ``C' − spent`` budget) with the same min-cost index Algorithm 1
   uses, and migrate;
4. when no configuration is feasible, pull the app's **elasticity
   knob**: bisect the accuracy down to the *largest* value whose
   residual demand fits the residual envelope, recording a typed
   :class:`~repro.runtime.events.DegradationDecision`;
5. when even the accuracy floor is infeasible, stop with an explicit
   :class:`~repro.runtime.events.InfeasiblePlan` — never a silent
   overrun.

With a :class:`~repro.market.MarketPolicy` the controller additionally
buys **mixed on-demand + spot capacity**: each planned configuration is
split into a purchasing vector (:func:`repro.market.purchase_plan`),
the on-demand part goes through :class:`CloudProvider` as before and
the spot part through a :class:`~repro.market.SpotFleet`, billed at the
integrated market price.  A spot kill re-enters the same replan loop
with residual demand; after too many interruptions (or with the
residual slack too thin) the controller *falls back to pure on-demand*
for the rest of the run.  Budget projections always price plans at
on-demand rates — realized spot cost can only undercut them — so a
market run can never silently overrun the budget either.

The controller only ever sees what a real one could: measured progress
and the *model's* demand estimates.  Ground truth (true demand, hidden
straggler factors, future crash times) lives in the execution substrate
(:mod:`repro.runtime.execution`).  All stochastic draws key off the
root seed, so a (seed, scenario) pair reproduces the identical event
timeline, replan decisions and bill.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.apps.base import ElasticApplication
from repro.cloud.provider import CloudProvider, Lease
from repro.core.celia import Celia
from repro.errors import InfeasibleError, ProvisioningError, ValidationError
from repro.obs.metrics import global_registry
from repro.obs.profile import profile_block
from repro.obs.trace import get_tracer
from repro.runtime.chaos import ChaosScenario
from repro.runtime.events import (
    DegradationDecision,
    ExecutionTimeline,
    FallbackToOnDemand,
    InfeasiblePlan,
    Migration,
    NodeCrash,
    ProvisionAttempt,
    ReplanDecision,
    RuntimeEvent,
    SpotInterruption,
    SpotPurchase,
    event_to_dict,
)
from repro.runtime.execution import LeaseExecution
from repro.runtime.retry import RetryPolicy, provision_with_retry
from repro.units import SECONDS_PER_HOUR
from repro.utils.rng import derive_rng, spawn_seed

__all__ = ["RuntimeConfig", "RuntimeReport", "AdaptiveController",
           "degraded_accuracy_search"]

#: Residual demand floor (GI): keeps optimizer queries well-posed when
#: the model believes the work is already done but ground truth disagrees.
_MIN_RESIDUAL_GI = 1e-6


def degraded_accuracy_search(demand_fn, index, *, floor: float,
                             current: float, integral: bool,
                             residual_deadline_hours: float,
                             residual_budget_dollars: float,
                             work_done_gi: float = 0.0,
                             efficiency: float = 1.0,
                             deadline_safety: float = 1.0):
    """Largest accuracy whose residual demand fits the residual envelope.

    Demand is monotone in the accuracy knob, so the feasible accuracies
    form a prefix of ``[floor, current]`` and bisection finds its upper
    end.  ``demand_fn(accuracy)`` returns total estimated demand in GI;
    ``work_done_gi`` is subtracted to get the residual, and the query is
    inflated by ``1 / efficiency`` for fleets observed running below
    nominal.  Integral knobs (galaxy's step count) bisect on integers.

    Returns ``(accuracy, OptimizerAnswer)`` for the minimal degradation,
    or ``None`` when even the floor is infeasible.  Shared by the
    runtime controller and the planning service's ``replan`` endpoint so
    both degrade identically.
    """

    def attempt(accuracy: float):
        residual = max(demand_fn(accuracy) - work_done_gi, _MIN_RESIDUAL_GI)
        try:
            return index.query(
                residual / efficiency,
                residual_deadline_hours * deadline_safety,
                budget_dollars=residual_budget_dollars)
        except InfeasibleError:
            return None

    if (residual_deadline_hours <= 0 or residual_budget_dollars <= 0
            or floor >= current):
        return None
    floor_answer = attempt(floor)
    if floor_answer is None:
        return None
    lo, hi = floor, current  # lo feasible, hi infeasible
    best_accuracy, best_answer = floor, floor_answer
    while (hi - lo > 1 if integral
           else (hi - lo) > 1e-4 * max(abs(hi), 1.0)):
        mid = (lo + hi) // 2 if integral else 0.5 * (lo + hi)
        answer = attempt(mid)
        if answer is None:
            hi = mid
        else:
            lo = mid
            best_accuracy, best_answer = mid, answer
    return float(best_accuracy), best_answer


@dataclass(frozen=True)
class RuntimeConfig:
    """Knobs of the closed-loop controller."""

    #: Whether deviations trigger re-planning (False = static baseline).
    replan: bool = True
    #: Monitoring cadence; deviations are detected at tick boundaries.
    monitor_interval_hours: float = 0.25
    #: Boot time per provisioning epoch (billed, burns deadline).
    node_startup_seconds: float = 180.0
    #: Plans target this fraction of the residual deadline, leaving
    #: slack for boot, migration and monitoring latency.
    deadline_safety: float = 0.9
    #: Projected overrun fraction tolerated before declaring deviation
    #: (1.0 = re-plan as soon as the projection exceeds the envelope;
    #: the planning safety margin already absorbs model noise).
    deviation_tolerance: float = 1.0
    #: Re-planning budget; exceeding it yields an explicit infeasible
    #: verdict rather than thrashing forever.  Sustained crash hazards
    #: legitimately cost one migration per lost node, so the bound is
    #: generous.
    max_replans: int = 16
    #: Accuracy floor for graceful degradation; ``None`` uses the
    #: smallest accuracy of the app's characterization grid.
    min_accuracy: float | None = None
    #: Provisioning retry schedule.
    retry: RetryPolicy = field(default_factory=RetryPolicy)

    def __post_init__(self) -> None:
        if self.monitor_interval_hours <= 0:
            raise ValidationError("monitor interval must be positive")
        if not 0 < self.deadline_safety <= 1:
            raise ValidationError("deadline_safety must be in (0, 1]")
        if self.deviation_tolerance < 1:
            raise ValidationError("deviation_tolerance must be >= 1")
        if self.max_replans < 0:
            raise ValidationError("max_replans must be non-negative")
        if self.node_startup_seconds < 0:
            raise ValidationError("node_startup_seconds must be non-negative")


@dataclass(frozen=True)
class RuntimeReport:
    """Outcome and full audit trail of one closed-loop execution."""

    app_name: str
    n: float
    initial_accuracy: float
    final_accuracy: float
    deadline_hours: float
    budget_dollars: float
    scenario: str
    seed: int
    adaptive: bool
    #: "met" | "degraded" | "missed_deadline" | "over_budget" |
    #: "infeasible" | "failed"
    verdict: str
    elapsed_hours: float
    cost_dollars: float
    work_done_gi: float
    remaining_gi: float
    replans: int
    degradations: int
    migrations: int
    crashes: int
    provision_attempts: int
    timeline: tuple[RuntimeEvent, ...]
    #: Whether the run bought capacity on the spot market.
    market: bool = False
    #: Spot nodes reclaimed by the market during the run.
    spot_interruptions: int = 0
    #: Dollars of ``cost_dollars`` billed at spot (market) prices.
    spot_cost_dollars: float = 0.0
    #: Whether the controller fell back to pure on-demand purchasing.
    ondemand_fallback: bool = False

    @property
    def deadline_met(self) -> bool:
        return self.verdict in ("met", "degraded") \
            and self.elapsed_hours <= self.deadline_hours

    @property
    def budget_met(self) -> bool:
        return self.cost_dollars <= self.budget_dollars

    @property
    def completed(self) -> bool:
        return self.remaining_gi <= 0

    def to_dict(self) -> dict:
        return {
            "app": self.app_name,
            "n": self.n,
            "initial_accuracy": self.initial_accuracy,
            "final_accuracy": self.final_accuracy,
            "deadline_hours": self.deadline_hours,
            "budget_dollars": self.budget_dollars,
            "scenario": self.scenario,
            "seed": self.seed,
            "adaptive": self.adaptive,
            "verdict": self.verdict,
            "elapsed_hours": self.elapsed_hours,
            "cost_dollars": self.cost_dollars,
            "work_done_gi": self.work_done_gi,
            "remaining_gi": self.remaining_gi,
            "deadline_met": self.deadline_met,
            "budget_met": self.budget_met,
            "replans": self.replans,
            "degradations": self.degradations,
            "migrations": self.migrations,
            "crashes": self.crashes,
            "provision_attempts": self.provision_attempts,
            "market": self.market,
            "spot_interruptions": self.spot_interruptions,
            "spot_cost_dollars": self.spot_cost_dollars,
            "ondemand_fallback": self.ondemand_fallback,
            "timeline": [event_to_dict(e) for e in self.timeline],
        }


class _RunState:
    """Mutable bookkeeping of one execution (kept off the controller so
    a controller instance can run many executions)."""

    def __init__(self, n: float, accuracy: float, deadline_hours: float,
                 budget_dollars: float) -> None:
        self.n = n
        self.accuracy = accuracy
        self.initial_accuracy = accuracy
        self.deadline_hours = deadline_hours
        self.budget_dollars = budget_dollars
        self.now_hours = 0.0
        self.last_lease_bill = 0.0
        self.work_done_gi = 0.0
        self.remaining_true_gi = 0.0  # set by the controller
        self.spent_dollars = 0.0
        self.rate_efficiency = 1.0
        self.replans = 0
        self.degradations = 0
        self.migrations = 0
        self.crashes = 0
        self.spot_interruptions = 0
        self.spot_cost_dollars = 0.0
        self.spot_fallback = False
        self.epoch = 0
        self.timeline = ExecutionTimeline()


class AdaptiveController:
    """Closed-loop executor of one CELIA plan on a chaotic cloud.

    Parameters
    ----------
    celia:
        The planning stack; its min-cost index answers every re-plan,
        its demand model supplies residual-demand estimates.
    app:
        The elastic application to run.
    scenario:
        Chaos to inject (:class:`~repro.runtime.chaos.ChaosScenario`).
    config:
        Controller knobs; ``replan=False`` gives the static baseline.
    seed:
        Root seed of every stochastic draw in the run.
    market:
        A :class:`~repro.market.SpotMarket` to buy spot capacity on.
        Omitted but with a ``market_policy`` given, a market is built
        from the scenario's :meth:`~ChaosScenario.market_config` and a
        seed derived off the root seed.
    market_policy:
        How to split purchases between on-demand and spot
        (:class:`~repro.market.MarketPolicy`).  Defaults when a
        ``market`` is given.  With neither, the controller buys pure
        on-demand capacity exactly as before.
    """

    def __init__(self, celia: Celia, app: ElasticApplication, *,
                 scenario: ChaosScenario, config: RuntimeConfig | None = None,
                 seed: int = 0, market=None, market_policy=None):
        self.celia = celia
        self.app = app
        self.scenario = scenario
        self.config = config or RuntimeConfig()
        self.seed = seed
        self._capacities = celia.capacities(app)
        self._index = celia.min_cost_index(app)
        self.market = None
        self.market_policy = None
        self._fleet = None
        self._bid = None
        if market is not None or market_policy is not None:
            # Imported lazily so pure on-demand runs never touch the
            # market subsystem.
            from repro.market import MarketPolicy, SpotFleet, SpotMarket
            if market is None:
                market = SpotMarket(celia.catalog, scenario.market_config(),
                                    seed=spawn_seed(seed, "spot-market"))
            self.market = market
            self.market_policy = market_policy or MarketPolicy()
            self._fleet = SpotFleet(
                market,
                virtualization=celia.engine_config.virtualization,
                seed=spawn_seed(seed, "spot-fleet"))
            self._bid = self.market_policy.make_bid_policy()

    # -- model-side estimates ----------------------------------------------------

    def _estimated_remaining_gi(self, state: _RunState,
                                accuracy: float) -> float:
        """Model-estimated residual demand at a given accuracy knob."""
        total = self.celia.demand_gi(self.app, state.n, accuracy)
        return max(total - state.work_done_gi, _MIN_RESIDUAL_GI)

    def _accuracy_floor(self) -> float:
        if self.config.min_accuracy is not None:
            return self.config.min_accuracy
        _, accuracies = self.app.scale_down_grid()
        return float(np.min(accuracies))

    # -- planning ----------------------------------------------------------------

    def _plan(self, state: _RunState, reason: str):
        """Re-run selection over residual state; degrade if needed.

        Returns the chosen configuration, or ``None`` after recording an
        :class:`InfeasiblePlan` (the caller must stop).
        """
        with get_tracer().span("runtime.replan", {"reason": reason}) as span:
            residual_t = state.deadline_hours - state.now_hours
            residual_c = state.budget_dollars - state.spent_dollars
            est_remaining = self._estimated_remaining_gi(state,
                                                         state.accuracy)
            answer = None
            if residual_t > 0 and residual_c > 0:
                answer = self._affordable(state, est_remaining, residual_t,
                                          residual_c)
            state.timeline.record(ReplanDecision(
                at_hours=state.now_hours, reason=reason,
                remaining_gi=est_remaining,
                residual_deadline_hours=max(residual_t, 0.0),
                residual_budget_dollars=max(residual_c, 0.0),
                feasible=answer is not None,
                configuration=answer.configuration if answer else None,
                projected_time_hours=answer.time_hours if answer else None,
                projected_cost_dollars=answer.cost_dollars
                if answer else None,
            ))
            span.set_attribute("feasible", answer is not None)
            if answer is not None:
                return answer.configuration
            return self._degrade(state, residual_t, residual_c, reason)

    def _affordable(self, state: _RunState, demand_gi: float,
                    residual_t: float, residual_c: float):
        """Cheapest configuration fitting the safety-margined envelope.

        The demand is inflated by the measured rate efficiency — a fleet
        observed running at 80% of nominal (hidden stragglers) needs 25%
        more planned capacity, or the next lease deviates identically.
        """
        try:
            return self._index.query(
                demand_gi / state.rate_efficiency,
                residual_t * self.config.deadline_safety,
                budget_dollars=residual_c)
        except InfeasibleError:
            return None

    def _degrade(self, state: _RunState, residual_t: float,
                 residual_c: float, reason: str):
        """Minimal accuracy degradation restoring feasibility.

        Bisects the accuracy knob over ``[floor, current]`` for the
        largest value whose residual demand fits the residual envelope
        (demand is monotone in accuracy, so the feasible set is a
        prefix).  Integral knobs (galaxy's step count) bisect on
        integers.  Returns the configuration for the degraded plan, or
        ``None`` after recording :class:`InfeasiblePlan`.
        """
        with get_tracer().span("runtime.degrade", {"reason": reason}):
            return self._degrade_inner(state, residual_t, residual_c,
                                       reason)

    def _degrade_inner(self, state: _RunState, residual_t: float,
                       residual_c: float, reason: str):
        floor = self._accuracy_floor()
        infeasible = InfeasiblePlan(
            at_hours=state.now_hours,
            remaining_gi=self._estimated_remaining_gi(state, state.accuracy),
            residual_deadline_hours=max(residual_t, 0.0),
            residual_budget_dollars=max(residual_c, 0.0),
            accuracy_floor=floor,
            detail=f"no feasible configuration after {reason}, even at "
                   f"the accuracy floor {floor:g}",
        )
        found = degraded_accuracy_search(
            lambda acc: self.celia.demand_gi(self.app, state.n, acc),
            self._index, floor=floor, current=state.accuracy,
            integral=self.app.accuracy_integral,
            residual_deadline_hours=residual_t,
            residual_budget_dollars=residual_c,
            work_done_gi=state.work_done_gi,
            efficiency=state.rate_efficiency,
            deadline_safety=self.config.deadline_safety)
        if found is None:
            state.timeline.record(infeasible)
            return None
        best_accuracy, best_answer = found

        before = state.accuracy
        remaining_before = state.remaining_true_gi
        state.accuracy = float(best_accuracy)
        state.remaining_true_gi = max(
            self.app.demand_gi(state.n, state.accuracy)
            - state.work_done_gi, 0.0)
        state.degradations += 1
        state.timeline.record(DegradationDecision(
            at_hours=state.now_hours,
            from_accuracy=before,
            to_accuracy=state.accuracy,
            score_before=self.app.accuracy_score(before),
            score_after=self.app.accuracy_score(state.accuracy),
            remaining_gi_before=remaining_before,
            remaining_gi_after=state.remaining_true_gi,
            configuration=best_answer.configuration,
            reason=reason,
        ))
        return best_answer.configuration

    # -- mixed purchasing --------------------------------------------------------

    def _purchase_split(self, state: _RunState, config: tuple[int, ...]):
        """Split one planned configuration into purchasing vectors.

        Returns ``(ondemand, spot)`` in catalog order; ``spot`` is
        ``None`` when everything is bought on-demand — no market, the
        run has fallen back, or the policy's spot fraction rounds every
        type to zero.  A live split is priced against the market over
        the projected residual duration and recorded as a
        :class:`SpotPurchase`; fallback (interruption tolerance
        exhausted, or residual slack below the policy's floor) is
        permanent for the run and recorded once as a
        :class:`FallbackToOnDemand`.
        """
        if self.market is None:
            return config, None
        from repro.market import purchase_plan

        policy = self.market_policy
        residual_t = max(state.deadline_hours - state.now_hours, 0.0)
        rate = float(np.dot(np.asarray(config, dtype=float),
                            self._capacities)) * state.rate_efficiency
        est_remaining = self._estimated_remaining_gi(state, state.accuracy)
        projected = (est_remaining / rate / SECONDS_PER_HOUR
                     if rate > 0 else float("inf"))
        if not state.spot_fallback:
            reason = None
            if state.spot_interruptions >= policy.fallback_after_interruptions:
                reason = (f"{state.spot_interruptions} spot interruptions "
                          f"reached the tolerance of "
                          f"{policy.fallback_after_interruptions}")
            elif (residual_t <= 0
                  or (residual_t - projected) / residual_t
                  < policy.min_slack_fraction):
                reason = (f"residual deadline slack below "
                          f"{policy.min_slack_fraction:.0%}; not gambling "
                          f"on spot capacity")
            if reason is not None:
                state.spot_fallback = True
                state.timeline.record(FallbackToOnDemand(
                    at_hours=state.now_hours,
                    interruptions=state.spot_interruptions,
                    reason=reason))
        if state.spot_fallback:
            return config, None
        plan = purchase_plan(self.market, config, policy,
                             duration_hours=min(projected, residual_t),
                             start_hours=state.now_hours, bid=self._bid)
        if not any(plan.spot):
            return config, None
        state.timeline.record(SpotPurchase(
            at_hours=state.now_hours,
            configuration=plan.configuration,
            ondemand=plan.ondemand,
            spot=plan.spot,
            bid_policy=plan.bid_policy,
            expected_cost_dollars=plan.expected_cost_dollars,
            ondemand_cost_dollars=plan.ondemand_cost_dollars,
            interruption_risk=plan.interruption_risk,
        ))
        return plan.ondemand, plan.spot

    # -- execution ---------------------------------------------------------------

    def execute(self, n: float, a: float, deadline_hours: float,
                budget_dollars: float,
                *, configuration: tuple[int, ...] | None = None
                ) -> RuntimeReport:
        """Run ``app(n, a)`` under ``(T', C')`` on the chaotic cloud.

        Arguments:
            n: Problem size (app-specific units, e.g. particles).
            a: Initial accuracy knob value; degradation may lower it,
                never below the floor (``config.min_accuracy`` or the
                app's characterization-grid minimum).
            deadline_hours: The envelope deadline ``T'`` (> 0).
            budget_dollars: The envelope budget ``C'`` (> 0).
            configuration: Pins the initial plan (e.g. a frontier point
                chosen by the caller); omitted, the controller plans the
                cheapest deadline-meeting configuration itself.

        Returns a :class:`RuntimeReport` whose ``verdict`` is one of
        ``"met"``, ``"degraded"``, ``"missed_deadline"``,
        ``"over_budget"``, ``"infeasible"`` or ``"failed"`` — the
        controller never raises on chaos; it stops with an explicit
        verdict and a full audit ``timeline``.

        Raises:
            ValidationError: On a non-positive deadline/budget or
                parameters outside the app's valid range.

        The run is wrapped in a ``runtime.execute`` trace span (with
        ``runtime.provision`` / ``runtime.replan`` / ``runtime.degrade``
        children) and its outcome feeds the global ``runtime_*``
        metrics; ``CELIA_PROFILE=1`` additionally profiles the loop
        under the ``runtime.controller`` phase.
        """
        with get_tracer().span("runtime.execute",
                               {"app": self.app.name,
                                "scenario": self.scenario.name,
                                "adaptive": self.config.replan}) as span:
            with profile_block("runtime.controller"):
                report = self._execute(n, a, deadline_hours,
                                       budget_dollars,
                                       configuration=configuration)
            span.set_attribute("verdict", report.verdict)
        registry = global_registry()
        registry.counter("runtime_runs_total").increment()
        registry.counter("runtime_verdicts_total",
                         labels={"verdict": report.verdict}).increment()
        registry.counter("runtime_replans_total").increment(report.replans)
        registry.counter("runtime_degradations_total").increment(
            report.degradations)
        registry.counter("runtime_crashes_total").increment(report.crashes)
        registry.counter("runtime_migrations_total").increment(
            report.migrations)
        registry.counter("runtime_spot_interruptions_total").increment(
            report.spot_interruptions)
        return report

    def _execute(self, n: float, a: float, deadline_hours: float,
                 budget_dollars: float,
                 *, configuration: tuple[int, ...] | None = None
                 ) -> RuntimeReport:
        self.app.validate_params(n, a)
        if deadline_hours <= 0 or budget_dollars <= 0:
            raise ValidationError("deadline and budget must be positive")
        state = _RunState(n, float(a), deadline_hours, budget_dollars)
        state.remaining_true_gi = self.app.demand_gi(n, a)

        provider = CloudProvider(
            self.celia.catalog,
            virtualization=self.celia.engine_config.virtualization,
            billing_model=self.celia.engine_config.billing,
            fault_model=self.scenario.provisioning_faults(self.seed),
            seed=spawn_seed(self.seed, "runtime-provider"),
        )

        if configuration is None:
            config = self._plan(state, reason="initial")
            if config is None:
                return self._report(state, "infeasible")
        else:
            config = tuple(int(v) for v in configuration)

        while True:
            ondemand, spot = self._purchase_split(state, config)
            # -- provision (with retries; backoff burns deadline) --------------
            lease = None
            try:
                if any(ondemand):
                    with get_tracer().span("runtime.provision",
                                           {"epoch": state.epoch}):
                        lease, state.now_hours = provision_with_retry(
                            provider, ondemand, self._capacities,
                            policy=self.config.retry,
                            now_hours=state.now_hours,
                            seed=spawn_seed(self.seed, "retry", state.epoch),
                            timeline=state.timeline)
            except ProvisioningError:
                config = self._next_plan_or_none(state, "provisioning")
                if config is None:
                    return self._report(state, "infeasible")
                continue
            spot_alloc = None
            if spot is not None:
                spot_alloc = self._fleet.launch(
                    spot, self._bid, now_hours=state.now_hours,
                    lease_key=state.epoch)

            outcome = self._run_lease(state, provider, lease, spot_alloc)
            if outcome == "completed":
                return self._final_verdict(state)
            # "stall" | "deviation" | "crash": lease is already terminated
            # (billed); static controllers stop, adaptive ones re-plan.
            if not self.config.replan:
                state.timeline.record(InfeasiblePlan(
                    at_hours=state.now_hours,
                    remaining_gi=state.remaining_true_gi,
                    residual_deadline_hours=max(
                        state.deadline_hours - state.now_hours, 0.0),
                    residual_budget_dollars=max(
                        state.budget_dollars - state.spent_dollars, 0.0),
                    accuracy_floor=self._accuracy_floor(),
                    detail=f"static execution cannot continue after {outcome}",
                ))
                return self._report(state, "failed")
            previous = config
            config = self._next_plan_or_none(state, outcome)
            if config is None:
                return self._report(state, "infeasible")
            state.migrations += 1
            state.timeline.record(Migration(
                at_hours=state.now_hours,
                from_configuration=tuple(previous),
                to_configuration=tuple(config),
                lease_bill_dollars=state.last_lease_bill,
            ))

    def _next_plan_or_none(self, state: _RunState, reason: str):
        """One re-plan, bounded by ``max_replans``."""
        if state.replans >= self.config.max_replans:
            state.timeline.record(InfeasiblePlan(
                at_hours=state.now_hours,
                remaining_gi=state.remaining_true_gi,
                residual_deadline_hours=max(
                    state.deadline_hours - state.now_hours, 0.0),
                residual_budget_dollars=max(
                    state.budget_dollars - state.spent_dollars, 0.0),
                accuracy_floor=self._accuracy_floor(),
                detail=f"re-plan budget ({self.config.max_replans}) "
                       f"exhausted after {reason}",
            ))
            return None
        state.replans += 1
        state.epoch += 1
        return self._plan(state, reason)

    def _run_lease(self, state: _RunState, provider: CloudProvider,
                   lease: Lease | None,
                   spot_alloc=None) -> str:
        """Execute on one lease (plus optional spot allocation) until
        completion or a deviation.

        Returns "completed", "crash", "spot-interruption", "deviation"
        or "stall"; in every non-completed case the lease and the spot
        allocation have been terminated and billed.  Without a spot
        allocation the execution is built exactly as before (same RNG
        keys), so pure on-demand runs replay the seed's legacy
        timeline bit-for-bit.
        """
        cfg = self.config
        ready = state.now_hours + cfg.node_startup_seconds / SECONDS_PER_HOUR
        od_instances = list(lease.instances) if lease is not None else []
        interrupted = None
        if spot_alloc is None:
            instances = od_instances
            nominal = np.array([
                self.app.true_rate_gips(inst.itype) * inst.contention_factor
                for inst in instances
            ])
            execution = LeaseExecution.launch(
                nominal, start_hours=ready,
                fault_model=self.scenario.fault_model(),
                straggler_fraction=self.scenario.straggler_fraction,
                straggler_slowdown=self.scenario.straggler_slowdown,
                seed=self.seed, lease_id=lease.lease_id)
        else:
            # Mixed fleet: the on-demand nodes first, the spot nodes
            # after, sharing one execution so progress and crash order
            # interleave exactly once.  Crash/straggler draws reuse the
            # launch() key shapes; spot nodes additionally die at their
            # pool's market interruption, whichever comes first.
            instances = od_instances + spot_alloc.instances
            nominal = np.array([
                self.app.true_rate_gips(inst.itype) * inst.contention_factor
                for inst in instances
            ])
            n = nominal.size
            lease_key = (lease.lease_id if lease is not None
                         else -(state.epoch + 1))
            fault_model = self.scenario.fault_model()
            crash_rng = derive_rng(self.seed, "crash", lease_key)
            crash_at = (ready
                        + fault_model.sample_crash_seconds(crash_rng, n)
                        / SECONDS_PER_HOUR)
            rates = nominal.astype(float).copy()
            if (self.scenario.straggler_fraction > 0
                    and self.scenario.straggler_slowdown > 1):
                straggler_rng = derive_rng(self.seed, "straggler", lease_key)
                mask = (straggler_rng.uniform(size=n)
                        < self.scenario.straggler_fraction)
                rates[mask] /= self.scenario.straggler_slowdown
            interrupted = np.zeros(n, dtype=bool)
            offset = len(od_instances)
            for j, spot_node in enumerate(spot_alloc.nodes):
                # An interruption during boot still counts: clamp it
                # just past readiness so the node dies on the first
                # advance instead of silently never existing.
                kill = max(spot_node.interruption_at_hours, ready + 1e-9)
                if kill < crash_at[offset + j]:
                    crash_at[offset + j] = kill
                    interrupted[offset + j] = True
            execution = LeaseExecution(rates, crash_at, ready)

        monitoring = cfg.replan
        interrupted_this_advance = False
        while True:
            tick_start = execution.now_hours
            until = (tick_start + cfg.monitor_interval_hours
                     if monitoring else np.inf)
            result = execution.advance(until, state.remaining_true_gi)
            state.work_done_gi += result.work_done_gi
            state.remaining_true_gi -= result.work_done_gi
            state.now_hours = result.now_hours
            crashed_this_advance = bool(result.crashed)
            interrupted_this_advance = False
            for node in result.crashed:
                inst = instances[node]
                if interrupted is not None and interrupted[node]:
                    interrupted_this_advance = True
                    spot_node = spot_alloc.nodes[node - len(od_instances)]
                    state.spot_interruptions += 1
                    state.timeline.record(SpotInterruption(
                        at_hours=float(execution.crash_at[node]),
                        instance_id=inst.instance_id,
                        type_name=inst.itype.name,
                        bid_price=spot_node.bid_price,
                        market_price=self.market.price_at(
                            inst.itype.name,
                            float(execution.crash_at[node])),
                        surviving_nodes=execution.surviving_nodes,
                    ))
                    continue
                state.crashes += 1
                state.timeline.record(NodeCrash(
                    at_hours=float(execution.crash_at[node]),
                    instance_id=inst.instance_id,
                    type_name=inst.itype.name,
                    surviving_nodes=execution.surviving_nodes,
                ))
            if result.completed:
                self._terminate(state, provider, lease, spot_alloc)
                return "completed"
            if result.stalled:
                self._terminate(state, provider, lease, spot_alloc)
                return "stall"
            if not monitoring:
                continue
            if not crashed_this_advance:
                # Measured rate efficiency over a clean tick: retired
                # work vs what the surviving fleet should nominally
                # retire.  This is the observable feedback that lets
                # re-plans buy headroom against hidden stragglers.
                dt_s = (result.now_hours - tick_start) * SECONDS_PER_HOUR
                nominal_alive = float(nominal[execution.alive_mask].sum())
                if dt_s > 0 and nominal_alive > 0:
                    observed = result.work_done_gi / dt_s / nominal_alive
                    state.rate_efficiency = float(
                        np.clip(observed, 0.25, 1.0))
            if self._deviated(state, provider, lease, execution, spot_alloc):
                self._terminate(state, provider, lease, spot_alloc)
                if interrupted_this_advance:
                    return "spot-interruption"
                return "crash" if crashed_this_advance else "deviation"

    def _deviated(self, state: _RunState, provider: CloudProvider,
                  lease: Lease | None, execution: LeaseExecution,
                  spot_alloc=None) -> bool:
        """Projected envelope check at one monitor tick.

        Projections use the *estimated* residual demand and the billing
        model applied to the projected uptime — what a real monitor
        could compute from observables.  Spot capacity is projected at
        the integrated market price up to the projected finish, which
        its bid caps from above.
        """
        est_remaining = self._estimated_remaining_gi(state, state.accuracy)
        finish = execution.projected_finish_hours(est_remaining)
        tol = self.config.deviation_tolerance
        if finish > state.deadline_hours * tol:
            return True
        projected_bill = (self._lease_bill_at(provider, lease, finish)
                          if lease is not None else 0.0)
        if spot_alloc is not None:
            projected_bill += self._fleet.bill_at(spot_alloc, finish)
        return (state.spent_dollars + projected_bill
                > state.budget_dollars * tol)

    @staticmethod
    def _lease_bill_at(provider: CloudProvider, lease: Lease,
                       at_hours: float) -> float:
        return sum(
            provider.billing_model.amount_due(
                inst.itype.price_per_hour, inst.uptime_hours(at_hours))
            for inst in lease.instances
        )

    def _terminate(self, state: _RunState, provider: CloudProvider,
                   lease: Lease | None, spot_alloc=None) -> None:
        bill = 0.0
        if lease is not None:
            bill += provider.terminate(lease, now_hours=state.now_hours)
        if spot_alloc is not None:
            spot_bill = self._fleet.terminate(spot_alloc,
                                              now_hours=state.now_hours)
            state.spot_cost_dollars += spot_bill
            bill += spot_bill
        state.spent_dollars += bill
        state.last_lease_bill = bill

    def _final_verdict(self, state: _RunState) -> RuntimeReport:
        if state.now_hours > state.deadline_hours:
            verdict = "missed_deadline"
        elif state.spent_dollars > state.budget_dollars:
            verdict = "over_budget"
        elif state.degradations:
            verdict = "degraded"
        else:
            verdict = "met"
        return self._report(state, verdict)

    def _report(self, state: _RunState, verdict: str) -> RuntimeReport:
        return RuntimeReport(
            app_name=self.app.name,
            n=state.n,
            initial_accuracy=state.initial_accuracy,
            final_accuracy=state.accuracy,
            deadline_hours=state.deadline_hours,
            budget_dollars=state.budget_dollars,
            scenario=self.scenario.name,
            seed=self.seed,
            adaptive=self.config.replan,
            verdict=verdict,
            elapsed_hours=state.now_hours,
            cost_dollars=state.spent_dollars,
            work_done_gi=state.work_done_gi,
            remaining_gi=state.remaining_true_gi,
            replans=state.replans,
            degradations=state.degradations,
            migrations=state.migrations,
            crashes=state.crashes,
            provision_attempts=state.timeline.count(ProvisionAttempt),
            timeline=state.timeline.events,
            market=self.market is not None,
            spot_interruptions=state.spot_interruptions,
            spot_cost_dollars=state.spot_cost_dollars,
            ondemand_fallback=state.spot_fallback,
        )
