"""Provisioning retries: capped exponential backoff with deterministic
jitter and per-type Pareto-adjacent fallback.

The control plane is transiently unreliable (see
:mod:`repro.cloud.faults`); this module turns one logical "get me this
configuration" into a bounded retry loop whose *waiting consumes
simulated time* — backoff is not free, it burns deadline, which is
exactly why the adaptive controller accounts for it.

Two remedies, matched to the two transient causes:

* **throttling** — back off and replay the identical request
  (substitution cannot help a rate limiter);
* **insufficient capacity** — back off, and after
  ``fallback_after_attempts`` failures blaming the same type, rebuild
  the request with that type substituted by its *Pareto-adjacent*
  neighbour: the catalog type with the closest measured capacity that
  still has quota headroom, node count rescaled to preserve aggregate
  capacity.  This mirrors what the frontier already told us — adjacent
  frontier points trade a little cost for a little time, so the
  substitute keeps the plan's feasibility envelope approximately intact.

Jitter is deterministic: drawn from an RNG derived from ``(seed,
"backoff", attempt)``, so identical seeds reproduce identical timelines.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cloud.catalog import Catalog
from repro.cloud.provider import CloudProvider, Lease
from repro.errors import (
    ApiThrottledError,
    InsufficientCapacityError,
    ProvisioningExhaustedError,
    QuotaExceededError,
    ValidationError,
)
from repro.runtime.events import ExecutionTimeline, ProvisionAttempt
from repro.units import SECONDS_PER_HOUR
from repro.utils.rng import derive_rng

__all__ = ["RetryPolicy", "backoff_seconds", "provision_with_retry",
           "pareto_adjacent_type", "substitute_configuration"]


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded capped-exponential-backoff retry schedule."""

    #: Total provision attempts before giving up (first try included).
    max_attempts: int = 6
    #: Backoff before retry k is ``base * multiplier**(k-1)`` (seconds).
    backoff_base_s: float = 30.0
    backoff_multiplier: float = 2.0
    #: Ceiling on any single backoff wait (seconds).
    backoff_cap_s: float = 480.0
    #: Fraction of the computed backoff added as deterministic jitter.
    jitter_fraction: float = 0.25
    #: Same-type capacity failures tolerated before substituting the
    #: type with its Pareto-adjacent neighbour.
    fallback_after_attempts: int = 2

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValidationError("max_attempts must be >= 1")
        if self.backoff_base_s < 0 or self.backoff_cap_s < 0:
            raise ValidationError("backoff times must be non-negative")
        if self.backoff_multiplier < 1:
            raise ValidationError("backoff_multiplier must be >= 1")
        if not 0 <= self.jitter_fraction <= 1:
            raise ValidationError("jitter_fraction must be in [0, 1]")
        if self.fallback_after_attempts < 1:
            raise ValidationError("fallback_after_attempts must be >= 1")


def backoff_seconds(policy: RetryPolicy, attempt: int, seed: int) -> float:
    """Wait before retry ``attempt`` (1-based), jittered deterministically.

    Full-jitter-style spreading, but from a seeded stream: the jitter
    for (seed, attempt) never changes across runs, keeping chaos
    timelines reproducible while still decorrelating concurrent
    controllers that carry different seeds.
    """
    nominal = min(
        policy.backoff_base_s * policy.backoff_multiplier ** (attempt - 1),
        policy.backoff_cap_s,
    )
    if policy.jitter_fraction == 0 or nominal == 0:
        return nominal
    rng = derive_rng(seed, "backoff", attempt)
    return nominal * (1.0 + policy.jitter_fraction * (rng.uniform() - 0.5))


def pareto_adjacent_type(catalog: Catalog, capacities: np.ndarray,
                         type_index: int, needed: int,
                         available: np.ndarray) -> int | None:
    """The substitute for a capacity-short type, or ``None``.

    Adjacency is measured in the space the frontier lives in: among
    types with at least ``needed`` nodes of quota headroom (after
    rescaling to preserve aggregate capacity), pick the one whose
    per-node capacity is closest to the short type's; break ties toward
    the cheaper type, then the lower catalog index (deterministic).
    """
    short_capacity = float(capacities[type_index])
    candidates: list[tuple[float, float, int]] = []
    for j in range(len(catalog)):
        if j == type_index or capacities[j] <= 0:
            continue
        count = substitute_count(short_capacity, float(capacities[j]), needed)
        if count <= int(available[j]):
            candidates.append((abs(float(capacities[j]) - short_capacity),
                               float(catalog.prices[j]), j))
    if not candidates:
        return None
    return min(candidates)[2]


def substitute_count(short_capacity: float, substitute_capacity: float,
                     needed: int) -> int:
    """Nodes of the substitute type preserving ``needed`` nodes' capacity."""
    return max(1, int(np.ceil(needed * short_capacity / substitute_capacity)))


def substitute_configuration(
    configuration: tuple[int, ...],
    catalog: Catalog,
    capacities: np.ndarray,
    type_index: int,
    available: np.ndarray,
) -> tuple[tuple[int, ...], int] | None:
    """Rebuild a configuration around a capacity-short type.

    Returns ``(new_configuration, substitute_index)`` or ``None`` when
    no adjacent type can absorb the displaced nodes.
    """
    needed = configuration[type_index]
    if needed == 0:
        return None
    sub = pareto_adjacent_type(catalog, capacities, type_index, needed,
                               available)
    if sub is None:
        return None
    vec = list(configuration)
    vec[type_index] = 0
    vec[sub] += substitute_count(float(capacities[type_index]),
                                 float(capacities[sub]), needed)
    vec[sub] = min(vec[sub], int(available[sub]))
    return tuple(vec), sub


def provision_with_retry(
    provider: CloudProvider,
    configuration: tuple[int, ...],
    capacities: np.ndarray,
    *,
    policy: RetryPolicy,
    now_hours: float,
    seed: int,
    timeline: ExecutionTimeline | None = None,
) -> tuple[Lease, float]:
    """Provision ``configuration``, retrying transient faults.

    Returns ``(lease, now_hours)`` where ``now_hours`` includes all
    simulated backoff waiting.  Raises
    :class:`~repro.errors.ProvisioningExhaustedError` when the attempt
    budget is spent without a lease.  Every attempt — successful or not —
    is recorded on ``timeline`` with its outcome and backoff.
    """
    vec = tuple(int(v) for v in configuration)
    start_hours = now_hours
    capacity_failures: dict[int, int] = {}
    last_error: Exception | None = None
    for attempt in range(1, policy.max_attempts + 1):
        try:
            lease = provider.provision(vec, now_hours=now_hours)
        except ApiThrottledError as exc:
            last_error = exc
            outcome, detail, substituted = "throttled", str(exc), None
        except InsufficientCapacityError as exc:
            last_error = exc
            outcome, detail = "insufficient_capacity", str(exc)
            substituted = None
            failures = capacity_failures.get(exc.type_index, 0) + 1
            capacity_failures[exc.type_index] = failures
            if failures >= policy.fallback_after_attempts:
                replacement = substitute_configuration(
                    vec, provider.catalog, capacities, exc.type_index,
                    provider.available())
                if replacement is not None:
                    vec, sub = replacement
                    substituted = provider.catalog.names[sub]
                    capacity_failures.pop(exc.type_index, None)
        except QuotaExceededError as exc:
            # Not transient at this instant, but quota frees up when a
            # concurrent lease terminates — treat like capacity pressure.
            last_error = exc
            outcome, detail, substituted = "quota", str(exc), None
        else:
            if timeline is not None:
                timeline.record(ProvisionAttempt(
                    at_hours=now_hours, attempt=attempt, configuration=vec,
                    outcome="ok"))
            return lease, now_hours
        wait_s = (backoff_seconds(policy, attempt, seed)
                  if attempt < policy.max_attempts else 0.0)
        if timeline is not None:
            timeline.record(ProvisionAttempt(
                at_hours=now_hours, attempt=attempt, configuration=vec,
                outcome=outcome, detail=detail, backoff_seconds=wait_s,
                substituted_type=substituted))
        now_hours += wait_s / SECONDS_PER_HOUR
    raise ProvisioningExhaustedError(
        f"gave up provisioning after {policy.max_attempts} attempts "
        f"({(now_hours - start_hours) * SECONDS_PER_HOUR:.0f}s of backoff); "
        f"last error: {last_error}",
        attempts=policy.max_attempts,
        elapsed_seconds=(now_hours - start_hours) * SECONDS_PER_HOUR,
    ) from last_error
