"""Trace file tooling: JSONL readers, Chrome conversion, summaries.

The tracer streams newline-delimited JSON records (``trace.py`` defines
the schema).  This module turns those files into things an operator can
look at:

* :func:`to_chrome_trace` / :func:`export_chrome_trace` — the Chrome
  ``trace_event`` JSON format, loadable at ``chrome://tracing`` or
  https://ui.perfetto.dev (``celia trace export``);
* :func:`trace_summary` — per-span-name aggregates plus wall-clock
  coverage (what fraction of the run's wall time is under at least one
  span — the acceptance bar is ≥95%);
* :func:`read_trace` / :func:`spans_only` — parsing helpers shared by
  the CLI and tests.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import ValidationError

__all__ = [
    "export_chrome_trace",
    "read_trace",
    "spans_only",
    "to_chrome_trace",
    "trace_summary",
]


def read_trace(path: "str | Path") -> list[dict]:
    """Parse a JSONL trace file into a list of record dicts.

    Raises :class:`~repro.errors.ValidationError` on unreadable files or
    malformed lines — a truncated trace should fail loudly, not render
    half a timeline.
    """
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise ValidationError(f"cannot read trace file {path}: {exc}") \
            from exc
    records = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as exc:
            raise ValidationError(
                f"{path}:{lineno}: not valid JSON ({exc})") from exc
    return records


def spans_only(records: list[dict]) -> list[dict]:
    """The span records of a trace (drops profile and future kinds)."""
    return [r for r in records if r.get("kind", "span") == "span"]


def to_chrome_trace(records: list[dict]) -> dict:
    """Convert trace records to the Chrome ``trace_event`` format.

    Spans become complete (``"ph": "X"``) events with microsecond
    ``ts``/``dur``; the producing process becomes the Chrome ``pid`` so
    supervisor and worker spans land on separate rows.  Profile records
    become instant (``"ph": "i"``) events carrying their top rows in
    ``args``, so the tables are visible in the viewer too.
    """
    events: list[dict] = []
    for record in records:
        kind = record.get("kind", "span")
        if kind == "span":
            args = {"span_id": record.get("span_id"),
                    "parent_id": record.get("parent_id"),
                    "cpu_s": record.get("cpu_s")}
            args.update(record.get("attrs", {}))
            events.append({
                "name": record.get("name", "?"),
                "ph": "X",
                "ts": round(record.get("start_s", 0.0) * 1e6, 3),
                "dur": round(record.get("wall_s", 0.0) * 1e6, 3),
                "pid": record.get("pid", 0),
                "tid": record.get("pid", 0),
                "cat": record.get("name", "?").split(".", 1)[0],
                "args": args,
            })
        elif kind == "profile":
            events.append({
                "name": f"profile:{record.get('phase', '?')}",
                "ph": "i",
                "ts": 0.0,
                "pid": record.get("pid", 0),
                "tid": record.get("pid", 0),
                "s": "g",
                "args": {"rows": record.get("rows", [])},
            })
    events.sort(key=lambda e: (e["ts"], e["name"]))
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def export_chrome_trace(in_path: "str | Path",
                        out_path: "str | Path") -> int:
    """Read a JSONL trace, write the Chrome JSON; returns event count."""
    chrome = to_chrome_trace(read_trace(in_path))
    out_path = Path(out_path)
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(chrome, sort_keys=True), encoding="utf-8")
    return len(chrome["traceEvents"])


def _union_seconds(intervals: list[tuple[float, float]]) -> float:
    """Total length covered by a union of [start, end) intervals."""
    if not intervals:
        return 0.0
    intervals.sort()
    covered = 0.0
    cur_start, cur_end = intervals[0]
    for start, end in intervals[1:]:
        if start > cur_end:
            covered += cur_end - cur_start
            cur_start, cur_end = start, end
        else:
            cur_end = max(cur_end, end)
    return covered + (cur_end - cur_start)


def trace_summary(records: list[dict]) -> dict:
    """Aggregate a trace: per-name stats and wall-clock span coverage.

    ``coverage`` is the fraction of the run's wall window (first span
    start to last span end) lying under at least one span — the number
    the acceptance criterion checks at ≥0.95.  A trace with a proper
    root span (the CLI opens ``cli.<command>`` around everything) covers
    1.0 by construction; the metric exists to catch instrumentation
    gaps if that root ever disappears.
    """
    spans = spans_only(records)
    by_name: dict[str, dict] = {}
    intervals: list[tuple[float, float]] = []
    errors = 0
    for span in spans:
        name = span.get("name", "?")
        wall = float(span.get("wall_s", 0.0))
        cpu = float(span.get("cpu_s", 0.0))
        start = float(span.get("start_s", 0.0))
        intervals.append((start, start + wall))
        slot = by_name.setdefault(name, {"count": 0, "wall_s": 0.0,
                                         "cpu_s": 0.0, "max_wall_s": 0.0})
        slot["count"] += 1
        slot["wall_s"] += wall
        slot["cpu_s"] += cpu
        slot["max_wall_s"] = max(slot["max_wall_s"], wall)
        if span.get("status") == "error":
            errors += 1
    if intervals:
        window_start = min(s for s, _ in intervals)
        window_end = max(e for _, e in intervals)
        window = window_end - window_start
        covered = _union_seconds(intervals)
        coverage = 1.0 if window <= 0 else min(1.0, covered / window)
    else:
        window = 0.0
        coverage = 0.0
    profiles = [r for r in records if r.get("kind") == "profile"]
    return {
        "spans": len(spans),
        "errors": errors,
        "window_s": window,
        "coverage": coverage,
        "profile_records": len(profiles),
        "by_name": {name: by_name[name] for name in sorted(by_name)},
    }
