"""Opt-in ``cProfile`` hooks for the sweep workers and the control loop.

Profiling answers the question tracing cannot: *where inside a phase*
the CPU time went.  It is strictly opt-in — set ``CELIA_PROFILE=1`` and
the instrumented phases (sweep workers, the runtime controller loop,
planner request handling) each run under :mod:`cProfile`; leave it unset
and :func:`profile_block` is a no-op context manager costing one env
check at import plus one attribute check per entry.

Aggregation is per *phase*, not per process: every profiled block
reduces its ``pstats`` table to the top-N functions by cumulative time
(:func:`top_functions`) and merges them into the module-level
:class:`ProfileStore` keyed by phase name.  Sweep workers, which live in
other processes, reduce locally and ship their rows back over the
supervisor pipe, so ``celia profile`` sees one table per phase no matter
how many processes contributed.  When tracing is active, each profiled
block also drops a ``{"kind": "profile"}`` record into the trace, which
is how the tables survive into ``out.jsonl`` for offline rendering.
"""

from __future__ import annotations

import cProfile
import os
import pstats
import threading
from contextlib import contextmanager

__all__ = [
    "PROFILE_ENV",
    "ProfileStore",
    "get_store",
    "profile_block",
    "profiling_enabled",
    "reset_store",
    "top_functions",
]

#: Environment variable that turns profiling on ("1", "true", "yes").
PROFILE_ENV = "CELIA_PROFILE"

#: Functions kept per phase table — enough to see the shape of a phase
#: without drowning the terminal.
TOP_N = 15


def profiling_enabled() -> bool:
    """Whether ``CELIA_PROFILE`` asks for profiling in this process."""
    return os.environ.get(PROFILE_ENV, "").lower() in ("1", "true", "yes")


def top_functions(profiler: cProfile.Profile, limit: int = TOP_N
                  ) -> list[dict]:
    """Reduce a finished profiler to its top functions by cumulative time.

    Each row is a plain JSON-ready dict: ``function`` (``file:line(name)``
    with a basename'd path), ``calls``, ``total_s`` (time inside the
    function itself) and ``cumulative_s`` (including callees).
    """
    stats = pstats.Stats(profiler)
    rows = []
    for func, (cc, nc, tt, ct, _callers) in stats.stats.items():
        filename, lineno, name = func
        label = f"{os.path.basename(filename)}:{lineno}({name})"
        rows.append({
            "function": label,
            "calls": int(nc),
            "total_s": float(tt),
            "cumulative_s": float(ct),
        })
    rows.sort(key=lambda r: (-r["cumulative_s"], r["function"]))
    return rows[:limit]


def merge_rows(existing: list[dict], incoming: list[dict],
               limit: int = TOP_N) -> list[dict]:
    """Fold one top-N table into another, summing shared functions."""
    by_func = {row["function"]: dict(row) for row in existing}
    for row in incoming:
        slot = by_func.get(row["function"])
        if slot is None:
            by_func[row["function"]] = dict(row)
        else:
            slot["calls"] += row["calls"]
            slot["total_s"] += row["total_s"]
            slot["cumulative_s"] += row["cumulative_s"]
    merged = sorted(by_func.values(),
                    key=lambda r: (-r["cumulative_s"], r["function"]))
    return merged[:limit]


class ProfileStore:
    """Per-phase aggregation of top-N profile tables (thread-safe)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._phases: dict[str, list[dict]] = {}
        self._blocks: dict[str, int] = {}

    def add(self, phase: str, rows: list[dict]) -> None:
        """Merge one profiled block's table into ``phase``."""
        with self._lock:
            current = self._phases.get(phase, [])
            self._phases[phase] = merge_rows(current, rows)
            self._blocks[phase] = self._blocks.get(phase, 0) + 1

    def tables(self) -> dict[str, list[dict]]:
        """Phase name → merged top-N rows, phases sorted by name."""
        with self._lock:
            return {phase: [dict(r) for r in rows]
                    for phase, rows in sorted(self._phases.items())}

    def blocks(self, phase: str) -> int:
        """How many profiled blocks contributed to ``phase``."""
        with self._lock:
            return self._blocks.get(phase, 0)

    def clear(self) -> None:
        with self._lock:
            self._phases.clear()
            self._blocks.clear()


_STORE: ProfileStore | None = None
_STORE_LOCK = threading.Lock()


def get_store() -> ProfileStore:
    """The process-wide profile store (created on first use)."""
    global _STORE
    if _STORE is None:
        with _STORE_LOCK:
            if _STORE is None:
                _STORE = ProfileStore()
    return _STORE


def reset_store() -> None:
    """Swap in a fresh store (tests only)."""
    global _STORE
    with _STORE_LOCK:
        _STORE = ProfileStore()


@contextmanager
def profile_block(phase: str, *, force: bool = False):
    """Profile the enclosed block into ``phase`` when profiling is on.

    Disabled (the default), this is a bare ``yield`` — safe to leave in
    hot control paths.  Enabled, the block runs under :mod:`cProfile`;
    on exit the top-N table is merged into the global
    :class:`ProfileStore` and, if tracing is active, recorded into the
    trace as a ``{"kind": "profile", "phase": ..., "rows": [...]}``
    record.  ``force=True`` profiles regardless of the environment
    (used by tests and by workers that already checked the env).
    """
    if not (force or profiling_enabled()):
        yield None
        return
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield profiler
    finally:
        profiler.disable()
        rows = top_functions(profiler)
        get_store().add(phase, rows)
        from repro.obs.trace import get_tracer

        tracer = get_tracer()
        if tracer.enabled:
            tracer.record_raw({"kind": "profile", "phase": phase,
                               "pid": os.getpid(), "rows": rows})


def render_tables(tables: dict[str, list[dict]]) -> str:
    """Human-readable rendering of :meth:`ProfileStore.tables` output."""
    if not tables:
        return "no profile data (run with CELIA_PROFILE=1)\n"
    lines: list[str] = []
    for phase, rows in tables.items():
        lines.append(f"phase: {phase}")
        lines.append(f"  {'cumulative_s':>12} {'total_s':>10} "
                     f"{'calls':>8}  function")
        for row in rows:
            lines.append(f"  {row['cumulative_s']:12.4f} "
                         f"{row['total_s']:10.4f} {row['calls']:8d}  "
                         f"{row['function']}")
        lines.append("")
    return "\n".join(lines)
