"""Shared metrics: counters, gauges and latency histograms.

Grown out of ``repro.service.metrics`` (which now re-exports from here):
the planning service needed a ``/metrics`` endpoint first, but the sweep
supervisor, the evaluation cache and the adaptive runtime all have the
same need — health as a statistical object, where a single slow request
means nothing and the p99 means everything.  This module provides the
three classic primitives:

* :class:`Counter` — monotone event count (requests served, retries,
  cache hits);
* :class:`Gauge` — instantaneous level (queue depth, live workers);
* :class:`Histogram` — bounded-memory sample reservoir reporting
  ``p50``/``p95``/``p99`` alongside count/sum/min/max.

A :class:`MetricsRegistry` names and owns them and renders one
JSON-serializable :meth:`~MetricsRegistry.snapshot` of everything.  All
primitives are guarded by a lock so the asyncio front-end and executor
worker threads can record concurrently.

Beyond the lifted primitives this module adds:

* a **process-global registry** (:func:`global_registry`) that every
  layer reports into, so one snapshot correlates supervisor
  re-dispatches, cache hit ratios and runtime degradations;
* optional **labels** — ``registry.counter("runtime_verdicts",
  labels={"verdict": "met"})`` materializes the canonical series name
  ``runtime_verdicts{verdict="met"}``;
* a **text exposition** (:func:`render_text`) for ``/metrics.txt`` and
  ``celia metrics``-style terminal output;
* :func:`merge_snapshots` for endpoints that serve several registries
  (the planner server merges its private registry with the global one).
"""

from __future__ import annotations

import threading
from collections import deque

from repro.errors import ValidationError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "global_registry",
    "group_by_label",
    "label_snapshot",
    "labeled_name",
    "merge_snapshots",
    "parse_series",
    "render_text",
    "reset_global_registry",
]

#: Samples retained per histogram; older observations fall out of the
#: window, so percentiles describe recent behavior (what an operator
#: watching a dashboard actually wants).
DEFAULT_WINDOW = 4096

#: Percentiles reported by every histogram snapshot.
PERCENTILES = (50.0, 95.0, 99.0)


def _nearest_rank(sorted_samples, p: float) -> float:
    """Nearest-rank percentile on an already-sorted, non-empty list."""
    last = len(sorted_samples) - 1
    rank = min(last, round(p / 100.0 * last))
    return sorted_samples[int(rank)]


def labeled_name(name: str, labels: "dict[str, str] | None" = None) -> str:
    """The canonical series name: ``name{k="v",...}`` with sorted keys.

    Labels are folded into the name rather than kept as a separate
    dimension — the registry stays a flat dict, snapshots stay plain
    JSON, and two call sites using the same labels in different order
    still hit the same series.
    """
    if not labels:
        return name
    body = ",".join(f'{k}="{labels[k]}"' for k in sorted(labels))
    return f"{name}{{{body}}}"


class Counter:
    """A monotonically increasing event count."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0

    def increment(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValidationError("counters only move forward")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class Gauge:
    """An instantaneous level that can move both ways."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, delta: float) -> None:
        with self._lock:
            self._value += float(delta)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Sliding-window sample distribution with percentile snapshots.

    Keeps the last ``window`` observations in a ring buffer plus
    all-time count/sum, so :meth:`snapshot` is exact over the window and
    cheap — one sort of at most ``window`` floats.
    """

    def __init__(self, window: int = DEFAULT_WINDOW) -> None:
        if window < 1:
            raise ValidationError("histogram window must be >= 1")
        self._lock = threading.Lock()
        self._samples: deque[float] = deque(maxlen=window)
        self._count = 0
        self._sum = 0.0

    def observe(self, value: float) -> None:
        with self._lock:
            self._samples.append(float(value))
            self._count += 1
            self._sum += float(value)

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def samples(self) -> tuple[float, ...]:
        """The observations currently in the window, oldest first."""
        with self._lock:
            return tuple(self._samples)

    def percentile(self, p: float) -> "float | None":
        """Nearest-rank percentile over the window (None when empty)."""
        with self._lock:
            samples = sorted(self._samples)
        if not samples:
            return None
        return _nearest_rank(samples, p)

    def snapshot(self) -> dict:
        """count/sum/min/max plus the :data:`PERCENTILES` over the window."""
        with self._lock:
            samples = sorted(self._samples)
            count, total = self._count, self._sum
        out: dict = {"count": count, "sum": total}
        if not samples:
            out.update({"min": None, "max": None})
            out.update({f"p{p:g}": None for p in PERCENTILES})
            return out
        out["min"] = samples[0]
        out["max"] = samples[-1]
        for p in PERCENTILES:
            out[f"p{p:g}"] = _nearest_rank(samples, p)
        return out


class MetricsRegistry:
    """Named collection of metrics rendering one JSON snapshot."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str,
                labels: "dict[str, str] | None" = None) -> Counter:
        """The counter called ``name`` (created on first use)."""
        key = labeled_name(name, labels)
        with self._lock:
            return self._counters.setdefault(key, Counter())

    def gauge(self, name: str,
              labels: "dict[str, str] | None" = None) -> Gauge:
        """The gauge called ``name`` (created on first use)."""
        key = labeled_name(name, labels)
        with self._lock:
            return self._gauges.setdefault(key, Gauge())

    def histogram(self, name: str, *, window: int = DEFAULT_WINDOW,
                  labels: "dict[str, str] | None" = None) -> Histogram:
        """The histogram called ``name`` (created on first use)."""
        key = labeled_name(name, labels)
        with self._lock:
            return self._histograms.setdefault(key, Histogram(window))

    def snapshot(self) -> dict:
        """Every metric's current value, ready for ``json.dumps``."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {k: c.value for k, c in sorted(counters.items())},
            "gauges": {k: g.value for k, g in sorted(gauges.items())},
            "histograms": {k: h.snapshot()
                           for k, h in sorted(histograms.items())},
        }

    def reset(self) -> None:
        """Forget every metric (tests; handles held by callers go stale)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


def _parse_series(name: str) -> "tuple[str, dict[str, str]]":
    """Split a canonical series name back into ``(base, labels)``."""
    base, brace, rest = name.partition("{")
    if not brace:
        return name, {}
    labels: dict[str, str] = {}
    for part in rest.rstrip("}").split(","):
        key, _, value = part.partition("=")
        labels[key] = value.strip('"')
    return base, labels


def parse_series(name: str) -> "tuple[str, dict[str, str]]":
    """Split a canonical series name back into ``(base, labels)``.

    The public inverse of :func:`labeled_name`:

    >>> parse_series('loadgen_requests_total{status="ok",tenant="t00"}')
    ('loadgen_requests_total', {'status': 'ok', 'tenant': 't00'})
    """
    return _parse_series(name)


def group_by_label(snapshot: dict, label: str) -> "dict[str, dict]":
    """Split one snapshot into per-label-value sub-snapshots.

    Series carrying ``label`` land in the sub-snapshot keyed by the
    label's value, renamed without that label (remaining labels stay);
    series without it are dropped.  This is how the load replayer turns a
    flat registry snapshot with ``{tenant="t03"}`` series into the
    per-tenant view the replay report prints:

    >>> snap = {"counters": {'requests{tenant="a"}': 3, "other": 1},
    ...         "gauges": {}, "histograms": {}}
    >>> group_by_label(snap, "tenant")["a"]["counters"]
    {'requests': 3}
    """
    grouped: dict[str, dict] = {}
    for section in ("counters", "gauges", "histograms"):
        for name, value in snapshot.get(section, {}).items():
            base, labels = _parse_series(name)
            if label not in labels:
                continue
            value_key = labels.pop(label)
            sub = grouped.setdefault(
                value_key, {"counters": {}, "gauges": {}, "histograms": {}}
            )
            sub[section][labeled_name(base, labels)] = value
    return {key: grouped[key] for key in sorted(grouped)}


def label_snapshot(snapshot: dict, labels: "dict[str, str]") -> dict:
    """A copy of ``snapshot`` with ``labels`` folded into every series.

    Existing labels are kept (new ones win on a key collision) and the
    result uses the same canonical sorted-label naming as
    :func:`labeled_name`, so relabeled series from several registries
    merge cleanly.  The fleet front end uses this to distinguish each
    shard worker's series (``requests_total{worker="w1"}``) in the
    fleet-wide ``/metrics`` view.
    """
    if not labels:
        return snapshot

    def relabel(name: str) -> str:
        base, existing = _parse_series(name)
        return labeled_name(base, {**existing, **labels})

    out: dict = {}
    for section in ("counters", "gauges", "histograms"):
        out[section] = {relabel(name): value
                        for name, value in snapshot.get(section, {}).items()}
    return out


def merge_snapshots(*snapshots: dict) -> dict:
    """Union several :meth:`MetricsRegistry.snapshot` dicts into one.

    Later snapshots win on a name collision (callers avoid collisions by
    prefixing: the global registry uses ``sweep_*`` / ``eval_cache_*`` /
    ``runtime_*``, the planner service uses ``requests_*`` etc.).  The
    output keeps the same three-section shape, sorted by name.
    """
    counters: dict = {}
    gauges: dict = {}
    histograms: dict = {}
    for snap in snapshots:
        counters.update(snap.get("counters", {}))
        gauges.update(snap.get("gauges", {}))
        histograms.update(snap.get("histograms", {}))
    return {
        "counters": dict(sorted(counters.items())),
        "gauges": dict(sorted(gauges.items())),
        "histograms": dict(sorted(histograms.items())),
    }


def render_text(snapshot: dict) -> str:
    """Flat ``name value`` text exposition of a snapshot.

    One line per series; histogram sub-fields become ``name_count``,
    ``name_sum``, ``name_p50`` … with empty-window percentiles rendered
    as ``nan``.  Labels (already folded into names) pass through, so the
    output is close enough to the Prometheus exposition format to grep
    and diff, without claiming full compliance.
    """
    lines: list[str] = []
    for name, value in snapshot.get("counters", {}).items():
        lines.append(f"{name} {value}")
    for name, value in snapshot.get("gauges", {}).items():
        lines.append(f"{name} {value:g}")
    for name, hist in snapshot.get("histograms", {}).items():
        base, _, labels = name.partition("{")
        suffix = ("{" + labels) if labels else ""
        for field, value in hist.items():
            rendered = "nan" if value is None else f"{value:g}"
            lines.append(f"{base}_{field}{suffix} {rendered}")
    return "\n".join(lines) + ("\n" if lines else "")


_GLOBAL: MetricsRegistry | None = None
_GLOBAL_LOCK = threading.Lock()


def global_registry() -> MetricsRegistry:
    """The process-wide registry every layer reports into.

    The sweep supervisor, evaluation cache, runtime controller and CLI
    all use this one; the planner service keeps a private registry per
    instance (its request counters are part of its API) and the server
    merges both views at ``/metrics``.
    """
    global _GLOBAL
    if _GLOBAL is None:
        with _GLOBAL_LOCK:
            if _GLOBAL is None:
                _GLOBAL = MetricsRegistry()
    return _GLOBAL


def reset_global_registry() -> None:
    """Swap in a fresh global registry (tests only)."""
    global _GLOBAL
    with _GLOBAL_LOCK:
        _GLOBAL = MetricsRegistry()
