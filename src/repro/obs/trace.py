"""Spans and the process tracer — the backbone of ``repro.obs``.

A :class:`Span` is one timed operation: a name, a pair of ids linking it
into a tree, wall and CPU durations, and a small dict of typed
attributes.  The :class:`Tracer` hands spans out as context managers,
tracks the *current* span per task/thread through a ``contextvars``
variable (so nesting produces parent links without any plumbing), and
streams every finished span to a JSONL file when exporting is enabled.

Tracing is **off by default and free when off**: ``tracer.span(...)``
returns a shared no-op context manager that allocates nothing, so
instrumented hot paths cost one attribute check.  Enable it with
:func:`configure_tracing` (the CLI's ``--trace out.jsonl`` does this) or
the ``CELIA_TRACE`` environment variable.

Cross-process propagation uses :class:`SpanContext` — the (trace id,
span id) pair, picklable and tiny — which the sweep supervisor ships to
workers inside the span-dispatch tuple.  Workers do not run a tracer of
their own; they time their work, build plain record dicts parented on
the received context (:func:`make_span_record`), and send them back over
the existing result pipe, where the supervisor feeds them into the
parent tracer via :meth:`Tracer.record_raw`.  The trace therefore ends
up in one file regardless of how many processes produced it.
"""

from __future__ import annotations

import contextvars
import json
import os
import threading
import time
import uuid
from collections import deque
from dataclasses import dataclass
from pathlib import Path

from repro.errors import ValidationError

__all__ = [
    "TRACE_ENV",
    "Span",
    "SpanContext",
    "Tracer",
    "configure_tracing",
    "get_tracer",
    "make_span_record",
    "new_span_id",
    "reset_tracing",
    "tracing_enabled",
]

#: Environment variable that enables tracing (its value is the JSONL
#: export path, or empty/"1" for in-memory only).
TRACE_ENV = "CELIA_TRACE"

#: Finished spans retained in memory per tracer (the JSONL export is
#: unbounded; the buffer exists for in-process inspection and tests).
DEFAULT_BUFFER = 8192

_ATTR_TYPES = (str, int, float, bool)


def new_span_id() -> str:
    """A fresh 16-hex-digit span (or trace) id."""
    return uuid.uuid4().hex[:16]


@dataclass(frozen=True, slots=True)
class SpanContext:
    """The picklable cross-process identity of a span: who to parent on."""

    trace_id: str
    span_id: str

    def to_tuple(self) -> tuple[str, str]:
        """Wire form: a plain tuple, safe for any pickle protocol."""
        return (self.trace_id, self.span_id)

    @classmethod
    def from_tuple(cls, raw: "tuple[str, str] | None"
                   ) -> "SpanContext | None":
        return None if raw is None else cls(raw[0], raw[1])


def make_span_record(name: str, context: SpanContext | None, *,
                     start_s: float, wall_s: float, cpu_s: float,
                     attrs: dict | None = None,
                     span_id: str | None = None) -> dict:
    """Build one span record outside any tracer (worker processes).

    ``context`` supplies the trace id and the parent span id; ``None``
    starts a fresh single-span trace (useful only in tests).  The record
    schema matches what :class:`Tracer` writes for its own spans, so a
    supervisor can feed these into :meth:`Tracer.record_raw` unchanged.
    """
    if context is None:
        context = SpanContext(new_span_id(), "")
    return {
        "kind": "span",
        "name": name,
        "trace_id": context.trace_id,
        "span_id": span_id or new_span_id(),
        "parent_id": context.span_id or None,
        "start_s": float(start_s),
        "wall_s": float(wall_s),
        "cpu_s": float(cpu_s),
        "pid": os.getpid(),
        "attrs": dict(attrs or {}),
    }


class Span:
    """One timed operation in a trace tree (use via ``tracer.span(...)``).

    Entering the span stamps wall and CPU clocks and makes it the
    current span of the calling task; exiting computes durations,
    restores the previous current span, and hands the finished record to
    the tracer.  Attributes set with :meth:`set_attribute` must be
    str/int/float/bool — the record must stay JSON-serializable.
    """

    __slots__ = ("tracer", "name", "trace_id", "span_id", "parent_id",
                 "attrs", "status", "_start_wall", "_start_perf",
                 "_start_cpu", "_token")

    def __init__(self, tracer: "Tracer", name: str, trace_id: str,
                 parent_id: str | None, attrs: dict | None):
        self.tracer = tracer
        self.name = name
        self.trace_id = trace_id
        self.span_id = new_span_id()
        self.parent_id = parent_id
        self.attrs: dict = {}
        self.status = "ok"
        if attrs:
            for key, value in attrs.items():
                self.set_attribute(key, value)
        self._start_wall = 0.0
        self._start_perf = 0.0
        self._start_cpu = 0.0
        self._token: contextvars.Token | None = None

    @property
    def context(self) -> SpanContext:
        """This span's :class:`SpanContext` (for cross-process children)."""
        return SpanContext(self.trace_id, self.span_id)

    def set_attribute(self, key: str, value) -> None:
        """Attach one typed attribute (str/int/float/bool only)."""
        if not isinstance(value, _ATTR_TYPES):
            raise ValidationError(
                f"span attribute {key!r} must be str/int/float/bool, "
                f"got {type(value).__name__}")
        self.attrs[str(key)] = value

    def __enter__(self) -> "Span":
        self._start_wall = time.time()
        self._start_perf = time.perf_counter()
        self._start_cpu = _cpu_clock()
        self._token = _CURRENT_SPAN.set(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.status = "error"
            self.attrs.setdefault("error", exc_type.__name__)
        if self._token is not None:
            _CURRENT_SPAN.reset(self._token)
            self._token = None
        self.tracer._finish(self)

    def _record(self) -> dict:
        return {
            "kind": "span",
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_s": self._start_wall,
            "wall_s": time.perf_counter() - self._start_perf,
            "cpu_s": _cpu_clock() - self._start_cpu,
            "status": self.status,
            "pid": os.getpid(),
            "attrs": dict(self.attrs),
        }


def _cpu_clock() -> float:
    """Per-thread CPU time where the platform has it, process CPU else."""
    try:
        return time.thread_time()
    except (AttributeError, OSError):  # pragma: no cover - niche platforms
        return time.process_time()


class _NoopSpan:
    """Shared do-nothing span: what ``tracer.span`` returns when disabled."""

    __slots__ = ()

    context = None

    def set_attribute(self, key: str, value) -> None:
        pass

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NOOP_SPAN = _NoopSpan()

#: The innermost open span of the current task/thread (None outside any).
_CURRENT_SPAN: contextvars.ContextVar["Span | None"] = \
    contextvars.ContextVar("celia_current_span", default=None)


class Tracer:
    """Collects finished spans; optionally streams them to a JSONL file.

    One tracer serves the whole process (see :func:`get_tracer`);
    constructing private instances is supported for tests.  All methods
    are thread-safe — executor threads and the asyncio loop may finish
    spans concurrently.
    """

    def __init__(self, *, export_path: "str | Path | None" = None,
                 buffer: int = DEFAULT_BUFFER, enabled: bool = False):
        self._lock = threading.Lock()
        self._records: deque[dict] = deque(maxlen=buffer)
        self._export_path: Path | None = None
        self._trace_id = new_span_id()
        self.enabled = enabled
        if export_path is not None:
            self.configure(export_path)

    # -- configuration ---------------------------------------------------------

    def configure(self, export_path: "str | Path | None" = None) -> None:
        """Enable tracing, streaming to ``export_path`` when given.

        The file is truncated: one ``celia`` invocation produces one
        self-contained trace.
        """
        with self._lock:
            self.enabled = True
            if export_path:
                self._export_path = Path(export_path)
                self._export_path.parent.mkdir(parents=True, exist_ok=True)
                self._export_path.write_text("", encoding="utf-8")

    def disable(self) -> None:
        """Stop recording (the in-memory buffer is kept)."""
        with self._lock:
            self.enabled = False
            self._export_path = None

    @property
    def export_path(self) -> "Path | None":
        return self._export_path

    @property
    def trace_id(self) -> str:
        """The id new root spans join when no parent is active."""
        return self._trace_id

    # -- span creation ---------------------------------------------------------

    def span(self, name: str, attrs: dict | None = None, *,
             parent: SpanContext | None = None):
        """A context manager timing one operation.

        Disabled tracers return a shared no-op object, so instrumented
        code pays a single attribute check.  ``parent`` overrides the
        ambient current span — used when resuming a context that crossed
        a process or task boundary.
        """
        if not self.enabled:
            return _NOOP_SPAN
        if parent is not None:
            return Span(self, name, parent.trace_id, parent.span_id or None,
                        attrs)
        current = _CURRENT_SPAN.get()
        if current is not None:
            return Span(self, name, current.trace_id, current.span_id, attrs)
        return Span(self, name, self._trace_id, None, attrs)

    def current_context(self) -> SpanContext | None:
        """The innermost open span's context, for cross-process dispatch."""
        if not self.enabled:
            return None
        current = _CURRENT_SPAN.get()
        if current is not None:
            return current.context
        return SpanContext(self._trace_id, "")

    # -- record sinks ----------------------------------------------------------

    def _finish(self, span: Span) -> None:
        self.record_raw(span._record())

    def record_raw(self, record: dict) -> None:
        """Ingest one pre-built record (worker spans, profile tables)."""
        if not self.enabled:
            return
        with self._lock:
            self._records.append(record)
            if self._export_path is not None:
                with open(self._export_path, "a", encoding="utf-8") as fh:
                    fh.write(json.dumps(record, sort_keys=True) + "\n")

    def records(self) -> list[dict]:
        """Finished records currently buffered, oldest first."""
        with self._lock:
            return list(self._records)

    def clear(self) -> None:
        with self._lock:
            self._records.clear()
            self._trace_id = new_span_id()


_TRACER: Tracer | None = None
_TRACER_LOCK = threading.Lock()


def get_tracer() -> Tracer:
    """The process-wide tracer (created on first use).

    Honors ``CELIA_TRACE`` at creation: a non-empty value enables
    tracing, and any value other than ``"1"`` is used as the JSONL
    export path — so child *processes* of a traced run inherit tracing
    without code changes (sweep workers deliberately bypass this; their
    records travel back over the supervisor pipe instead).
    """
    global _TRACER
    if _TRACER is None:
        with _TRACER_LOCK:
            if _TRACER is None:
                tracer = Tracer()
                env = os.environ.get(TRACE_ENV)
                if env:
                    tracer.configure(None if env == "1" else env)
                _TRACER = tracer
    return _TRACER


def configure_tracing(export_path: "str | Path | None" = None) -> Tracer:
    """Enable the process tracer (optionally exporting to JSONL)."""
    tracer = get_tracer()
    tracer.configure(export_path)
    return tracer


def tracing_enabled() -> bool:
    """Whether the process tracer is currently recording."""
    return _TRACER is not None and _TRACER.enabled


def reset_tracing() -> None:
    """Drop the process tracer (tests only; spans in flight are lost)."""
    global _TRACER
    with _TRACER_LOCK:
        _TRACER = None
