"""``repro.obs`` — the unified observability layer.

Everything the stack reports about itself flows through this package:

* :mod:`repro.obs.trace` — spans and the process tracer; span context
  propagates across the sweep's process boundary so one JSONL file
  holds the whole story (``celia --trace out.jsonl ...``);
* :mod:`repro.obs.metrics` — counters/gauges/histograms with a
  process-global registry shared by the sweep supervisor, evaluation
  cache, runtime controller and planning service;
* :mod:`repro.obs.profile` — opt-in ``CELIA_PROFILE=1`` cProfile hooks
  aggregated into per-phase top-N tables (``celia profile``);
* :mod:`repro.obs.export` — Chrome ``trace_event`` conversion and trace
  summaries (``celia trace export`` / ``celia trace summary``).

The package is dependency-light by design (stdlib only) and free when
idle: disabled tracers hand out a shared no-op span, the profile hook is
a bare ``yield``, and metrics cost one dict lookup plus a lock.

See ``docs/observability.md`` for the operator guide (span taxonomy,
metric catalog, viewer walkthroughs).
"""

from repro.obs.export import (export_chrome_trace, read_trace, spans_only,
                              to_chrome_trace, trace_summary)
from repro.obs.metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                               global_registry, group_by_label,
                               label_snapshot, merge_snapshots, parse_series,
                               render_text, reset_global_registry)
from repro.obs.profile import (PROFILE_ENV, ProfileStore, get_store,
                               profile_block, profiling_enabled, reset_store)
from repro.obs.trace import (TRACE_ENV, Span, SpanContext, Tracer,
                             configure_tracing, get_tracer, make_span_record,
                             reset_tracing, tracing_enabled)

__all__ = [
    "PROFILE_ENV",
    "TRACE_ENV",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ProfileStore",
    "Span",
    "SpanContext",
    "Tracer",
    "configure_tracing",
    "export_chrome_trace",
    "get_store",
    "get_tracer",
    "global_registry",
    "group_by_label",
    "label_snapshot",
    "make_span_record",
    "merge_snapshots",
    "parse_series",
    "profile_block",
    "profiling_enabled",
    "read_trace",
    "render_text",
    "reset_global_registry",
    "reset_store",
    "reset_tracing",
    "spans_only",
    "to_chrome_trace",
    "trace_summary",
    "tracing_enabled",
]
