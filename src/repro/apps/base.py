"""The elastic-application interface.

An :class:`ElasticApplication` is everything CELIA and the simulation
substrate need to know about a workload:

* ``demand`` — the ground-truth resource demand function ``D(n, a)`` in GI
  (hidden from CELIA, which must estimate it from baseline measurements);
* ``profile`` — ground-truth execution rates per resource category
  (likewise hidden; CELIA estimates capacities from timed cloud runs);
* ``workload(n, a)`` — how the computation decomposes into schedulable
  units for the discrete-event engine;
* parameter domains and accuracy semantics.
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.apps.demand import SeparableDemand
from repro.cloud.instance import InstanceType, ResourceCategory
from repro.errors import ValidationError

__all__ = ["ExecutionStyle", "PerformanceProfile", "Workload", "ElasticApplication"]


class ExecutionStyle(enum.Enum):
    """How an application's tasks are executed on a cluster."""

    #: Fully independent tasks, no inter-node communication (x264).
    INDEPENDENT = "independent"
    #: Bulk-synchronous steps with a barrier + exchange per step (galaxy).
    BSP = "bsp"
    #: Master–worker work queue with per-task dispatch (sand).
    WORKQUEUE = "workqueue"


@dataclass(frozen=True)
class PerformanceProfile:
    """Ground-truth per-category execution rates of one application.

    The paper shows different applications achieve different instruction
    rates on the same instance (Figure 3) — execution profiles differ in
    IPC.  We store *effective virtualized IPC per hyper-thread*: the
    steady-state instructions-per-cycle one vCPU sustains for this app on
    a host of the given category, hypervisor overhead included (measured
    cloud rates include it, so ground truth does too — matching the
    paper's remark that overhead needs no separate modeling).

    ``rate_gips(itype)`` = ``vcpus × frequency_GHz × ipc``.
    """

    ipc_by_category: dict[ResourceCategory, float]
    #: IPC on the local measurement server (one hyper-thread).
    local_ipc: float = 1.0

    def __post_init__(self) -> None:
        for cat, ipc in self.ipc_by_category.items():
            if ipc <= 0:
                raise ValidationError(f"IPC for {cat} must be positive")
        if self.local_ipc <= 0:
            raise ValidationError("local IPC must be positive")

    def ipc_for(self, category: ResourceCategory) -> float:
        """Effective IPC per vCPU on hosts of ``category``."""
        try:
            return self.ipc_by_category[category]
        except KeyError:
            raise ValidationError(
                f"application has no performance profile for category {category}"
            ) from None

    def rate_gips(self, itype: InstanceType) -> float:
        """True aggregate execution rate of one instance of ``itype`` (GI/s)."""
        return itype.vcpus * itype.frequency_ghz * self.ipc_for(itype.category)

    def rate_per_vcpu_gips(self, itype: InstanceType) -> float:
        """True per-vCPU rate ``W_{i,vCPU}`` in GI/s."""
        return itype.frequency_ghz * self.ipc_for(itype.category)


@dataclass(frozen=True)
class Workload:
    """Schedulable decomposition of one application run.

    Exactly one of the three shapes is populated, matching the style:

    * ``INDEPENDENT`` — ``task_gi`` holds one entry per task.
    * ``BSP`` — ``n_steps`` steps of ``step_gi`` GI each, executed by all
      vCPUs with a barrier and a ``comm_seconds_per_step`` exchange after
      each step.
    * ``WORKQUEUE`` — ``task_gi`` tasks pulled from a master that needs
      ``dispatch_seconds`` of serial work per task.
    """

    style: ExecutionStyle
    total_gi: float
    task_gi: np.ndarray | None = None
    n_steps: int = 0
    step_gi: float = 0.0
    comm_seconds_per_step: float = 0.0
    dispatch_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.total_gi <= 0:
            raise ValidationError("workload must contain positive work")
        if self.style is ExecutionStyle.BSP:
            if self.n_steps < 1 or self.step_gi <= 0:
                raise ValidationError("BSP workload needs steps and step size")
        else:
            if self.task_gi is None or len(self.task_gi) == 0:
                raise ValidationError(f"{self.style} workload needs tasks")
            if np.any(np.asarray(self.task_gi) <= 0):
                raise ValidationError("task sizes must be positive")

    @property
    def n_tasks(self) -> int:
        """Number of schedulable units (tasks or steps)."""
        if self.style is ExecutionStyle.BSP:
            return self.n_steps
        assert self.task_gi is not None
        return int(len(self.task_gi))


class ElasticApplication(ABC):
    """Base class for the paper's elastic applications.

    Subclasses define class attributes ``name``, ``domain``,
    ``size_symbol``, ``accuracy_symbol``, ``style`` and implement the
    abstract members.  The notation follows Table I: an application run is
    ``P(n, a)`` with resource demand ``D_{P(n,a)}``.
    """

    name: str = "abstract"
    domain: str = ""
    size_symbol: str = "n"
    accuracy_symbol: str = "a"
    style: ExecutionStyle = ExecutionStyle.INDEPENDENT
    #: Whether the accuracy knob only takes integer values (e.g. galaxy's
    #: step count); degradation searches snap to integers when set.
    accuracy_integral: bool = False

    # -- ground truth ---------------------------------------------------------

    @property
    @abstractmethod
    def demand(self) -> SeparableDemand:
        """Ground-truth demand function ``D(n, a)`` in GI."""

    @property
    @abstractmethod
    def profile(self) -> PerformanceProfile:
        """Ground-truth execution-rate profile."""

    # -- parameter domains -----------------------------------------------------

    @abstractmethod
    def validate_params(self, n: float, a: float) -> None:
        """Raise :class:`ValidationError` if (n, a) is out of domain."""

    @abstractmethod
    def scale_down_grid(self) -> tuple[np.ndarray, np.ndarray]:
        """(sizes, accuracies) used for baseline characterization runs.

        These are the paper's Section IV-A sweep ranges, scaled to what a
        local server can execute — CELIA's ``P(n', a')``.
        """

    # -- decomposition -----------------------------------------------------------

    @abstractmethod
    def workload(self, n: float, a: float) -> Workload:
        """Decompose run ``P(n, a)`` into engine-schedulable units."""

    # -- accuracy semantics -------------------------------------------------------

    @abstractmethod
    def accuracy_score(self, a: float) -> float:
        """Normalized output-quality score in (0, 1] for accuracy knob ``a``.

        Monotonically non-decreasing in ``a`` — spending more resources
        never yields worse output (the defining property of elastic
        applications).
        """

    # -- memory model -------------------------------------------------------------

    def min_memory_gb_per_vcpu(self, n: float, a: float) -> float:
        """Working-set memory one worker process needs, in GB.

        An instance type can host run ``P(n, a)`` only if
        ``memory_gb >= vcpus × min_memory_gb_per_vcpu(n, a)`` (one worker
        per vCPU, the paper's execution model).  The base implementation
        returns a small runtime footprint; applications override it with
        their real working sets.  CELIA's selection enforces this only
        when asked (``enforce_memory=True``) — the paper itself treats
        all workloads as compute-bound.
        """
        return 0.25

    # -- conveniences ------------------------------------------------------------

    def demand_gi(self, n: float, a: float) -> float:
        """Ground-truth demand for one run, after validating parameters."""
        self.validate_params(n, a)
        return self.demand.gi(n, a)

    def true_rate_gips(self, itype: InstanceType) -> float:
        """Ground-truth rate of one instance for this app (GI/s)."""
        return self.profile.rate_gips(itype)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<{type(self).__name__} {self.name} "
            f"({self.size_symbol}, {self.accuracy_symbol}) {self.style.value}>"
        )
