"""sand — the genome sequence-assembly elastic application.

The paper's SAND workload [21] aligns compatible genome sequences from a
candidate list of size ``n``; the quality threshold ``t ∈ (0, 1]`` sets
how similar two candidates must be to be aligned.  It runs master–worker
on the Work Queue platform [23]: the master creates alignment tasks and
distributes them to slaves, which is why sand shows the largest validation
errors in Table IV (up to 16.7%) — dispatch serialization and load
imbalance are invisible to the analytical model.

Demand is linear in ``n`` and logarithmic in ``t`` (Figure 2(c)/(f)).
Calibration (DESIGN.md §4): per-sequence demand
``d(t) = A·ln(1 + t/τ)`` with ``τ = 0.08`` and ``A = 3.09e-3`` GI
reproduces Figure 2(c)'s ~80-90 TI at (n=64 M, t=0.04) and keeps demand
positive over the paper's full meaningful range t ∈ (0, 1], while giving
Figure 6(b)'s ≈20% cost increase from t=0.64 to t=1.0.

A real, runnable k-mer filter + banded alignment kernel lives in
:mod:`repro.apps.kernels.align`.
"""

from __future__ import annotations

from functools import cached_property

import numpy as np

from repro.apps.base import (
    ElasticApplication,
    ExecutionStyle,
    PerformanceProfile,
    Workload,
)
from repro.apps.demand import LinearTerm, LogTerm, SeparableDemand
from repro.cloud.instance import ResourceCategory
from repro.errors import ValidationError
from repro.utils.rng import derive_rng

__all__ = ["SandApp"]

#: Per-sequence demand coefficient A (GI) and threshold scale tau.
A_COEFF = 3.09e-3
TAU = 0.08

#: Sequences grouped into one Work Queue task.
DEFAULT_CHUNK_SEQUENCES = 1_000_000

#: Effective virtualized IPC per vCPU by host category, calibrated to
#: Figure 3 (sand: c4 80, m4 60, r3 40 GI/s per $/h).
_IPC = {
    ResourceCategory.COMPUTE: 80.0 * 0.105 / (2 * 2.9),
    ResourceCategory.GENERAL: 60.0 * 0.133 / (2 * 2.3),
    ResourceCategory.MEMORY: 40.0 * 0.166 / (2 * 2.5),
}


class SandApp(ElasticApplication):
    """Genome assembly over ``n`` candidate sequences at threshold ``t``.

    Parameters
    ----------
    chunk_sequences:
        Sequences per Work Queue task.
    dispatch_seconds:
        Serial master time to create + dispatch one task (Work Queue's
        per-task overhead).
    task_size_sigma:
        Log-normal heterogeneity of per-task demand (candidate density
        varies along the genome).
    """

    name = "sand"
    domain = "bioinformatics"
    size_symbol = "n"
    accuracy_symbol = "t"
    style = ExecutionStyle.WORKQUEUE

    def __init__(self, *, chunk_sequences: int = DEFAULT_CHUNK_SEQUENCES,
                 dispatch_seconds: float = 0.35,
                 task_size_sigma: float = 0.30, seed: int = 0):
        if chunk_sequences < 1:
            raise ValidationError("chunk_sequences must be >= 1")
        if dispatch_seconds < 0 or task_size_sigma < 0:
            raise ValidationError("overheads must be non-negative")
        self.chunk_sequences = chunk_sequences
        self.dispatch_seconds = dispatch_seconds
        self.task_size_sigma = task_size_sigma
        self.seed = seed

    @cached_property
    def demand(self) -> SeparableDemand:
        return SeparableDemand(
            size_term=LinearTerm(slope=1.0),
            accuracy_term=LogTerm(coefficient=A_COEFF, tau=TAU),
            scale=1.0,
        )

    @cached_property
    def profile(self) -> PerformanceProfile:
        return PerformanceProfile(ipc_by_category=dict(_IPC), local_ipc=1.35)

    def validate_params(self, n: float, a: float) -> None:
        if n < 1 or n != int(n):
            raise ValidationError(f"sand needs an integer sequence count >= 1, got {n}")
        if not (0.0 < a <= 1.0):
            raise ValidationError(f"sand threshold must be in (0, 1], got {a}")

    def scale_down_grid(self) -> tuple[np.ndarray, np.ndarray]:
        """Section IV-A sweep: n from 1 M to 64 M; t from 0.01 to 1."""
        return (
            np.array([1e6, 4e6, 16e6, 64e6]),
            np.array([0.01, 0.04, 0.08, 0.16, 0.32, 0.64, 1.0]),
        )

    def workload(self, n: float, a: float) -> Workload:
        """Chunk sequences into tasks with heterogeneous demand."""
        self.validate_params(n, a)
        n_seq = int(n)
        total = self.demand.gi(n, a)
        # Ceil-divide into chunks, but never fewer than 64 tasks (SAND's
        # master shrinks the chunk for small inputs so all workers get
        # work during characterization runs).
        n_tasks = max(1, -(-n_seq // self.chunk_sequences))
        if n_tasks < 64:
            n_tasks = min(64, n_seq)
        rng = derive_rng(self.seed, "sand-tasks", n_seq, a)
        if self.task_size_sigma > 0 and n_tasks > 1:
            sizes = rng.lognormal(mean=0.0, sigma=self.task_size_sigma, size=n_tasks)
        else:
            sizes = np.ones(n_tasks)
        sizes *= total / sizes.sum()
        return Workload(
            style=self.style,
            total_gi=total,
            task_gi=sizes,
            dispatch_seconds=self.dispatch_seconds,
        )

    def accuracy_score(self, a: float) -> float:
        """The threshold itself — already normalized to (0, 1]."""
        self.validate_params(1, a)
        return a

    def min_memory_gb_per_vcpu(self, n: float, a: float) -> float:
        """One chunk of sequences (~200 B each) plus the worker's k-mer
        index shard over it (~3x the raw data)."""
        chunk = min(float(n), float(self.chunk_sequences))
        return 0.15 + chunk * 200e-9 * 4
