"""Elastic applications: the workloads whose accuracy scales with resources.

The paper evaluates three applications with qualitatively different demand
shapes (Section IV-A / Figure 2):

========  ===================  ======================  =====================
app       domain               demand vs problem size  demand vs accuracy
========  ===================  ======================  =====================
x264      video compression    linear in n (videos)    quadratic in f (rate)
galaxy    n-body simulation    quadratic in n (masses) linear in s (steps)
sand      genome assembly      linear in n (sequences) logarithmic in t
========  ===================  ======================  =====================

Each application object bundles:

* a *ground-truth demand function* ``D(n, a)`` in giga-instructions (GI),
  calibrated so magnitudes land on the paper's figures (see DESIGN.md §4);
* a *performance profile* — per-resource-category instructions-per-cycle,
  the hidden truth the measurement layer estimates (Figure 3);
* a *task decomposition* for the discrete-event engine (independent tasks,
  BSP steps, or a master–worker queue);
* an *accuracy semantics* mapping the accuracy knob to output quality;
* optional *reference kernels* (:mod:`repro.apps.kernels`) — real NumPy
  computations demonstrating the elasticity on actual code.
"""

from repro.apps.demand import (
    DemandTerm,
    ConstantTerm,
    LinearTerm,
    AffineTerm,
    QuadraticTerm,
    PowerTerm,
    LogTerm,
    SeparableDemand,
)
from repro.apps.base import (
    ElasticApplication,
    ExecutionStyle,
    PerformanceProfile,
    Workload,
)
from repro.apps.x264 import X264App
from repro.apps.galaxy import GalaxyApp
from repro.apps.sand import SandApp
from repro.apps.synthetic import SyntheticApp
from repro.apps.registry import paper_applications, application_by_name

__all__ = [
    "DemandTerm",
    "ConstantTerm",
    "LinearTerm",
    "AffineTerm",
    "QuadraticTerm",
    "PowerTerm",
    "LogTerm",
    "SeparableDemand",
    "ElasticApplication",
    "ExecutionStyle",
    "PerformanceProfile",
    "Workload",
    "X264App",
    "GalaxyApp",
    "SandApp",
    "SyntheticApp",
    "paper_applications",
    "application_by_name",
]
