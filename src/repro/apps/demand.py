"""Parametric resource-demand functions ``D(n, a)``.

CELIA needs the relationship between application parameters (problem size
``n``, accuracy ``a``) and resource demand in instructions.  All three
paper applications are *separable*: ``D(n, a) = scale × g(n) × h(a)`` with
``g``/``h`` drawn from a small family of one-dimensional terms (linear,
affine, quadratic, power, logarithmic).  The same family is what the
fitting layer (:mod:`repro.measurement.fitting`) estimates from baseline
measurements, so ground truth and fitted models share this vocabulary.

All terms are vectorized: they accept scalars or NumPy arrays and return
the same shape.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError

__all__ = [
    "DemandTerm",
    "ConstantTerm",
    "LinearTerm",
    "AffineTerm",
    "QuadraticTerm",
    "PowerTerm",
    "LogTerm",
    "SeparableDemand",
]


class DemandTerm(ABC):
    """A one-dimensional factor of a separable demand function.

    Terms must be strictly positive over their declared domain so that the
    product demand is a valid instruction count.
    """

    #: Short name used in fitted-model reports ("linear", "quadratic", ...).
    kind: str = "abstract"

    @abstractmethod
    def __call__(self, x: np.ndarray | float) -> np.ndarray | float:
        """Evaluate the term at ``x`` (scalar or array)."""

    @abstractmethod
    def describe(self) -> str:
        """Human-readable formula, e.g. ``"314 + 0.574*x^2"``."""

    def _as_array(self, x: np.ndarray | float) -> np.ndarray:
        return np.asarray(x, dtype=float)


@dataclass(frozen=True)
class ConstantTerm(DemandTerm):
    """``f(x) = c`` — a parameter the demand does not depend on."""

    value: float = 1.0
    kind = "constant"

    def __post_init__(self) -> None:
        if self.value <= 0:
            raise ValidationError("constant term must be positive")

    def __call__(self, x: np.ndarray | float) -> np.ndarray | float:
        arr = self._as_array(x)
        out = np.full_like(arr, self.value)
        return float(out) if np.isscalar(x) or arr.ndim == 0 else out

    def describe(self) -> str:
        return f"{self.value:g}"


@dataclass(frozen=True)
class LinearTerm(DemandTerm):
    """``f(x) = b·x`` — proportional (through the origin).

    x264's demand is linear in the number of videos: encoding ``2n`` clips
    costs exactly twice ``n`` clips.
    """

    slope: float = 1.0
    kind = "linear"

    def __post_init__(self) -> None:
        if self.slope <= 0:
            raise ValidationError("linear slope must be positive")

    def __call__(self, x: np.ndarray | float) -> np.ndarray | float:
        return self.slope * self._as_array(x) if not np.isscalar(x) else self.slope * x

    def describe(self) -> str:
        return f"{self.slope:g}*x"


@dataclass(frozen=True)
class AffineTerm(DemandTerm):
    """``f(x) = a + b·x`` with ``a, b >= 0`` and not both zero."""

    intercept: float
    slope: float
    kind = "affine"

    def __post_init__(self) -> None:
        if self.intercept < 0 or self.slope < 0 or (self.intercept == 0 and self.slope == 0):
            raise ValidationError("affine term needs non-negative a, b, not both 0")

    def __call__(self, x: np.ndarray | float) -> np.ndarray | float:
        return self.intercept + self.slope * self._as_array(x) if not np.isscalar(x) \
            else self.intercept + self.slope * x

    def describe(self) -> str:
        return f"{self.intercept:g} + {self.slope:g}*x"


@dataclass(frozen=True)
class QuadraticTerm(DemandTerm):
    """``f(x) = a + b·x + c·x²`` with non-negative coefficients, c > 0.

    x264's per-video demand is quadratic in the compression factor ``f``;
    galaxy's demand is quadratic in the number of masses (all-pairs force
    computation).
    """

    a: float
    b: float
    c: float
    kind = "quadratic"

    def __post_init__(self) -> None:
        if self.a < 0 or self.b < 0 or self.c <= 0:
            raise ValidationError("quadratic term needs a,b >= 0 and c > 0")

    def __call__(self, x: np.ndarray | float) -> np.ndarray | float:
        arr = self._as_array(x)
        result = self.a + self.b * arr + self.c * arr * arr
        return float(result) if np.isscalar(x) or arr.ndim == 0 else result

    def describe(self) -> str:
        return f"{self.a:g} + {self.b:g}*x + {self.c:g}*x^2"


@dataclass(frozen=True)
class PowerTerm(DemandTerm):
    """``f(x) = b·x^p`` for positive ``x`` — generalizes linear/quadratic."""

    coefficient: float
    exponent: float
    kind = "power"

    def __post_init__(self) -> None:
        if self.coefficient <= 0:
            raise ValidationError("power coefficient must be positive")

    def __call__(self, x: np.ndarray | float) -> np.ndarray | float:
        arr = self._as_array(x)
        if np.any(arr <= 0):
            raise ValidationError("power term requires positive inputs")
        result = self.coefficient * np.power(arr, self.exponent)
        return float(result) if np.isscalar(x) or arr.ndim == 0 else result

    def describe(self) -> str:
        return f"{self.coefficient:g}*x^{self.exponent:g}"


@dataclass(frozen=True)
class LogTerm(DemandTerm):
    """``f(x) = b·ln(1 + x/tau)`` — saturating logarithmic growth.

    sand's demand grows logarithmically with the quality threshold ``t``:
    raising the threshold admits ever fewer additional candidate pairs.
    The ``1 +`` shift keeps the term positive over the paper's full
    meaningful range ``t ∈ (0, 1]``.
    """

    coefficient: float
    tau: float
    kind = "log"

    def __post_init__(self) -> None:
        if self.coefficient <= 0 or self.tau <= 0:
            raise ValidationError("log term needs positive coefficient and tau")

    def __call__(self, x: np.ndarray | float) -> np.ndarray | float:
        arr = self._as_array(x)
        if np.any(arr < 0):
            raise ValidationError("log term requires non-negative inputs")
        result = self.coefficient * np.log1p(arr / self.tau)
        return float(result) if np.isscalar(x) or arr.ndim == 0 else result

    def describe(self) -> str:
        return f"{self.coefficient:g}*ln(1 + x/{self.tau:g})"


@dataclass(frozen=True)
class SeparableDemand:
    """``D(n, a) = scale × size_term(n) × accuracy_term(a)`` in GI.

    This is the object CELIA's time model consumes: ``T = D(n,a) / U_j``
    (Eq. 2) with ``D`` in giga-instructions and ``U`` in GI/s.
    """

    size_term: DemandTerm
    accuracy_term: DemandTerm
    scale: float = 1.0

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ValidationError("demand scale must be positive")

    def __call__(self, n: np.ndarray | float, a: np.ndarray | float) -> np.ndarray | float:
        """Demand in GI at problem size ``n`` and accuracy ``a``.

        Inputs broadcast against each other, so a full (n, a) grid can be
        evaluated in one call with ``n[:, None]`` and ``a[None, :]``.
        """
        return self.scale * self.size_term(n) * self.accuracy_term(a)

    def gi(self, n: float, a: float) -> float:
        """Scalar demand in GI (alias emphasising the unit)."""
        return float(self(n, a))

    def describe(self) -> str:
        """Human-readable formula of the full demand function."""
        return (
            f"D(n,a) = {self.scale:g} * [{self.size_term.describe()}](n)"
            f" * [{self.accuracy_term.describe()}](a)  [GI]"
        )
