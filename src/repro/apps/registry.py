"""Registry of the paper's evaluation applications."""

from __future__ import annotations

from repro.apps.base import ElasticApplication
from repro.apps.galaxy import GalaxyApp
from repro.apps.sand import SandApp
from repro.apps.x264 import X264App
from repro.errors import ValidationError

__all__ = ["paper_applications", "application_by_name"]


def paper_applications(*, seed: int = 0) -> dict[str, ElasticApplication]:
    """The three Table II applications keyed by name."""
    return {
        "x264": X264App(seed=seed),
        "galaxy": GalaxyApp(),
        "sand": SandApp(seed=seed),
    }


def application_by_name(name: str, *, seed: int = 0) -> ElasticApplication:
    """Look up one paper application by its Table II name."""
    apps = paper_applications(seed=seed)
    try:
        return apps[name]
    except KeyError:
        raise ValidationError(
            f"unknown application {name!r}; choose from {sorted(apps)}"
        ) from None
