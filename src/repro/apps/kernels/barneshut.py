"""Barnes–Hut tree code — algorithmic elasticity for the n-body kernel.

The direct kernel (:mod:`repro.apps.kernels.nbody`) spends O(n²) per
step; Barnes–Hut approximates far-field forces with octree cell
aggregates, spending O(n log n) — *if* one accepts approximation error
controlled by the opening angle θ:

* θ → 0: every cell is opened, forces are exact, work approaches O(n²);
* θ large: whole subtrees collapse to monopoles, work plummets, error
  grows.

That is a textbook elastic application *inside the algorithm*: the knob
``1/θ`` buys accuracy with instructions.  This kernel measures both —
interaction counts (work) and force error vs the direct sum (accuracy) —
so the repository demonstrates elasticity at the algorithmic level, not
only at the parameter level.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.apps.kernels.nbody import FLOP_PER_PAIR, _accelerations
from repro.errors import ValidationError

__all__ = ["BarnesHutResult", "barnes_hut_accelerations"]

#: Maximum bodies a leaf cell may hold before splitting.
LEAF_CAPACITY = 8


@dataclass
class _Cell:
    """One octree cell: bounds, mass aggregate, children or bodies."""

    center: np.ndarray  # geometric center of the cube
    half: float  # half side length
    body_indices: list[int] = field(default_factory=list)
    children: list["_Cell"] = field(default_factory=list)
    mass: float = 0.0
    com: np.ndarray | None = None  # center of mass

    @property
    def is_leaf(self) -> bool:
        return not self.children


def _build_tree(positions: np.ndarray, masses: np.ndarray) -> _Cell:
    """Build the octree and compute mass aggregates bottom-up."""
    lo = positions.min(axis=0)
    hi = positions.max(axis=0)
    center = 0.5 * (lo + hi)
    half = float(0.5 * (hi - lo).max()) * 1.001 + 1e-12
    root = _Cell(center=center, half=half,
                 body_indices=list(range(positions.shape[0])))
    stack = [root]
    while stack:
        cell = stack.pop()
        if len(cell.body_indices) <= LEAF_CAPACITY:
            continue
        # Split into octants.
        groups: dict[int, list[int]] = {}
        for idx in cell.body_indices:
            offset = positions[idx] >= cell.center
            key = int(offset[0]) | int(offset[1]) << 1 | int(offset[2]) << 2
            groups.setdefault(key, []).append(idx)
        quarter = cell.half / 2.0
        for key, members in groups.items():
            sign = np.array([1 if key & 1 else -1,
                             1 if key & 2 else -1,
                             1 if key & 4 else -1], dtype=float)
            child = _Cell(center=cell.center + sign * quarter,
                          half=quarter, body_indices=members)
            cell.children.append(child)
            stack.append(child)
        cell.body_indices = []

    # Bottom-up aggregates via explicit post-order.
    def aggregate(cell: _Cell) -> tuple[float, np.ndarray]:
        if cell.is_leaf:
            if cell.body_indices:
                m = float(masses[cell.body_indices].sum())
                com = (masses[cell.body_indices, None]
                       * positions[cell.body_indices]).sum(axis=0) / m
            else:  # pragma: no cover - empty leaves are never created
                m, com = 0.0, cell.center.copy()
        else:
            m = 0.0
            com = np.zeros(3)
            for child in cell.children:
                cm, ccom = aggregate(child)
                m += cm
                com += cm * ccom
            com /= m
        cell.mass = m
        cell.com = com
        return m, com

    aggregate(root)
    return root


@dataclass(frozen=True)
class BarnesHutResult:
    """Approximate accelerations plus work and accuracy accounting."""

    accelerations: np.ndarray
    theta: float
    interactions: int
    direct_interactions: int
    max_relative_error: float
    mean_relative_error: float

    @property
    def work_fraction(self) -> float:
        """Interactions relative to the direct O(n²) sum."""
        return self.interactions / self.direct_interactions

    @property
    def flops(self) -> float:
        """Approximate flop count of the tree walk."""
        return FLOP_PER_PAIR * self.interactions


def barnes_hut_accelerations(
    positions: np.ndarray,
    masses: np.ndarray,
    *,
    theta: float,
    softening: float = 0.05,
) -> BarnesHutResult:
    """Softened gravitational accelerations via a Barnes–Hut octree.

    Parameters
    ----------
    theta:
        Opening angle: a cell of size ``s`` at distance ``d`` is accepted
        as a monopole when ``s / d < theta``.  Must be positive; values
        near zero recover the direct sum.
    """
    positions = np.asarray(positions, dtype=float)
    masses = np.asarray(masses, dtype=float)
    n = masses.shape[0]
    if positions.shape != (n, 3):
        raise ValidationError("positions must be (n, 3)")
    if n < 2:
        raise ValidationError("need at least two bodies")
    if theta <= 0:
        raise ValidationError("theta must be positive")

    root = _build_tree(positions, masses)
    acc = np.zeros((n, 3))
    interactions = 0

    for i in range(n):
        pos_i = positions[i]
        stack = [root]
        while stack:
            cell = stack.pop()
            if cell.mass == 0.0:
                continue
            assert cell.com is not None
            delta = cell.com - pos_i
            dist_sq = float(delta @ delta) + softening**2
            dist = dist_sq**0.5
            size = 2.0 * cell.half
            if cell.is_leaf or (size / dist) < theta:
                if cell.is_leaf:
                    for j in cell.body_indices:
                        if j == i:
                            continue
                        dj = positions[j] - pos_i
                        dsq = float(dj @ dj) + softening**2
                        acc[i] += masses[j] * dj / dsq**1.5
                        interactions += 1
                else:
                    acc[i] += cell.mass * delta / dist_sq**1.5
                    interactions += 1
            else:
                stack.extend(cell.children)

    exact = _accelerations(positions, masses, softening)
    norms = np.linalg.norm(exact, axis=1)
    norms = np.where(norms == 0, 1.0, norms)
    rel_err = np.linalg.norm(acc - exact, axis=1) / norms
    return BarnesHutResult(
        accelerations=acc,
        theta=theta,
        interactions=interactions,
        direct_interactions=n * (n - 1),
        max_relative_error=float(rel_err.max()),
        mean_relative_error=float(rel_err.mean()),
    )
