"""Real runnable mini-kernels for the three elastic applications.

The analytical layer treats applications as demand functions; these
kernels are actual NumPy computations with measurable output quality, so
the package demonstrates elasticity end-to-end on real code:

* :mod:`~repro.apps.kernels.nbody` — O(n²) leapfrog n-body integrator;
  accuracy = energy conservation, improving with more (smaller) steps.
* :mod:`~repro.apps.kernels.encoder` — 8×8 DCT + quantization image
  encoder; quality = PSNR, trading off against compression factor.
* :mod:`~repro.apps.kernels.align` — k-mer candidate filter + banded
  alignment; quality = recall of true overlaps at threshold ``t``.

Each kernel also reports an *operation count* so the instruction-counting
harness (:mod:`repro.measurement.perf`) can attach real, measured
demand-vs-parameter curves to the reproduction (small scales only).
"""

from repro.apps.kernels.nbody import NBodySystem, simulate_nbody, NBodyResult
from repro.apps.kernels.barneshut import (
    BarnesHutResult,
    barnes_hut_accelerations,
)
from repro.apps.kernels.encoder import (
    EncodeResult,
    MotionEncodeResult,
    encode_frame_pair,
    encode_image,
    synthetic_frames,
)
from repro.apps.kernels.align import (
    AlignmentResult,
    assemble_candidates,
    synthetic_reads,
)

__all__ = [
    "NBodySystem",
    "simulate_nbody",
    "NBodyResult",
    "BarnesHutResult",
    "barnes_hut_accelerations",
    "encode_image",
    "encode_frame_pair",
    "EncodeResult",
    "MotionEncodeResult",
    "synthetic_frames",
    "AlignmentResult",
    "assemble_candidates",
    "synthetic_reads",
]
