"""A real O(n²) n-body integrator — the galaxy application's kernel.

Leapfrog (kick-drift-kick) integration of softened gravitational dynamics,
fully vectorized over mass pairs.  The elastic-application property is
demonstrated by the relationship between the number of steps used to cover
a fixed physical time span and the relative energy drift: more steps
(more instructions) → smaller drift (better accuracy), with no upper bound
— exactly the paper's description of galaxy's accuracy knob ``s``.

The integrator counts floating-point operations analytically (the pair
loop dominates: ~20 flop per pair per step) so real runs can be compared
against the analytic demand model's shape at small scale.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError

__all__ = ["NBodySystem", "NBodyResult", "simulate_nbody"]

#: Softening length avoiding the 1/r² singularity on close encounters.
DEFAULT_SOFTENING = 0.05
#: Flop count attributed to one pairwise force evaluation.
FLOP_PER_PAIR = 20.0


@dataclass
class NBodySystem:
    """State of a gravitational n-body system (G = 1 units)."""

    positions: np.ndarray  # (n, 3)
    velocities: np.ndarray  # (n, 3)
    masses: np.ndarray  # (n,)

    def __post_init__(self) -> None:
        n = self.masses.shape[0]
        if self.positions.shape != (n, 3) or self.velocities.shape != (n, 3):
            raise ValidationError("positions/velocities must be (n, 3)")
        if np.any(self.masses <= 0):
            raise ValidationError("masses must be positive")

    @classmethod
    def plummer_like(cls, n: int, *, seed: int = 0) -> "NBodySystem":
        """A random, roughly virialized spherical cluster of ``n`` bodies."""
        if n < 2:
            raise ValidationError("need at least two bodies")
        rng = np.random.default_rng(seed)
        positions = rng.normal(0.0, 1.0, size=(n, 3))
        # Circular-ish velocities: tangential direction scaled by enclosed mass.
        radii = np.linalg.norm(positions, axis=1, keepdims=True)
        tangent = np.cross(positions, rng.normal(0.0, 1.0, size=(n, 3)))
        tangent /= np.linalg.norm(tangent, axis=1, keepdims=True) + 1e-12
        speed = 0.5 * np.sqrt(1.0 / (radii + 0.5))
        velocities = tangent * speed
        masses = np.full(n, 1.0 / n)
        return cls(positions=positions, velocities=velocities, masses=masses)

    def total_energy(self, softening: float = DEFAULT_SOFTENING) -> float:
        """Kinetic + potential energy (pairwise, softened)."""
        kinetic = 0.5 * float(np.sum(self.masses * np.sum(self.velocities**2, axis=1)))
        diff = self.positions[:, None, :] - self.positions[None, :, :]
        dist = np.sqrt(np.sum(diff * diff, axis=-1) + softening**2)
        mm = self.masses[:, None] * self.masses[None, :]
        potential = -0.5 * float(np.sum(np.triu(mm / dist, k=1))) * 2.0
        return kinetic + potential


def _accelerations(positions: np.ndarray, masses: np.ndarray,
                   softening: float) -> np.ndarray:
    """Pairwise softened gravitational accelerations, vectorized."""
    diff = positions[None, :, :] - positions[:, None, :]  # r_j - r_i
    dist_sq = np.sum(diff * diff, axis=-1) + softening**2
    inv_dist3 = dist_sq ** -1.5
    np.fill_diagonal(inv_dist3, 0.0)
    # a_i = sum_j m_j (r_j - r_i) / |r|^3 — one matmul-like contraction.
    return np.einsum("ij,ijk,j->ik", inv_dist3, diff, masses)


@dataclass(frozen=True)
class NBodyResult:
    """Outcome of one n-body simulation run."""

    system: NBodySystem
    steps: int
    span: float
    energy_initial: float
    energy_final: float
    flops: float

    @property
    def energy_drift(self) -> float:
        """|E_final - E_initial| / |E_initial| — lower is more accurate."""
        return abs(self.energy_final - self.energy_initial) / abs(self.energy_initial)

    @property
    def accuracy(self) -> float:
        """1 / (1 + drift·100): a (0, 1] score increasing with step count."""
        return 1.0 / (1.0 + 100.0 * self.energy_drift)


def simulate_nbody(system: NBodySystem, *, steps: int, span: float = 1.0,
                   softening: float = DEFAULT_SOFTENING) -> NBodyResult:
    """Integrate ``system`` over a fixed physical ``span`` using ``steps`` steps.

    Fixing the span while varying ``steps`` is the fixed-problem-size /
    scaled-accuracy case of the paper's Section I: more steps cost
    proportionally more instructions and deliver lower energy drift.

    The input system is not modified; a copy is evolved.
    """
    if steps < 1:
        raise ValidationError("steps must be >= 1")
    if span <= 0:
        raise ValidationError("span must be positive")
    pos = system.positions.copy()
    vel = system.velocities.copy()
    masses = system.masses
    n = masses.shape[0]
    dt = span / steps

    e0 = system.total_energy(softening)
    acc = _accelerations(pos, masses, softening)
    for _ in range(steps):
        vel += 0.5 * dt * acc  # kick
        pos += dt * vel  # drift
        acc = _accelerations(pos, masses, softening)
        vel += 0.5 * dt * acc  # kick
    evolved = NBodySystem(positions=pos, velocities=vel, masses=masses)
    e1 = evolved.total_energy(softening)
    return NBodyResult(
        system=evolved,
        steps=steps,
        span=span,
        energy_initial=e0,
        energy_final=e1,
        flops=FLOP_PER_PAIR * n * n * steps,
    )
