"""A real overlap-detection kernel — the sand application's core step.

SAND-style genome assembly has two phases: a *candidate filter* that pairs
reads sharing k-mers, and an *alignment* phase scoring each candidate pair
(banded dynamic programming).  The quality threshold ``t`` sets the
minimum fraction of matching positions for a pair to be accepted.

The elastic property demonstrated here: raising ``t`` admits pairs only
after scoring them, and a *higher* threshold run must align deeper into
the (logarithmically thinning) candidate list to confirm near-misses —
measured work grows sublinearly with ``t`` while recall of true overlaps
improves.  Quality is measured against ground truth (reads are synthesized
from a known reference, so true overlaps are known exactly).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError

__all__ = ["AlignmentResult", "synthetic_reads", "assemble_candidates"]

_BASES = np.array(list("ACGT"))


def synthetic_reads(n_reads: int, *, read_length: int = 64,
                    genome_length: int = 2048, error_rate: float = 0.01,
                    seed: int = 0) -> tuple[list[str], np.ndarray, str]:
    """Sample error-bearing reads from a random reference genome.

    Returns ``(reads, start_positions, genome)``.  True overlaps are pairs
    of reads whose genome intervals intersect by at least half a read.
    """
    if n_reads < 2:
        raise ValidationError("need at least two reads")
    if read_length > genome_length:
        raise ValidationError("reads cannot be longer than the genome")
    if not (0 <= error_rate < 1):
        raise ValidationError("error rate must be in [0, 1)")
    rng = np.random.default_rng(seed)
    genome_arr = _BASES[rng.integers(0, 4, size=genome_length)]
    genome = "".join(genome_arr)
    starts = rng.integers(0, genome_length - read_length + 1, size=n_reads)
    reads = []
    for s in starts:
        read = genome_arr[s:s + read_length].copy()
        errs = rng.random(read_length) < error_rate
        if errs.any():
            read[errs] = _BASES[rng.integers(0, 4, size=int(errs.sum()))]
        reads.append("".join(read))
    return reads, starts, genome


def _kmers(read: str, k: int) -> set[str]:
    return {read[i:i + k] for i in range(len(read) - k + 1)}


def _identity_score(a: str, b: str, band: int = 8) -> float:
    """Banded alignment identity of two equal-length reads.

    Tries all shifts within ±band and returns the best fraction of
    matching positions over the overlapped region (vectorized per shift).
    """
    arr_a = np.frombuffer(a.encode(), dtype=np.uint8)
    arr_b = np.frombuffer(b.encode(), dtype=np.uint8)
    best = 0.0
    n = arr_a.size
    for shift in range(-band, band + 1):
        if shift >= 0:
            overlap_a, overlap_b = arr_a[shift:], arr_b[: n - shift]
        else:
            overlap_a, overlap_b = arr_a[: n + shift], arr_b[-shift:]
        if overlap_a.size == 0:
            continue
        identity = float(np.mean(overlap_a == overlap_b))
        # Weight by overlap fraction so tiny overlaps can't win.
        best = max(best, identity * overlap_a.size / n)
    return best


@dataclass(frozen=True)
class AlignmentResult:
    """Outcome of candidate filtering + alignment at one threshold."""

    threshold: float
    candidate_pairs: int
    aligned_pairs: int
    accepted_pairs: tuple[tuple[int, int], ...]
    true_pairs: tuple[tuple[int, int], ...]
    comparisons: int

    @property
    def recall(self) -> float:
        """Fraction of true overlaps recovered — the quality metric."""
        if not self.true_pairs:
            return 1.0
        found = set(self.accepted_pairs)
        return sum(p in found for p in self.true_pairs) / len(self.true_pairs)

    @property
    def precision(self) -> float:
        """Fraction of accepted pairs that are true overlaps."""
        if not self.accepted_pairs:
            return 1.0
        truth = set(self.true_pairs)
        return sum(p in truth for p in self.accepted_pairs) / len(self.accepted_pairs)


def assemble_candidates(reads: list[str], starts: np.ndarray, *,
                        threshold: float, k: int = 12,
                        read_length: int | None = None) -> AlignmentResult:
    """Run the candidate filter + banded alignment at quality threshold ``t``.

    A candidate pair is any two reads sharing a k-mer; a pair is accepted
    when its banded identity score reaches ``threshold``.  Lower thresholds
    accept earlier (cheaper); higher thresholds align the full candidate
    list and reject near-misses, producing higher precision.
    """
    if not (0.0 < threshold <= 1.0):
        raise ValidationError(f"threshold must be in (0, 1], got {threshold}")
    if read_length is None:
        read_length = len(reads[0])

    index: dict[str, list[int]] = defaultdict(list)
    for i, read in enumerate(reads):
        for kmer in _kmers(read, k):
            index[kmer].append(i)

    candidates: set[tuple[int, int]] = set()
    for members in index.values():
        if len(members) > 1:
            members = sorted(set(members))
            for ai in range(len(members)):
                for bi in range(ai + 1, len(members)):
                    candidates.add((members[ai], members[bi]))

    accepted: list[tuple[int, int]] = []
    comparisons = 0
    band = read_length // 2  # covers every >= half-read overlap offset
    for i, j in sorted(candidates):
        comparisons += 1
        if _identity_score(reads[i], reads[j], band=band) >= threshold:
            accepted.append((i, j))

    true_pairs = []
    half = read_length // 2
    order = np.argsort(starts, kind="stable")
    starts_sorted = np.asarray(starts)[order]
    for a in range(len(reads)):
        for b in range(a + 1, len(reads)):
            ia, ib = order[a], order[b]
            if starts_sorted[b] - starts_sorted[a] > read_length - half:
                break
            pair = (min(ia, ib), max(ia, ib))
            true_pairs.append(pair)

    return AlignmentResult(
        threshold=threshold,
        candidate_pairs=len(candidates),
        aligned_pairs=comparisons,
        accepted_pairs=tuple(sorted(accepted)),
        true_pairs=tuple(sorted(set(true_pairs))),
        comparisons=comparisons,
    )
