"""A real block-transform image encoder — the x264 application's kernel.

JPEG/x264-style intra coding of grayscale frames: 8×8 blocks, 2-D DCT
(via ``scipy.fft.dctn``), uniform quantization controlled by a
*compression factor* ``f`` (mapped to a quantizer step like x264's CRF),
then reconstruction.  The elastic trade-off is real and measurable:

* higher ``f`` → coarser quantization → fewer bits (better compression)
  but lower PSNR, and — with the rate-distortion search loop below —
  *more* computation, mirroring the paper's quadratic demand in ``f``;
* quality is reported as PSNR against the source frame.

To reflect x264's encoder effort growing with compression (mode decisions
search harder when the rate budget is tight) the encoder performs
``1 + round((f/10)²)`` candidate quantizer trials per block and keeps the
best rate-distortion score, making measured work genuinely superlinear in
``f`` while remaining a real computation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.fft import dctn, idctn

from repro.errors import ValidationError

__all__ = ["EncodeResult", "encode_image", "synthetic_frames",
           "MotionEncodeResult", "encode_frame_pair"]

BLOCK = 8


@dataclass(frozen=True)
class EncodeResult:
    """Outcome of encoding one frame."""

    reconstructed: np.ndarray
    psnr_db: float
    bits_estimate: float
    compression_factor: float
    block_trials: int
    flops: float

    @property
    def accuracy(self) -> float:
        """Compression achieved, normalized: 1 - bits/raw_bits, in [0, 1)."""
        raw_bits = self.reconstructed.size * 8.0
        return max(0.0, 1.0 - self.bits_estimate / raw_bits)


def synthetic_frames(n_frames: int, *, height: int = 64, width: int = 64,
                     seed: int = 0) -> list[np.ndarray]:
    """Generate synthetic grayscale frames with natural-image statistics.

    Smooth low-frequency content plus texture plus a moving edge, so DCT
    energy compaction behaves like real video rather than white noise.
    """
    if n_frames < 1:
        raise ValidationError("need at least one frame")
    if height % BLOCK or width % BLOCK:
        raise ValidationError(f"frame dimensions must be multiples of {BLOCK}")
    rng = np.random.default_rng(seed)
    yy, xx = np.mgrid[0:height, 0:width]
    frames = []
    for k in range(n_frames):
        phase = 2 * np.pi * k / max(n_frames, 1)
        smooth = 96 + 64 * np.sin(2 * np.pi * xx / width + phase) \
            * np.cos(2 * np.pi * yy / height)
        texture = 12 * rng.standard_normal((height, width))
        edge = 40.0 * (xx > (width / 2 + 10 * np.sin(phase)))
        frames.append(np.clip(smooth + texture + edge, 0, 255))
    return frames


def _block_view(frame: np.ndarray) -> np.ndarray:
    """Reshape (H, W) into (H/8, W/8, 8, 8) without copying."""
    h, w = frame.shape
    return frame.reshape(h // BLOCK, BLOCK, w // BLOCK, BLOCK).swapaxes(1, 2)


def _quantizer_step(f: float) -> float:
    """Map compression factor f∈[1,51] to a quantizer step (x264-like)."""
    # Exponential like H.264's QP→Qstep: doubles every ~6 f-units.
    return 0.5 * 2.0 ** (f / 6.0)


def encode_image(frame: np.ndarray, compression_factor: float) -> EncodeResult:
    """Encode one grayscale frame at the given compression factor.

    Returns the reconstruction, PSNR, an entropy-based bit estimate, and a
    flop count covering the DCT and the per-block rate-distortion trials.
    """
    f = float(compression_factor)
    if not (1.0 <= f <= 51.0):
        raise ValidationError(f"compression factor must be in [1, 51], got {f}")
    frame = np.asarray(frame, dtype=np.float64)
    if frame.ndim != 2 or frame.shape[0] % BLOCK or frame.shape[1] % BLOCK:
        raise ValidationError("frame must be 2-D with dimensions divisible by 8")

    blocks = _block_view(frame)
    coeffs = dctn(blocks, axes=(-2, -1), norm="ortho")

    base_step = _quantizer_step(f)
    n_trials = 1 + int(round((f / 10.0) ** 2))
    trial_steps = base_step * np.linspace(0.85, 1.15, n_trials)

    best_score = None
    best_q = None
    best_step = None
    for step in trial_steps:
        q = np.round(coeffs / step)
        recon_coeffs = q * step
        distortion = np.sum((recon_coeffs - coeffs) ** 2, axis=(-2, -1))
        rate = np.count_nonzero(q, axis=(-2, -1)).astype(float)
        score = distortion + (step ** 2) * rate  # Lagrangian RD cost
        total = float(np.sum(score))
        if best_score is None or total < best_score:
            best_score, best_q, best_step = total, q, step
    assert best_q is not None and best_step is not None

    recon_blocks = idctn(best_q * best_step, axes=(-2, -1), norm="ortho")
    recon = recon_blocks.swapaxes(1, 2).reshape(frame.shape)
    recon = np.clip(recon, 0, 255)

    mse = float(np.mean((recon - frame) ** 2))
    psnr = 99.0 if mse == 0 else 10.0 * np.log10(255.0**2 / mse)

    # Entropy-style bit estimate: ~2·log2(1+|q|) bits per significant
    # coefficient (sign + magnitude under a Golomb-like code) plus a small
    # per-block header.
    q_abs = np.abs(best_q)
    coeff_bits = float(np.sum(2.0 * np.log2(1.0 + q_abs[q_abs > 0])))
    bits = coeff_bits + 8.0 * best_q.shape[0] * best_q.shape[1]

    n_px = frame.size
    # 2-D 8x8 DCT ≈ 2*8*64 mul-adds per block → 16 flop/px each way,
    # plus ~6 flop/px per RD trial (round, scale, square, accumulate).
    flops = n_px * (32.0 + 6.0 * n_trials)
    return EncodeResult(
        reconstructed=recon,
        psnr_db=float(psnr),
        bits_estimate=float(bits),
        compression_factor=f,
        block_trials=n_trials,
        flops=float(flops),
    )


@dataclass(frozen=True)
class MotionEncodeResult:
    """Outcome of inter-frame (P-frame) encoding of one frame pair."""

    reconstructed: np.ndarray
    psnr_db: float
    bits_estimate: float
    search_radius: int
    sad_evaluations: int
    mean_abs_residual: float
    flops: float


def _sad(a: np.ndarray, b: np.ndarray) -> float:
    """Sum of absolute differences between two equal-shape blocks."""
    return float(np.abs(a - b).sum())


def encode_frame_pair(reference: np.ndarray, frame: np.ndarray,
                      compression_factor: float,
                      *, search_radius: int = 4) -> MotionEncodeResult:
    """P-frame encoding: block motion search + residual transform coding.

    For each 8×8 block of ``frame``, an exhaustive motion search over
    ``(2·radius + 1)²`` candidate displacements in ``reference`` finds
    the best-matching predictor (minimum SAD); the residual is then
    DCT-coded exactly like :func:`encode_image`.

    This grounds x264's *effort* elasticity in real computation: work
    grows **quadratically with the search radius** while larger radii
    find better predictors (smaller residuals → fewer bits at equal
    quality) — the same shape as the paper's quadratic demand in ``f``.
    """
    f = float(compression_factor)
    if not (1.0 <= f <= 51.0):
        raise ValidationError(f"compression factor must be in [1, 51], got {f}")
    if search_radius < 0:
        raise ValidationError("search radius must be >= 0")
    reference = np.asarray(reference, dtype=np.float64)
    frame = np.asarray(frame, dtype=np.float64)
    if reference.shape != frame.shape:
        raise ValidationError("reference and frame must have equal shapes")
    h, w = frame.shape
    if h % BLOCK or w % BLOCK:
        raise ValidationError("frame dimensions must be divisible by 8")

    predicted = np.empty_like(frame)
    sad_evaluations = 0
    for by in range(0, h, BLOCK):
        for bx in range(0, w, BLOCK):
            block = frame[by:by + BLOCK, bx:bx + BLOCK]
            best_sad = np.inf
            best = reference[by:by + BLOCK, bx:bx + BLOCK]
            for dy in range(-search_radius, search_radius + 1):
                sy = by + dy
                if sy < 0 or sy + BLOCK > h:
                    continue
                for dx in range(-search_radius, search_radius + 1):
                    sx = bx + dx
                    if sx < 0 or sx + BLOCK > w:
                        continue
                    candidate = reference[sy:sy + BLOCK, sx:sx + BLOCK]
                    sad = _sad(block, candidate)
                    sad_evaluations += 1
                    if sad < best_sad:
                        best_sad = sad
                        best = candidate
            predicted[by:by + BLOCK, bx:bx + BLOCK] = best

    residual = frame - predicted
    # Transform-code the residual (shift into a valid range and back).
    shifted = np.clip(residual + 128.0, 0, 255)
    coded = encode_image(shifted, f)
    recon = np.clip(predicted + (coded.reconstructed - 128.0), 0, 255)

    mse = float(np.mean((recon - frame) ** 2))
    psnr = 99.0 if mse == 0 else 10.0 * np.log10(255.0**2 / mse)
    # SAD costs ~3 flop per pixel (sub, abs, add).
    flops = coded.flops + 3.0 * BLOCK * BLOCK * sad_evaluations
    return MotionEncodeResult(
        reconstructed=recon,
        psnr_db=float(psnr),
        bits_estimate=coded.bits_estimate,
        search_radius=search_radius,
        sad_evaluations=sad_evaluations,
        mean_abs_residual=float(np.abs(residual).mean()),
        flops=float(flops),
    )
