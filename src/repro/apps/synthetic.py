"""A fully configurable synthetic elastic application.

Tests, ablations and property-based checks need applications with
arbitrary demand shapes, execution styles and rate profiles — this class
assembles one from parts.  It is also the extension point for users
bringing their own workloads to CELIA: provide a demand function (or let
the measurement layer fit one), a performance profile, and a task
decomposition.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import (
    ElasticApplication,
    ExecutionStyle,
    PerformanceProfile,
    Workload,
)
from repro.apps.demand import SeparableDemand
from repro.cloud.instance import ResourceCategory
from repro.errors import ValidationError
from repro.utils.rng import derive_rng

__all__ = ["SyntheticApp"]

_DEFAULT_IPC = {
    ResourceCategory.COMPUTE: 1.0,
    ResourceCategory.GENERAL: 1.0,
    ResourceCategory.MEMORY: 1.0,
}


class SyntheticApp(ElasticApplication):
    """An elastic application assembled from explicit components.

    Parameters
    ----------
    demand:
        Ground-truth demand function in GI.
    profile:
        Ground-truth rate profile; defaults to IPC 1.0 everywhere.
    style:
        Execution style; task decomposition follows it.
    name:
        Identifier used in reports and RNG stream keys.
    size_domain, accuracy_domain:
        Inclusive (lo, hi) validation bounds for n and a.
    n_tasks:
        For task-based styles: number of tasks the run splits into
        (defaults to ``int(n)``); for BSP: steps default to ``int(a)``.
    task_size_sigma:
        Log-normal task heterogeneity.
    """

    domain = "synthetic"
    size_symbol = "n"
    accuracy_symbol = "a"

    def __init__(
        self,
        demand: SeparableDemand,
        *,
        profile: PerformanceProfile | None = None,
        style: ExecutionStyle = ExecutionStyle.INDEPENDENT,
        name: str = "synthetic",
        size_domain: tuple[float, float] = (1.0, float("inf")),
        accuracy_domain: tuple[float, float] = (1e-9, float("inf")),
        n_tasks: int | None = None,
        task_size_sigma: float = 0.0,
        dispatch_seconds: float = 0.0,
        comm_seconds_per_step: float = 0.0,
        seed: int = 0,
    ):
        if size_domain[0] > size_domain[1] or accuracy_domain[0] > accuracy_domain[1]:
            raise ValidationError("domains must satisfy lo <= hi")
        if task_size_sigma < 0 or dispatch_seconds < 0 or comm_seconds_per_step < 0:
            raise ValidationError("overheads must be non-negative")
        self._demand = demand
        self._profile = profile or PerformanceProfile(
            ipc_by_category=dict(_DEFAULT_IPC), local_ipc=1.0
        )
        self.style = style
        self.name = name
        self.size_domain = size_domain
        self.accuracy_domain = accuracy_domain
        self.n_tasks_override = n_tasks
        self.task_size_sigma = task_size_sigma
        self.dispatch_seconds = dispatch_seconds
        self.comm_seconds_per_step = comm_seconds_per_step
        self.seed = seed

    @property
    def demand(self) -> SeparableDemand:
        return self._demand

    @property
    def profile(self) -> PerformanceProfile:
        return self._profile

    def validate_params(self, n: float, a: float) -> None:
        lo, hi = self.size_domain
        if not (lo <= n <= hi):
            raise ValidationError(f"{self.name}: size {n} outside [{lo}, {hi}]")
        lo, hi = self.accuracy_domain
        if not (lo <= a <= hi):
            raise ValidationError(f"{self.name}: accuracy {a} outside [{lo}, {hi}]")

    def scale_down_grid(self) -> tuple[np.ndarray, np.ndarray]:
        """A geometric grid spanning the lower part of the domains."""
        size_lo = max(self.size_domain[0], 1.0)
        acc_lo = max(self.accuracy_domain[0], 1e-3)
        sizes = size_lo * np.array([1, 2, 4, 8], dtype=float)
        accs = acc_lo * np.array([1, 2, 4, 8], dtype=float)
        sizes = np.minimum(sizes, self.size_domain[1])
        accs = np.minimum(accs, self.accuracy_domain[1])
        return np.unique(sizes), np.unique(accs)

    def workload(self, n: float, a: float) -> Workload:
        self.validate_params(n, a)
        total = self._demand.gi(n, a)
        if self.style is ExecutionStyle.BSP:
            steps = self.n_tasks_override or max(1, int(a))
            return Workload(
                style=self.style,
                total_gi=total,
                n_steps=steps,
                step_gi=total / steps,
                comm_seconds_per_step=self.comm_seconds_per_step,
            )
        n_tasks = self.n_tasks_override or max(1, int(n))
        rng = derive_rng(self.seed, self.name, "tasks", n, a)
        if self.task_size_sigma > 0 and n_tasks > 1:
            sizes = rng.lognormal(0.0, self.task_size_sigma, size=n_tasks)
        else:
            sizes = np.ones(n_tasks)
        sizes *= total / sizes.sum()
        return Workload(
            style=self.style,
            total_gi=total,
            task_gi=sizes,
            dispatch_seconds=self.dispatch_seconds,
        )

    def accuracy_score(self, a: float) -> float:
        """Accuracy normalized against the domain's finite upper bound.

        Falls back to a saturating map when the domain is unbounded.
        """
        self.validate_params(max(self.size_domain[0], 1.0), a)
        hi = self.accuracy_domain[1]
        if np.isfinite(hi):
            return float(a / hi)
        return float(a / (a + 1.0))
