"""x264 — the video-compression elastic application.

The paper's x264 workload encodes ``n`` independent 75 MB video clips at
compression factor ``f`` (1–51).  Demand is linear in ``n`` (clips are
independent) and quadratic in ``f`` (higher compression searches a larger
mode/motion space per block), per Figure 2(a)/(d).  Each clip is one
schedulable task, so execution is embarrassingly parallel with no
inter-node communication — the paper notes this is why x264 validates
best (max 9.5% error in Table IV).

Calibration (DESIGN.md §4): per-clip demand ``g(f) = 314 + 0.574·f²`` GI
was solved from Table IV's x264 rows together with the Figure 3 rate
targets; it reproduces the paper's predicted time/cost for all three
validation configurations to within a few percent.
"""

from __future__ import annotations

from functools import cached_property

import numpy as np

from repro.apps.base import (
    ElasticApplication,
    ExecutionStyle,
    PerformanceProfile,
    Workload,
)
from repro.apps.demand import LinearTerm, QuadraticTerm, SeparableDemand
from repro.cloud.instance import ResourceCategory
from repro.errors import ValidationError
from repro.utils.rng import derive_rng

__all__ = ["X264App"]

#: Valid compression-factor range (x264's CRF scale).
F_MIN, F_MAX = 1.0, 51.0

#: Per-clip demand g(f) = G_A + G_C * f^2, in GI for one 75 MB clip.
G_A = 314.0
G_C = 0.574

#: Effective virtualized IPC per vCPU by host category, calibrated to the
#: Figure 3 normalized-performance targets (c4: 55, m4: 41.2, r3: 27.5
#: GI/s per $/h → 2x / 1.5x the r3 value, as in Section IV-C).
_IPC = {
    ResourceCategory.COMPUTE: 55.0 * 0.105 / (2 * 2.9),
    ResourceCategory.GENERAL: 41.2 * 0.133 / (2 * 2.3),
    ResourceCategory.MEMORY: 27.5 * 0.166 / (2 * 2.5),
}


class X264App(ElasticApplication):
    """Video compression of ``n`` clips at compression factor ``f``.

    Parameters
    ----------
    task_size_sigma:
        Log-normal spread of per-clip demand around ``g(f)`` (video content
        varies); the *total* demand is renormalized to the exact ground
        truth so only the decomposition, not ``D``, is stochastic.
    seed:
        Seed for the per-clip variation stream.
    """

    name = "x264"
    domain = "video compression"
    size_symbol = "n"
    accuracy_symbol = "f"
    style = ExecutionStyle.INDEPENDENT

    def __init__(self, *, task_size_sigma: float = 0.10, seed: int = 0):
        if task_size_sigma < 0:
            raise ValidationError("task_size_sigma must be non-negative")
        self.task_size_sigma = task_size_sigma
        self.seed = seed

    @cached_property
    def demand(self) -> SeparableDemand:
        return SeparableDemand(
            size_term=LinearTerm(slope=1.0),
            accuracy_term=QuadraticTerm(a=G_A, b=0.0, c=G_C),
            scale=1.0,
        )

    @cached_property
    def profile(self) -> PerformanceProfile:
        return PerformanceProfile(ipc_by_category=dict(_IPC), local_ipc=0.95)

    def validate_params(self, n: float, a: float) -> None:
        if n < 1 or n != int(n):
            raise ValidationError(f"x264 needs an integer clip count >= 1, got {n}")
        if not (F_MIN <= a <= F_MAX):
            raise ValidationError(
                f"x264 compression factor must be in [{F_MIN}, {F_MAX}], got {a}"
            )

    def scale_down_grid(self) -> tuple[np.ndarray, np.ndarray]:
        """Section IV-A sweep: n from 2 to 32, f from 10 to 50."""
        return (
            np.array([2, 4, 8, 16, 32], dtype=float),
            np.array([10, 20, 30, 40, 50], dtype=float),
        )

    def workload(self, n: float, a: float) -> Workload:
        """One task per clip; per-clip GI varies log-normally around g(f)."""
        self.validate_params(n, a)
        n_clips = int(n)
        total = self.demand.gi(n, a)
        rng = derive_rng(self.seed, "x264-tasks", n_clips, a)
        if self.task_size_sigma > 0:
            sizes = rng.lognormal(mean=0.0, sigma=self.task_size_sigma, size=n_clips)
        else:
            sizes = np.ones(n_clips)
        sizes *= total / sizes.sum()
        return Workload(style=self.style, total_gi=total, task_gi=sizes)

    def accuracy_score(self, a: float) -> float:
        """Compression factor normalized to (0, 1]."""
        self.validate_params(1, a)
        return a / F_MAX

    def min_memory_gb_per_vcpu(self, n: float, a: float) -> float:
        """One 75 MB clip plus encoder state per worker process (~0.4 GB)."""
        return 0.4
