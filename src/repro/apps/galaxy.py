"""galaxy — the n-body simulation elastic application.

The paper's galaxy workload (from the PetaKit suite [14]) simulates ``n``
masses for ``s`` steps; masses are distributed among MPI processes which
exchange positions every step.  Demand is quadratic in ``n`` (all-pairs
forces) and linear in ``s``, per Figure 2(b)/(e); accuracy improves with
``s`` so the step count is the accuracy knob.  Both ``n`` and ``s`` are
unbounded above.

Calibration (DESIGN.md §4): ``D(n, s) = κ·n²·s`` with ``κ = 3.1e-7`` GI
(i.e. 310 instructions per mass-pair interaction) was solved jointly from
Figure 2(b) (~2.66 PI at n=65,536, s=2,000) and Table IV's galaxy rows —
e.g. galaxy(65536, 8000) on [5,5,5,3,0,...] then needs 23–24 h, matching
the paper's predicted 24 h and $126.

A real, runnable n-body integrator with measurable accuracy lives in
:mod:`repro.apps.kernels.nbody`.
"""

from __future__ import annotations

from functools import cached_property

import numpy as np

from repro.apps.base import (
    ElasticApplication,
    ExecutionStyle,
    PerformanceProfile,
    Workload,
)
from repro.apps.demand import LinearTerm, PowerTerm, SeparableDemand
from repro.cloud.instance import ResourceCategory
from repro.errors import ValidationError

__all__ = ["GalaxyApp"]

#: GI per (mass-pair, step): 310 instructions per pairwise interaction.
KAPPA = 3.1e-7

#: Effective virtualized IPC per vCPU by host category, calibrated to
#: Figure 3 (galaxy: c4 26.2, m4 19.7, r3 13.1 GI/s per $/h — the values
#: the paper quotes in Section IV-C for c4 are 26.27/26.21/26.01).
_IPC = {
    ResourceCategory.COMPUTE: 26.2 * 0.105 / (2 * 2.9),
    ResourceCategory.GENERAL: 19.7 * 0.133 / (2 * 2.3),
    ResourceCategory.MEMORY: 13.1 * 0.166 / (2 * 2.5),
}


class GalaxyApp(ElasticApplication):
    """N-body galaxy simulation of ``n`` masses over ``s`` steps.

    Parameters
    ----------
    comm_latency_seconds:
        Fixed per-step synchronization latency (MPI allgather setup).
    comm_seconds_per_mass:
        Per-mass position-exchange time per step (bandwidth term).
    """

    name = "galaxy"
    domain = "astrophysics"
    size_symbol = "n"
    accuracy_symbol = "s"
    accuracy_integral = True
    style = ExecutionStyle.BSP

    def __init__(self, *, comm_latency_seconds: float = 0.004,
                 comm_seconds_per_mass: float = 2.0e-8):
        if comm_latency_seconds < 0 or comm_seconds_per_mass < 0:
            raise ValidationError("communication costs must be non-negative")
        self.comm_latency_seconds = comm_latency_seconds
        self.comm_seconds_per_mass = comm_seconds_per_mass

    @cached_property
    def demand(self) -> SeparableDemand:
        return SeparableDemand(
            size_term=PowerTerm(coefficient=1.0, exponent=2.0),
            accuracy_term=LinearTerm(slope=1.0),
            scale=KAPPA,
        )

    @cached_property
    def profile(self) -> PerformanceProfile:
        return PerformanceProfile(ipc_by_category=dict(_IPC), local_ipc=0.46)

    def validate_params(self, n: float, a: float) -> None:
        if n < 2 or n != int(n):
            raise ValidationError(f"galaxy needs an integer mass count >= 2, got {n}")
        if a < 1 or a != int(a):
            raise ValidationError(f"galaxy needs an integer step count >= 1, got {a}")

    def scale_down_grid(self) -> tuple[np.ndarray, np.ndarray]:
        """Section IV-A sweep: n from 8,192 to 65,536; s from 1,000 to 8,000."""
        return (
            np.array([8192, 16384, 32768, 65536], dtype=float),
            np.array([1000, 2000, 4000, 8000], dtype=float),
        )

    def workload(self, n: float, a: float) -> Workload:
        """``s`` BSP steps of ``κ·n²`` GI each, plus per-step communication."""
        self.validate_params(n, a)
        steps = int(a)
        step_gi = KAPPA * float(n) ** 2
        return Workload(
            style=self.style,
            total_gi=step_gi * steps,
            n_steps=steps,
            step_gi=step_gi,
            comm_seconds_per_step=(
                self.comm_latency_seconds + self.comm_seconds_per_mass * float(n)
            ),
        )

    def accuracy_score(self, a: float) -> float:
        """Step count mapped to (0, 1] via a saturating integration-error proxy.

        There is no theoretical upper bound on ``s``; we use
        ``s / (s + s_half)`` with ``s_half = 1000`` so the paper's sweep
        range (1,000–8,000 steps) covers scores 0.5–0.89.
        """
        self.validate_params(2, a)
        return a / (a + 1000.0)

    def min_memory_gb_per_vcpu(self, n: float, a: float) -> float:
        """Replicated positions/velocities/forces: ~72 B per mass, plus a
        fixed MPI runtime footprint."""
        return 0.1 + float(n) * 72e-9
