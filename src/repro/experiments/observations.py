"""Observations 1–3 — the paper's quantified findings.

* **Observation 1**: among feasible configurations there is a Pareto
  frontier along which relaxing the deadline buys cost — selecting the
  cheapest frontier point saves up to ~30% (galaxy) / ~20% (sand) vs the
  dearest.
* **Observation 2**: cost grows *faster* than resource demand once the
  optimum mixes resource categories with different cost efficiency —
  the cost/demand elasticity exceeds 1 beyond the first category spill.
* **Observation 3**: tightening the deadline raises cost by *less* than
  the relative deadline reduction (72 h → 24 h = −67% deadline → +40%
  cost for galaxy; 48 h → 24 h = −50% → +~25% for sand).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.deadline import DeadlineStudy, deadline_tightening_study
from repro.core.scaling import fixed_time_scaling
from repro.core.selection import select_configurations
from repro.experiments.common import ExperimentContext, category_slices

__all__ = ["Observation1", "Observation2", "Observation3",
           "ObservationsResult", "run"]


@dataclass(frozen=True)
class Observation1:
    """Pareto-frontier cost spans for the Figure 4 workloads."""

    saving_fraction: dict[str, float]  # app -> 1 - min/max frontier cost
    pareto_counts: dict[str, int]

    def render(self) -> str:
        lines = ["Observation 1: Pareto frontier cost spans"]
        for app, saving in sorted(self.saving_fraction.items()):
            lines.append(
                f"  {app}: {self.pareto_counts[app]} Pareto-optimal configs, "
                f"choosing cheapest saves {saving:.0%} vs dearest"
            )
        return "\n".join(lines)


@dataclass(frozen=True)
class Observation2:
    """Cost-vs-demand elasticity along the Figure 6 accuracy sweeps."""

    elasticity_before_spill: dict[str, float]
    elasticity_after_spill: dict[str, float]
    spill_accuracies: dict[str, list[float]]

    def render(self) -> str:
        lines = ["Observation 2: cost grows faster than demand across "
                 "category spills (elasticity d logC / d logD)"]
        for app in sorted(self.elasticity_before_spill):
            lines.append(
                f"  {app}: {self.elasticity_before_spill[app]:.2f} before vs "
                f"{self.elasticity_after_spill[app]:.2f} after first spill "
                f"(spills at {self.spill_accuracies[app]})"
            )
        return "\n".join(lines)


@dataclass(frozen=True)
class Observation3:
    """Deadline-tightening studies for galaxy and sand."""

    studies: dict[str, DeadlineStudy]
    headline: dict[str, tuple[float, float, float, float]]
    # app -> (from_h, to_h, deadline reduction, cost increase)

    def render(self) -> str:
        lines = ["Observation 3: cost increase < deadline reduction"]
        for app, (f, t, red, inc) in sorted(self.headline.items()):
            holds = "holds" if inc < red else "VIOLATED"
            lines.append(
                f"  {app}: {f:g}h -> {t:g}h deadline (-{red:.0%}) costs "
                f"+{inc:.0%} ({holds})"
            )
        for app, study in sorted(self.studies.items()):
            universal = study.increase_always_smaller_than_reduction()
            lines.append(
                f"  {app}: property over all feasible deadline pairs: "
                f"{'holds' if universal else 'VIOLATED'}"
            )
        return "\n".join(lines)


@dataclass(frozen=True)
class ObservationsResult:
    """All three observations."""

    obs1: Observation1
    obs2: Observation2
    obs3: Observation3

    def render(self) -> str:
        return "\n\n".join([self.obs1.render(), self.obs2.render(),
                            self.obs3.render()])


def run(ctx: ExperimentContext) -> ObservationsResult:
    """Quantify all three observations on the paper's workloads."""
    celia = ctx.celia
    slices = category_slices(ctx.catalog)

    # -- Observation 1: Figure 4's frontiers --------------------------------
    saving = {}
    counts = {}
    for app_name, n, a in (("galaxy", 65_536, 8_000), ("sand", 8_192e6, 0.32)):
        app = ctx.app(app_name)
        sel = select_configurations(
            celia.evaluation(app), celia.demand_gi(app, n, a), 24.0, 350.0
        )
        saving[app_name] = sel.max_saving_fraction
        counts[app_name] = sel.pareto_count

    # -- Observation 2: elasticity across the first spill --------------------
    before = {}
    after = {}
    spill_acc = {}
    sweeps = {
        "galaxy": (65_536.0,
                   np.array([1000, 2000, 3000, 4000, 5000, 6000, 7000, 8000,
                             9000, 10000], dtype=float)),
        "sand": (8_192e6,
                 np.array([0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0])),
    }
    for app_name, (size, accs) in sweeps.items():
        app = ctx.app(app_name)
        index = celia.min_cost_index(app)
        demands = np.array([celia.demand_gi(app, size, float(a)) for a in accs])
        curve = fixed_time_scaling(index, demands, accs, 24.0,
                                   parameter_name="a")
        spills = curve.spill_points(slices)
        spill_acc[app_name] = [float(accs[i]) for i in spills]
        elasticity = curve.cost_demand_elasticity()
        if spills:
            cut = spills[0] - 1  # elasticity index before the spill segment
            before[app_name] = float(np.mean(elasticity[:max(cut, 1)]))
            after[app_name] = float(np.max(elasticity[max(cut, 1):]))
        else:
            before[app_name] = float(np.mean(elasticity))
            after[app_name] = float(np.max(elasticity))

    # -- Observation 3: deadline tightening -----------------------------------
    studies = {}
    headline = {}
    cases = {
        "galaxy": (262_144, 1_000, 72.0, 24.0),
        "sand": (8_192e6, 0.32, 48.0, 24.0),
    }
    for app_name, (n, a, from_h, to_h) in cases.items():
        app = ctx.app(app_name)
        index = celia.min_cost_index(app)
        demand = celia.demand_gi(app, n, a)
        study = deadline_tightening_study(index, demand, [6, 12, 24, 48, 72])
        studies[app_name] = study
        reduction, increase = study.tightening(from_h, to_h)
        headline[app_name] = (from_h, to_h, reduction, increase)

    return ObservationsResult(
        obs1=Observation1(saving_fraction=saving, pareto_counts=counts),
        obs2=Observation2(
            elasticity_before_spill=before,
            elasticity_after_spill=after,
            spill_accuracies=spill_acc,
        ),
        obs3=Observation3(studies=studies, headline=headline),
    )
