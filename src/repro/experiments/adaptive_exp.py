"""Static vs adaptive execution under chaos: does closing the loop pay?

The paper's pipeline selects a configuration and assumes the cloud then
behaves.  This experiment measures what that assumption costs.  For each
chaos scenario in the runtime catalog, galaxy(65536, 8000) is executed
against the same deadline/budget envelope by two controllers over
several seeds:

* **static** — provision the selected configuration once and run it to
  completion (or failure), the open-loop baseline;
* **adaptive** — the closed-loop controller: monitor, re-plan over
  residual state after crashes/stragglers/provisioning faults, and
  degrade accuracy minimally when the envelope cannot otherwise be met.

Reported per scenario: deadline-hit-rate (runs ending inside T' with the
work complete, possibly at degraded accuracy), mean cost overrun beyond
C', and how often the adaptive path had to pull the accuracy knob.  The
benchmark ``benchmarks/bench_runtime.py`` commits the same comparison as
``BENCH_runtime.json``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cloud.catalog import ec2_catalog
from repro.core.celia import Celia
from repro.experiments.common import ExperimentContext
from repro.runtime import AdaptiveController, RuntimeConfig, scenario_names
from repro.runtime.chaos import chaos_scenario
from repro.utils.rng import spawn_seed
from repro.utils.tables import TextTable

__all__ = ["AdaptiveExperimentResult", "ScenarioOutcome", "run"]

#: The run every controller executes: galaxy(65536, 8000) — the paper's
#: Table IV flagship — under a 40 h deadline and $400 budget, reachable
#: at quota 2 but with little slack, so chaos actually threatens it.
PROBLEM = {"n": 65_536, "a": 8_000, "deadline_hours": 40.0,
           "budget_dollars": 400.0}

#: Independent executions per (scenario, mode) cell.
TRIALS = 3


@dataclass(frozen=True)
class ScenarioOutcome:
    """Aggregates of one (scenario, mode) cell."""

    scenario: str
    adaptive: bool
    trials: int
    deadline_hits: int
    mean_cost_dollars: float
    mean_overrun_dollars: float
    mean_elapsed_hours: float
    replans: int
    degradations: int
    verdicts: tuple[str, ...]

    @property
    def hit_rate(self) -> float:
        return self.deadline_hits / self.trials


@dataclass(frozen=True)
class AdaptiveExperimentResult:
    """Static-vs-adaptive comparison across the chaos catalog."""

    outcomes: tuple[ScenarioOutcome, ...]

    def render(self) -> str:
        lines = [
            "Closed-loop adaptive runtime vs static execution "
            "(galaxy(65536, 8000), T'=40 h, C'=$400, quota 2, "
            f"{TRIALS} seeds per cell)\n"
        ]
        table = TextTable(
            ["Scenario", "Mode", "Hit rate", "Mean $", "Overrun $",
             "Mean h", "Replans", "Degraded"],
            aligns="llrrrrrr", float_format="{:.2f}")
        for o in self.outcomes:
            table.add_row([
                o.scenario, "adaptive" if o.adaptive else "static",
                f"{o.hit_rate:.0%}", o.mean_cost_dollars,
                o.mean_overrun_dollars, o.mean_elapsed_hours,
                o.replans, o.degradations,
            ])
        lines.append(table.render())
        static_hits = sum(o.deadline_hits for o in self.outcomes
                          if not o.adaptive)
        adaptive_hits = sum(o.deadline_hits for o in self.outcomes
                            if o.adaptive)
        total = sum(o.trials for o in self.outcomes if o.adaptive)
        lines.append(
            f"\noverall deadline-hit-rate: static {static_hits}/{total}, "
            f"adaptive {adaptive_hits}/{total}; every non-hit ended in an "
            "explicit infeasible/failed verdict — no silent overruns.")
        return "\n".join(lines)

    def to_series(self) -> dict:
        return {
            "problem": dict(PROBLEM),
            "trials": TRIALS,
            "outcomes": [
                {
                    "scenario": o.scenario,
                    "mode": "adaptive" if o.adaptive else "static",
                    "hit_rate": o.hit_rate,
                    "mean_cost_dollars": o.mean_cost_dollars,
                    "mean_overrun_dollars": o.mean_overrun_dollars,
                    "mean_elapsed_hours": o.mean_elapsed_hours,
                    "replans": o.replans,
                    "degradations": o.degradations,
                    "verdicts": list(o.verdicts),
                }
                for o in self.outcomes
            ],
        }


def run_cell(celia: Celia, app, scenario_name: str, *, adaptive: bool,
             seed: int, trials: int = TRIALS) -> ScenarioOutcome:
    """Execute one (scenario, mode) cell over ``trials`` seeds."""
    scenario = chaos_scenario(scenario_name)
    reports = []
    for trial in range(trials):
        controller = AdaptiveController(
            celia, app, scenario=scenario,
            config=RuntimeConfig(replan=adaptive),
            seed=spawn_seed(seed, "adaptive-exp", scenario_name, trial))
        reports.append(controller.execute(
            PROBLEM["n"], PROBLEM["a"], PROBLEM["deadline_hours"],
            PROBLEM["budget_dollars"]))
    overruns = [max(0.0, r.cost_dollars - r.budget_dollars) for r in reports]
    return ScenarioOutcome(
        scenario=scenario_name,
        adaptive=adaptive,
        trials=trials,
        deadline_hits=sum(r.completed and r.elapsed_hours <= r.deadline_hours
                          for r in reports),
        mean_cost_dollars=sum(r.cost_dollars for r in reports) / trials,
        mean_overrun_dollars=sum(overruns) / trials,
        mean_elapsed_hours=sum(r.elapsed_hours for r in reports) / trials,
        replans=sum(r.replans for r in reports),
        degradations=sum(r.degradations for r in reports),
        verdicts=tuple(r.verdict for r in reports),
    )


def run(ctx: ExperimentContext) -> AdaptiveExperimentResult:
    """Static vs adaptive across the whole chaos catalog at quota 2."""
    celia = Celia(
        ec2_catalog(max_nodes_per_type=2),
        seed=ctx.seed,
        workers=ctx.workers,
        cache_dir=ctx.cache_dir,
    )
    app = ctx.app("galaxy")
    outcomes = []
    for name in scenario_names():
        for adaptive in (False, True):
            outcomes.append(run_cell(celia, app, name, adaptive=adaptive,
                                     seed=ctx.seed))
    return AdaptiveExperimentResult(outcomes=tuple(outcomes))
