"""Table IV — model validation.

For each of the paper's nine validation points (three per application,
on the paper's exact configuration vectors), compare CELIA's predicted
time and cost against an independent "actual" execution by the
discrete-event engine, and report the percentage error.  The paper's
acceptance bar is a maximum error of ~17%, higher for the communicating
applications (galaxy, sand) than for embarrassingly parallel x264.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.runner import run_on_configuration
from repro.experiments.common import ExperimentContext
from repro.utils.mathutil import percent_error
from repro.utils.tables import TextTable

__all__ = ["ValidationRow", "Table4Result", "run", "VALIDATION_POINTS"]

#: The paper's validation runs: (app, n, a, configuration).
VALIDATION_POINTS: tuple[tuple[str, float, float, tuple[int, ...]], ...] = (
    ("x264", 8_000, 20, (2, 1, 0, 0, 0, 0, 0, 0, 0)),
    ("x264", 16_000, 20, (5, 1, 1, 0, 0, 0, 0, 0, 0)),
    ("x264", 32_000, 20, (5, 5, 5, 1, 0, 0, 0, 0, 0)),
    ("galaxy", 65_536, 4_000, (5, 5, 0, 0, 0, 0, 0, 0, 0)),
    ("galaxy", 65_536, 6_000, (5, 5, 5, 0, 0, 0, 0, 0, 0)),
    ("galaxy", 65_536, 8_000, (5, 5, 5, 3, 0, 0, 0, 0, 0)),
    ("sand", 1_024e6, 0.32, (5, 4, 1, 0, 0, 0, 0, 0, 0)),
    ("sand", 2_048e6, 0.32, (5, 5, 0, 0, 0, 0, 0, 0, 0)),
    ("sand", 4_096e6, 0.32, (5, 3, 1, 0, 0, 0, 0, 0, 0)),
)


@dataclass(frozen=True)
class ValidationRow:
    """One validation point: predicted vs actual time and cost."""

    app_name: str
    n: float
    a: float
    configuration: tuple[int, ...]
    predicted_hours: float
    actual_hours: float
    predicted_cost: float
    actual_cost: float

    @property
    def time_error_percent(self) -> float:
        """Time prediction error vs the engine's measurement."""
        return percent_error(self.predicted_hours, self.actual_hours)

    @property
    def cost_error_percent(self) -> float:
        """Cost prediction error vs the billed amount."""
        return percent_error(self.predicted_cost, self.actual_cost)

    @property
    def max_error_percent(self) -> float:
        """The paper's per-row Error column (its worse of time/cost)."""
        return max(self.time_error_percent, self.cost_error_percent)


@dataclass(frozen=True)
class Table4Result:
    """All validation rows."""

    rows: tuple[ValidationRow, ...]

    def max_error_for(self, app_name: str) -> float:
        """Maximum error across one application's rows."""
        errors = [r.max_error_percent for r in self.rows
                  if r.app_name == app_name]
        if not errors:
            raise KeyError(f"no rows for {app_name}")
        return max(errors)

    def render(self) -> str:
        """Render the paper's Table IV layout."""
        table = TextTable(
            ["Application", "Configuration", "T pred (h)", "T actual (h)",
             "C pred ($)", "C actual ($)", "Error (%)"],
            aligns="llrrrrr",
            title="Table IV: model validation (predicted vs engine-actual)",
            float_format="{:.1f}",
        )
        for r in self.rows:
            label = f"{r.app_name}({r.n:g},{r.a:g})"
            table.add_row([
                label, str(list(r.configuration)),
                r.predicted_hours, r.actual_hours,
                r.predicted_cost, r.actual_cost,
                r.max_error_percent,
            ])
        per_app = sorted({r.app_name for r in self.rows})
        footer = "\nmax error: " + ", ".join(
            f"{name} {self.max_error_for(name):.1f}%" for name in per_app
        )
        return table.render() + footer


def run(ctx: ExperimentContext) -> Table4Result:
    """Predict and execute all nine validation points."""
    rows = []
    for app_name, n, a, config in VALIDATION_POINTS:
        app = ctx.app(app_name)
        prediction = ctx.celia.predict(app, n, a, config)
        actual = run_on_configuration(
            app, n, a, config, ctx.catalog,
            config=ctx.engine_config, seed=ctx.seed,
        )
        rows.append(
            ValidationRow(
                app_name=app_name,
                n=n,
                a=a,
                configuration=tuple(config),
                predicted_hours=prediction.time_hours,
                actual_hours=actual.time_hours,
                predicted_cost=prediction.cost_dollars,
                actual_cost=actual.cost_dollars,
            )
        )
    return Table4Result(rows=tuple(rows))
