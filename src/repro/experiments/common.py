"""Shared experiment infrastructure.

All experiments run against one :class:`ExperimentContext`, which owns
the catalog, the measurement harness, the CELIA instance (whose caches
make the space evaluation per application happen once), and the paper's
three applications.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Protocol

from repro.apps import paper_applications
from repro.apps.base import ElasticApplication
from repro.cloud.catalog import Catalog, ec2_catalog
from repro.core.celia import Celia
from repro.engine.runner import EngineConfig
from repro.errors import ValidationError
from repro.measurement.perf import PerfCounter
from repro.utils.rng import DEFAULT_ROOT_SEED

__all__ = ["ExperimentContext", "ExperimentResult", "category_slices"]


class ExperimentResult(Protocol):
    """Every experiment result can render itself as text."""

    def render(self) -> str:  # pragma: no cover - protocol
        ...


@dataclass
class ExperimentContext:
    """Everything the experiment modules need, built once.

    Parameters mirror the paper's setup: the Table III catalog with quota
    5, the three Table II applications, and a fixed seed so the entire
    evaluation regenerates bit-identically.  ``workers`` and
    ``cache_dir`` tune the full-space sweeps all figures share: sweeps
    parallelize across processes and persist to the evaluation cache, so
    regenerating a figure with a warm cache skips the sweep entirely.
    """

    seed: int = DEFAULT_ROOT_SEED
    catalog: Catalog = field(default_factory=ec2_catalog)
    engine_config: EngineConfig = field(default_factory=EngineConfig)
    workers: "int | str | None" = "auto"
    cache_dir: "str | Path | bool | None" = None

    def __post_init__(self) -> None:
        self.perf = PerfCounter(seed=self.seed)
        self.celia = Celia(
            self.catalog,
            perf=self.perf,
            engine_config=self.engine_config,
            seed=self.seed,
            workers=self.workers,
            cache_dir=self.cache_dir,
        )
        self.apps = paper_applications(seed=self.seed)

    def app(self, name: str) -> ElasticApplication:
        """One of the paper's applications by name."""
        try:
            return self.apps[name]
        except KeyError:
            raise ValidationError(
                f"unknown application {name!r}; have {sorted(self.apps)}"
            ) from None


def category_slices(catalog: Catalog) -> list[slice]:
    """Contiguous configuration-vector slices per resource category.

    The paper's catalog lists each category's types contiguously; this
    helper recovers the slices (e.g. c4 → 0:3, m4 → 3:6, r3 → 6:9) for
    spill-point detection in the Figure 6 analysis.
    """
    slices: list[slice] = []
    cats = catalog.categories
    start = 0
    for i in range(1, len(cats) + 1):
        if i == len(cats) or cats[i] is not cats[start]:
            slices.append(slice(start, i))
            start = i
    # Verify contiguity: a category must not reappear later.
    seen = set()
    for sl in slices:
        cat = cats[sl.start]
        if cat in seen:
            raise ValidationError(
                "catalog categories must be contiguous for spill analysis"
            )
        seen.add(cat)
    return slices
