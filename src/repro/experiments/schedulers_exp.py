"""Engine ablation: how much does the execution style cost?

The analytical model assumes perfect parallelism (Eq. 2); the engine's
schedulers lose time to master dispatch (Work Queue), barriers (BSP) and
imbalance.  This experiment runs the *same* sand workload under four
strategies on the same cluster and reports makespan and utilization —
quantifying the execution-style overheads that drive Table IV's error
ordering (and showing what SAND would gain from decentralized work
stealing).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.base import ExecutionStyle, Workload
from repro.cloud.provider import CloudProvider
from repro.engine.cluster import SimCluster
from repro.engine.schedulers import (
    ScheduleOutcome,
    simulate_independent,
    simulate_workqueue,
    simulate_worksteal,
)
from repro.experiments.common import ExperimentContext
from repro.utils.rng import derive_rng
from repro.utils.tables import TextTable

__all__ = ["SchedulerComparison", "run"]

#: The workload compared: sand(1024 M, 0.32) on [5,4,1,...] (Table IV row 7).
SAND_N = 1_024e6
SAND_T = 0.32
CONFIGURATION = (5, 4, 1, 0, 0, 0, 0, 0, 0)


@dataclass(frozen=True)
class SchedulerComparison:
    """Makespan/utilization per scheduling strategy for one workload."""

    outcomes: dict[str, ScheduleOutcome]
    ideal_hours: float

    def overhead(self, strategy: str) -> float:
        """makespan / ideal − 1 for one strategy."""
        return (self.outcomes[strategy].makespan_seconds / 3600.0
                / self.ideal_hours - 1.0)

    def render(self) -> str:
        table = TextTable(
            ["Strategy", "Makespan (h)", "vs ideal", "Utilization"],
            aligns="lrrr", float_format="{:.2f}",
        )
        for name, outcome in self.outcomes.items():
            hours = outcome.makespan_seconds / 3600.0
            table.add_row([
                name, hours, f"+{hours / self.ideal_hours - 1:.1%}",
                f"{outcome.utilization:.1%}",
            ])
        return (
            f"Engine ablation: sand({SAND_N:g}, {SAND_T:g}) on "
            f"{list(CONFIGURATION)} (ideal {self.ideal_hours:.2f} h)\n"
            + table.render()
        )


def run(ctx: ExperimentContext) -> SchedulerComparison:
    """Execute the workload under every applicable strategy.

    Two chunk granularities separate the two overhead sources: coarse
    chunks (the paper's 1 M sequences/task) suffer a completion *tail*
    that hits every strategy; fine chunks (128 k) shrink the tail but
    multiply dispatches, so the master serializes the work queue while
    work stealing approaches the ideal.
    """
    from repro.apps.sand import SandApp

    provider = CloudProvider(ctx.catalog,
                             virtualization=ctx.engine_config.virtualization,
                             seed=ctx.seed)
    lease = provider.provision(CONFIGURATION)
    jitter = ctx.engine_config.jitter_sigma

    def rng() -> np.random.Generator:
        return derive_rng(ctx.seed, "scheduler-ablation")

    outcomes: dict[str, ScheduleOutcome] = {}
    ideal_hours = 0.0
    for label, chunk in (("coarse 1M", 1_000_000), ("fine 128k", 128_000)):
        app = SandApp(chunk_sequences=chunk, seed=ctx.seed)
        cluster = SimCluster(lease.instances, app)
        workload = app.workload(SAND_N, SAND_T)
        as_independent = Workload(
            style=ExecutionStyle.INDEPENDENT,
            total_gi=workload.total_gi,
            task_gi=workload.task_gi,
        )
        outcomes[f"work queue, {label}"] = simulate_workqueue(
            workload, cluster, rng(), jitter_sigma=jitter)
        outcomes[f"work stealing, {label}"] = simulate_worksteal(
            workload, cluster, rng(), jitter_sigma=jitter)
        outcomes[f"LPT oracle, {label}"] = simulate_independent(
            as_independent, cluster, rng(), jitter_sigma=jitter)
        ideal_hours = cluster.ideal_seconds(workload.total_gi) / 3600.0

    provider.terminate(lease, now_hours=max(
        o.makespan_seconds for o in outcomes.values()) / 3600.0)
    return SchedulerComparison(outcomes=outcomes, ideal_hours=ideal_hours)
