"""Figure 6 — effect of scaling accuracy on cost.

Fix the problem size, sweep the accuracy knob, and find the minimum
execution cost at each deadline.  Reproduces the paper's two panel-level
findings: cost tracks the demand shape (linear in ``s`` for galaxy,
logarithmic in ``t`` for sand), and the cost curve's gradient jumps
exactly where the optimal configuration spills into a new resource
category (annotated configurations in panel (a)).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.scaling import ScalingCurve, fixed_time_scaling
from repro.experiments.common import ExperimentContext, category_slices
from repro.utils.tables import TextTable

__all__ = ["Figure6Panel", "Figure6Result", "run", "PANELS", "DEADLINES_HOURS"]

#: (app, fixed problem size, swept accuracies) per panel.
PANELS: tuple[tuple[str, float, tuple[float, ...]], ...] = (
    ("galaxy", 65_536, (1_000, 2_000, 3_000, 4_000, 5_000, 6_000, 7_000,
                        8_000, 9_000, 10_000)),
    ("sand", 8_192e6, (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)),
)

DEADLINES_HOURS: tuple[float, ...] = (6, 12, 24, 48, 72)


@dataclass(frozen=True)
class Figure6Panel:
    """One application's accuracy-vs-cost curve family."""

    app_name: str
    fixed_size: float
    accuracies: np.ndarray
    curves: dict[float, ScalingCurve]
    spill_indices: dict[float, list[int]]  # deadline -> spill positions

    def annotated_curve(self, deadline: float) -> ScalingCurve:
        """The curve the paper annotates (24 h in panel (a))."""
        return self.curves[deadline]


@dataclass(frozen=True)
class Figure6Result:
    """Both panels."""

    panels: tuple[Figure6Panel, ...]

    def panel(self, app_name: str) -> Figure6Panel:
        """Panel for one application."""
        for p in self.panels:
            if p.app_name == app_name:
                return p
        raise KeyError(f"no panel for {app_name}")

    def to_series(self) -> dict:
        """JSON-safe data behind the figure (for external plotting)."""
        out: dict = {}
        for p in self.panels:
            annotated = p.curves[24.0]
            out[p.app_name] = {
                "fixed_size": p.fixed_size,
                "accuracies": p.accuracies.tolist(),
                "min_cost_by_deadline": {
                    f"{d:g}": [
                        (None if not np.isfinite(c) else float(c))
                        for c in p.curves[d].costs
                    ]
                    for d in sorted(p.curves)
                },
                "configurations_24h": [
                    (list(c) if c is not None else None)
                    for c in annotated.configurations
                ],
                "spill_accuracies_24h": [
                    float(p.accuracies[i]) for i in p.spill_indices[24.0]
                ],
            }
        return out

    def render(self) -> str:
        """Series tables with configuration annotations at 24 h."""
        blocks = []
        for p in self.panels:
            deadlines = sorted(p.curves)
            table = TextTable(
                ["a"] + [f"{d:g}hr" for d in deadlines] + ["config @24hr"],
                aligns="r" * (1 + len(deadlines)) + "l",
                title=(f"Figure 6: {p.app_name} min cost [$] vs accuracy "
                       f"(size fixed at {p.fixed_size:g})"),
                float_format="{:.1f}",
            )
            annotated = p.curves[24.0]
            for k, a in enumerate(p.accuracies):
                row: list[object] = [f"{a:g}"]
                for d in deadlines:
                    c = p.curves[d].costs[k]
                    row.append(float(c) if np.isfinite(c) else "infeasible")
                config = annotated.configurations[k]
                row.append(str(list(config)) if config else "-")
                table.add_row(row)
            spills = p.spill_indices.get(24.0, [])
            footer = ("category spills @24hr at a = "
                      + ", ".join(f"{p.accuracies[i]:g}" for i in spills)
                      if spills else "no category spills @24hr")
            from repro.utils.asciiplot import ascii_lines

            chart = ascii_lines(
                p.accuracies,
                {f"{d:g}hr": p.curves[d].costs for d in deadlines},
                xlabel=f"accuracy ({p.app_name})",
                ylabel="cost [$]",
            )
            blocks.append(table.render() + "\n" + footer + "\n" + chart)
        return "\n\n".join(blocks)


def run(ctx: ExperimentContext) -> Figure6Result:
    """Sweep both panels across all deadlines, with spill detection."""
    slices = category_slices(ctx.catalog)
    panels = []
    for app_name, size, accuracy_values in PANELS:
        app = ctx.app(app_name)
        index = ctx.celia.min_cost_index(app)
        accuracies = np.asarray(accuracy_values, dtype=float)
        demands = np.array([
            ctx.celia.demand_gi(app, size, float(a)) for a in accuracies
        ])
        curves = {}
        spill_indices = {}
        for d in DEADLINES_HOURS:
            curve = fixed_time_scaling(
                index, demands, accuracies, float(d), parameter_name="a"
            )
            curves[float(d)] = curve
            spill_indices[float(d)] = curve.spill_points(slices)
        panels.append(
            Figure6Panel(
                app_name=app_name,
                fixed_size=size,
                accuracies=accuracies,
                curves=curves,
                spill_indices=spill_indices,
            )
        )
    return Figure6Result(panels=tuple(panels))
