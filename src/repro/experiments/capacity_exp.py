"""Capacity planning for the planner fleet itself (``capacity``).

CELIA answers "cheapest cloud configuration meeting a deadline" for
elastic applications; this experiment points the same question at the
service hosting the planner: **given a request trace and a p99 latency
SLO, how many fleet shards should run?**

The sweep axes mirror the paper's configuration space, shrunk to the
service's one scaling knob:

* **shard count** — the fleet's horizontal size (the paper's node
  counts);
* **trace intensity** — offered request rate of a seeded multi-tenant
  trace (the paper's problem size).

Each cell boots a real :class:`repro.fleet.PlannerFleet` with that many
shard workers, prewarm-primes the trace's warm keys, replays the trace
open-loop (:mod:`repro.loadgen.replay`) and records the measured p99,
shed count and availability.  A cell is *feasible* when it met the SLO
with zero errors *and zero sheds* (a shed request is unserved demand);
the answer per intensity is the cheapest
feasible shard count, priced at the catalog's on-demand rate for the
shard host type — exactly the paper's "cheapest configuration meeting
T′" selection, with :func:`repro.pareto.pareto_indices_2d` recovering
the (cost, p99) frontier per intensity.

All workers share one snapshot cache directory, so warm-state builds
happen once across the whole sweep and every cell measures steady-state
serving, not state construction.
"""

from __future__ import annotations

import asyncio
import tempfile
from dataclasses import dataclass

import numpy as np

from repro.experiments.common import ExperimentContext
from repro.loadgen.replay import prewarm, replay_trace
from repro.loadgen.report import ReplayReport
from repro.loadgen.tenants import WorkloadConfig, generate_trace
from repro.pareto import pareto_indices_2d
from repro.utils.tables import TextTable

__all__ = ["CapacityCell", "CapacityResult", "run",
           "DEFAULT_SHARD_COUNTS", "DEFAULT_INTENSITIES_RPS",
           "DEFAULT_SLO_P99_S", "SHARD_HOST_TYPE"]

DEFAULT_SHARD_COUNTS = (1, 2, 3)
DEFAULT_INTENSITIES_RPS = (40.0, 80.0, 160.0)
DEFAULT_SLO_P99_S = 0.5
DEFAULT_DURATION_S = 8.0
DEFAULT_TENANTS = 6

#: The instance type a planner shard is priced as (catalog on-demand
#: rate); the experiment falls back to this hourly price when the
#: context's catalog does not list the type.
SHARD_HOST_TYPE = "m4.large"
FALLBACK_SHARD_PRICE = 0.120


@dataclass(frozen=True, slots=True)
class CapacityCell:
    """One (shard count x trace intensity) measurement."""

    shards: int
    intensity_rps: float
    offered_rps: float
    requests: int
    ok: int
    shed: int
    errors: int
    availability: float
    p50_s: float
    p99_s: float
    cost_per_hour: float
    feasible: bool

    def to_dict(self) -> dict:
        return {
            "shards": self.shards,
            "intensity_rps": self.intensity_rps,
            "offered_rps": self.offered_rps,
            "requests": self.requests,
            "ok": self.ok,
            "shed": self.shed,
            "errors": self.errors,
            "availability": self.availability,
            "p50_s": self.p50_s,
            "p99_s": self.p99_s,
            "cost_per_hour": self.cost_per_hour,
            "feasible": self.feasible,
        }


@dataclass(frozen=True)
class CapacityResult:
    """The capacity sweep plus CELIA-style selection per intensity."""

    slo_p99_s: float
    shard_price_per_hour: float
    duration_s: float
    time_scale: float
    cells: tuple[CapacityCell, ...]
    #: intensity_rps -> cheapest feasible shard count (None: SLO unmet
    #: at every swept size).
    cheapest: dict
    #: intensity_rps -> shard counts on the (cost, p99) Pareto frontier.
    frontier: dict

    def render(self) -> str:
        table = TextTable(
            ["rps", "shards", "$/h", "p99 ms", "shed", "err", "avail",
             "SLO"], aligns="rrrrrrrl",
            title=f"fleet capacity vs p99 SLO {self.slo_p99_s * 1e3:g} ms "
                  f"(shard = {SHARD_HOST_TYPE} "
                  f"${self.shard_price_per_hour:.3f}/h)")
        for cell in self.cells:
            table.add_row([
                f"{cell.intensity_rps:g}", str(cell.shards),
                f"{cell.cost_per_hour:.3f}", f"{cell.p99_s * 1e3:.1f}",
                str(cell.shed), str(cell.errors),
                f"{cell.availability:.3f}",
                "met" if cell.feasible else "MISSED",
            ])
        lines = [table.render(), ""]
        for rps in sorted(self.cheapest):
            shards = self.cheapest[rps]
            frontier = self.frontier.get(rps, ())
            if shards is None:
                verdict = "no swept fleet size met the SLO"
            else:
                verdict = (f"cheapest fleet: {shards} shard(s) at "
                           f"${shards * self.shard_price_per_hour:.3f}/h")
            lines.append(f"{rps:g} rps -> {verdict} "
                         f"(frontier: {list(frontier)})")
        return "\n".join(lines)

    def to_series(self) -> dict:
        return {
            "slo_p99_s": self.slo_p99_s,
            "shard_price_per_hour": self.shard_price_per_hour,
            "duration_s": self.duration_s,
            "time_scale": self.time_scale,
            "cells": [cell.to_dict() for cell in self.cells],
            "cheapest_shards_by_rps": {
                f"{rps:g}": self.cheapest[rps] for rps in self.cheapest},
            "frontier_shards_by_rps": {
                f"{rps:g}": list(self.frontier[rps])
                for rps in self.frontier},
        }


def _shard_price(ctx: ExperimentContext) -> float:
    for instance in ctx.catalog.types:
        if instance.name == SHARD_HOST_TYPE:
            return float(instance.price_per_hour)
    return FALLBACK_SHARD_PRICE


async def _measure_cell(trace, shards: int, *, quota: int, cache_dir,
                        timeout_s: float, time_scale: float
                        ) -> ReplayReport:
    from repro.fleet import FleetConfig, PlannerFleet
    from repro.fleet.frontend import FleetFrontend

    config = FleetConfig(
        workers=shards, port=0, quota=quota, cache_dir=cache_dir,
        monitor_interval_s=0.2, connect_timeout_s=180.0,
        health_probes=False,
    )
    fleet = PlannerFleet(config)
    await fleet.start()
    frontend = FleetFrontend(fleet, host="127.0.0.1", port=0)
    await frontend.start()
    try:
        await prewarm(trace, port=frontend.port, timeout_s=timeout_s)
        result = await replay_trace(
            trace, port=frontend.port, time_scale=time_scale,
            timeout_s=timeout_s, fetch_server_metrics=False)
        return ReplayReport.from_result(result)
    finally:
        await frontend.stop()
        await fleet.stop()


def run(ctx: ExperimentContext, *,
        shard_counts: tuple[int, ...] = DEFAULT_SHARD_COUNTS,
        intensities_rps: tuple[float, ...] = DEFAULT_INTENSITIES_RPS,
        duration_s: float = DEFAULT_DURATION_S,
        tenants: int = DEFAULT_TENANTS,
        quota: int = 2,
        slo_p99_s: float = DEFAULT_SLO_P99_S,
        time_scale: float = 1.0,
        timeout_s: float = 30.0,
        cache_dir=None) -> CapacityResult:
    """Sweep shard count x trace intensity; select per-intensity capacity.

    One trace per intensity (seeded from ``ctx.seed``) is replayed
    against every fleet size, so cells within an intensity differ only
    in capacity.  ``cache_dir=None`` uses a sweep-private temporary
    directory shared by all cells.
    """
    price = _shard_price(ctx)
    cells: list[CapacityCell] = []
    with tempfile.TemporaryDirectory(prefix="celia-capacity-") as fallback:
        shared_cache = cache_dir if cache_dir is not None else fallback
        for rps in intensities_rps:
            trace = generate_trace(WorkloadConfig(
                tenants=tenants, duration_s=duration_s, mean_rps=rps,
                seed=ctx.seed, quota=quota, name=f"capacity-{rps:g}rps"))
            for shards in shard_counts:
                report = asyncio.run(_measure_cell(
                    trace, shards, quota=quota, cache_dir=shared_cache,
                    timeout_s=timeout_s, time_scale=time_scale))
                # A shed request is a tenant that got a 503: the fleet
                # protected itself but did not meet demand, so sheds
                # disqualify a cell just like hard errors do.
                feasible = (report.errors == 0
                            and report.shed == 0
                            and report.p99_s <= slo_p99_s
                            and report.ok > 0)
                cells.append(CapacityCell(
                    shards=shards,
                    intensity_rps=float(rps),
                    offered_rps=report.offered_rps,
                    requests=report.requests,
                    ok=report.ok,
                    shed=report.shed,
                    errors=report.errors,
                    availability=report.availability,
                    p50_s=report.p50_s,
                    p99_s=report.p99_s,
                    cost_per_hour=shards * price,
                    feasible=feasible,
                ))

    cheapest: dict = {}
    frontier: dict = {}
    for rps in intensities_rps:
        group = [c for c in cells if c.intensity_rps == float(rps)]
        feasible = [c for c in group if c.feasible]
        cheapest[float(rps)] = (min(feasible,
                                    key=lambda c: c.cost_per_hour).shards
                                if feasible else None)
        costs = np.array([c.cost_per_hour for c in group])
        p99s = np.array([c.p99_s for c in group])
        indices = pareto_indices_2d(costs, p99s)
        frontier[float(rps)] = tuple(group[i].shards for i in indices)

    return CapacityResult(
        slo_p99_s=slo_p99_s,
        shard_price_per_hour=price,
        duration_s=duration_s,
        time_scale=time_scale,
        cells=tuple(cells),
        cheapest=cheapest,
        frontier=frontier,
    )
