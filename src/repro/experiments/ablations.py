"""Ablation studies (A1/A2 in DESIGN.md) plus the spot-market study.

Three questions the paper answers qualitatively, quantified here:

* **A1 — is exhaustive search necessary?**  Optimality gap of greedy
  packing, random sampling and hill climbing vs the exhaustive optimum.
* **A2 — is measurement-driven characterization necessary?**  Per-app
  error of the spec-sheet (frequency-only) capacity estimate.
* **Spot — why on-demand only?**  Cost saving vs deadline-satisfaction
  probability when the same configuration runs on simulated spot
  instances with checkpointing (the related-work trade-off CELIA avoids).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.comparison import BaselineOutcome, compare_baselines
from repro.baselines.specbound import spec_prediction_error
from repro.experiments.common import ExperimentContext
from repro.spot.comparison import SpotStudy, compare_spot_vs_ondemand
from repro.utils.tables import TextTable

__all__ = ["AblationsResult", "run"]

#: The Figure 4 galaxy problem anchors all ablations.
PROBLEM = ("galaxy", 65_536, 8_000)
DEADLINE_HOURS = 24.0


@dataclass(frozen=True)
class AblationsResult:
    """Outcome of all four ablations."""

    search: list[BaselineOutcome]
    spec_errors: dict[str, tuple[float, float]]  # app -> (min, max) rel err
    spot: SpotStudy
    #: (static cost, reactive cost, reactive on-time under a 2x demand
    #: underestimate) — the static-vs-autoscaling comparison.
    autoscale: tuple[float, float, bool]

    def render(self) -> str:
        lines = ["A1: search strategies vs exhaustive "
                 f"(galaxy(65536, 8000), T' = {DEADLINE_HOURS:g} h)"]
        table = TextTable(
            ["Strategy", "Cost ($)", "Gap", "Wall (ms)"],
            aligns="lrrr", float_format="{:.2f}",
        )
        for o in self.search:
            cost = f"{o.answer.cost_dollars:.2f}" if o.found else "-"
            gap = f"{o.optimality_gap:.2%}" if o.found else "not found"
            table.add_row([o.strategy, cost, gap, o.wall_seconds * 1000])
        lines.append(table.render())

        lines.append("")
        lines.append("A2: spec-sheet (frequency-only) capacity estimate "
                     "error vs measured")
        for app, (lo, hi) in sorted(self.spec_errors.items()):
            lines.append(f"  {app}: {lo:+.0%} .. {hi:+.0%}")

        lines.append("")
        lines.append(self.spot.render())

        static_cost, reactive_cost, rescued = self.autoscale
        lines.append("")
        lines.append("A4: static CELIA plan vs reactive autoscaling")
        lines.append(
            f"  accurate estimate : static ${static_cost:.2f} vs "
            f"reactive ${reactive_cost:.2f} "
            f"({'static cheaper' if static_cost <= reactive_cost else 'reactive cheaper'})"
        )
        lines.append(
            f"  2x underestimate  : static plan misses the deadline; "
            f"autoscaler on time: {rescued}"
        )
        return "\n".join(lines)


def run(ctx: ExperimentContext) -> AblationsResult:
    """Run all three ablations against the shared context."""
    app_name, n, a = PROBLEM
    app = ctx.app(app_name)
    celia = ctx.celia
    capacities = celia.capacities(app)
    index = celia.min_cost_index(app)
    demand = celia.demand_gi(app, n, a)

    search = compare_baselines(
        ctx.catalog, capacities, index, demand, DEADLINE_HOURS,
        random_samples=20_000, seed=ctx.seed,
    )

    spec_errors = {}
    for name, application in ctx.apps.items():
        errors = spec_prediction_error(
            application, ctx.catalog, celia.capacities(application))
        spec_errors[name] = (float(np.min(errors)), float(np.max(errors)))

    ondemand = index.query(demand, DEADLINE_HOURS)
    spot = compare_spot_vs_ondemand(
        ondemand, demand, ctx.catalog, DEADLINE_HOURS,
        bid_fraction=0.5, trials=40, seed=ctx.seed,
    )

    # A4: static vs reactive.  With an accurate estimate the static plan
    # should win on cost; under a 2x demand underestimate the static plan
    # (sized from the believed demand) provably misses the deadline while
    # the autoscaler — which observes true remaining work — recovers.
    from repro.baselines.autoscale import simulate_autoscaler

    reactive = simulate_autoscaler(
        ctx.catalog, capacities, demand, DEADLINE_HOURS, seed=ctx.seed)
    static_from_half = index.query(demand / 2.0, DEADLINE_HOURS)
    static_true_time = demand / static_from_half.capacity_gips / 3600.0
    rescued = False
    if static_true_time > DEADLINE_HOURS:
        rescued = simulate_autoscaler(
            ctx.catalog, capacities, demand, DEADLINE_HOURS,
            seed=ctx.seed + 1).completed_on_time
    return AblationsResult(
        search=search,
        spec_errors=spec_errors,
        spot=spot,
        autoscale=(ondemand.cost_dollars, reactive.cost_dollars, rescued),
    )
