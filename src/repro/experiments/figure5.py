"""Figure 5 — effect of scaling problem size on cost.

Fix accuracy, sweep problem size, and find the minimum execution cost at
each of five deadlines (6/12/24/48/72 h).  The cost should track the
demand's shape — quadratic in ``n`` for galaxy, linear for sand — with
gradient breaks where the optimum spills into a new resource category.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.scaling import ScalingCurve, fixed_time_scaling
from repro.experiments.common import ExperimentContext, category_slices
from repro.utils.tables import TextTable

__all__ = ["Figure5Panel", "Figure5Result", "run", "PANELS", "DEADLINES_HOURS"]

#: (app, fixed accuracy, swept problem sizes) per panel.
PANELS: tuple[tuple[str, float, tuple[float, ...]], ...] = (
    ("galaxy", 1_000, (32_768, 65_536, 131_072, 262_144)),
    ("sand", 0.32, (1_024e6, 2_048e6, 4_096e6, 8_192e6)),
)

DEADLINES_HOURS: tuple[float, ...] = (6, 12, 24, 48, 72)


@dataclass(frozen=True)
class Figure5Panel:
    """One application's family of min-cost curves (one per deadline)."""

    app_name: str
    fixed_accuracy: float
    sizes: np.ndarray
    curves: dict[float, ScalingCurve]  # deadline -> curve

    def costs_matrix(self) -> np.ndarray:
        """(deadlines × sizes) cost matrix, inf where infeasible."""
        return np.vstack([self.curves[d].costs for d in sorted(self.curves)])


@dataclass(frozen=True)
class Figure5Result:
    """Both panels."""

    panels: tuple[Figure5Panel, ...]

    def panel(self, app_name: str) -> Figure5Panel:
        """Panel for one application."""
        for p in self.panels:
            if p.app_name == app_name:
                return p
        raise KeyError(f"no panel for {app_name}")

    def to_series(self) -> dict:
        """JSON-safe data behind the figure (for external plotting)."""
        out: dict = {}
        for p in self.panels:
            out[p.app_name] = {
                "fixed_accuracy": p.fixed_accuracy,
                "sizes": p.sizes.tolist(),
                "min_cost_by_deadline": {
                    f"{d:g}": [
                        (None if not np.isfinite(c) else float(c))
                        for c in p.curves[d].costs
                    ]
                    for d in sorted(p.curves)
                },
            }
        return out

    def render(self) -> str:
        """One series table per panel (rows: sizes, columns: deadlines)."""
        blocks = []
        for p in self.panels:
            deadlines = sorted(p.curves)
            table = TextTable(
                ["n"] + [f"{d:g}hr" for d in deadlines],
                aligns="r" * (1 + len(deadlines)),
                title=(f"Figure 5: {p.app_name} min cost [$] vs problem "
                       f"size (accuracy fixed at {p.fixed_accuracy:g})"),
                float_format="{:.1f}",
            )
            for k, n in enumerate(p.sizes):
                row: list[object] = [f"{n:g}"]
                for d in deadlines:
                    c = p.curves[d].costs[k]
                    row.append(float(c) if np.isfinite(c) else "infeasible")
                table.add_row(row)
            from repro.utils.asciiplot import ascii_lines

            chart = ascii_lines(
                p.sizes,
                {f"{d:g}hr": p.curves[d].costs for d in deadlines},
                xlabel=f"problem size n ({p.app_name})",
                ylabel="cost [$]",
            )
            blocks.append(table.render() + "\n" + chart)
        return "\n\n".join(blocks)


def run(ctx: ExperimentContext) -> Figure5Result:
    """Sweep both panels across all deadlines."""
    slices = category_slices(ctx.catalog)
    panels = []
    for app_name, accuracy, size_values in PANELS:
        app = ctx.app(app_name)
        index = ctx.celia.min_cost_index(app)
        sizes = np.asarray(size_values, dtype=float)
        demands = np.array([
            ctx.celia.demand_gi(app, float(n), accuracy) for n in sizes
        ])
        curves = {
            float(d): fixed_time_scaling(
                index, demands, sizes, float(d), parameter_name="n"
            )
            for d in DEADLINES_HOURS
        }
        # Touch spill analysis so misconfigured catalogs fail loudly here.
        for curve in curves.values():
            curve.spill_points(slices)
        panels.append(
            Figure5Panel(
                app_name=app_name,
                fixed_accuracy=accuracy,
                sizes=sizes,
                curves=curves,
            )
        )
    return Figure5Result(panels=tuple(panels))
