"""Purchasing-mode study: on-demand vs all-spot vs mixed under chaos.

The paper buys exclusively on-demand capacity; :mod:`repro.market` adds
a seeded spot market and a mixed purchasing vector.  This experiment
quantifies the trade across the whole chaos catalog: for each scenario,
galaxy(65536, 8000) runs under the same deadline/budget envelope with
three purchasing modes over several seeds:

* **on-demand** — the closed-loop controller exactly as before (no
  market); the baseline every other mode must beat on cost without
  losing on deadline-hit rate;
* **all-spot** — every node bought on the spot market
  (``spot_fraction=1``): the cheapest envelope but the whole fleet dies
  together on an interruption;
* **mixed** — the default :class:`~repro.market.MarketPolicy` split:
  an on-demand core keeps the deadline honest while the spot wing
  rides the discount, falling back to pure on-demand after repeated
  interruptions.

Reported per (scenario, mode): deadline-hit rate, mean cost, the spot
share of the bill, interruptions and fallbacks.  Every run prices its
budget checks at on-demand rates, so *no* mode can silently overrun —
the benchmark ``benchmarks/bench_spot.py`` commits this comparison as
``BENCH_spot.json`` and asserts exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cloud.catalog import ec2_catalog
from repro.core.celia import Celia
from repro.experiments.common import ExperimentContext
from repro.market import MarketPolicy
from repro.runtime import AdaptiveController, RuntimeConfig, scenario_names
from repro.runtime.chaos import chaos_scenario
from repro.utils.rng import spawn_seed
from repro.utils.tables import TextTable

__all__ = ["SpotExperimentResult", "PurchasingOutcome", "MODES",
           "run_cell", "run"]

#: Same flagship run the adaptive experiment uses: galaxy(65536, 8000)
#: under a 40 h deadline and $400 budget at quota 2.
PROBLEM = {"n": 65_536, "a": 8_000, "deadline_hours": 40.0,
           "budget_dollars": 400.0}

#: Independent executions per (scenario, mode) cell.
TRIALS = 2

#: mode name -> MarketPolicy (None = pure on-demand, no market).
MODES: dict[str, MarketPolicy | None] = {
    "on-demand": None,
    "all-spot": MarketPolicy(spot_fraction=1.0),
    "mixed": MarketPolicy(),
}


@dataclass(frozen=True)
class PurchasingOutcome:
    """Aggregates of one (scenario, purchasing-mode) cell."""

    scenario: str
    mode: str
    trials: int
    deadline_hits: int
    mean_cost_dollars: float
    mean_spot_cost_dollars: float
    spot_interruptions: int
    fallbacks: int
    budget_overruns: int
    verdicts: tuple[str, ...]

    @property
    def hit_rate(self) -> float:
        return self.deadline_hits / self.trials

    @property
    def spot_share(self) -> float:
        """Fraction of the mean bill paid at spot prices."""
        if self.mean_cost_dollars <= 0:
            return 0.0
        return self.mean_spot_cost_dollars / self.mean_cost_dollars


@dataclass(frozen=True)
class SpotExperimentResult:
    """Purchasing-mode comparison across the chaos catalog."""

    outcomes: tuple[PurchasingOutcome, ...]

    def mode_totals(self, mode: str) -> tuple[int, float]:
        """(deadline hits, mean cost) summed/averaged across scenarios."""
        cells = [o for o in self.outcomes if o.mode == mode]
        hits = sum(o.deadline_hits for o in cells)
        mean_cost = sum(o.mean_cost_dollars for o in cells) / len(cells)
        return hits, mean_cost

    def render(self) -> str:
        lines = [
            "Purchasing modes under chaos (galaxy(65536, 8000), "
            f"T'=40 h, C'=$400, quota 2, {TRIALS} seeds per cell)\n"
        ]
        table = TextTable(
            ["Scenario", "Mode", "Hit rate", "Mean $", "Spot $",
             "Interrupts", "Fallbacks", "Overruns"],
            aligns="llrrrrrr", float_format="{:.2f}")
        for o in self.outcomes:
            table.add_row([
                o.scenario, o.mode, f"{o.hit_rate:.0%}",
                o.mean_cost_dollars, o.mean_spot_cost_dollars,
                o.spot_interruptions, o.fallbacks, o.budget_overruns,
            ])
        lines.append(table.render())
        od_hits, od_cost = self.mode_totals("on-demand")
        mx_hits, mx_cost = self.mode_totals("mixed")
        saving = 1.0 - mx_cost / od_cost if od_cost > 0 else 0.0
        lines.append(
            f"\nmixed vs on-demand across the catalog: deadline hits "
            f"{mx_hits} vs {od_hits}, mean cost ${mx_cost:.2f} vs "
            f"${od_cost:.2f} ({saving:.0%} cheaper); budget overruns: "
            f"{sum(o.budget_overruns for o in self.outcomes)} anywhere.")
        return "\n".join(lines)

    def to_series(self) -> dict:
        return {
            "problem": dict(PROBLEM),
            "trials": TRIALS,
            "outcomes": [
                {
                    "scenario": o.scenario,
                    "mode": o.mode,
                    "hit_rate": o.hit_rate,
                    "mean_cost_dollars": o.mean_cost_dollars,
                    "mean_spot_cost_dollars": o.mean_spot_cost_dollars,
                    "spot_share": o.spot_share,
                    "spot_interruptions": o.spot_interruptions,
                    "fallbacks": o.fallbacks,
                    "budget_overruns": o.budget_overruns,
                    "verdicts": list(o.verdicts),
                }
                for o in self.outcomes
            ],
        }


def run_cell(celia: Celia, app, scenario_name: str, mode: str, *,
             seed: int, trials: int = TRIALS) -> PurchasingOutcome:
    """Execute one (scenario, purchasing-mode) cell over ``trials`` seeds.

    Seeds derive off ``(seed, "spot-exp", scenario, trial)`` — shared
    across modes, so every mode faces the identical chaos draw and the
    comparison isolates the purchasing decision.
    """
    scenario = chaos_scenario(scenario_name)
    policy = MODES[mode]
    reports = []
    for trial in range(trials):
        controller = AdaptiveController(
            celia, app, scenario=scenario,
            config=RuntimeConfig(),
            seed=spawn_seed(seed, "spot-exp", scenario_name, trial),
            market_policy=policy)
        reports.append(controller.execute(
            PROBLEM["n"], PROBLEM["a"], PROBLEM["deadline_hours"],
            PROBLEM["budget_dollars"]))
    return PurchasingOutcome(
        scenario=scenario_name,
        mode=mode,
        trials=trials,
        deadline_hits=sum(r.completed and r.elapsed_hours <= r.deadline_hours
                          for r in reports),
        mean_cost_dollars=sum(r.cost_dollars for r in reports) / trials,
        mean_spot_cost_dollars=sum(r.spot_cost_dollars
                                   for r in reports) / trials,
        spot_interruptions=sum(r.spot_interruptions for r in reports),
        fallbacks=sum(r.ondemand_fallback for r in reports),
        budget_overruns=sum(r.cost_dollars > r.budget_dollars
                            for r in reports),
        verdicts=tuple(r.verdict for r in reports),
    )


def run(ctx: ExperimentContext) -> SpotExperimentResult:
    """All purchasing modes across the whole chaos catalog at quota 2."""
    celia = Celia(
        ec2_catalog(max_nodes_per_type=2),
        seed=ctx.seed,
        workers=ctx.workers,
        cache_dir=ctx.cache_dir,
    )
    app = ctx.app("galaxy")
    outcomes = []
    for name in scenario_names():
        for mode in MODES:
            outcomes.append(run_cell(celia, app, name, mode, seed=ctx.seed))
    return SpotExperimentResult(outcomes=tuple(outcomes))
