"""Table III — the Amazon EC2 resource-type catalog.

An input table rather than a result, reproduced so reports are
self-contained and the catalog's provenance (2017 Oregon on-demand
prices) stays auditable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cloud.catalog import Catalog
from repro.cloud.instance import StorageKind
from repro.experiments.common import ExperimentContext
from repro.utils.tables import TextTable

__all__ = ["Table3Result", "run"]


@dataclass(frozen=True)
class Table3Result:
    """The catalog plus its derived configuration-space size."""

    catalog: Catalog

    @property
    def configuration_count(self) -> int:
        """Eq. 1 applied to the catalog (10,077,695 for the paper's)."""
        return self.catalog.configuration_count()

    def render(self) -> str:
        """Render Table III in the paper's column order."""
        table = TextTable(
            ["Type", "vCPUs", "Frequency (GHz)", "Memory (GB)",
             "Storage (GB)", "Cost ($)"],
            aligns="lrrrlr",
            title="Table III: Amazon EC2 cloud resource types",
            float_format="{:g}",
        )
        # The paper prints rows small-to-large; the catalog orders them
        # large-first (configuration-tuple order), so sort for display.
        for itype in sorted(self.catalog, key=lambda t: (t.category.value,
                                                         t.price_per_hour)):
            storage = ("EBS" if itype.storage is StorageKind.EBS
                       else f"{itype.local_storage_gb:g}")
            table.add_row([
                itype.name, itype.vcpus, itype.frequency_ghz,
                itype.memory_gb, storage, itype.price_per_hour,
            ])
        footer = (f"\nquota: {self.catalog.quotas[0]} nodes/type -> "
                  f"{self.configuration_count:,} configurations (Eq. 1)")
        return table.render() + footer


def run(ctx: ExperimentContext) -> Table3Result:
    """Wrap the context's catalog."""
    return Table3Result(catalog=ctx.catalog)
