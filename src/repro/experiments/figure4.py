"""Figure 4 — the cloud configuration space in the time-cost plane.

For galaxy(65536, 8000) and sand(8192 M, 0.32) with a 24-hour deadline
and $350 budget: the number of feasible configurations (the paper finds
~5.8 M and ~2 M), the Pareto-optimal set (23 and 58 configurations
spanning $126–167 and $180–210), and a down-sampled scatter of the
feasible cloud for plotting.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.selection import SelectionResult, select_configurations
from repro.experiments.common import ExperimentContext
from repro.utils.rng import derive_rng
from repro.utils.tables import TextTable

__all__ = ["Figure4Case", "Figure4Result", "run", "CASES"]

#: (app, n, a) per panel; deadline and budget are shared.
CASES: tuple[tuple[str, float, float], ...] = (
    ("galaxy", 65_536, 8_000),
    ("sand", 8_192e6, 0.32),
)

DEADLINE_HOURS = 24.0
BUDGET_DOLLARS = 350.0


@dataclass(frozen=True)
class Figure4Case:
    """One panel: the selection result plus a plottable sample."""

    app_name: str
    n: float
    a: float
    selection: SelectionResult
    sample_times_hours: np.ndarray
    sample_costs: np.ndarray

    @property
    def feasible_count(self) -> int:
        """Number of feasible configurations."""
        return self.selection.feasible_count

    @property
    def pareto_count(self) -> int:
        """Number of Pareto-optimal configurations."""
        return self.selection.pareto_count


@dataclass(frozen=True)
class Figure4Result:
    """Both panels."""

    cases: tuple[Figure4Case, ...]
    deadline_hours: float
    budget_dollars: float

    def case(self, app_name: str) -> Figure4Case:
        """Panel for one application."""
        for c in self.cases:
            if c.app_name == app_name:
                return c
        raise KeyError(f"no case for {app_name}")

    def to_series(self) -> dict:
        """JSON-safe data behind the figure (for external plotting)."""
        out: dict = {
            "deadline_hours": self.deadline_hours,
            "budget_dollars": self.budget_dollars,
            "cases": {},
        }
        for c in self.cases:
            out["cases"][c.app_name] = {
                "n": c.n,
                "a": c.a,
                "feasible_count": c.feasible_count,
                "total_configurations": c.selection.total_configurations,
                "scatter_times_hours": c.sample_times_hours.tolist(),
                "scatter_costs": c.sample_costs.tolist(),
                "pareto": [
                    {
                        "configuration": list(p.configuration),
                        "time_hours": p.time_hours,
                        "cost_dollars": p.cost_dollars,
                    }
                    for p in c.selection.pareto
                ],
            }
        return out

    def render(self) -> str:
        """Headline counts, a time-cost scatter, and the frontier rows."""
        import numpy as np

        from repro.utils.asciiplot import ascii_scatter

        lines = [
            f"Figure 4: configuration space, T' = {self.deadline_hours:g} h, "
            f"C' = ${self.budget_dollars:g}",
        ]
        for c in self.cases:
            lo, hi = c.selection.cost_span
            lines.append("")
            lines.append(
                f"{c.app_name}({c.n:g}, {c.a:g}): "
                f"{c.feasible_count:,} feasible of "
                f"{c.selection.total_configurations:,}; "
                f"{c.pareto_count} Pareto-optimal spanning "
                f"${lo:.0f}-${hi:.0f} (x{hi / lo:.2f})"
            )
            lines.append(ascii_scatter(
                c.sample_times_hours,
                c.sample_costs,
                overlay_x=np.array([p.time_hours for p in c.selection.pareto]),
                overlay_y=np.array([p.cost_dollars for p in c.selection.pareto]),
                xlabel="time [h]",
                ylabel="cost [$]",
                title=f"{c.app_name}: feasible cloud (.) and Pareto frontier (*)",
            ))
            table = TextTable(
                ["Configuration", "T (h)", "C ($)"],
                aligns="lrr", float_format="{:.2f}",
            )
            for p in c.selection.pareto:
                table.add_row([str(list(p.configuration)), p.time_hours,
                               p.cost_dollars])
            lines.append(table.render())
        return "\n".join(lines)


def run(ctx: ExperimentContext, *, scatter_sample: int = 20_000
        ) -> Figure4Result:
    """Run Algorithm 1 for both panels and sample the feasible scatter."""
    cases = []
    for app_name, n, a in CASES:
        app = ctx.app(app_name)
        evaluation = ctx.celia.evaluation(app)
        demand = ctx.celia.demand_gi(app, n, a)
        selection = select_configurations(
            evaluation, demand, DEADLINE_HOURS, BUDGET_DOLLARS
        )
        # Uniform random sample of feasible points for the scatter plot.
        rng = derive_rng(ctx.seed, "figure4-scatter", app_name)
        times = evaluation.times_hours(demand)
        costs = times * evaluation.unit_cost_per_hour
        feasible = np.flatnonzero(
            (times < DEADLINE_HOURS) & (costs < BUDGET_DOLLARS)
        )
        if feasible.size > scatter_sample:
            feasible = rng.choice(feasible, size=scatter_sample, replace=False)
        cases.append(
            Figure4Case(
                app_name=app_name,
                n=n,
                a=a,
                selection=selection,
                sample_times_hours=times[feasible],
                sample_costs=costs[feasible],
            )
        )
    return Figure4Result(
        cases=tuple(cases),
        deadline_hours=DEADLINE_HOURS,
        budget_dollars=BUDGET_DOLLARS,
    )
