"""Experiment harness: regenerate every table and figure of the paper.

Each module reproduces one artifact of the evaluation section and renders
the same rows/series the paper reports:

========================  ==========================================
module                    paper artifact
========================  ==========================================
:mod:`.figure2`           Fig. 2 — demand vs problem size / accuracy
:mod:`.figure3`           Fig. 3 — normalized performance per cost
:mod:`.table3`            Table III — EC2 resource types
:mod:`.table4`            Table IV — model validation
:mod:`.figure4`           Fig. 4 — configuration space + Pareto front
:mod:`.figure5`           Fig. 5 — cost of scaling problem size
:mod:`.figure6`           Fig. 6 — cost of scaling accuracy
:mod:`.observations`      Observations 1–3 quantified
========================  ==========================================

Run them all with ``python -m repro.experiments.registry`` (or the
installed ``celia-experiments`` script).
"""

from repro.experiments.common import ExperimentContext

__all__ = ["ExperimentContext"]
