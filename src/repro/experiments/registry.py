"""Experiment registry and command-line entry point.

``python -m repro.experiments.registry [name ...]`` runs the requested
experiments (all by default) against one shared context and prints each
rendered report.  ``--list`` shows what is available.
"""

from __future__ import annotations

import argparse
import sys
import time
from collections.abc import Callable

from repro.experiments import (
    ablations,
    adaptive_exp,
    capacity_exp,
    figure2,
    figure3,
    figure4,
    figure5,
    figure6,
    observations,
    schedulers_exp,
    sensitivity_exp,
    spot_exp,
    table3,
    table4,
)
from repro.experiments.common import ExperimentContext
from repro.utils.rng import DEFAULT_ROOT_SEED

__all__ = ["EXPERIMENTS", "run_experiment", "main"]

#: name -> (runner, description).
EXPERIMENTS: dict[str, tuple[Callable, str]] = {
    "table3": (table3.run, "Table III: EC2 resource-type catalog"),
    "figure2": (figure2.run, "Figure 2: resource demand of elastic apps"),
    "figure3": (figure3.run, "Figure 3: normalized performance per cost"),
    "table4": (table4.run, "Table IV: model validation"),
    "figure4": (figure4.run, "Figure 4: configuration space + Pareto front"),
    "figure5": (figure5.run, "Figure 5: cost of scaling problem size"),
    "figure6": (figure6.run, "Figure 6: cost of scaling accuracy"),
    "observations": (observations.run, "Observations 1-3 quantified"),
    "ablations": (ablations.run,
                  "A1/A2 ablations + spot-vs-on-demand study"),
    "sensitivity": (sensitivity_exp.run,
                    "selection regret under capacity-estimate error"),
    "schedulers": (schedulers_exp.run,
                   "engine ablation: work queue vs stealing vs LPT"),
    "adaptive": (adaptive_exp.run,
                 "static vs closed-loop adaptive execution under chaos"),
    "spot": (spot_exp.run,
             "purchasing modes: on-demand vs all-spot vs mixed"),
    "capacity": (capacity_exp.run,
                 "fleet capacity: cheapest shard count meeting a p99 SLO"),
}


def run_experiment(name: str, ctx: ExperimentContext):
    """Run one experiment by name against a context."""
    try:
        runner, _ = EXPERIMENTS[name]
    except KeyError:
        raise SystemExit(
            f"unknown experiment {name!r}; choose from {sorted(EXPERIMENTS)}"
        ) from None
    return runner(ctx)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        prog="celia-experiments",
        description="Reproduce the CELIA paper's tables and figures.",
    )
    parser.add_argument("names", nargs="*", metavar="EXPERIMENT",
                        help="experiments to run (default: all)")
    parser.add_argument("--list", action="store_true", dest="list_only",
                        help="list available experiments and exit")
    parser.add_argument("--seed", type=int, default=DEFAULT_ROOT_SEED,
                        help="root seed for all measurements")
    parser.add_argument("--output-dir", default=None,
                        help="also write each rendered report to "
                             "<dir>/<experiment>.txt")
    args = parser.parse_args(argv)

    if args.list_only:
        for name, (_, description) in EXPERIMENTS.items():
            print(f"{name:14s} {description}")
        return 0

    out_dir = None
    if args.output_dir:
        from pathlib import Path

        out_dir = Path(args.output_dir)
        out_dir.mkdir(parents=True, exist_ok=True)

    names = args.names or list(EXPERIMENTS)
    ctx = ExperimentContext(seed=args.seed)
    for name in names:
        t0 = time.perf_counter()
        result = run_experiment(name, ctx)
        elapsed = time.perf_counter() - t0
        rendered = result.render()
        print("=" * 72)
        print(f"{name} — {EXPERIMENTS[name][1]}  [{elapsed:.1f}s]")
        print("=" * 72)
        print(rendered)
        print()
        if out_dir is not None:
            (out_dir / f"{name}.txt").write_text(rendered + "\n")
            if hasattr(result, "to_series"):
                import json

                (out_dir / f"{name}.json").write_text(
                    json.dumps(result.to_series(), indent=1))
    return 0


if __name__ == "__main__":
    sys.exit(main())
