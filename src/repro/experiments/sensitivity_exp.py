"""Sensitivity experiment: how much optimality does prediction error cost?

Links Table IV to the selection results: CELIA's capacities are off by up
to ~17%, so how far from truly optimal are its selected configurations?
The analysis perturbs the measured galaxy capacities at several error
scales and reports the *true-cost regret* of selections made under the
perturbed beliefs.

Runs on the Table III catalog with quota 2 (19,682 configurations) so the
Monte-Carlo re-evaluations stay fast; regret is scale-free, so the
reduced quota does not change the conclusion.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cloud.catalog import ec2_catalog
from repro.core.sensitivity import SensitivityResult, capacity_sensitivity
from repro.experiments.common import ExperimentContext

__all__ = ["SensitivityExperimentResult", "run"]


@dataclass(frozen=True)
class SensitivityExperimentResult:
    """Wrapper giving the analysis an experiment-style render."""

    result: SensitivityResult

    def render(self) -> str:
        header = (
            "Sensitivity: regret of min-cost selection under capacity "
            "error\n(galaxy demand, Table III catalog at quota 2)\n"
        )
        return header + self.result.render()


def run(ctx: ExperimentContext) -> SensitivityExperimentResult:
    """Perturbation study around the measured galaxy capacities."""
    app = ctx.app("galaxy")
    capacities = ctx.celia.capacities(app)
    catalog = ec2_catalog(max_nodes_per_type=2)
    demand = ctx.celia.demand_gi(app, 65_536, 4_000)
    result = capacity_sensitivity(
        catalog,
        capacities,
        demand_gi=demand,
        deadline_hours=48.0,
        epsilons=(0.02, 0.05, 0.10, 0.17, 0.25),
        trials=25,
        seed=ctx.seed,
    )
    return SensitivityExperimentResult(result=result)
