"""Figure 3 — cloud resource characterization.

Normalized performance (GI/s per dollar-hour) of all nine instance types
for all three applications, plus the two Section IV-C findings: the
category ratios (c4 ≈ 2× r3, m4 ≈ 1.5× r3 per cost) and the
within-category spread that justifies one-type-per-category profiling.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cloud.instance import ResourceCategory
from repro.core.characterization import CharacterizationResult
from repro.experiments.common import ExperimentContext
from repro.utils.tables import TextTable

__all__ = ["Figure3Result", "run"]


@dataclass(frozen=True)
class Figure3Result:
    """Characterizations of the three applications on the full catalog."""

    by_app: dict[str, CharacterizationResult]

    def render(self) -> str:
        """Paper-style normalized-performance table + IV-C summaries."""
        app_names = sorted(self.by_app)
        first = self.by_app[app_names[0]]
        table = TextTable(
            ["Type"] + app_names,
            aligns="l" + "r" * len(app_names),
            title="Figure 3: normalized performance [GI/s per $/h]",
            float_format="{:.2f}",
        )
        for i, entry in enumerate(first.entries):
            row = [entry.type_name]
            for name in app_names:
                row.append(self.by_app[name].entries[i].normalized_performance)
            table.add_row(row)
        lines = [table.render(), ""]
        for name in app_names:
            ch = self.by_app[name]
            ratios = ch.category_ratios(ResourceCategory.MEMORY)
            spread = ch.within_category_spread()
            lines.append(
                f"{name}: category ratios vs r3 = "
                + ", ".join(f"{c.value}×{r:.2f}" for c, r in sorted(
                    ratios.items(), key=lambda kv: kv[0].value))
                + " | within-category spread = "
                + ", ".join(f"{c.value}:{s:.1%}" for c, s in sorted(
                    spread.items(), key=lambda kv: kv[0].value))
            )
        return "\n".join(lines)


def run(ctx: ExperimentContext) -> Figure3Result:
    """Characterize all applications on the full catalog (Section IV-B)."""
    return Figure3Result(
        by_app={name: ctx.celia.characterization(app)
                for name, app in ctx.apps.items()}
    )
