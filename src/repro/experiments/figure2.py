"""Figure 2 — resource demand of elastic applications.

Six panels: demand vs problem size and vs accuracy for x264, galaxy and
sand, each at two fixed values of the other parameter, measured through
the local perf harness exactly as Section IV-A describes, plus the
fitted shape (linear / quadratic / power / log) for each axis.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.common import ExperimentContext
from repro.measurement.baseline import measure_demand_grid
from repro.measurement.fitting import fit_term
from repro.utils.tables import TextTable

__all__ = ["Figure2Panel", "Figure2Result", "run"]

#: (app, axis, swept values, fixed parameter values) per panel, following
#: the paper's panel layout (a)-(f).
PANELS: tuple[tuple[str, str, tuple[float, ...], tuple[float, ...]], ...] = (
    ("x264", "n", (2, 4, 8, 16, 32), (10.0, 20.0)),
    ("galaxy", "n", (8192, 16384, 32768, 65536), (1000.0, 2000.0)),
    ("sand", "n", (1e6, 4e6, 16e6, 64e6), (0.04, 0.08)),
    ("x264", "a", (10, 20, 30, 40, 50), (2.0, 4.0)),
    ("galaxy", "a", (1000, 2000, 4000, 8000), (8192.0, 16384.0)),
    ("sand", "a", (0.04, 0.08, 0.16, 0.32, 0.64, 1.0), (8e6, 16e6)),
)


@dataclass(frozen=True)
class Figure2Panel:
    """One panel: demand series at two fixed values of the other knob."""

    app_name: str
    axis: str  # "n" (problem size) or "a" (accuracy)
    axis_symbol: str
    swept: np.ndarray
    fixed_values: tuple[float, ...]
    series_gi: tuple[np.ndarray, ...]  # one per fixed value
    fitted_kind: str
    fitted_formula: str
    fit_r2: float


@dataclass(frozen=True)
class Figure2Result:
    """All six panels."""

    panels: tuple[Figure2Panel, ...]

    def panel(self, app_name: str, axis: str) -> Figure2Panel:
        """Look up one panel."""
        for p in self.panels:
            if p.app_name == app_name and p.axis == axis:
                return p
        raise KeyError(f"no panel for ({app_name}, {axis})")

    def render(self) -> str:
        """Paper-style series tables, one block per panel."""
        blocks = []
        for p in self.panels:
            fixed_sym = "a" if p.axis == "n" else "n"
            table = TextTable(
                [p.axis_symbol] + [f"{fixed_sym}={v:g}" for v in p.fixed_values],
                aligns="r" * (1 + len(p.fixed_values)),
                title=(f"Figure 2: {p.app_name} demand vs {p.axis_symbol} "
                       f"[GI]  (shape: {p.fitted_kind}, R2={p.fit_r2:.4f})"),
                float_format="{:.4g}",
            )
            for k, x in enumerate(p.swept):
                table.add_row([f"{x:g}"] + [float(s[k]) for s in p.series_gi])
            blocks.append(table.render())
        return "\n\n".join(blocks)


def run(ctx: ExperimentContext) -> Figure2Result:
    """Measure and fit all six panels."""
    panels = []
    for app_name, axis, swept_vals, fixed_vals in PANELS:
        app = ctx.app(app_name)
        swept = np.asarray(swept_vals, dtype=float)
        series = []
        for fixed in fixed_vals:
            if axis == "n":
                samples = measure_demand_grid(
                    app, ctx.perf, sizes=swept, accuracies=np.array([fixed])
                )
                series.append(samples.demand_gi[:, 0])
            else:
                samples = measure_demand_grid(
                    app, ctx.perf, sizes=np.array([fixed]), accuracies=swept
                )
                series.append(samples.demand_gi[0, :])
        fit = fit_term(swept, series[0])
        symbol = app.size_symbol if axis == "n" else app.accuracy_symbol
        panels.append(
            Figure2Panel(
                app_name=app_name,
                axis=axis,
                axis_symbol=symbol,
                swept=swept,
                fixed_values=tuple(fixed_vals),
                series_gi=tuple(series),
                fitted_kind=fit.kind,
                fitted_formula=fit.term.describe(),
                fit_r2=fit.r2,
            )
        )
    return Figure2Result(panels=tuple(panels))
