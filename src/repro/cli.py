"""``celia`` — command-line interface to the CELIA pipeline.

Subcommands mirror how a practitioner would use the system:

* ``characterize`` — measure an application's demand model and per-type
  capacities, optionally saving the profile as JSON for reuse;
* ``select`` — run Algorithm 1 and print the Pareto frontier;
* ``predict`` — time/cost of one run on one explicit configuration;
* ``plan`` — best affordable accuracy (or problem size) under a deadline
  and budget;
* ``validate`` — compare a prediction against a simulated execution;
* ``execute`` — run a plan closed-loop under a chaos scenario, optionally
  buying mixed on-demand+spot capacity (``--market``);
* ``market`` — inspect the seeded spot market's per-type price streams
  and the available bid policies;
* ``sweep`` — run (or resume) the fault-tolerant full-space sweep and
  persist its artefacts; interrupted sweeps leave checkpoint shards that
  ``sweep --resume`` picks up instead of starting over;
* ``cache`` — inspect or clear the persistent space-evaluation cache;
* ``serve`` — run the batched JSON-over-HTTP planning service;
* ``fleet`` — run the sharded multi-process planner fleet (an asyncio
  keep-alive front end consistent-hashing warm keys over N shard
  workers — see ``docs/ops.md``);
* ``loadgen`` — generate seeded multi-tenant request traces, replay
  them open-loop against a running service, and render replay reports
  (see ``docs/loadgen.md``);
* ``trace`` — summarize a ``--trace`` JSONL file or export it to the
  Chrome ``trace_event`` format (``chrome://tracing`` / Perfetto);
* ``profile`` — render the per-phase ``CELIA_PROFILE=1`` cProfile
  tables recorded into a trace.

``select``, ``predict`` and ``plan`` accept ``--json`` for
machine-readable output using the same serializers as the service, so
scripted callers see one schema whether they shell out or talk HTTP.
With ``--json``, stdout carries exactly one JSON document; every
diagnostic goes to stderr.

The global ``--trace PATH`` flag records every phase of the invocation
(including sweep workers in other processes) as spans into a JSONL
file — see ``docs/observability.md``.

All commands operate on the paper's Table III catalog (quota adjustable
with ``--quota``) and the three built-in applications.  Full-space
sweeps run in parallel for large spaces (``--workers``) and persist
their results under ``--cache-dir`` (default ``$CELIA_CACHE_DIR`` or
``~/.cache/celia``; ``--no-cache`` disables persistence).
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.apps import application_by_name
from repro.cloud.catalog import ec2_catalog
from repro.core.celia import Celia
from repro.core.planner import max_accuracy_plan, max_problem_size_plan
from repro.engine.runner import run_on_configuration
from repro.errors import InfeasibleError, ReproError
from repro.utils.mathutil import percent_error
from repro.utils.tables import TextTable

__all__ = ["build_parser", "main"]

APP_CHOICES = ("x264", "galaxy", "sand")


def package_version() -> str:
    """The installed package version, falling back to the source tree's."""
    try:
        from importlib.metadata import PackageNotFoundError, version

        return version("repro")
    except PackageNotFoundError:
        from repro import __version__

        return __version__


def _parse_workers(raw: str) -> "int | str":
    if raw == "auto":
        return "auto"
    try:
        return int(raw)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"--workers must be an integer or 'auto', got {raw!r}"
        ) from None


def build_parser() -> argparse.ArgumentParser:
    """The full argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="celia",
        description="Cost-time optimal cloud configurations for elastic "
                    "applications (CELIA, ICPP 2017).",
    )
    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {package_version()}")
    parser.add_argument("--seed", type=int, default=0,
                        help="measurement seed (default 0)")
    parser.add_argument("--quota", type=int, default=5,
                        help="max nodes per instance type (default 5)")
    parser.add_argument("--workers", type=_parse_workers, default="auto",
                        help="space-sweep processes: an integer or 'auto' "
                             "(default: auto)")
    parser.add_argument("--cache-dir",
                        help="evaluation cache directory (default: "
                             "$CELIA_CACHE_DIR or ~/.cache/celia)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the persistent evaluation cache")
    parser.add_argument("--trace", metavar="PATH",
                        help="record a JSONL trace of this invocation "
                             "(inspect with `celia trace`)")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("characterize",
                       help="measure demand model and capacities")
    p.add_argument("app", choices=APP_CHOICES)
    p.add_argument("--method", choices=("full", "by-category"),
                   default="full")
    p.add_argument("--output", help="write the profile JSON here")

    p = sub.add_parser("select", help="Pareto-optimal configurations")
    p.add_argument("app", choices=APP_CHOICES)
    p.add_argument("n", type=float, help="problem size")
    p.add_argument("a", type=float, help="accuracy")
    p.add_argument("--deadline", type=float, required=True,
                   help="deadline T' in hours")
    p.add_argument("--budget", type=float, required=True,
                   help="budget C' in dollars")
    p.add_argument("--top", type=int, default=0,
                   help="print only the first K frontier points")
    p.add_argument("--json", action="store_true",
                   help="machine-readable output (service schema)")

    p = sub.add_parser("predict", help="time/cost on one configuration")
    p.add_argument("app", choices=APP_CHOICES)
    p.add_argument("n", type=float)
    p.add_argument("a", type=float)
    p.add_argument("--config", required=True,
                   help="comma-separated node counts, catalog order")
    p.add_argument("--json", action="store_true",
                   help="machine-readable output (service schema)")

    p = sub.add_parser("plan", help="best affordable accuracy or size")
    p.add_argument("app", choices=APP_CHOICES)
    p.add_argument("--deadline", type=float, required=True)
    p.add_argument("--budget", type=float, required=True)
    group = p.add_mutually_exclusive_group(required=True)
    group.add_argument("--fix-size", type=float,
                       help="fixed n; plan max accuracy")
    group.add_argument("--fix-accuracy", type=float,
                       help="fixed a; plan max problem size")
    p.add_argument("--range", required=True,
                   help="lo,hi search range for the planned knob")
    p.add_argument("--integral", action="store_true",
                   help="knob takes integer values")
    p.add_argument("--json", action="store_true",
                   help="machine-readable output (service schema)")

    p = sub.add_parser("validate",
                       help="prediction vs simulated execution")
    p.add_argument("app", choices=APP_CHOICES)
    p.add_argument("n", type=float)
    p.add_argument("a", type=float)
    p.add_argument("--config", required=True)

    p = sub.add_parser("execute",
                       help="closed-loop execution of a plan under chaos")
    p.add_argument("app", nargs="?", choices=APP_CHOICES)
    p.add_argument("n", nargs="?", type=float)
    p.add_argument("a", nargs="?", type=float)
    p.add_argument("--deadline", type=float,
                   help="deadline T' in hours")
    p.add_argument("--budget", type=float,
                   help="budget C' in dollars")
    mode = p.add_mutually_exclusive_group()
    mode.add_argument("--replan", dest="replan", action="store_true",
                      default=True,
                      help="adaptive closed-loop control (default)")
    mode.add_argument("--static", dest="replan", action="store_false",
                      help="provision once and never re-plan (baseline)")
    p.add_argument("--chaos", default="calm", metavar="SCENARIO",
                   help="chaos scenario to inject (default: calm; "
                        "see `celia execute --list-chaos`)")
    p.add_argument("--list-chaos", action="store_true",
                   help="print the scenario catalog and exit")
    p.add_argument("--config", default=None,
                   help="pin the initial configuration "
                        "(comma-separated node counts, catalog order)")
    p.add_argument("--max-replans", type=int, default=None,
                   help="re-planning budget before giving up")
    p.add_argument("--market", action="store_true",
                   help="buy mixed on-demand+spot capacity against the "
                        "scenario's spot market")
    p.add_argument("--spot-fraction", type=float, default=None,
                   metavar="FRACTION",
                   help="fraction of each type bought on the spot market "
                        "(implies --market; default 0.6)")
    p.add_argument("--bid-policy", default=None, metavar="NAME",
                   help="spot bid policy (implies --market; see "
                        "`celia market policies`)")
    p.add_argument("--json", action="store_true",
                   help="machine-readable report with the full timeline")

    p = sub.add_parser("market",
                       help="inspect the seeded spot market")
    msub = p.add_subparsers(dest="market_command", required=True)
    m = msub.add_parser("prices",
                        help="per-type spot price streams vs on-demand")
    m.add_argument("--chaos", default="calm", metavar="SCENARIO",
                   help="scenario whose market surges to apply "
                        "(default: calm)")
    m.add_argument("--json", action="store_true",
                   help="machine-readable per-type summaries")
    m = msub.add_parser("policies", help="available bid policies")
    m.add_argument("--json", action="store_true",
                   help="machine-readable policy list")

    p = sub.add_parser("spot",
                       help="spot-vs-on-demand Monte-Carlo study")
    p.add_argument("app", choices=APP_CHOICES)
    p.add_argument("n", type=float)
    p.add_argument("a", type=float)
    p.add_argument("--deadline", type=float, required=True)
    p.add_argument("--bid", type=float, default=0.5,
                   help="bid as a fraction of the on-demand price")
    p.add_argument("--trials", type=int, default=30)

    p = sub.add_parser("sweep",
                       help="run or resume the checkpointed full-space sweep")
    p.add_argument("app", choices=APP_CHOICES)
    p.add_argument("--resume", action="store_true",
                   help="pick up checkpoint shards from an interrupted "
                        "sweep instead of starting fresh")
    p.add_argument("--chunk-size", type=int, default=None,
                   help="configurations decoded per chunk (advanced; "
                        "resume requires the interrupted sweep's value)")
    p.add_argument("--json", action="store_true",
                   help="machine-readable sweep statistics")

    p = sub.add_parser("snapshot",
                       help="build or inspect mmap'd frontier-index "
                            "snapshots")
    ssub = p.add_subparsers(dest="snapshot_command", required=True)
    s = ssub.add_parser("build",
                        help="prewarm: evaluate the space (or load it "
                             "from cache) and persist its frontier index "
                             "for millisecond warm starts")
    s.add_argument("app", choices=APP_CHOICES)
    s.add_argument("--block-size", type=int, default=None,
                   help="feasibility-structure rows per block "
                        "(default 4096; advanced)")
    s.add_argument("--json", action="store_true",
                   help="machine-readable result")
    s = ssub.add_parser("info",
                        help="list index snapshots on disk")
    s.add_argument("--json", action="store_true",
                   help="machine-readable listing")

    p = sub.add_parser("cache",
                       help="inspect or clear the evaluation cache")
    p.add_argument("action", choices=("info", "clear"))

    p = sub.add_parser("trace",
                       help="inspect or convert a --trace JSONL file")
    tsub = p.add_subparsers(dest="trace_command", required=True)
    t = tsub.add_parser("export",
                        help="convert to Chrome trace_event JSON "
                             "(chrome://tracing, ui.perfetto.dev)")
    t.add_argument("input", help="JSONL trace written by --trace")
    t.add_argument("--output",
                   help="output path (default: <input>.chrome.json)")
    t = tsub.add_parser("summary",
                        help="per-span aggregates and wall-clock coverage")
    t.add_argument("input", help="JSONL trace written by --trace")
    t.add_argument("--json", action="store_true",
                   help="machine-readable summary")

    p = sub.add_parser("profile",
                       help="render CELIA_PROFILE tables from a trace")
    p.add_argument("input", help="JSONL trace holding profile records "
                                 "(run with CELIA_PROFILE=1 --trace PATH)")
    p.add_argument("--json", action="store_true",
                   help="machine-readable tables")

    p = sub.add_parser("serve",
                       help="run the batched JSON-over-HTTP planning service")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8337)
    p.add_argument("--warm", action="append", choices=APP_CHOICES,
                   default=None, metavar="APP",
                   help="pre-warm an application's state before "
                        "accepting requests (repeatable)")
    p.add_argument("--max-queue", type=int, default=64,
                   help="admission-control queue depth (default 64)")
    p.add_argument("--batch-window-ms", type=float, default=2.0,
                   help="micro-batch coalescing window (default 2 ms)")
    p.add_argument("--max-batch", type=int, default=32,
                   help="max requests per vectorized batch (default 32)")
    p.add_argument("--timeout", type=float, default=30.0,
                   help="default per-request deadline in seconds")

    p = sub.add_parser("fleet",
                       help="run the sharded multi-process planner fleet")
    fsub = p.add_subparsers(dest="fleet_command", required=True)
    f = fsub.add_parser("serve",
                        help="asyncio front end routing over N shard "
                             "worker processes")
    f.add_argument("--workers", dest="fleet_workers", type=int, default=2,
                   help="shard worker processes (default 2)")
    f.add_argument("--host", default="127.0.0.1")
    f.add_argument("--port", type=int, default=8337)
    f.add_argument("--warm", action="append", choices=APP_CHOICES,
                   default=None, metavar="APP",
                   help="pre-warm an application's state on its owning "
                        "shard before accepting requests (repeatable)")
    f.add_argument("--max-warm", type=int, default=None,
                   help="LRU cap on warm signatures per worker "
                        "(default: unbounded)")
    f.add_argument("--max-queue", type=int, default=64,
                   help="admission-control queue depth per worker "
                        "(default 64)")
    f.add_argument("--batch-window-ms", type=float, default=2.0,
                   help="micro-batch coalescing window (default 2 ms)")
    f.add_argument("--max-batch", type=int, default=32,
                   help="max requests per vectorized batch (default 32)")
    f.add_argument("--timeout", type=float, default=30.0,
                   help="default per-request deadline in seconds")
    f.add_argument("--call-timeout", type=float, default=None,
                   help="front-end deadline per routed worker call; a "
                        "hung worker trips a reroute instead of stalling "
                        "its shard (default: unbounded)")
    f.add_argument("--max-inflight", type=int, default=None,
                   help="per-worker in-flight cap; excess requests are "
                        "shed with a typed 503 + Retry-After "
                        "(default: unbounded)")
    f.add_argument("--max-total-inflight", type=int, default=None,
                   help="fleet-wide in-flight cap; excess requests get "
                        "a typed 429 (default: unbounded)")
    f.add_argument("--retry-after", type=float, default=1.0,
                   help="Retry-After hint in seconds on shed responses "
                        "(default 1)")
    f.add_argument("--drain-timeout", type=float, default=10.0,
                   help="seconds to wait for in-flight requests on "
                        "SIGTERM before force-closing connections")
    f.add_argument("--no-health-probes", action="store_true",
                   help="disable heartbeat probing (hung-worker "
                        "ejection and re-admission)")
    f.add_argument("--probe-interval", type=float, default=0.5,
                   help="seconds between heartbeat probes per worker "
                        "(default 0.5)")
    f.add_argument("--probe-timeout", type=float, default=2.0,
                   help="seconds before an unanswered probe counts as "
                        "a miss (default 2)")
    f.add_argument("--probe-max-missed", type=int, default=2,
                   help="consecutive probe misses before a worker is "
                        "ejected from the ring (default 2)")
    f.add_argument("--chaos", default=None, metavar="SCENARIO",
                   help="inject a named fleet chaos scenario once the "
                        "fleet is ready (see --list-chaos)")
    f.add_argument("--chaos-seed", type=int, default=0,
                   help="seed for the chaos plan's randomness "
                        "(frame-drop pattern)")
    f.add_argument("--list-chaos", action="store_true",
                   help="list the named fleet chaos scenarios and exit")

    p = sub.add_parser("loadgen",
                       help="seeded multi-tenant load generation, open-loop "
                            "replay and replay reports")
    lsub = p.add_subparsers(dest="loadgen_command", required=True)
    lg = lsub.add_parser("generate",
                         help="emit a deterministic JSONL request trace")
    lg.add_argument("--tenants", type=int, default=6,
                    help="number of tenants (Zipf-weighted, default 6)")
    lg.add_argument("--duration", type=float, default=30.0,
                    help="trace length in seconds (default 30)")
    lg.add_argument("--rps", type=float, default=20.0,
                    help="target aggregate request rate (default 20)")
    lg.add_argument("--apps", default="galaxy,x264,sand",
                    help="comma-separated app mix cycled across tenants")
    lg.add_argument("--planner-seeds", default="0",
                    help="comma-separated measurement seeds cycled across "
                         "tenants (each (app, quota, seed) is one warm "
                         "state)")
    lg.add_argument("--trace-quota", type=int, default=2,
                    help="catalog quota stamped on every request "
                         "(default 2; match the serving fleet's --quota)")
    lg.add_argument("--diurnal-amplitude", type=float, default=0.4,
                    help="relative diurnal swing in [0, 1) (default 0.4)")
    lg.add_argument("--diurnal-period", type=float, default=60.0,
                    help="synthetic day length in seconds (default 60)")
    lg.add_argument("--bursts-per-minute", type=float, default=1.0,
                    help="expected burst episodes per tenant-minute")
    lg.add_argument("--burst-multiplier", type=float, default=4.0,
                    help="arrival-rate multiplier inside bursts")
    lg.add_argument("--think-alpha", type=float, default=1.6,
                    help="Pareto tail exponent for think times")
    lg.add_argument("--name", default="loadgen",
                    help="trace name recorded in the header")
    lg.add_argument("--output", metavar="PATH",
                    help="write the JSONL trace here ('-' for stdout; "
                         "default: store in the evaluation cache and "
                         "print the key)")
    lg.add_argument("--json", action="store_true",
                    help="print the trace summary as JSON")

    lr = lsub.add_parser("replay",
                         help="fire a trace open-loop at a running "
                              "`celia serve` or `celia fleet serve`")
    # dest avoids the global --trace observability flag (same namespace).
    lr.add_argument("trace_input", metavar="trace",
                    help="JSONL trace path or an evaluation-cache trace key")
    lr.add_argument("--host", default="127.0.0.1")
    lr.add_argument("--port", type=int, default=8337)
    lr.add_argument("--time-scale", type=float, default=1.0,
                    help="replay speed-up: 2.0 compresses trace time 2x "
                         "(default 1.0)")
    lr.add_argument("--timeout", type=float, default=30.0,
                    help="per-request response timeout in seconds")
    lr.add_argument("--no-prewarm", action="store_true",
                    help="skip the untimed warm-state priming pass "
                         "(first contact then pays the state build)")
    lr.add_argument("--output", metavar="PATH",
                    help="write the replay report JSON here")
    lr.add_argument("--json", action="store_true",
                    help="print the replay report as JSON")

    lp = lsub.add_parser("report",
                         help="render a saved replay report")
    lp.add_argument("report", help="replay report JSON path")
    lp.add_argument("--json", action="store_true",
                    help="print the report as JSON")
    return parser


def _parse_config(raw: str, width: int) -> tuple[int, ...]:
    try:
        values = tuple(int(v) for v in raw.split(","))
    except ValueError:
        raise SystemExit(f"--config must be comma-separated integers, "
                         f"got {raw!r}") from None
    if len(values) != width:
        raise SystemExit(f"--config needs {width} entries, got {len(values)}")
    return values


def _parse_range(raw: str) -> tuple[float, float]:
    try:
        lo, hi = (float(v) for v in raw.split(","))
    except ValueError:
        raise SystemExit(f"--range must be 'lo,hi', got {raw!r}") from None
    return lo, hi


def _cmd_characterize(celia: Celia, args) -> int:
    app = application_by_name(args.app, seed=celia.seed)
    celia.characterization_method = args.method
    fitted = celia.demand_model(app)
    print(fitted.describe())
    print()
    characterization = celia.characterization(app)
    table = TextTable(["Type", "W [GI/s]", "GI/s per $/h"], aligns="lrr",
                      float_format="{:.2f}")
    for entry in characterization.entries:
        table.add_row([entry.type_name, entry.rate_gips,
                       entry.normalized_performance])
    print(table.render())
    if args.output:
        celia.profile(app).save(args.output)
        print(f"\nprofile written to {args.output}")
    return 0


def _cmd_select(celia: Celia, args) -> int:
    app = application_by_name(args.app, seed=celia.seed)
    result = celia.select(app, args.n, args.a, args.deadline, args.budget)
    if args.json:
        from repro.service.serialize import selection_to_dict

        print(json.dumps(selection_to_dict(result, top=args.top), indent=2))
        return 0 if result.pareto else 1
    print(f"{result.feasible_count:,} of {result.total_configurations:,} "
          f"configurations feasible; {result.pareto_count} Pareto-optimal")
    if not result.pareto:
        print("no feasible configuration — relax the deadline or budget")
        return 1
    points = result.pareto[:args.top] if args.top else result.pareto
    table = TextTable(["Configuration", "T (h)", "C ($)"], aligns="lrr",
                      float_format="{:.2f}")
    for p in points:
        table.add_row([str(list(p.configuration)), p.time_hours,
                       p.cost_dollars])
    print(table.render())
    lo, hi = result.cost_span
    print(f"frontier cost span ${lo:.2f}-${hi:.2f} "
          f"(cheapest saves {result.max_saving_fraction:.0%})")
    return 0


def _cmd_predict(celia: Celia, args) -> int:
    app = application_by_name(args.app, seed=celia.seed)
    config = _parse_config(args.config, len(celia.catalog))
    pred = celia.predict(app, args.n, args.a, config)
    if args.json:
        from repro.service.serialize import prediction_to_dict

        print(json.dumps(prediction_to_dict(pred), indent=2))
        return 0
    print(f"demand   : {pred.demand_gi:,.0f} GI")
    print(f"capacity : {pred.capacity_gips:.2f} GI/s")
    print(f"time     : {pred.time_hours:.2f} h")
    print(f"cost     : ${pred.cost_dollars:.2f} "
          f"(${pred.unit_cost_per_hour:.3f}/h)")
    return 0


def _cmd_plan(celia: Celia, args) -> int:
    app = application_by_name(args.app, seed=celia.seed)
    demand = celia.demand_model(app)
    index = celia.min_cost_index(app)
    knob_range = _parse_range(args.range)
    if args.fix_size is not None:
        plan = max_accuracy_plan(demand, index, args.fix_size, knob_range,
                                 args.deadline, args.budget,
                                 integral=args.integral)
    else:
        plan = max_problem_size_plan(demand, index, args.fix_accuracy,
                                     knob_range, args.deadline, args.budget,
                                     integral=args.integral)
    if args.json:
        from repro.service.serialize import plan_to_dict

        print(json.dumps(plan_to_dict(plan), indent=2))
        return 0
    print(plan.describe())
    return 0


def _cmd_validate(celia: Celia, args) -> int:
    app = application_by_name(args.app, seed=celia.seed)
    config = _parse_config(args.config, len(celia.catalog))
    pred = celia.predict(app, args.n, args.a, config)
    report = run_on_configuration(app, args.n, args.a, config, celia.catalog,
                                  config=celia.engine_config,
                                  seed=celia.seed)
    t_err = percent_error(pred.time_hours, report.time_hours)
    c_err = percent_error(pred.cost_dollars, report.cost_dollars)
    print(f"predicted: {pred.time_hours:.2f} h / ${pred.cost_dollars:.2f}")
    print(f"actual   : {report.time_hours:.2f} h / "
          f"${report.cost_dollars:.2f} (simulated, billed hourly)")
    print(f"error    : time {t_err:.1f}%, cost {c_err:.1f}%")
    return 0


def _cmd_execute(celia: Celia, args) -> int:
    from repro.runtime import (
        SCENARIOS,
        AdaptiveController,
        RuntimeConfig,
        chaos_scenario,
    )

    if args.list_chaos:
        table = TextTable(
            ["Scenario", "Capacity", "Throttle", "Crash/h", "Stragglers"],
            aligns="lrrrr", float_format="{:.2f}")
        for scenario in SCENARIOS.values():
            table.add_row([
                scenario.name,
                scenario.insufficient_capacity_rate,
                scenario.throttle_rate,
                scenario.crash_rate_per_hour,
                f"{scenario.straggler_fraction:.0%}@"
                f"{scenario.straggler_slowdown:g}x",
            ])
        print(table.render())
        return 0
    if args.app is None or args.n is None or args.a is None:
        raise SystemExit("execute needs app, n and a (or --list-chaos)")
    if args.deadline is None or args.budget is None:
        raise SystemExit("execute needs --deadline and --budget")

    app = application_by_name(args.app, seed=celia.seed)
    overrides = {"replan": args.replan}
    if args.max_replans is not None:
        overrides["max_replans"] = args.max_replans
    market_policy = None
    if args.market or args.spot_fraction is not None or args.bid_policy:
        from repro.market import MarketPolicy

        policy_overrides = {}
        if args.spot_fraction is not None:
            policy_overrides["spot_fraction"] = args.spot_fraction
        if args.bid_policy:
            policy_overrides["bid_policy"] = args.bid_policy
        market_policy = MarketPolicy(**policy_overrides)
    controller = AdaptiveController(
        celia, app, scenario=chaos_scenario(args.chaos),
        config=RuntimeConfig(**overrides), seed=celia.seed,
        market_policy=market_policy)
    configuration = (_parse_config(args.config, len(celia.catalog))
                     if args.config else None)
    report = controller.execute(args.n, args.a, args.deadline, args.budget,
                                configuration=configuration)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        mode = "adaptive" if report.adaptive else "static"
        print(f"{report.app_name}({args.n:g}, {args.a:g}) under "
              f"'{report.scenario}' [{mode}]: {report.verdict}")
        print(f"  elapsed : {report.elapsed_hours:.2f} h "
              f"(deadline {report.deadline_hours:g} h, "
              f"{'met' if report.deadline_met else 'MISSED'})")
        print(f"  cost    : ${report.cost_dollars:.2f} "
              f"(budget ${report.budget_dollars:g}, "
              f"{'met' if report.budget_met else 'EXCEEDED'})")
        print(f"  work    : {report.work_done_gi:,.0f} GI done, "
              f"{report.remaining_gi:,.0f} GI remaining")
        if report.final_accuracy != report.initial_accuracy:
            print(f"  accuracy: degraded {report.initial_accuracy:g} -> "
                  f"{report.final_accuracy:g}")
        print(f"  events  : {report.provision_attempts} provision attempts, "
              f"{report.crashes} crashes, {report.replans} replans, "
              f"{report.migrations} migrations, "
              f"{report.degradations} degradations")
        if report.market:
            fallback = (", fell back to on-demand"
                        if report.ondemand_fallback else "")
            print(f"  market  : ${report.spot_cost_dollars:.2f} of the bill "
                  f"at spot prices, {report.spot_interruptions} "
                  f"spot interruption(s){fallback}")
    return 0 if report.verdict in ("met", "degraded") else 1


def _cmd_market(celia: Celia, args) -> int:
    from repro.market import SpotMarket, bid_policy, bid_policy_names
    from repro.runtime import chaos_scenario
    from repro.utils.rng import spawn_seed

    if args.market_command == "policies":
        rows = [(name, bid_policy(name).describe())
                for name in bid_policy_names()]
        if args.json:
            print(json.dumps([{"name": n, "description": d}
                              for n, d in rows], indent=2))
            return 0
        table = TextTable(["Policy", "Description"], aligns="ll")
        for name, description in rows:
            table.add_row([name, description])
        print(table.render())
        return 0

    scenario = chaos_scenario(args.chaos)
    market = SpotMarket(celia.catalog, scenario.market_config(),
                        seed=spawn_seed(celia.seed, "spot-market"))
    rows = [market.describe(itype.name) for itype in celia.catalog]
    if args.json:
        print(json.dumps({"scenario": scenario.name, "seed": celia.seed,
                          "horizon_hours": market.config.horizon_hours,
                          "types": rows}, indent=2))
        return 0
    print(f"spot market under '{scenario.name}' (seed {celia.seed}, "
          f"{market.config.horizon_hours:g} h horizon)")
    table = TextTable(
        ["Type", "On-demand $/h", "Mean $/h", "Min", "Max", "h > on-demand"],
        aligns="lrrrrr", float_format="{:.4f}")
    for row in rows:
        table.add_row([row["type"], row["on_demand_price"],
                       row["mean_price"], row["min_price"], row["max_price"],
                       f"{row['hours_above_on_demand']:.1f}"])
    print(table.render())
    return 0


def _cmd_spot(celia: Celia, args) -> int:
    from repro.spot import compare_spot_vs_ondemand

    app = application_by_name(args.app, seed=celia.seed)
    demand = celia.demand_gi(app, args.n, args.a)
    ondemand = celia.min_cost_index(app).query(demand, args.deadline)
    study = compare_spot_vs_ondemand(
        ondemand, demand, celia.catalog, args.deadline,
        bid_fraction=args.bid, trials=args.trials, seed=celia.seed)
    print(study.render())
    return 0


def _cmd_sweep(celia: Celia, args) -> int:
    from repro.core.configspace import DEFAULT_CHUNK, SpaceEvaluation
    from repro.parallel import evaluate_resilient, resolve_workers

    cache = celia.evaluation_cache
    if cache is None:
        print("sweep persists artefacts and needs the cache; "
              "drop --no-cache", file=sys.stderr)
        return 2
    app = application_by_name(args.app, seed=celia.seed)
    capacities = celia.capacities(app)
    if cache.load(celia.space, capacities) is not None:
        from repro.cache import evaluation_cache_key

        key = evaluation_cache_key(celia.catalog, capacities)
        if args.json:
            # stdout must stay one parseable JSON document; the human
            # notice would otherwise corrupt scripted callers.
            print(json.dumps({"app": args.app, "key": key,
                              "space_size": celia.space.size,
                              "cached": True}, indent=2))
            return 0
        print(f"evaluation already cached (key {key[:12]}, "
              f"{celia.space.size:,} configurations); nothing to sweep")
        return 0
    chunk_size = args.chunk_size or DEFAULT_CHUNK
    checkpoint = cache.sweep_checkpoint(celia.space, capacities,
                                        chunk_size=chunk_size)
    if not args.resume:
        checkpoint.discard()
    workers = max(1, resolve_workers(celia.workers, celia.space.size))
    try:
        capacity, unit_cost, stats = evaluate_resilient(
            celia.space, capacities, workers=workers, chunk_size=chunk_size,
            checkpoint=checkpoint)
    except KeyboardInterrupt:  # pragma: no cover - interactive interrupt
        print(f"\ninterrupted; completed spans are checkpointed under "
              f"{checkpoint.directory}\nresume with: "
              f"celia sweep {args.app} --resume", file=sys.stderr)
        return 130
    evaluation = SpaceEvaluation(space=celia.space, capacity_gips=capacity,
                                 unit_cost_per_hour=unit_cost)
    key = cache.store(evaluation, capacities)
    checkpoint.discard()
    if args.json:
        print(json.dumps({"app": args.app, "key": key,
                          "space_size": celia.space.size, "cached": False,
                          "workers": workers, **stats.to_dict()}, indent=2))
        return 0
    print(f"swept {celia.space.size:,} configurations with {workers} "
          f"worker(s) in {stats.wall_s:.2f}s")
    print(f"  spans: {stats.spans_resumed} resumed from checkpoint, "
          f"{stats.spans_evaluated} evaluated"
          + (f", {stats.retries} retried" if stats.retries else "")
          + (f", {stats.workers_lost} worker(s) lost"
             if stats.workers_lost else ""))
    print(f"  cached under key {key[:12]} in {cache.cache_dir}")
    return 0


def _cmd_snapshot(celia: Celia, args) -> int:
    import time

    cache = celia.evaluation_cache
    if cache is None:  # snapshots live in the cache directory
        print("snapshots live in the persistent cache; drop --no-cache",
              file=sys.stderr)
        return 2
    if args.snapshot_command == "info":
        snapshots = cache.index_snapshots()
        if args.json:
            print(json.dumps([{
                "key": s.key, "block_size": s.block_size,
                "space_size": s.space_size, "frontier_size": s.frontier_size,
                "bytes": s.bytes_on_disk} for s in snapshots], indent=2))
            return 0
        print(f"cache directory: {cache.cache_dir}")
        if not snapshots:
            print("no index snapshots (build one with `celia snapshot "
                  "build <app>`)")
            return 0
        table = TextTable(["Key", "Block", "Space size", "Frontier",
                           "Bytes"], aligns="lrrrr")
        for s in snapshots:
            table.add_row([s.key[:12], str(s.block_size),
                           f"{s.space_size:,}", f"{s.frontier_size:,}",
                           f"{s.bytes_on_disk:,}"])
        print(table.render())
        return 0

    from repro.cache import evaluation_cache_key
    from repro.core.selection import DEFAULT_FEASIBILITY_BLOCK, FrontierIndex

    app = application_by_name(args.app, seed=celia.seed)
    capacities = celia.capacities(app)
    block_size = args.block_size or DEFAULT_FEASIBILITY_BLOCK
    t0 = time.perf_counter()
    evaluation = celia.evaluation(app)
    evaluate_s = time.perf_counter() - t0
    key = evaluation_cache_key(celia.catalog, capacities)
    t0 = time.perf_counter()
    index = cache.load_index(evaluation, capacities, block_size=block_size)
    loaded = index is not None
    if not loaded:
        index = FrontierIndex(evaluation, block_size=block_size,
                              candidates=evaluation.frontier_candidates())
        cache.store_index(index, capacities)
    snapshot_s = time.perf_counter() - t0
    if args.json:
        print(json.dumps({
            "app": args.app, "key": key, "block_size": block_size,
            "space_size": evaluation.space.size,
            "frontier_size": int(index.frontier_rows.size),
            "loaded": loaded, "evaluate_s": evaluate_s,
            "snapshot_s": snapshot_s}, indent=2))
        return 0
    verb = "loaded existing snapshot" if loaded else "built and persisted"
    print(f"{verb} for {args.app} (key {key[:12]}, block {block_size}) "
          f"in {snapshot_s:.3f}s")
    print(f"  space   : {evaluation.space.size:,} configurations "
          f"(evaluated/loaded in {evaluate_s:.3f}s)")
    print(f"  frontier: {index.frontier_rows.size:,} configurations")
    print(f"  cache   : {cache.cache_dir}")
    return 0


def _cmd_cache(celia: Celia, args) -> int:
    cache = celia.evaluation_cache
    if cache is None:  # --no-cache with the cache command is a user error
        print("persistent cache is disabled (--no-cache)", file=sys.stderr)
        return 2
    if args.action == "clear":
        removed = cache.clear()
        print(f"removed {removed} cached evaluation(s) and any index "
              f"snapshots from {cache.cache_dir}")
        return 0
    entries = cache.entries()
    checkpoints = cache.sweep_checkpoints()
    snapshots = cache.index_snapshots()
    traces = cache.trace_entries()
    print(f"cache directory: {cache.cache_dir}")
    if not entries and not checkpoints and not snapshots and not traces:
        print("no cached evaluations")
        return 0
    if entries:
        table = TextTable(["Key", "Space size", "Types", "Bytes"],
                          aligns="lrrr")
        for entry in entries:
            table.add_row([entry.key[:12], f"{entry.space_size:,}",
                           str(len(entry.type_names)),
                           f"{entry.bytes_on_disk:,}"])
        print(table.render())
    print(f"total: {len(entries)} entries, {cache.total_bytes():,} bytes")
    if snapshots:
        print("index snapshots (mmap'd warm starts):")
        for s in snapshots:
            print(f"  {s.key[:12]}: block {s.block_size}, "
                  f"{s.frontier_size:,} frontier row(s), "
                  f"{s.bytes_on_disk:,} bytes")
    if checkpoints:
        print("interrupted sweeps (resume with `celia sweep --resume`):")
        for key, n_shards, size in checkpoints:
            print(f"  {key[:12]}: {n_shards} checkpointed span(s), "
                  f"{size:,} bytes")
    if traces:
        print("loadgen traces (replay with `celia loadgen replay KEY`):")
        for t in traces:
            print(f"  {t.key[:12]}: {t.name} seed {t.seed}, "
                  f"{t.requests:,} request(s) over {t.duration_s:g}s, "
                  f"{t.bytes_on_disk:,} bytes")
    return 0


def _cmd_trace(_celia: "Celia | None", args) -> int:
    from repro.obs import export_chrome_trace, read_trace, trace_summary

    if args.trace_command == "export":
        output = args.output or f"{args.input}.chrome.json"
        events = export_chrome_trace(args.input, output)
        print(f"wrote {events} trace event(s) to {output}")
        print("open chrome://tracing or https://ui.perfetto.dev "
              "and load the file", file=sys.stderr)
        return 0
    summary = trace_summary(read_trace(args.input))
    if args.json:
        print(json.dumps(summary, indent=2))
        return 0
    print(f"{summary['spans']} span(s), {summary['errors']} error(s), "
          f"{summary['profile_records']} profile record(s)")
    print(f"window {summary['window_s']:.3f}s, span coverage "
          f"{summary['coverage']:.1%}")
    if summary["by_name"]:
        table = TextTable(["Span", "Count", "Wall (s)", "CPU (s)",
                           "Max (s)"], aligns="lrrrr",
                          float_format="{:.4f}")
        for name, row in summary["by_name"].items():
            table.add_row([name, str(row["count"]), row["wall_s"],
                           row["cpu_s"], row["max_wall_s"]])
        print(table.render())
    return 0


def _cmd_profile(_celia: "Celia | None", args) -> int:
    from repro.obs import read_trace
    from repro.obs.profile import ProfileStore, render_tables

    store = ProfileStore()
    for record in read_trace(args.input):
        if record.get("kind") == "profile":
            store.add(record.get("phase", "?"), record.get("rows", []))
    tables = store.tables()
    if args.json:
        print(json.dumps(tables, indent=2))
        return 0
    print(render_tables(tables), end="")
    return 0


def _cmd_serve(celia: Celia, args) -> int:
    from repro.service import PlannerService, ServiceConfig, run_server

    config = ServiceConfig(
        max_queue_depth=args.max_queue,
        batch_window_s=args.batch_window_ms / 1000.0,
        max_batch=args.max_batch,
        default_timeout_s=args.timeout,
        default_quota=args.quota,
        default_seed=args.seed,
        workers=args.workers,
        cache_dir=False if args.no_cache else args.cache_dir,
    )
    service = PlannerService(config=config)
    run_server(
        service, host=args.host, port=args.port,
        warm_apps=tuple(args.warm or ()),
        ready_callback=lambda server: print(
            f"celia service listening on http://{server.host}:{server.port} "
            f"(quota {args.quota}, {len(service.warm_signatures)} warm)",
            flush=True),
    )
    return 0


def _cmd_fleet(celia: Celia, args) -> int:
    from repro.fleet import (FleetConfig, fleet_chaos_names,
                             fleet_chaos_plan, run_fleet)

    if args.list_chaos:
        for name in fleet_chaos_names():
            print(name)
        return 0
    chaos_plan = None
    if args.chaos is not None:
        chaos_plan = fleet_chaos_plan(args.chaos,
                                      workers=args.fleet_workers,
                                      seed=args.chaos_seed)
    config = FleetConfig(
        workers=args.fleet_workers,
        host=args.host,
        port=args.port,
        quota=args.quota,
        seed=args.seed,
        max_warm=args.max_warm,
        max_queue=args.max_queue,
        batch_window_ms=args.batch_window_ms,
        max_batch=args.max_batch,
        timeout_s=args.timeout,
        cache_dir=False if args.no_cache else args.cache_dir,
        warm_apps=tuple(args.warm or ()),
        call_timeout_s=args.call_timeout,
        max_inflight=args.max_inflight,
        max_total_inflight=args.max_total_inflight,
        shed_retry_after_s=args.retry_after,
        health_probes=not args.no_health_probes,
        probe_interval_s=args.probe_interval,
        probe_timeout_s=args.probe_timeout,
        probe_max_missed=args.probe_max_missed,
    )
    run_fleet(
        config,
        drain_timeout_s=args.drain_timeout,
        chaos_plan=chaos_plan,
        ready_callback=lambda frontend: print(
            f"celia fleet listening on http://{frontend.host}:"
            f"{frontend.port} ({config.workers} workers, quota "
            f"{config.quota})"
            + (f" [chaos: {args.chaos}]" if args.chaos else ""),
            flush=True),
    )
    return 0


def _load_trace_argument(raw: str, cache_dir, no_cache: bool):
    """Resolve a replay's trace argument: file path first, cache key second."""
    import os

    from repro.cache import EvaluationCache
    from repro.loadgen import Trace

    if os.path.isfile(raw):
        return Trace.read(raw)
    if not no_cache:
        cache = EvaluationCache(cache_dir)
        text = cache.load_trace(raw)
        if text is None:
            # accept a unique key prefix (cache info prints key[:12])
            matches = [e.key for e in cache.trace_entries()
                       if e.key.startswith(raw)]
            if len(matches) == 1:
                text = cache.load_trace(matches[0])
            elif len(matches) > 1:
                raise SystemExit(
                    f"trace key prefix {raw!r} is ambiguous "
                    f"({len(matches)} matches)")
        if text is not None:
            return Trace.from_jsonl(text)
    raise SystemExit(f"no trace file or cached trace key {raw!r}")


def _cmd_loadgen(_celia: "Celia | None", args) -> int:
    import asyncio

    from repro.cache import EvaluationCache
    from repro.loadgen import (ReplayReport, WorkloadConfig, check_invariants,
                               generate_trace, prewarm, replay_trace)

    if args.loadgen_command == "generate":
        config = WorkloadConfig(
            tenants=args.tenants,
            duration_s=args.duration,
            mean_rps=args.rps,
            seed=args.seed,
            apps=tuple(a for a in args.apps.split(",") if a),
            quota=args.trace_quota,
            planner_seeds=tuple(
                int(s) for s in args.planner_seeds.split(",")),
            diurnal_amplitude=args.diurnal_amplitude,
            diurnal_period_s=args.diurnal_period,
            bursts_per_minute=args.bursts_per_minute,
            burst_multiplier=args.burst_multiplier,
            think_alpha=args.think_alpha,
            name=args.name,
        )
        trace = generate_trace(config)
        text = trace.to_jsonl()
        summary = {
            "name": trace.name,
            "seed": trace.seed,
            "requests": len(trace),
            "duration_s": trace.duration_s,
            "offered_rps": trace.offered_rps(),
            "tenants": list(trace.tenants),
            "warm_keys": [list(k) for k in trace.warm_keys],
        }
        if args.output == "-":
            sys.stdout.write(text)
            return 0
        if args.output:
            trace.write(args.output)
            summary["path"] = args.output
        elif args.no_cache:
            print("loadgen generate needs --output when the cache is "
                  "disabled (--no-cache)", file=sys.stderr)
            return 2
        else:
            cache = EvaluationCache(args.cache_dir)
            summary["cache_key"] = cache.store_trace(
                text, name=trace.name, seed=trace.seed,
                requests=len(trace), duration_s=trace.duration_s)
        if args.json:
            print(json.dumps(summary, indent=2, sort_keys=True))
        else:
            print(f"trace {trace.name}: {len(trace)} request(s) from "
                  f"{len(trace.tenants)} tenant(s) over "
                  f"{trace.duration_s:g}s "
                  f"({trace.offered_rps():.1f} offered rps)")
            if "path" in summary:
                print(f"written to {summary['path']}")
            else:
                print(f"stored trace {summary['cache_key']} "
                      f"(replay with `celia loadgen replay "
                      f"{summary['cache_key'][:12]}`)")
        return 0

    if args.loadgen_command == "replay":
        trace = _load_trace_argument(args.trace_input, args.cache_dir,
                                     args.no_cache)

        async def run():
            if not args.no_prewarm:
                statuses = await prewarm(trace, host=args.host,
                                         port=args.port)
                cold = {k: v for k, v in statuses.items() if v != 200}
                if cold:
                    print(f"warning: prewarm got non-200 for {cold}",
                          file=sys.stderr)
            return await replay_trace(
                trace, host=args.host, port=args.port,
                time_scale=args.time_scale, timeout_s=args.timeout)

        report = ReplayReport.from_result(asyncio.run(run()))
        if args.output:
            report.save(args.output)
        if args.json:
            print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
        else:
            print(report.render())
        problems = check_invariants(report)
        if problems:
            print("report invariant violations: " + "; ".join(problems),
                  file=sys.stderr)
            return 2
        return 0

    report = ReplayReport.load(args.report)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.render())
    return 0


_COMMANDS = {
    "characterize": _cmd_characterize,
    "select": _cmd_select,
    "predict": _cmd_predict,
    "plan": _cmd_plan,
    "validate": _cmd_validate,
    "execute": _cmd_execute,
    "market": _cmd_market,
    "spot": _cmd_spot,
    "sweep": _cmd_sweep,
    "snapshot": _cmd_snapshot,
    "cache": _cmd_cache,
    "trace": _cmd_trace,
    "profile": _cmd_profile,
    "serve": _cmd_serve,
    "fleet": _cmd_fleet,
    "loadgen": _cmd_loadgen,
}

#: Commands that never build the planning stack in this process — trace
#: readers, the fleet supervisor (each shard worker builds its own
#: service), and the load generator (it talks to a service over HTTP) —
#: so they dispatch without constructing a :class:`Celia`.
_OFFLINE_COMMANDS = ("trace", "profile", "fleet", "loadgen")


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    from repro.obs import configure_tracing, get_tracer

    args = build_parser().parse_args(argv)
    if args.trace:
        configure_tracing(args.trace)
    try:
        if args.command in _OFFLINE_COMMANDS:
            return _COMMANDS[args.command](None, args)
        celia = Celia(
            ec2_catalog(max_nodes_per_type=args.quota),
            seed=args.seed,
            workers=args.workers,
            cache_dir=False if args.no_cache else args.cache_dir,
        )
        with get_tracer().span(f"cli.{args.command}",
                               {"quota": args.quota, "seed": args.seed}):
            status = _COMMANDS[args.command](celia, args)
    except InfeasibleError as exc:
        print(f"infeasible: {exc}", file=sys.stderr)
        return 1
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.trace:
        print(f"trace written to {args.trace} "
              f"(inspect with `celia trace summary {args.trace}`)",
              file=sys.stderr)
    return status


if __name__ == "__main__":
    sys.exit(main())
