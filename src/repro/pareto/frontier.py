"""Vectorized 2-D Pareto frontier utilities.

CELIA's objective space is two-dimensional (time, cost), both minimized.
For 2-D minimization the exact nondominated set has an O(n log n)
characterization: sort by the first objective ascending (ties broken by
the second ascending) and keep the points whose second objective is a
strict running minimum.  This module implements that scan with NumPy —
the only approach that is practical on the 10,077,695-configuration
spaces of Figure 4 — plus frontier summary metrics used by the
experiments (cost span, hypervolume, knee point).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "dominates",
    "pareto_mask_2d",
    "pareto_indices_2d",
    "nondominated_rank_2d",
    "frontier_cost_span",
    "hypervolume_2d",
    "knee_point_2d",
    "attainment_surface",
]


def dominates(a: np.ndarray, b: np.ndarray) -> bool:
    """True if point ``a`` Pareto-dominates point ``b`` (minimization)."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    return bool(np.all(a <= b) and np.any(a < b))


def pareto_mask_2d(first: np.ndarray, second: np.ndarray) -> np.ndarray:
    """Boolean mask of exactly-nondominated points in 2-D (both minimized).

    Duplicate points are all marked nondominated if the point itself is on
    the frontier (no strict dominator exists) — this mirrors the behaviour
    of pairwise exact nondomination on sets that may contain repeats, and
    matters in CELIA because distinct configurations can have identical
    (time, cost).

    Parameters
    ----------
    first, second:
        Equal-length 1-D arrays of the two objectives.

    Returns
    -------
    mask:
        Boolean array; ``mask[i]`` is True iff no other point strictly
        dominates point ``i``.
    """
    f = np.asarray(first, dtype=float)
    s = np.asarray(second, dtype=float)
    if f.shape != s.shape or f.ndim != 1:
        raise ValueError("objectives must be equal-length 1-D arrays")
    n = f.size
    if n == 0:
        return np.zeros(0, dtype=bool)

    order = np.lexsort((s, f))  # primary: first asc, secondary: second asc
    fs, ss = f[order], s[order]

    # Strict running minimum of the second objective *before* each point,
    # computed per group of equal first-objective values: a point is
    # dominated iff some point with strictly smaller first objective has
    # second objective <= ours, or some point with equal first objective
    # has strictly smaller second objective AND ... no — with equal first
    # objective, domination needs strictly smaller second (then first is
    # equal => weak + strict => dominates).
    best_before = np.minimum.accumulate(ss)

    # For each sorted position i, find the running min of `second` over all
    # points with strictly smaller first objective.
    new_group = np.empty(n, dtype=bool)
    new_group[0] = True
    new_group[1:] = fs[1:] != fs[:-1]
    group_start_vals = np.where(new_group, np.arange(n), 0)
    group_start = np.maximum.accumulate(group_start_vals)

    # min of `second` among points with strictly smaller `first`:
    prev_min = np.full(n, np.inf)
    has_prev = group_start > 0
    prev_min[has_prev] = best_before[group_start[has_prev] - 1]

    # min of `second` among *earlier* points in the same first-objective
    # group (those have equal first and <= second; strict second => dominate)
    same_group_min = np.full(n, np.inf)
    idx = np.arange(n)
    not_first_in_group = idx > group_start
    same_group_min[not_first_in_group] = best_before[idx[not_first_in_group] - 1]

    dominated = (prev_min <= ss) | (same_group_min < ss)
    mask_sorted = ~dominated

    mask = np.zeros(n, dtype=bool)
    mask[order] = mask_sorted
    return mask


def pareto_indices_2d(first: np.ndarray, second: np.ndarray) -> np.ndarray:
    """Indices of nondominated points, sorted by the first objective."""
    mask = pareto_mask_2d(first, second)
    idx = np.flatnonzero(mask)
    f = np.asarray(first, dtype=float)[idx]
    s = np.asarray(second, dtype=float)[idx]
    return idx[np.lexsort((s, f))]


def nondominated_rank_2d(first: np.ndarray, second: np.ndarray,
                         *, max_rank: int | None = None) -> np.ndarray:
    """NSGA-style nondomination rank of every point (0 = Pareto front).

    Peels fronts iteratively with the O(n log n) scan: rank 0 is the
    Pareto set, rank 1 the Pareto set of the remainder, and so on.  Used
    to surface "second-best" frontiers — configurations one step behind
    the optimum, useful when frontier nodes are unavailable.

    Parameters
    ----------
    max_rank:
        Stop after this many fronts; remaining points get rank
        ``max_rank`` (a cap, not an exact rank).  None peels everything.
    """
    f = np.asarray(first, dtype=float)
    s = np.asarray(second, dtype=float)
    if f.shape != s.shape or f.ndim != 1:
        raise ValueError("objectives must be equal-length 1-D arrays")
    ranks = np.full(f.size, -1, dtype=np.int64)
    remaining = np.arange(f.size)
    rank = 0
    while remaining.size:
        if max_rank is not None and rank >= max_rank:
            ranks[remaining] = max_rank
            break
        mask = pareto_mask_2d(f[remaining], s[remaining])
        ranks[remaining[mask]] = rank
        remaining = remaining[~mask]
        rank += 1
    return ranks


def frontier_cost_span(costs: np.ndarray) -> tuple[float, float, float]:
    """(min, max, max/min ratio) of the frontier's cost values.

    Figure 4's headline numbers: galaxy's 23 Pareto points span $126–167
    (ratio ≈ 1.3) and sand's 58 span $180–210 (ratio ≈ 1.2).
    """
    arr = np.asarray(costs, dtype=float)
    if arr.size == 0:
        raise ValueError("empty frontier has no cost span")
    lo, hi = float(arr.min()), float(arr.max())
    if lo <= 0:
        raise ValueError("frontier costs must be positive")
    return lo, hi, hi / lo


def hypervolume_2d(first: np.ndarray, second: np.ndarray,
                   reference: tuple[float, float]) -> float:
    """Dominated hypervolume (area) of a 2-D frontier w.r.t. a reference.

    Points beyond the reference contribute nothing.  Standard staircase
    integration after the frontier scan; used as a frontier-quality metric
    when comparing heuristic baselines against exhaustive CELIA.
    """
    idx = pareto_indices_2d(first, second)
    f = np.asarray(first, dtype=float)[idx]
    s = np.asarray(second, dtype=float)[idx]
    rx, ry = float(reference[0]), float(reference[1])
    keep = (f < rx) & (s < ry)
    f, s = f[keep], s[keep]
    if f.size == 0:
        return 0.0
    # f ascending, s strictly descending after frontier extraction.
    widths = np.diff(np.append(f, rx))
    heights = ry - s
    return float(np.sum(widths * heights))


def knee_point_2d(first: np.ndarray, second: np.ndarray) -> int:
    """Index (into the original arrays) of the frontier's knee point.

    The knee maximizes distance from the chord joining the frontier's
    endpoints after min-max normalization — a standard heuristic for "best
    trade-off" recommendations surfaced by the examples.

    Degenerate frontiers whose points all share one objective value (only
    possible through duplicates, since a 2-D frontier is strictly
    monotone) have no usable chord; the first point — minimum first
    objective, then minimum second — is returned instead of dividing by a
    zero span.
    """
    idx = pareto_indices_2d(first, second)
    if idx.size == 0:
        raise ValueError("cannot find a knee on an empty frontier")
    if idx.size <= 2:
        return int(idx[0])
    f = np.asarray(first, dtype=float)[idx]
    s = np.asarray(second, dtype=float)[idx]
    if f[-1] == f[0] or s[-1] == s[0]:
        return int(idx[0])
    fn = (f - f[0]) / (f[-1] - f[0])
    sn = (s - s[0]) / (s[-1] - s[0])
    # Distance from each normalized point to the chord (0,0)->(1,1) of the
    # normalized frontier: |fn - sn| / sqrt(2); sign is constant on a
    # convex frontier so |.| is safe for mixed curvature too.
    distance = np.abs(fn - sn)
    return int(idx[int(np.argmax(distance))])


def attainment_surface(first: np.ndarray, second: np.ndarray,
                       query_first: np.ndarray) -> np.ndarray:
    """Best (minimum) second objective attainable at each query first value.

    For each ``q`` in ``query_first``, returns the minimum of ``second``
    over points with ``first <= q`` (``inf`` where nothing qualifies).
    This is the "minimum cost for a given deadline" curve of Figures 5-6,
    evaluated against an explicit point set.
    """
    f = np.asarray(first, dtype=float)
    s = np.asarray(second, dtype=float)
    q = np.asarray(query_first, dtype=float)
    if f.shape != s.shape or f.ndim != 1:
        raise ValueError("objectives must be equal-length 1-D arrays")
    order = np.argsort(f, kind="stable")
    fs, ss = f[order], s[order]
    running = np.minimum.accumulate(ss) if ss.size else ss
    pos = np.searchsorted(fs, q, side="right")
    out = np.full(q.shape, np.inf)
    nonzero = pos > 0
    out[nonzero] = running[pos[nonzero] - 1]
    return out
