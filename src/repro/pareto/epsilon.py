"""ε-nondomination sorting, reimplemented from pareto.py [27].

The routine maintains an *archive* of ε-nondominated rows.  Objective space
is partitioned into hyper-boxes of side ``epsilons[k]`` along objective
``k``; at most one archive member may occupy a box, and a box whose corner
is dominated by another occupied box's corner is discarded entirely.  With
all epsilons → 0 this degenerates to classic Pareto nondomination (the
implementation special-cases ``epsilons=None`` to exact nondomination).

Semantics follow Woodruff & Herman's ``pareto.py``:

* all objectives are minimized;
* within one box, the row closest (squared Euclidean) to the box's lower
  corner wins;
* domination between rows is decided on *box corners*, which provides the
  ε-dominance relation of Laumanns et al.

This module is the reference implementation: clear, row-at-a-time, used on
the (small) filtered frontiers.  The bulk 10M-point screens use the
vectorized scan in :mod:`repro.pareto.frontier` first, which is proven
equivalent for 2-D exact nondomination by the property tests.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

__all__ = ["EpsilonArchive", "eps_sort"]


class EpsilonArchive:
    """Incremental archive of ε-nondominated objective rows.

    Parameters
    ----------
    n_objectives:
        Number of objective columns (2 for CELIA's cost-time space).
    epsilons:
        Box side length per objective, or ``None`` for exact (ε→0)
        nondomination.  Must be positive when given.

    Notes
    -----
    ``sortinto`` accepts an arbitrary payload (*tag*) per row so callers
    can recover which configuration produced an archived point.
    """

    def __init__(self, n_objectives: int, epsilons: Sequence[float] | None = None):
        if n_objectives < 1:
            raise ValueError("need at least one objective")
        if epsilons is not None:
            epsilons = [float(e) for e in epsilons]
            if len(epsilons) != n_objectives:
                raise ValueError(
                    f"expected {n_objectives} epsilons, got {len(epsilons)}"
                )
            if any(e <= 0 for e in epsilons):
                raise ValueError("epsilons must be strictly positive")
        self.n_objectives = n_objectives
        self.epsilons = epsilons
        self._rows: list[np.ndarray] = []
        self._boxes: list[tuple[int, ...]] | None = [] if epsilons else None
        self._tags: list[object] = []

    # -- public views ------------------------------------------------------

    @property
    def rows(self) -> np.ndarray:
        """Archived objective rows as an (n, n_objectives) array."""
        if not self._rows:
            return np.empty((0, self.n_objectives))
        return np.vstack(self._rows)

    @property
    def tags(self) -> list[object]:
        """Payloads associated with the archived rows, in row order."""
        return list(self._tags)

    def __len__(self) -> int:
        return len(self._rows)

    # -- core --------------------------------------------------------------

    def _box_of(self, row: np.ndarray) -> tuple[int, ...]:
        assert self.epsilons is not None
        return tuple(int(np.floor(v / e)) for v, e in zip(row, self.epsilons))

    @staticmethod
    def _dominates(a: Sequence[float], b: Sequence[float]) -> bool:
        """True if ``a`` weakly dominates ``b`` with at least one strict win."""
        at_least_as_good = all(x <= y for x, y in zip(a, b))
        strictly_better = any(x < y for x, y in zip(a, b))
        return at_least_as_good and strictly_better

    def _corner(self, box: tuple[int, ...]) -> tuple[float, ...]:
        assert self.epsilons is not None
        return tuple(b * e for b, e in zip(box, self.epsilons))

    def sortinto(self, row: Sequence[float], tag: object = None) -> bool:
        """Offer one row to the archive.

        Returns ``True`` if the row was accepted (it is currently
        ε-nondominated), ``False`` if it was rejected.  Accepting a row may
        evict previously archived rows it now dominates.
        """
        arr = np.asarray(row, dtype=float)
        if arr.shape != (self.n_objectives,):
            raise ValueError(
                f"row must have shape ({self.n_objectives},), got {arr.shape}"
            )
        if not np.all(np.isfinite(arr)):
            raise ValueError("objective values must be finite")

        if self.epsilons is None:
            return self._sortinto_exact(arr, tag)
        return self._sortinto_eps(arr, tag)

    def _sortinto_exact(self, arr: np.ndarray, tag: object) -> bool:
        survivors_r: list[np.ndarray] = []
        survivors_t: list[object] = []
        for existing, etag in zip(self._rows, self._tags):
            if self._dominates(existing, arr) or np.array_equal(existing, arr):
                return False  # duplicate rows keep the incumbent
            if not self._dominates(arr, existing):
                survivors_r.append(existing)
                survivors_t.append(etag)
        survivors_r.append(arr)
        survivors_t.append(tag)
        self._rows = survivors_r
        self._tags = survivors_t
        return True

    def _sortinto_eps(self, arr: np.ndarray, tag: object) -> bool:
        assert self._boxes is not None
        box = self._box_of(arr)
        corner = self._corner(box)

        # Same-box contest: keep whichever row is closer to the box corner.
        for i, existing_box in enumerate(self._boxes):
            if existing_box == box:
                incumbent = self._rows[i]
                dist_new = float(np.sum((arr - corner) ** 2))
                dist_old = float(np.sum((incumbent - corner) ** 2))
                if dist_new < dist_old:
                    self._rows[i] = arr
                    self._tags[i] = tag
                    return True
                return False

        # Cross-box domination on corners.
        for existing_box in self._boxes:
            if self._dominates(self._corner(existing_box), corner):
                return False
        keep = [
            i for i, existing_box in enumerate(self._boxes)
            if not self._dominates(corner, self._corner(existing_box))
        ]
        self._rows = [self._rows[i] for i in keep]
        self._tags = [self._tags[i] for i in keep]
        self._boxes = [self._boxes[i] for i in keep]

        self._rows.append(arr)
        self._tags.append(tag)
        self._boxes.append(box)
        return True


def eps_sort(
    rows: Iterable[Sequence[float]] | np.ndarray,
    epsilons: Sequence[float] | None = None,
    *,
    tags: Sequence[object] | None = None,
) -> tuple[np.ndarray, list[object]]:
    """Sort rows into an ε-nondominated set (the pareto.py entry point).

    Parameters
    ----------
    rows:
        Iterable of objective rows, or a 2-D array.
    epsilons:
        Per-objective box sizes, or ``None`` for exact nondomination.
    tags:
        Optional payloads aligned with ``rows``; defaults to row indices.

    Returns
    -------
    (archive_rows, archive_tags):
        The surviving rows as a 2-D array and their payloads.
    """
    matrix = np.asarray(list(rows) if not isinstance(rows, np.ndarray) else rows,
                        dtype=float)
    if matrix.ndim == 1:
        matrix = matrix.reshape(1, -1)
    if matrix.size == 0:
        return np.empty((0, 0)), []
    n, m = matrix.shape
    if tags is None:
        tags = list(range(n))
    elif len(tags) != n:
        raise ValueError("tags must align with rows")
    archive = EpsilonArchive(m, epsilons)
    for row, tag in zip(matrix, tags):
        archive.sortinto(row, tag)
    return archive.rows, archive.tags
