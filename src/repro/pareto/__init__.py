"""Pareto-optimality machinery.

The paper filters feasible configurations through the ``pareto.py``
ε-nondomination sorting routine of Woodruff & Herman [27].  This package
reimplements that routine from scratch (:mod:`repro.pareto.epsilon`) and
adds a fast 2-D frontier scan plus frontier summary metrics
(:mod:`repro.pareto.frontier`) used on the multi-million point
configuration spaces of Figure 4.

All objectives are *minimized*; callers with maximization objectives
negate them first (same convention as pareto.py).
"""

from repro.pareto.epsilon import eps_sort, EpsilonArchive
from repro.pareto.frontier import (
    pareto_mask_2d,
    pareto_indices_2d,
    dominates,
    frontier_cost_span,
    hypervolume_2d,
    knee_point_2d,
    attainment_surface,
)

__all__ = [
    "eps_sort",
    "EpsilonArchive",
    "pareto_mask_2d",
    "pareto_indices_2d",
    "dominates",
    "frontier_cost_span",
    "hypervolume_2d",
    "knee_point_2d",
    "attainment_surface",
]
