"""Cost model — Equations 5 and 6.

``C = T × C_{j,u}`` (Eq. 5) with the configuration's unit cost
``C_{j,u} = Σ_i m_{j,i} · c_i`` (Eq. 6).  Prices come from the catalog
(the paper takes them from the vendor's website); costs are linear in
time — billing quantization is a *measurement* effect modeled by the
engine, never by the analytical model.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError

__all__ = ["configuration_unit_cost", "predict_cost"]


def configuration_unit_cost(configurations: np.ndarray,
                            prices_per_hour: np.ndarray) -> np.ndarray:
    """Eq. 6: hourly cost ``C_{j,u}`` of each configuration row ($/h)."""
    prices = np.asarray(prices_per_hour, dtype=np.float64)
    if prices.ndim != 1 or np.any(prices <= 0) or np.any(~np.isfinite(prices)):
        raise ValidationError("prices must be a 1-D positive vector")
    configs = np.asarray(configurations)
    if configs.ndim == 1:
        configs = configs.reshape(1, -1)
    if configs.shape[1] != prices.size:
        raise ValidationError(
            f"configuration width {configs.shape[1]} does not match "
            f"{prices.size} prices"
        )
    if np.any(configs < 0):
        raise ValidationError("node counts must be non-negative")
    return configs @ prices


def predict_cost(time_hours: float | np.ndarray,
                 unit_cost_per_hour: float | np.ndarray) -> float | np.ndarray:
    """Eq. 5: execution cost in dollars.  Broadcasts over arrays."""
    t = np.asarray(time_hours, dtype=np.float64)
    cu = np.asarray(unit_cost_per_hour, dtype=np.float64)
    if np.any(t < 0) or np.any(cu < 0):
        raise ValidationError("time and unit cost must be non-negative")
    result = t * cu
    return float(result) if result.ndim == 0 else result
