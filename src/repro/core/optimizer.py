"""Logarithmic-time optimal-configuration queries over the full space.

The sweep analyses (Figures 5 and 6, Observation 3) ask the same question
hundreds of times: *the minimum cost over all configurations meeting a
deadline* (or minimum time within a budget) for varying demand.  Scanning
10M configurations per query is wasteful; instead both questions reduce
to a 1-D structure because predicted time and cost depend on a
configuration only through ``(U_j, C_{j,u})``:

* min cost s.t. ``T ≤ T'``  ⇔  minimize ``C_u / U`` over ``U ≥ D/T'``
  → sort by ``U``, take a suffix-minimum of the ratio; each query is a
  binary search.
* min time s.t. ``C ≤ C'``  ⇔  maximize ``U`` over ``C_u/U ≤ C'/D·(1/3600)``
  → sort by the ratio, take a prefix-maximum of ``U``.

Both indexes are built once per (application, catalog) in O(S log S) and
answer queries in O(log S), including which configuration achieves the
optimum.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.configspace import SpaceEvaluation
from repro.errors import InfeasibleError, ValidationError
from repro.units import SECONDS_PER_HOUR

__all__ = ["OptimizerAnswer", "MinCostIndex", "MinTimeIndex"]


@dataclass(frozen=True, slots=True)
class OptimizerAnswer:
    """An optimal configuration and its predicted time and cost."""

    configuration: tuple[int, ...]
    time_hours: float
    cost_dollars: float
    capacity_gips: float
    unit_cost_per_hour: float


class MinCostIndex:
    """Answers "cheapest configuration meeting deadline ``T'``" queries."""

    def __init__(self, evaluation: SpaceEvaluation):
        self.evaluation = evaluation
        capacity = evaluation.capacity_gips
        ratio = evaluation.cost_ratio()  # $/h per GI/s

        order = evaluation.capacity_order()
        self._capacity_sorted = capacity[order]
        # Suffix minimum of the ratio over configurations with capacity >= u,
        # plus the row achieving it — both fully vectorized (10M entries).
        ratio_sorted = ratio[order]
        n = ratio_sorted.size
        rev = ratio_sorted[::-1]
        rev_cummin = np.minimum.accumulate(rev)
        self._suffix_min_ratio = rev_cummin[::-1].copy()
        is_new_min = rev <= rev_cummin  # positions establishing/tying the min
        rev_arg = np.maximum.accumulate(np.where(is_new_min, np.arange(n), 0))
        self._suffix_best_row = order[(n - 1) - rev_arg[::-1]]

    @property
    def max_capacity_gips(self) -> float:
        """The largest configuration capacity in the space."""
        return float(self._capacity_sorted[-1])

    def query(self, demand_gi: float, deadline_hours: float,
              *, budget_dollars: float | None = None) -> OptimizerAnswer:
        """Cheapest configuration executing ``demand_gi`` within the deadline.

        Raises :class:`InfeasibleError` when even the largest
        configuration misses the deadline, or when the cheapest
        deadline-meeting configuration exceeds the optional budget.
        """
        if demand_gi <= 0 or deadline_hours <= 0:
            raise ValidationError("demand and deadline must be positive")
        required_capacity = demand_gi / (deadline_hours * SECONDS_PER_HOUR)
        pos = int(np.searchsorted(self._capacity_sorted, required_capacity,
                                  side="left"))
        if pos >= self._capacity_sorted.size:
            raise InfeasibleError(
                f"no configuration reaches the {required_capacity:.1f} GI/s "
                f"needed for a {deadline_hours:g} h deadline",
                deadline_hours=deadline_hours,
            )
        row = int(self._suffix_best_row[pos])
        capacity = float(self.evaluation.capacity_gips[row])
        unit_cost = float(self.evaluation.unit_cost_per_hour[row])
        time_h = demand_gi / capacity / SECONDS_PER_HOUR
        cost = time_h * unit_cost
        if budget_dollars is not None and cost >= budget_dollars:
            raise InfeasibleError(
                f"cheapest deadline-meeting configuration costs "
                f"${cost:.2f}, over the ${budget_dollars:.2f} budget",
                deadline_hours=deadline_hours,
                budget_dollars=budget_dollars,
            )
        return OptimizerAnswer(
            configuration=self.evaluation.configuration_at(row),
            time_hours=time_h,
            cost_dollars=cost,
            capacity_gips=capacity,
            unit_cost_per_hour=unit_cost,
        )

    def sweep(self, demands_gi: np.ndarray, deadline_hours: float
              ) -> np.ndarray:
        """Vectorized minimum cost for many demands at one deadline.

        Returns costs (``inf`` where infeasible) without materializing the
        winning configurations — the fast path for Figure 5/6 curves.
        """
        demands = np.asarray(demands_gi, dtype=np.float64)
        if np.any(demands <= 0):
            raise ValidationError("demands must be positive")
        required = demands / (deadline_hours * SECONDS_PER_HOUR)
        pos = np.searchsorted(self._capacity_sorted, required, side="left")
        costs = np.full(demands.shape, np.inf)
        ok = pos < self._capacity_sorted.size
        # cost = D * min_ratio / 3600 (ratio already $/h per GI/s).
        costs[ok] = demands[ok] * self._suffix_min_ratio[pos[ok]] / SECONDS_PER_HOUR
        return costs


class MinTimeIndex:
    """Answers "fastest configuration within budget ``C'``" queries."""

    def __init__(self, evaluation: SpaceEvaluation):
        self.evaluation = evaluation
        capacity = evaluation.capacity_gips
        ratio = evaluation.cost_ratio()

        order = np.argsort(ratio, kind="stable")
        self._ratio_sorted = ratio[order]
        capacity_sorted = capacity[order]
        self._prefix_max_capacity = np.maximum.accumulate(capacity_sorted)
        # Row achieving each prefix maximum, vectorized.
        n = capacity_sorted.size
        is_new_max = capacity_sorted >= self._prefix_max_capacity
        self._prefix_best_row = order[
            np.maximum.accumulate(np.where(is_new_max, np.arange(n), 0))
        ]

    def query(self, demand_gi: float, budget_dollars: float,
              *, deadline_hours: float | None = None) -> OptimizerAnswer:
        """Fastest configuration whose predicted cost fits the budget."""
        if demand_gi <= 0 or budget_dollars <= 0:
            raise ValidationError("demand and budget must be positive")
        # C = D * ratio / 3600 <= C'  ⇔  ratio <= C' * 3600 / D.
        max_ratio = budget_dollars * SECONDS_PER_HOUR / demand_gi
        pos = int(np.searchsorted(self._ratio_sorted, max_ratio, side="right")) - 1
        if pos < 0:
            raise InfeasibleError(
                f"no configuration runs {demand_gi:.0f} GI within "
                f"${budget_dollars:.2f}",
                budget_dollars=budget_dollars,
            )
        row = int(self._prefix_best_row[pos])
        capacity = float(self.evaluation.capacity_gips[row])
        unit_cost = float(self.evaluation.unit_cost_per_hour[row])
        time_h = demand_gi / capacity / SECONDS_PER_HOUR
        cost = time_h * unit_cost
        if deadline_hours is not None and time_h >= deadline_hours:
            raise InfeasibleError(
                f"fastest budget-fitting configuration needs "
                f"{time_h:.1f} h, over the {deadline_hours:g} h deadline",
                deadline_hours=deadline_hours,
                budget_dollars=budget_dollars,
            )
        return OptimizerAnswer(
            configuration=self.evaluation.configuration_at(row),
            time_hours=time_h,
            cost_dollars=cost,
            capacity_gips=capacity,
            unit_cost_per_hour=unit_cost,
        )
