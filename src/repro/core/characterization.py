"""Cloud-resource characterization — Section IV-B/IV-C and Figure 3.

Wraps the measurement layer into the artefacts the evaluation uses:
per-type measured rates, the *normalized performance* metric
(GI/s per dollar-hour — Figure 3's y-axis), and the within-category
spread that justifies the Section IV-C one-type-per-category shortcut.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.base import ElasticApplication
from repro.cloud.catalog import Catalog
from repro.cloud.instance import ResourceCategory
from repro.engine.runner import EngineConfig
from repro.errors import ValidationError
from repro.measurement.baseline import (
    measure_capacities,
    measure_capacities_by_category,
)
from repro.measurement.perf import PerfCounter

__all__ = ["TypeCharacterization", "CharacterizationResult", "characterize_resources"]


@dataclass(frozen=True, slots=True)
class TypeCharacterization:
    """One instance type's characterization for one application."""

    type_name: str
    category: ResourceCategory
    rate_gips: float
    price_per_hour: float
    extrapolated: bool

    @property
    def normalized_performance(self) -> float:
        """GI/s per $/h — Figure 3's metric."""
        return self.rate_gips / self.price_per_hour

    @property
    def rate_per_vcpu_note(self) -> str:
        """Readable rate summary."""
        return f"{self.rate_gips:.2f} GI/s @ ${self.price_per_hour}/h"


@dataclass(frozen=True)
class CharacterizationResult:
    """Full per-type characterization of one application on one catalog."""

    app_name: str
    entries: tuple[TypeCharacterization, ...]
    method: str  # "full" or "by-category"

    def capacity_vector(self) -> np.ndarray:
        """Measured ``W`` in catalog order (GI/s)."""
        return np.array([e.rate_gips for e in self.entries])

    def normalized(self) -> dict[str, float]:
        """Normalized performance per type name (Figure 3 bars)."""
        return {e.type_name: e.normalized_performance for e in self.entries}

    def category_normalized(self) -> dict[ResourceCategory, float]:
        """Mean normalized performance per category."""
        sums: dict[ResourceCategory, list[float]] = {}
        for e in self.entries:
            sums.setdefault(e.category, []).append(e.normalized_performance)
        return {cat: float(np.mean(vals)) for cat, vals in sums.items()}

    def within_category_spread(self) -> dict[ResourceCategory, float]:
        """Relative spread (max/min − 1) of normalized performance.

        The paper reports e.g. 26.27 / 26.21 / 26.01 GI/s/$ across c4
        types for galaxy — a spread of ~1% — and concludes profiling one
        type per category suffices.
        """
        by_cat: dict[ResourceCategory, list[float]] = {}
        for e in self.entries:
            by_cat.setdefault(e.category, []).append(e.normalized_performance)
        out = {}
        for cat, vals in by_cat.items():
            lo, hi = min(vals), max(vals)
            if lo <= 0:
                raise ValidationError("normalized performance must be positive")
            out[cat] = hi / lo - 1.0
        return out

    def category_ratios(self, reference: ResourceCategory = ResourceCategory.MEMORY
                        ) -> dict[ResourceCategory, float]:
        """Normalized performance of each category relative to ``reference``.

        The paper's Section IV-C headline: c4 ≈ 2× and m4 ≈ 1.5× the r3
        normalized performance, for every application.
        """
        means = self.category_normalized()
        if reference not in means:
            raise ValidationError(f"no entries for reference category {reference}")
        ref = means[reference]
        return {cat: val / ref for cat, val in means.items()}


def characterize_resources(
    app: ElasticApplication,
    catalog: Catalog,
    perf: PerfCounter,
    *,
    method: str = "full",
    engine_config: EngineConfig | None = None,
    seed: int = 0,
) -> CharacterizationResult:
    """Measure (or extrapolate) every type's rate for ``app``.

    ``method="full"`` times a baseline on all M types (Section IV-B);
    ``method="by-category"`` times one per category and extrapolates by
    price (Section IV-C).
    """
    if method == "full":
        _, measurements = measure_capacities(
            app, catalog, perf, engine_config=engine_config, seed=seed
        )
    elif method == "by-category":
        _, measurements = measure_capacities_by_category(
            app, catalog, perf, engine_config=engine_config, seed=seed
        )
    else:
        raise ValidationError(f"unknown characterization method {method!r}")

    entries = []
    for itype, m in zip(catalog, measurements):
        assert itype.name == m.type_name
        entries.append(
            TypeCharacterization(
                type_name=itype.name,
                category=itype.category,
                rate_gips=m.rate_gips,
                price_per_hour=itype.price_per_hour,
                extrapolated=m.extrapolated,
            )
        )
    return CharacterizationResult(
        app_name=app.name, entries=tuple(entries), method=method
    )
