"""Sensitivity of the selected configuration to characterization error.

Why does CELIA work despite ≤17% prediction error?  Because the cost
landscape near the optimum is flat: many configurations share almost the
same capacity-per-dollar, so a selection made with *perturbed* capacity
estimates lands on a configuration whose *true* cost is only slightly
above the true optimum.  This module quantifies that:

* perturb the capacity vector ``W`` multiplicatively (per-type noise of
  relative scale ε),
* re-select the min-cost configuration under the perturbed beliefs,
* evaluate the chosen configuration under the *true* capacities,
* report the regret (true cost of the chosen config / true optimal cost
  − 1) and the deadline-violation rate, as functions of ε.

This is an analysis the paper does not run but its validation section
implicitly relies on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cloud.catalog import Catalog
from repro.core.capacity import configuration_capacity
from repro.core.configspace import ConfigurationSpace
from repro.core.costmodel import configuration_unit_cost
from repro.core.optimizer import MinCostIndex
from repro.errors import InfeasibleError, ValidationError
from repro.units import SECONDS_PER_HOUR
from repro.utils.rng import derive_rng

__all__ = ["SensitivityPoint", "SensitivityResult", "capacity_sensitivity"]


@dataclass(frozen=True)
class SensitivityPoint:
    """Aggregated outcome of many perturbation trials at one error scale."""

    epsilon: float
    trials: int
    mean_regret: float
    p95_regret: float
    max_regret: float
    deadline_violation_rate: float


@dataclass(frozen=True)
class SensitivityResult:
    """Regret-vs-error curve for one (demand, deadline) problem."""

    demand_gi: float
    deadline_hours: float
    true_optimal_cost: float
    points: tuple[SensitivityPoint, ...]

    def render(self) -> str:
        """Small table of regret statistics per error level."""
        lines = [
            f"capacity-error sensitivity (deadline {self.deadline_hours:g} h, "
            f"true optimum ${self.true_optimal_cost:.2f})",
            f"{'eps':>6} {'mean regret':>12} {'p95 regret':>11} "
            f"{'max regret':>11} {'deadline miss':>14}",
        ]
        for p in self.points:
            lines.append(
                f"{p.epsilon:>6.0%} {p.mean_regret:>12.2%} "
                f"{p.p95_regret:>11.2%} {p.max_regret:>11.2%} "
                f"{p.deadline_violation_rate:>14.0%}"
            )
        return "\n".join(lines)


def capacity_sensitivity(
    catalog: Catalog,
    true_capacities: np.ndarray,
    demand_gi: float,
    deadline_hours: float,
    *,
    epsilons: tuple[float, ...] = (0.02, 0.05, 0.10, 0.17, 0.25),
    trials: int = 30,
    seed: int = 0,
) -> SensitivityResult:
    """Regret of min-cost selection under noisy capacity beliefs.

    Each trial draws per-type multiplicative noise
    ``W' = W · (1 + eps · U(-1, 1))``, selects the min-cost configuration
    believing ``W'``, then scores it under the true ``W``.  A trial whose
    chosen configuration truly misses the deadline counts as a violation
    (its regret still enters the statistics, using true cost).
    """
    capacities = np.asarray(true_capacities, dtype=float)
    if capacities.shape != (len(catalog),):
        raise ValidationError("capacities must align with the catalog")
    if demand_gi <= 0 or deadline_hours <= 0:
        raise ValidationError("demand and deadline must be positive")
    if trials < 1:
        raise ValidationError("need at least one trial")

    space = ConfigurationSpace(catalog)
    true_eval = space.evaluate(capacities)
    true_index = MinCostIndex(true_eval)
    optimum = true_index.query(demand_gi, deadline_hours)
    true_optimal_cost = optimum.cost_dollars
    prices = catalog.prices

    points = []
    for eps in epsilons:
        if eps < 0:
            raise ValidationError("epsilon must be non-negative")
        regrets = []
        violations = 0
        for k in range(trials):
            rng = derive_rng(seed, "sensitivity", eps, k)
            noisy = capacities * (1.0 + eps * rng.uniform(-1, 1,
                                                          capacities.size))
            noisy = np.maximum(noisy, 1e-9)
            noisy_index = MinCostIndex(space.evaluate(noisy))
            try:
                believed = noisy_index.query(demand_gi, deadline_hours)
            except InfeasibleError:
                violations += 1
                continue
            config = np.asarray(believed.configuration)
            true_capacity = float(configuration_capacity(config, capacities)[0])
            true_time = demand_gi / true_capacity / SECONDS_PER_HOUR
            unit_cost = float(configuration_unit_cost(config, prices)[0])
            true_cost = true_time * unit_cost
            regrets.append(true_cost / true_optimal_cost - 1.0)
            if true_time > deadline_hours:
                violations += 1
        regrets_arr = np.asarray(regrets) if regrets else np.zeros(1)
        points.append(
            SensitivityPoint(
                epsilon=eps,
                trials=trials,
                mean_regret=float(regrets_arr.mean()),
                p95_regret=float(np.quantile(regrets_arr, 0.95)),
                max_regret=float(regrets_arr.max()),
                deadline_violation_rate=violations / trials,
            )
        )
    return SensitivityResult(
        demand_gi=demand_gi,
        deadline_hours=deadline_hours,
        true_optimal_cost=true_optimal_cost,
        points=tuple(points),
    )
