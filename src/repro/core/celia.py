"""The CELIA facade — the full Figure 1 pipeline in one object.

Given a catalog and a measurement harness, :class:`Celia`:

1. characterizes an application's demand (local perf runs + fitting) and
   the cloud's capacities (timed baselines) — cached per application;
2. evaluates the full configuration space once per application (``U_j``,
   ``C_{j,u}`` for all S configurations) — also cached;
3. answers predictions (Eq. 2/5), Algorithm-1 selections, and optimal
   configuration queries.

Everything downstream of the cached artefacts is deterministic pure
math, so one ``Celia`` instance can drive all figures of the evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.apps.base import ElasticApplication
from repro.cache import EvaluationCache
from repro.cloud.catalog import Catalog
from repro.core.characterization import (
    CharacterizationResult,
    characterize_resources,
)
from repro.core.configspace import ConfigurationSpace, SpaceEvaluation
from repro.core.optimizer import MinCostIndex, MinTimeIndex, OptimizerAnswer
from repro.core.selection import SelectionResult, select_configurations
from repro.engine.runner import EngineConfig
from repro.errors import ValidationError
from repro.measurement.baseline import measure_demand_grid
from repro.measurement.fitting import FittedDemand, fit_separable_demand
from repro.measurement.perf import PerfCounter
from repro.measurement.profiles import ApplicationProfile

__all__ = ["Prediction", "Celia"]


@dataclass(frozen=True, slots=True)
class Prediction:
    """Predicted time and cost of one run on one configuration."""

    configuration: tuple[int, ...]
    demand_gi: float
    capacity_gips: float
    unit_cost_per_hour: float
    time_hours: float
    cost_dollars: float


class Celia:
    """Measurement-driven cost-time optimizer for elastic applications.

    Parameters
    ----------
    catalog:
        Cloud resource types and quotas (Table III by default upstream).
    perf:
        Local instruction-counting harness; a default PerfCounter on the
        paper's Xeon server is created if omitted.
    engine_config:
        Realism knobs for the simulated baseline timings.
    characterization_method:
        ``"full"`` (time every type) or ``"by-category"`` (Section IV-C).
    seed:
        Root seed for all measurement randomness.
    cache_dir:
        Where full-space evaluations persist across processes.  ``None``
        (the default) resolves ``$CELIA_CACHE_DIR`` then
        ``~/.cache/celia``; a path overrides both; ``False`` disables
        persistence entirely (in-memory caching still applies).
    workers:
        Parallelism of the space sweep, forwarded to
        :meth:`ConfigurationSpace.evaluate` — ``"auto"`` (default),
        ``None``/1 for serial, or an explicit process count.
    """

    def __init__(
        self,
        catalog: Catalog,
        *,
        perf: PerfCounter | None = None,
        engine_config: EngineConfig | None = None,
        characterization_method: str = "full",
        seed: int = 0,
        cache_dir: "str | Path | bool | None" = None,
        workers: int | str | None = "auto",
    ):
        self.catalog = catalog
        self.perf = perf or PerfCounter(seed=seed)
        self.engine_config = engine_config or EngineConfig()
        self.characterization_method = characterization_method
        self.seed = seed
        self.workers = workers
        if cache_dir is False:
            self.evaluation_cache: EvaluationCache | None = None
        else:
            self.evaluation_cache = EvaluationCache(
                None if cache_dir in (None, True) else cache_dir
            )
        self.space = ConfigurationSpace(catalog)
        self._demand_cache: dict[str, FittedDemand] = {}
        self._characterization_cache: dict[str, CharacterizationResult] = {}
        self._evaluation_cache: dict[str, SpaceEvaluation] = {}
        self._min_cost_cache: dict[str, MinCostIndex] = {}
        self._min_time_cache: dict[str, MinTimeIndex] = {}
        #: What the most recent :meth:`selection_index` call did —
        #: whether the index came from a persisted snapshot, and how
        #: long the snapshot load took (0.0 when it was a rebuild).
        self.last_index_from_snapshot = False
        self.last_index_load_s = 0.0

    # -- characterization (cached) ---------------------------------------------

    def demand_model(self, app: ElasticApplication) -> FittedDemand:
        """Fitted demand model of ``app`` (measures on first call)."""
        if app.name not in self._demand_cache:
            samples = measure_demand_grid(app, self.perf)
            self._demand_cache[app.name] = fit_separable_demand(samples)
        return self._demand_cache[app.name]

    def characterization(self, app: ElasticApplication) -> CharacterizationResult:
        """Per-type capacity characterization of ``app`` (cached)."""
        if app.name not in self._characterization_cache:
            self._characterization_cache[app.name] = characterize_resources(
                app,
                self.catalog,
                self.perf,
                method=self.characterization_method,
                engine_config=self.engine_config,
                seed=self.seed,
            )
        return self._characterization_cache[app.name]

    def capacities(self, app: ElasticApplication) -> np.ndarray:
        """Measured per-type capacity vector ``W`` (GI/s, catalog order)."""
        return self.characterization(app).capacity_vector()

    def profile(self, app: ElasticApplication) -> ApplicationProfile:
        """Bundle demand model + capacities for persistence."""
        fitted = self.demand_model(app)
        capacities = self.capacities(app)
        return ApplicationProfile(
            app_name=app.name,
            demand=fitted.model,
            capacities_gips={
                t.name: float(w) for t, w in zip(self.catalog, capacities)
            },
        )

    # -- space evaluation (cached) -----------------------------------------------

    def evaluation(self, app: ElasticApplication) -> SpaceEvaluation:
        """``U_j`` / ``C_{j,u}`` over the full space for ``app``.

        Parameters
        ----------
        app:
            The application whose measured capacity vector parameterizes
            the sweep.

        Returns
        -------
        SpaceEvaluation
            Capacity and unit-cost vectors covering linear indices
            ``1..S`` (row ``r`` ↔ index ``r + 1``).

        Cached at two levels: in memory per application name, and — when
        persistence is enabled — on disk keyed by a content hash of the
        catalog and the measured capacity vector, so a second process
        with a warm cache memory-maps the arrays instead of sweeping.

        When persistence is enabled the sweep also runs against a
        :class:`~repro.cache.SweepCheckpoint`: an earlier interrupted
        sweep's completed spans are restored from their shards and only
        the missing spans are evaluated, after which the checkpoint is
        replaced by the final cached artefact.
        """
        if app.name not in self._evaluation_cache:
            capacities = self.capacities(app)
            evaluation = None
            if self.evaluation_cache is not None:
                evaluation = self.evaluation_cache.load(self.space, capacities)
            if evaluation is None:
                checkpoint = None
                if self.evaluation_cache is not None:
                    checkpoint = self.evaluation_cache.sweep_checkpoint(
                        self.space, capacities)
                evaluation = self.space.evaluate(capacities,
                                                 workers=self.workers,
                                                 checkpoint=checkpoint)
                if self.evaluation_cache is not None:
                    self.evaluation_cache.store(evaluation, capacities)
                    checkpoint.discard()
            self._evaluation_cache[app.name] = evaluation
        return self._evaluation_cache[app.name]

    def selection_index(self, app: ElasticApplication):
        """Demand-invariant frontier index for ``app`` (built once, cached).

        After this, every :meth:`select` call without memory constraints
        runs on the O(|frontier|) fast path.

        With persistence enabled this is snapshot-backed: a valid index
        snapshot on disk is memory-mapped in milliseconds (no pass over
        the space, no sorts); otherwise the index is built — merging the
        sweep's fused candidates when the evaluation carries them — and
        persisted so every later process warm-starts.
        ``last_index_from_snapshot`` / ``last_index_load_s`` report what
        the most recent call did (for service metrics).
        """
        import time

        evaluation = self.evaluation(app)
        if evaluation.has_frontier_index():
            return evaluation.frontier_index()
        self.last_index_from_snapshot = False
        self.last_index_load_s = 0.0
        index = None
        if self.evaluation_cache is not None:
            capacities = self.capacities(app)
            t0 = time.perf_counter()
            index = self.evaluation_cache.load_index(evaluation, capacities)
            if index is not None:
                self.last_index_from_snapshot = True
                self.last_index_load_s = time.perf_counter() - t0
                object.__setattr__(evaluation, "_frontier_index", index)
        if index is None:
            index = evaluation.frontier_index()
            if self.evaluation_cache is not None:
                self.evaluation_cache.store_index(index, capacities)
        return index

    def min_cost_index(self, app: ElasticApplication) -> MinCostIndex:
        """Deadline-query index over the space for ``app`` (cached)."""
        if app.name not in self._min_cost_cache:
            self._min_cost_cache[app.name] = MinCostIndex(self.evaluation(app))
        return self._min_cost_cache[app.name]

    def min_time_index(self, app: ElasticApplication) -> MinTimeIndex:
        """Budget-query index over the space for ``app`` (cached)."""
        if app.name not in self._min_time_cache:
            self._min_time_cache[app.name] = MinTimeIndex(self.evaluation(app))
        return self._min_time_cache[app.name]

    # -- queries -------------------------------------------------------------------

    def demand_gi(self, app: ElasticApplication, n: float, a: float) -> float:
        """Estimated demand of ``P(n, a)`` from the fitted model (GI)."""
        app.validate_params(n, a)
        return self.demand_model(app).gi(n, a)

    def predict(self, app: ElasticApplication, n: float, a: float,
                configuration: tuple[int, ...] | list[int]) -> Prediction:
        """Eq. 2 and Eq. 5 for one run on one explicit configuration."""
        vec = np.asarray(configuration, dtype=np.int64)
        if vec.shape != (len(self.catalog),):
            raise ValidationError(
                f"configuration needs {len(self.catalog)} entries"
            )
        if vec.sum() == 0:
            raise ValidationError("configuration must contain at least one node")
        demand = self.demand_gi(app, n, a)
        capacities = self.capacities(app)
        capacity = float(vec @ capacities)
        unit_cost = float(vec @ self.catalog.prices)
        time_h = demand / capacity / 3600.0
        return Prediction(
            configuration=tuple(int(v) for v in vec),
            demand_gi=demand,
            capacity_gips=capacity,
            unit_cost_per_hour=unit_cost,
            time_hours=time_h,
            cost_dollars=time_h * unit_cost,
        )

    def memory_infeasible_types(self, app: ElasticApplication,
                                n: float, a: float) -> list[int]:
        """Catalog indices whose memory cannot host ``P(n, a)``.

        A type is infeasible when ``memory_gb < vcpus × per-vCPU working
        set`` (one worker per vCPU, the paper's execution model).
        """
        app.validate_params(n, a)
        per_vcpu = app.min_memory_gb_per_vcpu(n, a)
        return [
            i for i, t in enumerate(self.catalog)
            if t.memory_gb < t.vcpus * per_vcpu
        ]

    def select(self, app: ElasticApplication, n: float, a: float,
               deadline_hours: float, budget_dollars: float,
               *, enforce_memory: bool = False,
               method: str = "auto") -> SelectionResult:
        """Algorithm 1: all feasible configurations → Pareto frontier.

        Parameters
        ----------
        app:
            The elastic application; its demand model and capacity
            vector are measured on first use and cached.
        n, a:
            Problem size and accuracy of the run being planned.
        deadline_hours, budget_dollars:
            The constraints ``T'`` and ``C'`` (strict, per Algorithm 1).
        enforce_memory:
            Exclude configurations using any type whose memory cannot
            hold the application's working set — an extension beyond the
            paper, which treats all applications as compute-bound
            (matching its evaluation; the default preserves that).
        method:
            Execution strategy (see :func:`select_configurations`);
            build the fast path up front with :meth:`selection_index`
            when many selections are coming.

        Returns
        -------
        SelectionResult
            Feasible/total counts plus the cost-time Pareto frontier
            (empty ``pareto`` means no feasible configuration).

        Raises
        ------
        ValidationError
            If ``(n, a)`` is outside the application's valid parameter
            range, or ``method`` is not one of ``auto`` / ``streamed`` /
            ``indexed``.
        """
        demand = self.demand_gi(app, n, a)
        exclude_mask = None
        if enforce_memory:
            bad_types = self.memory_infeasible_types(app, n, a)
            if bad_types:
                exclude_mask = self.space.mask_using_types(bad_types)
        return select_configurations(
            self.evaluation(app), demand, deadline_hours, budget_dollars,
            exclude_mask=exclude_mask, method=method,
        )

    def min_cost(self, app: ElasticApplication, n: float, a: float,
                 deadline_hours: float,
                 *, budget_dollars: float | None = None) -> OptimizerAnswer:
        """Cheapest configuration meeting the deadline."""
        demand = self.demand_gi(app, n, a)
        return self.min_cost_index(app).query(
            demand, deadline_hours, budget_dollars=budget_dollars
        )

    def min_time(self, app: ElasticApplication, n: float, a: float,
                 budget_dollars: float,
                 *, deadline_hours: float | None = None) -> OptimizerAnswer:
        """Fastest configuration within the budget."""
        demand = self.demand_gi(app, n, a)
        return self.min_time_index(app).query(
            demand, budget_dollars, deadline_hours=deadline_hours
        )
