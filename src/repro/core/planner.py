"""Accuracy and problem-size planning — the inverse CELIA problem.

CELIA answers "what does run P(n, a) cost under deadline T'?".  The
paper's introduction motivates the *inverse* question an elastic-
application user actually has: **given a deadline and a budget, what is
the best accuracy (or largest problem) I can afford?**  Section I calls
these the two fixed-time scaling cases: (i) fix deadline and accuracy,
scale problem size; (ii) fix deadline and problem size, scale accuracy.

Because demand is monotone in both knobs (a defining property of elastic
applications — more accuracy or more data never needs fewer
instructions), the feasible region in each knob is an interval and the
optimum is found by bisection over the knob against the exact min-cost
index: ``O(log(range) · log S)`` per plan.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.optimizer import MinCostIndex, OptimizerAnswer
from repro.errors import InfeasibleError, ValidationError
from repro.measurement.fitting import FittedDemand

__all__ = ["Plan", "max_accuracy_plan", "max_problem_size_plan"]

#: Relative bisection tolerance on the knob value.
DEFAULT_TOLERANCE = 1e-4


@dataclass(frozen=True)
class Plan:
    """A planned run: the chosen knob value and its optimal configuration."""

    knob: str  # "accuracy" or "problem_size"
    value: float
    fixed_value: float  # the other parameter, held constant
    answer: OptimizerAnswer
    deadline_hours: float
    budget_dollars: float

    @property
    def configuration(self) -> tuple[int, ...]:
        """The cost-optimal configuration for the planned run."""
        return self.answer.configuration

    def describe(self) -> str:
        """One-line human summary."""
        return (
            f"max {self.knob} = {self.value:g} "
            f"(deadline {self.deadline_hours:g} h, budget "
            f"${self.budget_dollars:g}) -> {list(self.configuration)} "
            f"at {self.answer.time_hours:.1f} h / ${self.answer.cost_dollars:.2f}"
        )


def _affordable(index: MinCostIndex, demand_gi: float, deadline_hours: float,
                budget_dollars: float) -> OptimizerAnswer | None:
    """Cheapest deadline-meeting answer if it fits the budget, else None."""
    try:
        return index.query(demand_gi, deadline_hours,
                           budget_dollars=budget_dollars)
    except InfeasibleError:
        return None


def _bisect_knob(
    evaluate,  # knob value -> demand GI
    index: MinCostIndex,
    lo: float,
    hi: float,
    deadline_hours: float,
    budget_dollars: float,
    tolerance: float,
    integral: bool,
) -> tuple[float, OptimizerAnswer]:
    """Largest knob value in [lo, hi] whose run is affordable.

    Assumes demand (hence cost) is non-decreasing in the knob.  Raises
    :class:`InfeasibleError` when even ``lo`` is unaffordable.
    """
    if lo > hi:
        raise ValidationError("knob range must satisfy lo <= hi")
    answer_lo = _affordable(index, evaluate(lo), deadline_hours,
                            budget_dollars)
    if answer_lo is None:
        raise InfeasibleError(
            f"even the minimum knob value {lo:g} misses the deadline "
            f"or budget",
            deadline_hours=deadline_hours,
            budget_dollars=budget_dollars,
        )
    answer_hi = _affordable(index, evaluate(hi), deadline_hours,
                            budget_dollars)
    if answer_hi is not None:
        return hi, answer_hi

    best_value, best_answer = lo, answer_lo
    lo_b, hi_b = lo, hi
    while True:
        if integral:
            if hi_b - lo_b <= 1:
                break
            mid = (lo_b + hi_b) // 2
        else:
            if (hi_b - lo_b) <= tolerance * max(abs(hi_b), 1.0):
                break
            mid = 0.5 * (lo_b + hi_b)
        answer = _affordable(index, evaluate(mid), deadline_hours,
                             budget_dollars)
        if answer is None:
            hi_b = mid
        else:
            lo_b = mid
            best_value, best_answer = mid, answer
    return best_value, best_answer


def max_accuracy_plan(
    demand: FittedDemand,
    index: MinCostIndex,
    problem_size: float,
    accuracy_range: tuple[float, float],
    deadline_hours: float,
    budget_dollars: float,
    *,
    integral: bool = False,
    tolerance: float = DEFAULT_TOLERANCE,
) -> Plan:
    """Best affordable accuracy at a fixed problem size (fixed-time case ii).

    Parameters
    ----------
    demand:
        Fitted demand model ``D(n, a)``.
    index:
        Min-cost index over the configuration space.
    problem_size:
        The fixed ``n``.
    accuracy_range:
        Inclusive (lo, hi) search interval for the accuracy knob.
    integral:
        Search integers only (e.g. galaxy's step count).
    """
    if deadline_hours <= 0 or budget_dollars <= 0:
        raise ValidationError("deadline and budget must be positive")
    value, answer = _bisect_knob(
        lambda a: demand.gi(problem_size, a),
        index, accuracy_range[0], accuracy_range[1],
        deadline_hours, budget_dollars, tolerance, integral,
    )
    return Plan(
        knob="accuracy",
        value=float(value),
        fixed_value=problem_size,
        answer=answer,
        deadline_hours=deadline_hours,
        budget_dollars=budget_dollars,
    )


def max_problem_size_plan(
    demand: FittedDemand,
    index: MinCostIndex,
    accuracy: float,
    size_range: tuple[float, float],
    deadline_hours: float,
    budget_dollars: float,
    *,
    integral: bool = True,
    tolerance: float = DEFAULT_TOLERANCE,
) -> Plan:
    """Largest affordable problem at a fixed accuracy (fixed-time case i)."""
    if deadline_hours <= 0 or budget_dollars <= 0:
        raise ValidationError("deadline and budget must be positive")
    value, answer = _bisect_knob(
        lambda n: demand.gi(n, accuracy),
        index, size_range[0], size_range[1],
        deadline_hours, budget_dollars, tolerance, integral,
    )
    return Plan(
        knob="problem_size",
        value=float(value),
        fixed_value=accuracy,
        answer=answer,
        deadline_hours=deadline_hours,
        budget_dollars=budget_dollars,
    )
