"""Tri-objective frontiers: time × cost × accuracy.

CELIA fixes the accuracy and finds the 2-D (time, cost) frontier; the
elastic-application story really has **three** objectives — the quality
of the result trades against both money and time.  This module sweeps
the accuracy knob, pools (time, cost, −accuracy-score) points over all
(configuration, accuracy) pairs, and extracts the 3-D nondominated set
with the ε-archive (the pareto.py reimplementation handles any
dimension).  The result answers questions like "what accuracies are even
*on the table* at this deadline, and what does each quality tier cost?".

Configurations per accuracy level come pre-filtered: only each level's
2-D (time, cost) frontier can contribute to the 3-D frontier (adding a
dimension never un-dominates a point that was dominated at equal
accuracy), keeping the pooled set small.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.configspace import SpaceEvaluation
from repro.core.selection import select_configurations
from repro.errors import ValidationError
from repro.measurement.fitting import FittedDemand
from repro.pareto.epsilon import eps_sort

__all__ = ["TriObjectivePoint", "TriObjectiveFrontier",
           "tri_objective_frontier"]


@dataclass(frozen=True, slots=True)
class TriObjectivePoint:
    """One nondominated (configuration, accuracy) choice."""

    configuration: tuple[int, ...]
    accuracy: float
    accuracy_score: float
    time_hours: float
    cost_dollars: float


@dataclass(frozen=True)
class TriObjectiveFrontier:
    """The 3-D frontier over (time, cost, accuracy score)."""

    points: tuple[TriObjectivePoint, ...]
    deadline_hours: float
    budget_dollars: float

    def __len__(self) -> int:
        return len(self.points)

    def accuracies_available(self) -> list[float]:
        """Distinct accuracy knob values present on the frontier."""
        return sorted({p.accuracy for p in self.points})

    def best_accuracy(self) -> TriObjectivePoint:
        """Highest-scoring point (cheapest among ties)."""
        if not self.points:
            raise ValidationError("empty frontier")
        return max(self.points,
                   key=lambda p: (p.accuracy_score, -p.cost_dollars))

    def cheapest_at(self, accuracy: float) -> TriObjectivePoint:
        """Cheapest frontier point at one accuracy value."""
        candidates = [p for p in self.points if p.accuracy == accuracy]
        if not candidates:
            raise ValidationError(
                f"accuracy {accuracy} not on the frontier")
        return min(candidates, key=lambda p: p.cost_dollars)

    def render(self) -> str:
        """Frontier grouped by accuracy tier."""
        lines = [
            f"tri-objective frontier (T' = {self.deadline_hours:g} h, "
            f"C' = ${self.budget_dollars:g}): {len(self.points)} points, "
            f"{len(self.accuracies_available())} accuracy tiers",
        ]
        for a in self.accuracies_available():
            best = self.cheapest_at(a)
            lines.append(
                f"  accuracy {a:g} (score {best.accuracy_score:.3f}): "
                f"from ${best.cost_dollars:.2f} / {best.time_hours:.1f} h "
                f"on {list(best.configuration)}"
            )
        return "\n".join(lines)


def tri_objective_frontier(
    evaluation: SpaceEvaluation,
    demand: FittedDemand,
    accuracy_score_fn,
    problem_size: float,
    accuracy_levels: np.ndarray,
    deadline_hours: float,
    budget_dollars: float,
) -> TriObjectiveFrontier:
    """Pool per-accuracy 2-D frontiers and extract the 3-D frontier.

    Parameters
    ----------
    evaluation:
        Full-space ``U``/``C_u`` evaluation (capacities are accuracy-
        independent — the paper's per-app characterization).
    demand:
        Fitted demand model providing ``gi(n, a)``.
    accuracy_score_fn:
        Maps the accuracy knob to a (0, 1] quality score (monotone).
    accuracy_levels:
        Knob values to consider.
    """
    levels = np.asarray(accuracy_levels, dtype=float)
    if levels.ndim != 1 or levels.size == 0:
        raise ValidationError("accuracy_levels must be a non-empty 1-D array")

    pooled_rows: list[list[float]] = []
    pooled_tags: list[TriObjectivePoint] = []
    for a in levels:
        demand_gi = demand.gi(problem_size, float(a))
        selection = select_configurations(
            evaluation, demand_gi, deadline_hours, budget_dollars)
        score = float(accuracy_score_fn(float(a)))
        for p in selection.pareto:
            pooled_rows.append([p.time_hours, p.cost_dollars, -score])
            pooled_tags.append(
                TriObjectivePoint(
                    configuration=p.configuration,
                    accuracy=float(a),
                    accuracy_score=score,
                    time_hours=p.time_hours,
                    cost_dollars=p.cost_dollars,
                )
            )

    if not pooled_rows:
        return TriObjectiveFrontier(points=(), deadline_hours=deadline_hours,
                                    budget_dollars=budget_dollars)
    _, tags = eps_sort(np.asarray(pooled_rows), tags=pooled_tags)
    points = tuple(sorted(tags, key=lambda p: (p.accuracy, p.time_hours)))
    return TriObjectiveFrontier(points=points, deadline_hours=deadline_hours,
                                budget_dollars=budget_dollars)
