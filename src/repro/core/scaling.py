"""Fixed-time scaling analyses — Section IV-E.2, Figures 5 and 6.

Fixed-time scaling holds the deadline constant and grows the application
along one axis:

* **problem-size scaling** (Figure 5): fix accuracy, sweep ``n`` —
  Gustafson-style growth of the problem with the platform;
* **accuracy scaling** (Figure 6): fix ``n``, sweep the accuracy knob —
  the elastic-application trade-off of quality for cost.

For each sweep point the minimum execution cost under the deadline is
found exactly (via :class:`~repro.core.optimizer.MinCostIndex`), along
with the winning configuration, so the analysis can annotate *category
spills* — the points where the optimum first draws nodes from a less
cost-efficient category and the cost curve's gradient jumps
(Observation 2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.optimizer import MinCostIndex
from repro.errors import InfeasibleError, ValidationError
from repro.utils.mathutil import approx_gradient

__all__ = ["ScalingCurve", "fixed_time_scaling"]


@dataclass(frozen=True)
class ScalingCurve:
    """Minimum-cost curve for one deadline over one swept parameter."""

    deadline_hours: float
    parameter_name: str
    parameter_values: np.ndarray
    costs: np.ndarray  # inf where infeasible
    demands_gi: np.ndarray
    configurations: tuple[tuple[int, ...] | None, ...]

    def feasible_mask(self) -> np.ndarray:
        """True where a deadline-meeting configuration exists."""
        return np.isfinite(self.costs)

    def spill_points(self, category_slices: list[slice]) -> list[int]:
        """Sweep indices where the optimum first uses a new category.

        ``category_slices`` maps each category to its columns of the
        configuration vector (e.g. ``[slice(0,3), slice(3,6),
        slice(6,9)]`` for the paper's catalog).  Returns indices ``k``
        such that the configuration at ``k`` uses a category the
        configuration at ``k-1`` did not.
        """
        spills = []
        prev_used: set[int] | None = None
        for k, config in enumerate(self.configurations):
            if config is None:
                prev_used = None
                continue
            used = {
                ci for ci, sl in enumerate(category_slices)
                if any(v > 0 for v in config[sl])
            }
            if prev_used is not None and used - prev_used:
                spills.append(k)
            prev_used = used
        return spills

    def gradient_break_indices(self, *, rel_jump: float = 0.25) -> list[int]:
        """Sweep indices where the cost gradient jumps by > ``rel_jump``.

        Detects Figure 6(a)'s "sudden changes of gradient" numerically;
        compared against :meth:`spill_points` they coincide (Observation 2).
        """
        mask = self.feasible_mask()
        if mask.sum() < 3:
            return []
        x = np.asarray(self.parameter_values, dtype=float)[mask]
        y = self.costs[mask]
        grads = approx_gradient(x, y)
        breaks = []
        original_indices = np.flatnonzero(mask)
        for k in range(1, grads.size):
            if grads[k - 1] <= 0:
                continue
            if grads[k] / grads[k - 1] - 1.0 > rel_jump:
                breaks.append(int(original_indices[k + 1]))
        return breaks

    def cost_demand_elasticity(self) -> np.ndarray:
        """Pointwise d(log cost)/d(log demand) along the feasible sweep.

        Observation 2 states this exceeds 1 once categories mix: cost
        grows *faster* than resource demand.
        """
        mask = self.feasible_mask()
        d = self.demands_gi[mask]
        c = self.costs[mask]
        if d.size < 2:
            raise ValidationError("need at least two feasible points")
        return approx_gradient(np.log(d), np.log(c))


def fixed_time_scaling(
    index: MinCostIndex,
    demands_gi: np.ndarray,
    parameter_values: np.ndarray,
    deadline_hours: float,
    *,
    parameter_name: str = "n",
    budget_dollars: float | None = None,
) -> ScalingCurve:
    """Minimum cost at a fixed deadline for each demand in a sweep.

    ``demands_gi[k]`` must be the demand of the run with
    ``parameter_values[k]`` (callers compute it from a demand model with
    the other parameter held fixed).  Infeasible points get cost ``inf``
    and configuration ``None``.
    """
    demands = np.asarray(demands_gi, dtype=float)
    values = np.asarray(parameter_values, dtype=float)
    if demands.shape != values.shape or demands.ndim != 1:
        raise ValidationError("demands and parameter values must align (1-D)")

    costs = np.empty(demands.size)
    configs: list[tuple[int, ...] | None] = []
    for k, d in enumerate(demands):
        try:
            answer = index.query(float(d), deadline_hours,
                                 budget_dollars=budget_dollars)
        except InfeasibleError:
            costs[k] = np.inf
            configs.append(None)
        else:
            costs[k] = answer.cost_dollars
            configs.append(answer.configuration)
    return ScalingCurve(
        deadline_hours=deadline_hours,
        parameter_name=parameter_name,
        parameter_values=values,
        costs=costs,
        demands_gi=demands,
        configurations=tuple(configs),
    )
