"""Fused sweep kernel — decode, reduce and harvest frontier candidates.

The serial loop, the supervised workers and the checkpoint-resume path
all evaluate the space through one :class:`ChunkKernel`, which owns a
set of preallocated tile-sized buffers (:data:`KERNEL_TILE` rows, for
cache locality) so the hot loop performs zero large allocations: the linear indices are written into a reused
``arange`` template, the mixed-radix decode runs in-place with
``floor_divide``/``remainder``, and the capacity/unit-cost reductions
are two matrix–vector products straight into the caller's output
slices.  The float64 work matrix holds the same small non-negative
integers the old ``int16`` decode produced, so the matvecs see
bit-identical inputs and write bit-identical outputs.

On top of the evaluation, :func:`chunk_frontier_candidates` harvests
each chunk's local Pareto candidates over ``(−capacity, cost_ratio)``
— the demand-invariant objective pair of
:class:`repro.core.selection.FrontierIndex` — cheaply enough to run
inside the sweep.  A full per-chunk nondomination scan would cost a
2M-element ``lexsort`` per chunk; instead a *witness filter* prunes the
chunk first:

1. split the chunk into tiles and take each tile's minimum-ratio point
   as a witness;
2. sort the witnesses by capacity and suffix-minimize their ratios;
3. a point is discarded iff some witness has strictly greater capacity
   AND strictly smaller ratio — such a witness strictly dominates the
   point, so discarding is always safe;
4. the exact ``pareto_mask_2d`` then runs on the few survivors.

Survivors are a superset of the chunk's true local frontier, and the
Pareto set of any superset-of-the-frontier subset of the chunk equals
the chunk's frontier exactly (every strict-dominator chain ends at a
nondominated point, which is itself a survivor), so the candidate rows
are *identical* to a full per-chunk scan — only ~10× cheaper.  For the
same reason the final merge over all candidates is bit-identical to the
two-pass full-space scan regardless of chunk grid, span partitioning,
duplicated spans or resume granularity.
"""

from __future__ import annotations

import numpy as np

from repro.pareto.frontier import pareto_mask_2d

__all__ = [
    "DEFAULT_WITNESS_TILE",
    "KERNEL_TILE",
    "ChunkKernel",
    "chunk_frontier_candidates",
    "frontier_candidates_from_values",
]

#: Tile width of the witness filter (2048 witnesses per 2M-row chunk).
#: Smaller tiles mean more witnesses and a stronger filter; the knee is
#: around 1k rows — below it the per-tile overhead starts to dominate,
#: above it too many points survive to the exact Pareto pass.
DEFAULT_WITNESS_TILE = 1 << 10

#: Rows per internal decode/reduce tile.  A full 2M-row chunk drags
#: ~300 MB of work buffers through memory; tiling keeps the decode's
#: working set near the cache and roughly halves the serial sweep.
#: Purely an execution detail — outputs are written slice by slice and
#: are bit-identical for any tile width.
KERNEL_TILE = 1 << 17


class ChunkKernel:
    """Reusable buffers + fused decode/reduce for one sweep.

    Parameters
    ----------
    strides, radices:
        The space's mixed-radix code (``ConfigurationSpace.strides`` /
        ``.radices``).
    weights, prices:
        Per-type capacity vector ``W`` (GI/s) and hourly prices — the
        two reduction vectors.
    max_chunk:
        Largest chunk length this kernel will see; buffer sizes.
    """

    def __init__(self, strides: np.ndarray, radices: np.ndarray,
                 weights: np.ndarray, prices: np.ndarray, *, max_chunk: int):
        if max_chunk < 1:
            raise ValueError("max_chunk must be >= 1")
        self.strides = np.ascontiguousarray(strides, dtype=np.int64)
        self.radices = np.ascontiguousarray(radices, dtype=np.int64)
        self.weights = np.ascontiguousarray(weights, dtype=np.float64)
        self.prices = np.ascontiguousarray(prices, dtype=np.float64)
        m = self.strides.size
        self.max_chunk = int(max_chunk)
        self._tile_rows = min(self.max_chunk, KERNEL_TILE)
        self._base = np.arange(self._tile_rows, dtype=np.int64)
        self._idx = np.empty(self._tile_rows, dtype=np.int64)
        self._work = np.empty((self._tile_rows, m), dtype=np.int64)
        self._fwork = np.empty((self._tile_rows, m), dtype=np.float64)
        self._ratio = np.empty(self.max_chunk, dtype=np.float64)

    def evaluate_into(self, start: int, stop: int, capacity_out: np.ndarray,
                      unit_cost_out: np.ndarray) -> None:
        """Reduce linear indices ``[start, stop)`` into the output slices.

        ``capacity_out`` / ``unit_cost_out`` must be contiguous float64
        views of length ``stop - start`` (e.g. slices of the S-length
        output arrays at offset ``start - 1``).  Internally processed in
        :data:`KERNEL_TILE`-row tiles for cache locality.
        """
        for s in range(start, stop, self._tile_rows):
            e = min(s + self._tile_rows, stop)
            self._evaluate_tile(s, e, capacity_out[s - start:e - start],
                                unit_cost_out[s - start:e - start])

    def _evaluate_tile(self, start: int, stop: int, capacity_out: np.ndarray,
                       unit_cost_out: np.ndarray) -> None:
        k = stop - start
        idx = self._idx[:k]
        np.add(self._base[:k], start, out=idx)
        work = self._work[:k]
        np.floor_divide(idx[:, None], self.strides[None, :], out=work)
        np.remainder(work, self.radices[None, :], out=work)
        fwork = self._fwork[:k]
        fwork[...] = work  # exact small-integer cast; matvec inputs match
        np.matmul(fwork, self.weights, out=capacity_out)
        np.matmul(fwork, self.prices, out=unit_cost_out)

    def frontier_candidates(self, start: int, capacity: np.ndarray,
                            unit_cost: np.ndarray,
                            *, tile: int = DEFAULT_WITNESS_TILE
                            ) -> np.ndarray:
        """Local Pareto candidate rows of one just-evaluated chunk.

        ``start`` is the chunk's first linear index; the returned rows
        are global 0-based evaluation rows (``linear index − 1``).
        """
        k = capacity.size
        ratio = self._ratio[:k]
        np.divide(unit_cost, capacity, out=ratio)
        return _chunk_candidates(capacity, ratio, start - 1, tile)


def _chunk_candidates(capacity: np.ndarray, ratio: np.ndarray,
                      base_row: int, tile: int) -> np.ndarray:
    """Witness-filtered exact local Pareto rows (ascending, global)."""
    k = capacity.size
    if k == 0:
        return np.empty(0, dtype=np.int64)
    if k > tile:
        n_tiles = -(-k // tile)
        pad = n_tiles * tile - k
        if pad:
            # Sentinels: an inf ratio is never a witness; a -inf capacity
            # padding row cannot dominate anything real.
            rpad = np.concatenate([ratio, np.full(pad, np.inf)])
            cpad = np.concatenate([capacity, np.full(pad, -np.inf)])
        else:
            rpad, cpad = ratio, capacity
        arg = rpad.reshape(n_tiles, tile).argmin(axis=1)
        wit_rows = np.arange(n_tiles, dtype=np.int64) * tile + arg
        order = np.argsort(cpad[wit_rows], kind="stable")
        wit_rows = wit_rows[order]
        wit_capacity = cpad[wit_rows]
        # Minimum witness ratio over witnesses at position > p, i.e. with
        # capacity >= wit_capacity[p]; searchsorted side="right" makes the
        # capacity comparison strict for the queried point.
        suffix_min = np.minimum.accumulate(rpad[wit_rows][::-1])[::-1]
        lookup = np.append(suffix_min, np.inf)
        pos = np.searchsorted(wit_capacity, capacity, side="right")
        survivors = np.flatnonzero(lookup[pos] >= ratio)
        local = pareto_mask_2d(-capacity[survivors], ratio[survivors])
        return survivors[local] + base_row
    local = pareto_mask_2d(-capacity, np.asarray(ratio))
    return np.flatnonzero(local) + base_row


def chunk_frontier_candidates(capacity: np.ndarray, unit_cost: np.ndarray,
                              base_row: int,
                              *, tile: int = DEFAULT_WITNESS_TILE
                              ) -> np.ndarray:
    """Buffer-free variant of :meth:`ChunkKernel.frontier_candidates`.

    Used where no kernel is alive: recomputing candidates for resumed
    checkpoint spans and the cold (no-candidates) ``FrontierIndex``
    scan.  ``base_row`` is the global 0-based row of ``capacity[0]``.
    """
    ratio = unit_cost / capacity
    return _chunk_candidates(capacity, ratio, base_row, tile)


def frontier_candidates_from_values(capacity: np.ndarray,
                                    unit_cost: np.ndarray,
                                    base_row: int = 0,
                                    *, chunk_size: int,
                                    tile: int = DEFAULT_WITNESS_TILE
                                    ) -> np.ndarray:
    """Candidate rows of a whole value range, chunk by chunk.

    The chunk grid does not affect the final merged frontier (see the
    module docstring), so callers may pass any positive ``chunk_size``.
    """
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    total = capacity.size
    parts = [
        chunk_frontier_candidates(capacity[s:min(s + chunk_size, total)],
                                  unit_cost[s:min(s + chunk_size, total)],
                                  base_row + s, tile=tile)
        for s in range(0, total, chunk_size)
    ]
    if not parts:
        return np.empty(0, dtype=np.int64)
    return np.concatenate(parts)
