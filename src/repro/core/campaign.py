"""Campaign planning: budget allocation across multiple elastic runs.

A lab rarely runs one job.  Given several independent elastic runs (each
with its own application, problem size and accuracy range) plus a shared
deadline and one *total* budget, how should the budget be split so total
output quality is maximized?

Because each run's accuracy-vs-cost curve is concave for the paper's
applications (linear or logarithmic accuracy terms mean diminishing
accuracy returns per dollar; quadratic ones are handled by working on
the measured curve directly), greedy marginal allocation is near-optimal:
repeatedly give the next budget increment to the run with the best
accuracy-score gain per dollar.  The curves themselves come from the
exact per-run optimum (:class:`~repro.core.optimizer.MinCostIndex`), so
each candidate allocation is individually cost-optimal.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.base import ElasticApplication
from repro.core.optimizer import MinCostIndex
from repro.errors import InfeasibleError, ValidationError
from repro.measurement.fitting import FittedDemand

__all__ = ["CampaignRun", "RunAllocation", "CampaignPlan", "plan_campaign"]


@dataclass(frozen=True)
class CampaignRun:
    """One elastic run competing for the campaign budget."""

    name: str
    app: ElasticApplication
    demand: FittedDemand
    index: MinCostIndex
    problem_size: float
    accuracy_levels: np.ndarray  # candidate knob values, ascending
    #: Relative importance of this run's accuracy score (default 1).
    weight: float = 1.0

    def __post_init__(self) -> None:
        levels = np.asarray(self.accuracy_levels, dtype=float)
        if levels.ndim != 1 or levels.size < 1:
            raise ValidationError("accuracy_levels must be a 1-D array")
        if np.any(np.diff(levels) <= 0):
            raise ValidationError("accuracy_levels must be strictly increasing")
        if self.weight <= 0:
            raise ValidationError("weight must be positive")


@dataclass(frozen=True)
class RunAllocation:
    """The chosen accuracy level and configuration for one run."""

    run_name: str
    accuracy: float | None  # None when the run was dropped entirely
    cost_dollars: float
    score: float
    configuration: tuple[int, ...] | None


@dataclass(frozen=True)
class CampaignPlan:
    """A full campaign allocation."""

    allocations: tuple[RunAllocation, ...]
    total_cost: float
    total_score: float
    budget_dollars: float
    deadline_hours: float

    def allocation_for(self, run_name: str) -> RunAllocation:
        """Allocation of one run by name."""
        for alloc in self.allocations:
            if alloc.run_name == run_name:
                return alloc
        raise KeyError(f"no allocation for run {run_name!r}")

    def render(self) -> str:
        """Readable allocation table."""
        lines = [
            f"campaign plan: budget ${self.budget_dollars:g}, "
            f"deadline {self.deadline_hours:g} h -> total score "
            f"{self.total_score:.3f} at ${self.total_cost:.2f}",
        ]
        for alloc in self.allocations:
            if alloc.accuracy is None:
                lines.append(f"  {alloc.run_name}: dropped (unaffordable)")
            else:
                lines.append(
                    f"  {alloc.run_name}: accuracy {alloc.accuracy:g} "
                    f"(score {alloc.score:.3f}) for "
                    f"${alloc.cost_dollars:.2f} on "
                    f"{list(alloc.configuration)}"
                )
        return "\n".join(lines)


def _cost_score_curves(run: CampaignRun, deadline_hours: float
                       ) -> tuple[np.ndarray, np.ndarray, list]:
    """(costs, weighted scores, answers) per feasible accuracy level."""
    costs = []
    scores = []
    answers = []
    for level in run.accuracy_levels:
        demand_gi = run.demand.gi(run.problem_size, float(level))
        try:
            answer = run.index.query(demand_gi, deadline_hours)
        except InfeasibleError:
            break  # higher levels only need more capacity
        costs.append(answer.cost_dollars)
        scores.append(run.weight * run.app.accuracy_score(float(level)))
        answers.append(answer)
    return np.asarray(costs), np.asarray(scores), answers


def plan_campaign(
    runs: list[CampaignRun],
    deadline_hours: float,
    budget_dollars: float,
) -> CampaignPlan:
    """Greedy marginal allocation of one budget across runs.

    Every run starts unallocated (score 0).  At each step, the upgrade
    (run, next accuracy level) with the highest score gain per marginal
    dollar that still fits the remaining budget is applied.  Runs whose
    cheapest level never fits are dropped with a zero score.

    Deadlines are per-run (all runs may execute concurrently on separate
    configurations; the provider's quota is assumed per-run, matching the
    paper's single-application scope).
    """
    if not runs:
        raise ValidationError("campaign needs at least one run")
    if deadline_hours <= 0 or budget_dollars <= 0:
        raise ValidationError("deadline and budget must be positive")
    names = [r.name for r in runs]
    if len(set(names)) != len(names):
        raise ValidationError("run names must be unique")

    curves = {r.name: _cost_score_curves(r, deadline_hours) for r in runs}
    # current level index per run: -1 = not scheduled.
    chosen: dict[str, int] = {r.name: -1 for r in runs}
    spent = 0.0

    while True:
        best_name = None
        best_gain_rate = 0.0
        best_delta_cost = 0.0
        for r in runs:
            costs, scores, _ = curves[r.name]
            k = chosen[r.name]
            if k + 1 >= costs.size:
                continue
            delta_cost = costs[k + 1] - (costs[k] if k >= 0 else 0.0)
            delta_score = scores[k + 1] - (scores[k] if k >= 0 else 0.0)
            if delta_cost <= 0:
                # Free upgrade (cost curve flat): always take it.
                gain_rate = np.inf
            else:
                if spent + delta_cost > budget_dollars:
                    continue
                gain_rate = delta_score / delta_cost
            if gain_rate > best_gain_rate:
                best_gain_rate = gain_rate
                best_name = r.name
                best_delta_cost = max(delta_cost, 0.0)
        if best_name is None:
            break
        chosen[best_name] += 1
        spent += best_delta_cost
        # Recompute spent exactly to avoid drift on free upgrades.
        spent = sum(
            curves[name][0][k] for name, k in chosen.items() if k >= 0
        )

    allocations = []
    total_score = 0.0
    for r in runs:
        costs, scores, answers = curves[r.name]
        k = chosen[r.name]
        if k < 0:
            allocations.append(RunAllocation(
                run_name=r.name, accuracy=None, cost_dollars=0.0,
                score=0.0, configuration=None))
        else:
            total_score += float(scores[k])
            allocations.append(RunAllocation(
                run_name=r.name,
                accuracy=float(r.accuracy_levels[k]),
                cost_dollars=float(costs[k]),
                score=float(scores[k]),
                configuration=answers[k].configuration,
            ))
    total_cost = sum(a.cost_dollars for a in allocations)
    return CampaignPlan(
        allocations=tuple(allocations),
        total_cost=total_cost,
        total_score=total_score,
        budget_dollars=budget_dollars,
        deadline_hours=deadline_hours,
    )
