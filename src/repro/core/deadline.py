"""Cost of tightening the time deadline — Section IV-E.3, Observation 3.

Fix the problem size and accuracy and watch the minimum cost as the
deadline shrinks.  The paper's claim: the *relative* cost increase is
always smaller than the relative deadline reduction (tightening by
two-thirds costs galaxy only ~40% more).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.optimizer import MinCostIndex
from repro.errors import InfeasibleError, ValidationError

__all__ = ["DeadlineStudy", "deadline_tightening_study"]


@dataclass(frozen=True)
class DeadlineStudy:
    """Minimum cost as a function of the deadline, for one fixed run."""

    demand_gi: float
    deadlines_hours: np.ndarray  # descending (loosest first)
    costs: np.ndarray  # inf where infeasible
    configurations: tuple[tuple[int, ...] | None, ...]

    def tightening(self, from_hours: float, to_hours: float
                   ) -> tuple[float, float]:
        """(deadline reduction fraction, cost increase fraction).

        E.g. ``tightening(72, 24)`` → ``(0.667, 0.40)`` reproduces the
        paper's galaxy headline.  Raises when either deadline was not in
        the study or is infeasible.
        """
        if to_hours >= from_hours:
            raise ValidationError("tightening requires to < from")
        costs = {float(d): float(c)
                 for d, c in zip(self.deadlines_hours, self.costs)}
        try:
            c_from, c_to = costs[float(from_hours)], costs[float(to_hours)]
        except KeyError as exc:
            raise ValidationError(f"deadline {exc} not in study") from None
        if not (np.isfinite(c_from) and np.isfinite(c_to)):
            raise InfeasibleError("one of the deadlines is infeasible")
        reduction = 1.0 - to_hours / from_hours
        increase = c_to / c_from - 1.0
        return reduction, increase

    def increase_always_smaller_than_reduction(self) -> bool:
        """Observation 3 as a predicate over all feasible deadline pairs."""
        feasible = np.isfinite(self.costs)
        d = self.deadlines_hours[feasible]
        c = self.costs[feasible]
        for i in range(d.size):
            for j in range(i + 1, d.size):
                if d[j] >= d[i]:
                    continue
                reduction = 1.0 - d[j] / d[i]
                increase = c[j] / c[i] - 1.0
                if increase >= reduction:
                    return False
        return True


def deadline_tightening_study(
    index: MinCostIndex,
    demand_gi: float,
    deadlines_hours: np.ndarray | list[float],
) -> DeadlineStudy:
    """Minimum cost at each deadline for one fixed (n, a) run."""
    deadlines = np.sort(np.asarray(deadlines_hours, dtype=float))[::-1]
    if np.any(deadlines <= 0):
        raise ValidationError("deadlines must be positive")
    costs = np.empty(deadlines.size)
    configs: list[tuple[int, ...] | None] = []
    for k, deadline in enumerate(deadlines):
        try:
            answer = index.query(demand_gi, float(deadline))
        except InfeasibleError:
            costs[k] = np.inf
            configs.append(None)
        else:
            costs[k] = answer.cost_dollars
            configs.append(answer.configuration)
    return DeadlineStudy(
        demand_gi=demand_gi,
        deadlines_hours=deadlines,
        costs=costs,
        configurations=tuple(configs),
    )
