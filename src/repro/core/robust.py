"""Robust configuration selection under prediction error.

Table IV shows CELIA's predictions are off by up to ~17%; a
configuration whose *predicted* time equals the deadline therefore
misses it roughly half the time.  This module makes the risk explicit:

* :func:`select_with_margin` — plan against a tightened deadline/budget
  (the standard engineering hedge), reporting what the margin costs;
* :func:`deadline_miss_probability` — Monte-Carlo estimate of the actual
  miss probability of a configuration, by repeatedly executing it on the
  stochastic discrete-event engine with fresh instances;
* :func:`calibrate_margin` — the smallest margin whose selected
  configuration achieves a target on-time probability.

This extends the paper (which validates errors but does not close the
loop back into selection) along the direction its own Table IV motivates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.base import ElasticApplication
from repro.cloud.catalog import Catalog
from repro.core.optimizer import MinCostIndex, OptimizerAnswer
from repro.engine.runner import EngineConfig, run_on_configuration
from repro.errors import InfeasibleError, ValidationError

__all__ = [
    "MarginSelection",
    "MissEstimate",
    "select_with_margin",
    "deadline_miss_probability",
    "calibrate_margin",
]


@dataclass(frozen=True)
class MarginSelection:
    """A margin-hedged selection and its cost relative to the naive one."""

    margin: float
    answer: OptimizerAnswer
    naive_answer: OptimizerAnswer
    deadline_hours: float

    @property
    def insurance_cost_fraction(self) -> float:
        """Extra predicted cost paid for the margin (>= 0)."""
        return (self.answer.cost_dollars / self.naive_answer.cost_dollars
                - 1.0)

    @property
    def predicted_headroom_hours(self) -> float:
        """Deadline minus the hedged configuration's predicted time."""
        return self.deadline_hours - self.answer.time_hours


def select_with_margin(
    index: MinCostIndex,
    demand_gi: float,
    deadline_hours: float,
    *,
    margin: float = 0.15,
    budget_dollars: float | None = None,
) -> MarginSelection:
    """Cheapest configuration meeting ``deadline × (1 − margin)``.

    ``margin`` is the fraction of the deadline reserved as headroom;
    0.15 covers the paper's worst observed time error (16.7%) with a
    little slack.  Raises :class:`InfeasibleError` when the catalog has
    no configuration fast enough for the tightened deadline.
    """
    if not (0.0 <= margin < 1.0):
        raise ValidationError("margin must be in [0, 1)")
    naive = index.query(demand_gi, deadline_hours,
                        budget_dollars=budget_dollars)
    hedged = index.query(demand_gi, deadline_hours * (1.0 - margin),
                         budget_dollars=budget_dollars)
    return MarginSelection(
        margin=margin,
        answer=hedged,
        naive_answer=naive,
        deadline_hours=deadline_hours,
    )


@dataclass(frozen=True)
class MissEstimate:
    """Monte-Carlo deadline-miss estimate for one configuration."""

    configuration: tuple[int, ...]
    deadline_hours: float
    trials: int
    misses: int
    mean_time_hours: float
    p95_time_hours: float
    mean_cost_dollars: float

    @property
    def miss_probability(self) -> float:
        """Fraction of trials exceeding the deadline."""
        return self.misses / self.trials


def deadline_miss_probability(
    app: ElasticApplication,
    n: float,
    a: float,
    configuration: tuple[int, ...],
    catalog: Catalog,
    deadline_hours: float,
    *,
    trials: int = 20,
    engine_config: EngineConfig | None = None,
    seed: int = 0,
) -> MissEstimate:
    """Execute the configuration ``trials`` times and count deadline misses.

    Each trial provisions fresh instances (new contention draws) and
    replays the full stochastic execution — the same machinery behind
    Table IV's "actual" columns.
    """
    if trials < 1:
        raise ValidationError("need at least one trial")
    if deadline_hours <= 0:
        raise ValidationError("deadline must be positive")
    times = np.empty(trials)
    costs = np.empty(trials)
    for k in range(trials):
        report = run_on_configuration(
            app, n, a, configuration, catalog,
            config=engine_config, seed=seed + 7919 * (k + 1),
        )
        times[k] = report.time_hours
        costs[k] = report.cost_dollars
    misses = int(np.count_nonzero(times > deadline_hours))
    return MissEstimate(
        configuration=tuple(int(v) for v in configuration),
        deadline_hours=deadline_hours,
        trials=trials,
        misses=misses,
        mean_time_hours=float(times.mean()),
        p95_time_hours=float(np.quantile(times, 0.95)),
        mean_cost_dollars=float(costs.mean()),
    )


def calibrate_margin(
    app: ElasticApplication,
    n: float,
    a: float,
    index: MinCostIndex,
    demand_gi: float,
    catalog: Catalog,
    deadline_hours: float,
    *,
    target_on_time: float = 0.95,
    margins: tuple[float, ...] = (0.0, 0.05, 0.10, 0.15, 0.20, 0.30),
    trials: int = 20,
    engine_config: EngineConfig | None = None,
    seed: int = 0,
) -> tuple[MarginSelection, MissEstimate]:
    """Smallest margin achieving the target on-time probability.

    Walks the margin grid in increasing order, Monte-Carlo-validating
    each hedged selection, and returns the first that meets the target.
    Raises :class:`InfeasibleError` when no margin in the grid suffices
    (or the tightened deadlines become unreachable).
    """
    if not (0.0 < target_on_time <= 1.0):
        raise ValidationError("target_on_time must be in (0, 1]")
    last_error: str = "no margin evaluated"
    for margin in sorted(margins):
        try:
            selection = select_with_margin(index, demand_gi, deadline_hours,
                                           margin=margin)
        except InfeasibleError as exc:
            last_error = str(exc)
            break  # larger margins only tighten further
        estimate = deadline_miss_probability(
            app, n, a, selection.answer.configuration, catalog,
            deadline_hours, trials=trials, engine_config=engine_config,
            seed=seed,
        )
        if 1.0 - estimate.miss_probability >= target_on_time:
            return selection, estimate
        last_error = (
            f"margin {margin:.0%} achieves only "
            f"{1 - estimate.miss_probability:.0%} on-time"
        )
    raise InfeasibleError(
        f"no margin in {margins} reaches {target_on_time:.0%} on-time "
        f"probability ({last_error})",
        deadline_hours=deadline_hours,
    )
