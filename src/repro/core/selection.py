"""Algorithm 1 — resource configuration selection.

Enumerate every configuration, predict its time and cost, keep those with
``T < T'`` and ``C < C'``, and pass the survivors through the
Pareto-optimal filter.  Because the whole space is explored, *all*
optimal configurations are found (the paper's exhaustiveness guarantee).

The implementation streams the space in chunks: each chunk contributes
its feasible count and its local 2-D Pareto candidates; the candidates
are merged and re-filtered at the end (the Pareto set of a union is a
subset of the union of per-chunk Pareto sets, so this is exact).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.configspace import DEFAULT_CHUNK, ConfigurationSpace, SpaceEvaluation
from repro.errors import ValidationError
from repro.pareto.frontier import pareto_mask_2d

__all__ = ["ParetoPoint", "SelectionResult", "select_configurations"]


@dataclass(frozen=True, slots=True)
class ParetoPoint:
    """One Pareto-optimal configuration with its predictions."""

    configuration: tuple[int, ...]
    time_hours: float
    cost_dollars: float
    capacity_gips: float
    unit_cost_per_hour: float


@dataclass(frozen=True)
class SelectionResult:
    """Output of Algorithm 1 for one (application run, deadline, budget)."""

    demand_gi: float
    deadline_hours: float
    budget_dollars: float
    total_configurations: int
    feasible_count: int
    pareto: tuple[ParetoPoint, ...]

    @property
    def pareto_count(self) -> int:
        """Number of Pareto-optimal configurations."""
        return len(self.pareto)

    @property
    def cost_span(self) -> tuple[float, float]:
        """(min, max) cost across the Pareto frontier."""
        if not self.pareto:
            raise ValidationError("no Pareto points: selection was infeasible")
        costs = [p.cost_dollars for p in self.pareto]
        return min(costs), max(costs)

    @property
    def max_saving_fraction(self) -> float:
        """Cost saved choosing the cheapest frontier point vs the dearest.

        The paper's Observation 1 headline: up to ~30% for galaxy
        (frontier spans $126–$167 → 1 − 126/167 ≈ 0.25, "up to 30%").
        """
        lo, hi = self.cost_span
        return 1.0 - lo / hi

    def cheapest(self) -> ParetoPoint:
        """The minimum-cost Pareto point."""
        if not self.pareto:
            raise ValidationError("no Pareto points: selection was infeasible")
        return min(self.pareto, key=lambda p: p.cost_dollars)

    def fastest(self) -> ParetoPoint:
        """The minimum-time Pareto point."""
        if not self.pareto:
            raise ValidationError("no Pareto points: selection was infeasible")
        return min(self.pareto, key=lambda p: p.time_hours)


def select_configurations(
    evaluation: SpaceEvaluation,
    demand_gi: float,
    deadline_hours: float,
    budget_dollars: float,
    *,
    chunk_size: int = DEFAULT_CHUNK,
    exclude_mask: np.ndarray | None = None,
    epsilons: tuple[float, float] | None = None,
) -> SelectionResult:
    """Run Algorithm 1 against a precomputed space evaluation.

    Parameters
    ----------
    evaluation:
        ``U_j`` / ``C_{j,u}`` for the whole space
        (from :meth:`ConfigurationSpace.evaluate`).
    demand_gi:
        Application resource demand ``D_{P(n,a)}`` in GI.
    deadline_hours, budget_dollars:
        The constraints ``T'`` and ``C'`` (strict, per Algorithm 1).
    exclude_mask:
        Optional boolean array over the space (row ``r`` ↔ linear index
        ``r + 1``); ``True`` rows are treated as infeasible regardless of
        time and cost — used for memory-feasibility and similar hard
        constraints (see :meth:`ConfigurationSpace.mask_using_types`).
    epsilons:
        Optional ``(time_hours, cost_dollars)`` box sizes for an
        ε-nondomination final filter — the paper's actual pareto.py
        configuration, thinning near-duplicate frontier points.  ``None``
        keeps exact nondomination.
    """
    if demand_gi <= 0:
        raise ValidationError("demand must be positive")
    if deadline_hours <= 0 or budget_dollars <= 0:
        raise ValidationError("deadline and budget must be positive")

    space: ConfigurationSpace = evaluation.space
    total = space.size
    if exclude_mask is not None and exclude_mask.shape != (total,):
        raise ValidationError("exclude_mask must cover the whole space")
    feasible_count = 0
    cand_time: list[np.ndarray] = []
    cand_cost: list[np.ndarray] = []
    cand_index: list[np.ndarray] = []

    for start in range(0, total, chunk_size):
        stop = min(start + chunk_size, total)
        capacity = evaluation.capacity_gips[start:stop]
        unit_cost = evaluation.unit_cost_per_hour[start:stop]
        times = demand_gi / capacity / 3600.0
        costs = times * unit_cost
        mask = (times < deadline_hours) & (costs < budget_dollars)
        if exclude_mask is not None:
            mask &= ~exclude_mask[start:stop]
        n_feasible = int(np.count_nonzero(mask))
        feasible_count += n_feasible
        if n_feasible == 0:
            continue
        t_f = times[mask]
        c_f = costs[mask]
        idx_f = np.flatnonzero(mask) + start  # 0-based evaluation rows
        local = pareto_mask_2d(t_f, c_f)
        cand_time.append(t_f[local])
        cand_cost.append(c_f[local])
        cand_index.append(idx_f[local])

    pareto_points: list[ParetoPoint] = []
    if cand_time:
        all_t = np.concatenate(cand_time)
        all_c = np.concatenate(cand_cost)
        all_i = np.concatenate(cand_index)
        final = pareto_mask_2d(all_t, all_c)
        if epsilons is not None:
            from repro.pareto.epsilon import eps_sort

            rows = np.column_stack([all_t[final], all_c[final]])
            _, kept_tags = eps_sort(rows, epsilons=list(epsilons),
                                    tags=list(np.flatnonzero(final)))
            eps_mask = np.zeros(all_t.size, dtype=bool)
            eps_mask[np.asarray(kept_tags, dtype=np.int64)] = True
            final = eps_mask
        order = np.argsort(all_t[final], kind="stable")
        sel_t = all_t[final][order]
        sel_c = all_c[final][order]
        sel_i = all_i[final][order]
        for t, c, row in zip(sel_t, sel_c, sel_i):
            pareto_points.append(
                ParetoPoint(
                    configuration=evaluation.configuration_at(int(row)),
                    time_hours=float(t),
                    cost_dollars=float(c),
                    capacity_gips=float(evaluation.capacity_gips[int(row)]),
                    unit_cost_per_hour=float(
                        evaluation.unit_cost_per_hour[int(row)]
                    ),
                )
            )

    return SelectionResult(
        demand_gi=demand_gi,
        deadline_hours=deadline_hours,
        budget_dollars=budget_dollars,
        total_configurations=total,
        feasible_count=feasible_count,
        pareto=tuple(pareto_points),
    )
