"""Algorithm 1 — resource configuration selection.

Enumerate every configuration, predict its time and cost, keep those with
``T < T'`` and ``C < C'``, and pass the survivors through the
Pareto-optimal filter.  Because the whole space is explored, *all*
optimal configurations are found (the paper's exhaustiveness guarantee).

Two execution strategies produce identical results:

* **streamed** — one pass over the space in chunks: each chunk
  contributes its feasible count and its local Pareto candidates; the
  candidates are merged and re-filtered at the end (the Pareto set of a
  union is a subset of the union of per-chunk Pareto sets, so this is
  exact).  Needed whenever an ``exclude_mask`` carves arbitrary holes in
  the space.
* **indexed** — the demand-invariance fast path.  Predicted time
  ``D/U/3600`` and cost ``D·(C_u/U)/3600`` both scale linearly in the
  demand ``D``, so the Pareto-optimal *set of rows* is the same for every
  demand: it is the nondominated set over the demand-free pair
  ``(1/U, C_u/U)``.  :class:`FrontierIndex` precomputes that set once per
  :class:`SpaceEvaluation`; afterwards each query filters the (tiny)
  precomputed frontier by the constraints and counts feasibility with
  binary searches over a capacity-sorted block structure — O(|frontier| +
  √S·log S) instead of O(S).

Exactness across the two paths is bit-level, not just mathematical.
Both compute times as ``fl(fl(D/U)/3600)`` and costs as
``fl(fl(D·r)/3600)`` with ``r = fl(C_u/U)`` — the factored cost form
makes cost exactly monotone in ``r`` and time exactly monotone in ``U``
under IEEE rounding, so feasibility is exactly a capacity suffix
intersected with a ratio prefix.  The Pareto filter runs on the exact
pair ``(−U, r)`` in both paths (order-isomorphic to ``(T, C)`` for every
demand in real arithmetic, and immune to rounding collisions), so the
surviving rows coincide row-for-row.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.configspace import DEFAULT_CHUNK, ConfigurationSpace, SpaceEvaluation
from repro.errors import ValidationError
from repro.pareto.frontier import pareto_mask_2d
from repro.units import SECONDS_PER_HOUR

__all__ = [
    "ParetoPoint",
    "SelectionResult",
    "FrontierIndex",
    "select_configurations",
    "select_configurations_batch",
]

#: Rows per block of the feasibility-count structure (√S-ish for the
#: paper's space; a single block for small spaces).
DEFAULT_FEASIBILITY_BLOCK = 4096


@dataclass(frozen=True, slots=True)
class ParetoPoint:
    """One Pareto-optimal configuration with its predictions."""

    configuration: tuple[int, ...]
    time_hours: float
    cost_dollars: float
    capacity_gips: float
    unit_cost_per_hour: float


@dataclass(frozen=True)
class SelectionResult:
    """Output of Algorithm 1 for one (application run, deadline, budget)."""

    demand_gi: float
    deadline_hours: float
    budget_dollars: float
    total_configurations: int
    feasible_count: int
    pareto: tuple[ParetoPoint, ...]

    @property
    def pareto_count(self) -> int:
        """Number of Pareto-optimal configurations."""
        return len(self.pareto)

    @property
    def cost_span(self) -> tuple[float, float]:
        """(min, max) cost across the Pareto frontier."""
        if not self.pareto:
            raise ValidationError("no Pareto points: selection was infeasible")
        costs = [p.cost_dollars for p in self.pareto]
        return min(costs), max(costs)

    @property
    def max_saving_fraction(self) -> float:
        """Cost saved choosing the cheapest frontier point vs the dearest.

        The paper's Observation 1 headline: up to ~30% for galaxy
        (frontier spans $126–$167 → 1 − 126/167 ≈ 0.25, "up to 30%").
        """
        lo, hi = self.cost_span
        return 1.0 - lo / hi

    def cheapest(self) -> ParetoPoint:
        """The minimum-cost Pareto point."""
        if not self.pareto:
            raise ValidationError("no Pareto points: selection was infeasible")
        return min(self.pareto, key=lambda p: p.cost_dollars)

    def fastest(self) -> ParetoPoint:
        """The minimum-time Pareto point."""
        if not self.pareto:
            raise ValidationError("no Pareto points: selection was infeasible")
        return min(self.pareto, key=lambda p: p.time_hours)


def _validate_query(demand_gi: float, deadline_hours: float,
                    budget_dollars: float) -> None:
    if demand_gi <= 0:
        raise ValidationError("demand must be positive")
    if deadline_hours <= 0 or budget_dollars <= 0:
        raise ValidationError("deadline and budget must be positive")


def _materialize(
    evaluation: SpaceEvaluation,
    all_t: np.ndarray,
    all_c: np.ndarray,
    all_rows: np.ndarray,
    epsilons: tuple[float, float] | None,
) -> list[ParetoPoint]:
    """Order the surviving frontier, optionally ε-thin it, build the points.

    Shared verbatim by the streamed and indexed paths so ordering,
    ε-filtering and decoding are identical: inputs arrive in ascending
    evaluation-row order, output is sorted by time (stable, so ties keep
    row order), and all configurations decode in one vectorized call.
    """
    if all_rows.size == 0:
        return []
    if epsilons is not None:
        from repro.pareto.epsilon import eps_sort

        points = np.column_stack([all_t, all_c])
        _, kept_tags = eps_sort(points, epsilons=list(epsilons),
                                tags=list(range(all_t.size)))
        eps_mask = np.zeros(all_t.size, dtype=bool)
        eps_mask[np.asarray(kept_tags, dtype=np.int64)] = True
        all_t, all_c, all_rows = all_t[eps_mask], all_c[eps_mask], \
            all_rows[eps_mask]
    order = np.argsort(all_t, kind="stable")
    sel_t = all_t[order]
    sel_c = all_c[order]
    sel_rows = all_rows[order]
    matrix = evaluation.configurations_at(sel_rows)
    capacity = evaluation.capacity_gips
    unit_cost = evaluation.unit_cost_per_hour
    return [
        ParetoPoint(
            configuration=tuple(int(v) for v in matrix[k]),
            time_hours=float(sel_t[k]),
            cost_dollars=float(sel_c[k]),
            capacity_gips=float(capacity[row]),
            unit_cost_per_hour=float(unit_cost[row]),
        )
        for k, row in enumerate(sel_rows.tolist())
    ]


class FrontierIndex:
    """Demand-invariant Algorithm-1 accelerator over one evaluation.

    Holds two artefacts:

    * ``frontier_rows`` — the nondominated rows over ``(−U, C_u/U)``,
      which *is* the Pareto frontier for every demand (see module
      docstring).  A query keeps the rows meeting ``T < T'`` and
      ``C < C'``; the restriction is exact because any dominator of a
      feasible point is itself feasible (both objectives only improve).
      When the evaluation came from a fused sweep its harvested
      candidates are merged directly (a few hundred rows); otherwise one
      witness-filtered pass over the value arrays recovers them.
    * a capacity-sorted order whose ratio values are additionally sorted
      inside fixed-size blocks — ``feasible_count`` then needs one binary
      search for the capacity cutoff, one for the ratio cutoff, and one
      ``searchsorted`` per block instead of an O(S) chunk loop.  Built
      lazily on first use (three S-length sorts), or rehydrated from a
      persisted snapshot via :meth:`from_arrays` without any sort.
    """

    def __init__(self, evaluation: SpaceEvaluation,
                 *, chunk_size: int = DEFAULT_CHUNK,
                 block_size: int = DEFAULT_FEASIBILITY_BLOCK,
                 candidates: np.ndarray | None = None):
        if block_size < 1:
            raise ValidationError("block size must be >= 1")
        self.evaluation = evaluation
        self._block_size = block_size
        capacity = evaluation.capacity_gips
        unit_cost = evaluation.unit_cost_per_hour

        # Demand-invariant frontier: chunked local Pareto + exact merge,
        # the same idiom the streamed path uses per query.  A fused sweep
        # hands its harvested candidates in; otherwise one witness-
        # filtered pass over the value arrays recovers them.  Either way
        # the final merge yields the identical frontier (the Pareto set
        # of any candidate superset of the frontier is the frontier).
        from repro.obs.trace import get_tracer

        fused = candidates is not None
        with get_tracer().span("frontier.build",
                               {"fused": fused}) as span:
            if candidates is None:
                from repro.core.sweepkernel import \
                    frontier_candidates_from_values

                candidates = frontier_candidates_from_values(
                    capacity, unit_cost, chunk_size=chunk_size)
            rows = np.asarray(candidates, dtype=np.int64)
            cand_capacity = capacity[rows]
            cand_ratio = unit_cost[rows] / cand_capacity
            final = pareto_mask_2d(-cand_capacity, cand_ratio)
            self.frontier_rows = rows[final]  # ascending row order
            self._frontier_capacity = cand_capacity[final]
            self._frontier_ratio = cand_ratio[final]
            span.set_attribute("candidates", int(rows.size))
            span.set_attribute("frontier", int(self.frontier_rows.size))

        # The feasibility-count structure (three S-length sorts) is built
        # lazily on the first ``feasible_count`` — frontier-only
        # consumers and snapshot stores that load it from disk never pay
        # the sorts.
        self._capacity_sorted: np.ndarray | None = None
        self._ratio_by_capacity: np.ndarray | None = None
        self._ratio_sorted: np.ndarray | None = None
        self._ratio_blocks: np.ndarray | None = None

    @classmethod
    def from_arrays(cls, evaluation: SpaceEvaluation, *,
                    frontier_rows: np.ndarray,
                    capacity_sorted: np.ndarray,
                    ratio_by_capacity: np.ndarray,
                    ratio_sorted: np.ndarray,
                    ratio_blocks: np.ndarray,
                    block_size: int) -> "FrontierIndex":
        """Rehydrate an index from persisted (typically mmap'd) arrays.

        No pass over the space and no sorts: the frontier's capacity and
        ratio vectors are tiny gathers from the evaluation arrays, and
        the feasibility structure arrives prebuilt — this is the
        millisecond warm-start path behind
        :meth:`repro.cache.EvaluationCache.load_index`.  Callers are
        responsible for validating shapes/keys (the cache does).
        """
        index = cls.__new__(cls)
        index.evaluation = evaluation
        index._block_size = int(block_size)
        index.frontier_rows = np.asarray(frontier_rows, dtype=np.int64)
        capacity = evaluation.capacity_gips
        index._frontier_capacity = capacity[index.frontier_rows]
        index._frontier_ratio = \
            evaluation.unit_cost_per_hour[index.frontier_rows] \
            / index._frontier_capacity
        index._capacity_sorted = capacity_sorted
        index._ratio_by_capacity = ratio_by_capacity
        index._ratio_sorted = ratio_sorted
        index._ratio_blocks = ratio_blocks
        return index

    def ensure_feasibility(self) -> None:
        """Build the feasibility-count structure if not yet present.

        Idempotent; called automatically by :meth:`feasible_count` and
        eagerly by snapshot stores (the sorts must exist to persist).
        """
        if self._capacity_sorted is not None:
            return
        evaluation = self.evaluation
        capacity = evaluation.capacity_gips
        ratio = evaluation.cost_ratio()
        total = capacity.size
        order = evaluation.capacity_order()
        capacity_sorted = capacity[order]
        ratio_by_capacity = ratio[order]
        ratio_sorted = np.sort(ratio, kind="stable")
        block_size = self._block_size
        n_blocks = -(-total // block_size)
        padded = np.full(n_blocks * block_size, np.inf)
        padded[:total] = ratio_by_capacity
        ratio_blocks = padded.reshape(n_blocks, block_size)
        ratio_blocks.sort(axis=1)
        self._ratio_by_capacity = ratio_by_capacity
        self._ratio_sorted = ratio_sorted
        self._ratio_blocks = ratio_blocks
        # Published LAST: concurrent callers (the service computes
        # batches on executor threads) gate on this attribute, so every
        # other array must be visible before it is.  A racing duplicate
        # build is benign — the inputs are deterministic, so both builds
        # produce identical arrays.
        self._capacity_sorted = capacity_sorted

    @property
    def block_size(self) -> int:
        """Rows per block of the feasibility-count structure."""
        return self._block_size

    @property
    def frontier_size(self) -> int:
        """Number of rows on the demand-invariant frontier."""
        return int(self.frontier_rows.size)

    # -- exact feasibility cutoffs ---------------------------------------------

    def _capacity_cutoff(self, demand_gi: float, deadline_hours: float) -> int:
        """First capacity-sorted position whose predicted time beats ``T'``.

        ``fl(fl(D/U)/3600)`` is monotone non-increasing in ``U`` (IEEE
        division is monotone), so the feasible set is exactly the suffix
        from this position; the binary search evaluates the *same*
        floating-point predicate the streamed path applies elementwise.
        """
        cs = self._capacity_sorted
        lo, hi = 0, cs.size
        while lo < hi:
            mid = (lo + hi) // 2
            if demand_gi / cs[mid] / SECONDS_PER_HOUR < deadline_hours:
                hi = mid
            else:
                lo = mid + 1
        return lo

    def _ratio_cutoff(self, demand_gi: float, budget_dollars: float) -> float:
        """Smallest ratio value whose predicted cost reaches ``C'``.

        ``fl(fl(D·r)/3600)`` is monotone non-decreasing in ``r``, so a row
        is cost-feasible iff its ratio is strictly below the returned
        value (``inf`` when every row is feasible).
        """
        rs = self._ratio_sorted
        lo, hi = 0, rs.size
        while lo < hi:
            mid = (lo + hi) // 2
            if demand_gi * rs[mid] / SECONDS_PER_HOUR < budget_dollars:
                lo = mid + 1
            else:
                hi = mid
        return float(rs[lo]) if lo < rs.size else np.inf

    def feasible_count(self, demand_gi: float, deadline_hours: float,
                       budget_dollars: float) -> int:
        """How many configurations satisfy ``T < T'`` and ``C < C'``.

        Exactly equal to the streamed count: the two cutoffs reduce the
        conjunction to "capacity-suffix AND ratio < cutoff", counted with
        one partial-block scan plus one ``searchsorted`` per full block.
        """
        _validate_query(demand_gi, deadline_hours, budget_dollars)
        self.ensure_feasibility()
        p = self._capacity_cutoff(demand_gi, deadline_hours)
        total = self._capacity_sorted.size
        if p >= total:
            return 0
        r_cut = self._ratio_cutoff(demand_gi, budget_dollars)
        block = self._block_size
        first_full = -(-p // block)  # first block fully inside the suffix
        head_stop = min(first_full * block, total)
        count = int(np.count_nonzero(self._ratio_by_capacity[p:head_stop]
                                     < r_cut))
        blocks = self._ratio_blocks
        for b in range(first_full, blocks.shape[0]):
            count += int(np.searchsorted(blocks[b], r_cut, side="left"))
        return count

    # -- the fast path ----------------------------------------------------------

    def select(self, demand_gi: float, deadline_hours: float,
               budget_dollars: float,
               *, epsilons: tuple[float, float] | None = None
               ) -> SelectionResult:
        """Algorithm 1 via the precomputed index (no pass over the space)."""
        _validate_query(demand_gi, deadline_hours, budget_dollars)
        times = demand_gi / self._frontier_capacity / SECONDS_PER_HOUR
        costs = demand_gi * self._frontier_ratio / SECONDS_PER_HOUR
        keep = (times < deadline_hours) & (costs < budget_dollars)
        pareto_points = _materialize(
            self.evaluation, times[keep], costs[keep],
            self.frontier_rows[keep], epsilons,
        )
        return SelectionResult(
            demand_gi=demand_gi,
            deadline_hours=deadline_hours,
            budget_dollars=budget_dollars,
            total_configurations=self.evaluation.space.size,
            feasible_count=self.feasible_count(demand_gi, deadline_hours,
                                               budget_dollars),
            pareto=tuple(pareto_points),
        )

    def select_batch(
        self,
        demands_gi: "np.ndarray | Sequence[float]",
        deadlines_hours: "np.ndarray | Sequence[float]",
        budgets_dollars: "np.ndarray | Sequence[float]",
        *,
        epsilons: tuple[float, float] | None = None,
    ) -> list[SelectionResult]:
        """Algorithm 1 for many (demand, deadline, budget) queries at once.

        One vectorized pass computes every query's frontier times, costs
        and feasibility mask as 2-D ``(queries, frontier)`` arrays; only
        the per-query materialization loops in Python.  Division and
        multiplication are applied elementwise under the same IEEE
        rounding as the scalar path, so each returned result is
        bit-identical to ``select(d, t, c)`` for the matching query —
        this is what lets the planning service coalesce concurrent
        requests without changing any answer.
        """
        demands = np.asarray(demands_gi, dtype=np.float64)
        deadlines = np.asarray(deadlines_hours, dtype=np.float64)
        budgets = np.asarray(budgets_dollars, dtype=np.float64)
        if not (demands.ndim == deadlines.ndim == budgets.ndim == 1) or \
                not (demands.shape == deadlines.shape == budgets.shape):
            raise ValidationError(
                "batch queries need equal-length 1-D demand, deadline and "
                "budget vectors"
            )
        for d, t, c in zip(demands, deadlines, budgets):
            _validate_query(float(d), float(t), float(c))
        times = demands[:, None] / self._frontier_capacity[None, :] \
            / SECONDS_PER_HOUR
        costs = demands[:, None] * self._frontier_ratio[None, :] \
            / SECONDS_PER_HOUR
        keep = (times < deadlines[:, None]) & (costs < budgets[:, None])
        results: list[SelectionResult] = []
        for q in range(demands.size):
            mask = keep[q]
            pareto_points = _materialize(
                self.evaluation, times[q][mask], costs[q][mask],
                self.frontier_rows[mask], epsilons,
            )
            results.append(SelectionResult(
                demand_gi=float(demands[q]),
                deadline_hours=float(deadlines[q]),
                budget_dollars=float(budgets[q]),
                total_configurations=self.evaluation.space.size,
                feasible_count=self.feasible_count(
                    float(demands[q]), float(deadlines[q]),
                    float(budgets[q])),
                pareto=tuple(pareto_points),
            ))
        return results


def select_configurations_batch(
    evaluation: SpaceEvaluation,
    demands_gi: "np.ndarray | Sequence[float]",
    deadlines_hours: "np.ndarray | Sequence[float]",
    budgets_dollars: "np.ndarray | Sequence[float]",
    *,
    epsilons: tuple[float, float] | None = None,
) -> list[SelectionResult]:
    """Batched Algorithm 1 over one evaluation (the service's entry point).

    Builds (or reuses) the evaluation's :class:`FrontierIndex` and answers
    all queries in one vectorized pass; results are bit-identical to
    calling :func:`select_configurations` once per query.
    """
    return evaluation.frontier_index().select_batch(
        demands_gi, deadlines_hours, budgets_dollars, epsilons=epsilons,
    )


def select_configurations(
    evaluation: SpaceEvaluation,
    demand_gi: float,
    deadline_hours: float,
    budget_dollars: float,
    *,
    chunk_size: int = DEFAULT_CHUNK,
    exclude_mask: np.ndarray | None = None,
    epsilons: tuple[float, float] | None = None,
    method: str = "auto",
) -> SelectionResult:
    """Run Algorithm 1 against a precomputed space evaluation.

    Parameters
    ----------
    evaluation:
        ``U_j`` / ``C_{j,u}`` for the whole space
        (from :meth:`ConfigurationSpace.evaluate`).
    demand_gi:
        Application resource demand ``D_{P(n,a)}`` in GI.
    deadline_hours, budget_dollars:
        The constraints ``T'`` and ``C'`` (strict, per Algorithm 1).
    exclude_mask:
        Optional boolean array over the space (row ``r`` ↔ linear index
        ``r + 1``); ``True`` rows are treated as infeasible regardless of
        time and cost — used for memory-feasibility and similar hard
        constraints (see :meth:`ConfigurationSpace.mask_using_types`).
        Forces the streamed path.
    epsilons:
        Optional ``(time_hours, cost_dollars)`` box sizes for an
        ε-nondomination final filter — the paper's actual pareto.py
        configuration, thinning near-duplicate frontier points.  ``None``
        keeps exact nondomination.
    method:
        ``"streamed"`` forces the exact one-pass scan, ``"indexed"``
        forces the demand-invariant fast path (building the
        :class:`FrontierIndex` on first use; incompatible with
        ``exclude_mask``), and ``"auto"`` uses the index when the
        evaluation already carries one and streams otherwise.

    Returns
    -------
    SelectionResult
        Feasibility counts and the cost-time Pareto frontier; an empty
        ``pareto`` list means no configuration satisfies both bounds.

    Raises
    ------
    ValidationError
        If ``method`` names an unknown strategy, ``"indexed"`` is
        combined with ``exclude_mask`` (hard constraints require the
        streamed scan), or any of demand/deadline/budget is not
        positive.
    """
    if method not in ("auto", "streamed", "indexed"):
        raise ValidationError(
            f"method must be 'auto', 'streamed' or 'indexed', got {method!r}"
        )
    if method == "indexed" and exclude_mask is not None:
        raise ValidationError(
            "the indexed fast path cannot honour exclude_mask; "
            "use method='streamed' (or 'auto')"
        )
    _validate_query(demand_gi, deadline_hours, budget_dollars)

    use_index = method == "indexed" or (
        method == "auto" and exclude_mask is None
        and evaluation.has_frontier_index()
    )
    if use_index:
        return evaluation.frontier_index().select(
            demand_gi, deadline_hours, budget_dollars, epsilons=epsilons,
        )

    space: ConfigurationSpace = evaluation.space
    total = space.size
    if exclude_mask is not None and exclude_mask.shape != (total,):
        raise ValidationError("exclude_mask must cover the whole space")
    feasible_count = 0
    cand_index: list[np.ndarray] = []

    for start in range(0, total, chunk_size):
        stop = min(start + chunk_size, total)
        capacity = evaluation.capacity_gips[start:stop]
        unit_cost = evaluation.unit_cost_per_hour[start:stop]
        ratio = unit_cost / capacity
        times = demand_gi / capacity / SECONDS_PER_HOUR
        costs = demand_gi * ratio / SECONDS_PER_HOUR
        mask = (times < deadline_hours) & (costs < budget_dollars)
        if exclude_mask is not None:
            mask &= ~exclude_mask[start:stop]
        n_feasible = int(np.count_nonzero(mask))
        feasible_count += n_feasible
        if n_feasible == 0:
            continue
        local = pareto_mask_2d(-capacity[mask], ratio[mask])
        cand_index.append(np.flatnonzero(mask)[local] + start)

    pareto_points: list[ParetoPoint] = []
    if cand_index:
        all_rows = np.concatenate(cand_index)
        all_capacity = evaluation.capacity_gips[all_rows]
        all_ratio = evaluation.unit_cost_per_hour[all_rows] / all_capacity
        final = pareto_mask_2d(-all_capacity, all_ratio)
        sel_rows = all_rows[final]
        all_t = demand_gi / all_capacity[final] / SECONDS_PER_HOUR
        all_c = demand_gi * all_ratio[final] / SECONDS_PER_HOUR
        pareto_points = _materialize(evaluation, all_t, all_c, sel_rows,
                                     epsilons)

    return SelectionResult(
        demand_gi=demand_gi,
        deadline_hours=deadline_hours,
        budget_dollars=budget_dollars,
        total_configurations=total,
        feasible_count=feasible_count,
        pareto=tuple(pareto_points),
    )
