"""Capacity model — Equations 3 and 4.

The capacity of resource type ``i`` is ``W_i = W_{i,vCPU} × v_i`` (Eq. 4)
and a configuration's total capacity is ``U_j = Σ_i m_{j,i} · W_i``
(Eq. 3).  Capacities are in GI/s throughout.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError

__all__ = ["capacity_from_per_vcpu", "capacity_per_type", "configuration_capacity"]


def capacity_from_per_vcpu(per_vcpu_gips: np.ndarray | float,
                           vcpus: np.ndarray | int) -> np.ndarray | float:
    """Eq. 4: whole-type capacity from per-vCPU rate and vCPU count."""
    w = np.multiply(per_vcpu_gips, vcpus)
    if np.any(np.asarray(w) <= 0):
        raise ValidationError("capacities must be positive")
    return w


def capacity_per_type(capacities_gips: np.ndarray) -> np.ndarray:
    """Validate and return a per-type capacity vector ``W`` (GI/s)."""
    w = np.asarray(capacities_gips, dtype=np.float64)
    if w.ndim != 1 or w.size == 0:
        raise ValidationError("capacity vector must be 1-D and non-empty")
    if np.any(~np.isfinite(w)) or np.any(w <= 0):
        raise ValidationError("capacities must be positive and finite")
    return w


def configuration_capacity(configurations: np.ndarray,
                           capacities_gips: np.ndarray) -> np.ndarray:
    """Eq. 3: total capacity ``U_j`` of each configuration row (GI/s).

    ``configurations`` is an (S, M) node-count matrix (any integer dtype);
    the product is one matrix–vector multiply — the hot path for the
    10M-configuration spaces, so no Python-level loops.
    """
    w = capacity_per_type(capacities_gips)
    configs = np.asarray(configurations)
    if configs.ndim == 1:
        configs = configs.reshape(1, -1)
    if configs.shape[1] != w.size:
        raise ValidationError(
            f"configuration width {configs.shape[1]} does not match "
            f"{w.size} capacity entries"
        )
    if np.any(configs < 0):
        raise ValidationError("node counts must be non-negative")
    return configs @ w
