"""Configuration-space enumeration — Equation 1 and the vectorized sweep.

A configuration is a tuple ``<m_1, ..., m_M>`` with ``0 <= m_i <=
m_i,max`` and not all zero; the space has ``S = Π (m_i,max + 1) − 1``
members (Eq. 1) — 10,077,695 for the paper's catalog.  Configurations are
identified with *linear indices* in ``[1, S]`` under a mixed-radix code
(first catalog type most significant), so the space never needs to exist
as Python objects: chunks of the index range are decoded into small
integer matrices and reduced to capacity/unit-cost vectors with one
matmul each, following the HPC-guide idiom of keeping the hot path free
of per-item Python work.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from dataclasses import dataclass

import numpy as np

from repro.cloud.catalog import Catalog
from repro.errors import ConfigurationError

__all__ = ["ConfigurationSpace", "SpaceEvaluation"]

#: Default number of configurations decoded per chunk (~160 MB peak for
#: the paper's nine-type space at int16).
DEFAULT_CHUNK = 1 << 21


class ConfigurationSpace:
    """The set of all non-empty configurations over a catalog."""

    def __init__(self, catalog: Catalog):
        self.catalog = catalog
        self.radices = catalog.quota_vector + 1  # m_i,max + 1 values per slot
        # Mixed-radix strides, first type most significant.
        strides = np.ones(len(catalog), dtype=np.int64)
        for i in range(len(catalog) - 2, -1, -1):
            strides[i] = strides[i + 1] * self.radices[i + 1]
        self.strides = strides

    @property
    def size(self) -> int:
        """Eq. 1: number of non-empty configurations ``S``."""
        return self.catalog.configuration_count()

    # -- index <-> configuration codecs --------------------------------------

    def decode(self, indices: np.ndarray | int) -> np.ndarray:
        """Decode linear indices (1..S) into an (k, M) node-count matrix."""
        idx = np.atleast_1d(np.asarray(indices, dtype=np.int64))
        if np.any(idx < 1) or np.any(idx > self.size):
            raise ConfigurationError(
                f"indices must be in [1, {self.size}]"
            )
        return self._decode_unchecked(idx)

    def _decode_unchecked(self, idx: np.ndarray) -> np.ndarray:
        """Decode without the two validity scans.

        For callers whose indices are valid by construction (the chunk
        iterators and the sweep kernel): the two ``np.any`` range checks
        in :meth:`decode` are full passes over the chunk and were paid
        on every chunk of every sweep.
        """
        return ((idx[:, None] // self.strides[None, :])
                % self.radices[None, :]).astype(np.int16)

    def encode(self, configuration: np.ndarray) -> int:
        """Linear index of one configuration vector."""
        vec = np.asarray(configuration, dtype=np.int64)
        if vec.shape != (len(self.catalog),):
            raise ConfigurationError(
                f"configuration must have {len(self.catalog)} entries"
            )
        if np.any(vec < 0) or np.any(vec > self.catalog.quota_vector):
            raise ConfigurationError("configuration violates quotas")
        index = int(np.sum(vec * self.strides))
        if index == 0:
            raise ConfigurationError("the empty configuration has no index")
        return index

    # -- enumeration -----------------------------------------------------------

    def iter_chunks(self, chunk_size: int = DEFAULT_CHUNK
                    ) -> Iterator[tuple[int, np.ndarray]]:
        """Yield ``(start_index, matrix)`` covering indices 1..S in order.

        ``matrix[r]`` is the configuration with linear index
        ``start_index + r``.
        """
        if chunk_size < 1:
            raise ConfigurationError("chunk size must be >= 1")
        total = self.size
        # One reusable index buffer: chunk indices are valid by
        # construction, so each chunk is an in-place add on the arange
        # template plus one unchecked decode (the yielded matrix is
        # freshly allocated; only the index buffer is reused).
        buf = np.arange(1, min(chunk_size, total) + 1, dtype=np.int64)
        start = 1
        while start <= total:
            stop = min(start + chunk_size, total + 1)
            idx = buf[:stop - start]
            if start > 1:
                np.add(idx, chunk_size, out=idx)
            yield start, self._decode_unchecked(idx)
            start = stop

    def mask_using_types(self, type_indices: Sequence[int] | np.ndarray,
                         *, chunk_size: int = DEFAULT_CHUNK) -> np.ndarray:
        """Boolean array: which configurations use any of the given types.

        Supports constrained selections (e.g. memory feasibility: mark
        every configuration that places nodes on a type whose memory
        cannot hold the application's working set).  Row ``r`` is linear
        index ``r + 1``.
        """
        indices = np.asarray(type_indices, dtype=np.int64)
        if indices.size and (indices.min() < 0
                             or indices.max() >= len(self.catalog)):
            raise ConfigurationError("type index out of range")
        out = np.zeros(self.size, dtype=bool)
        if indices.size == 0:
            return out
        for start, matrix in self.iter_chunks(chunk_size):
            stop = start + matrix.shape[0]
            out[start - 1:stop - 1] = (matrix[:, indices] > 0).any(axis=1)
        return out

    def evaluate(self, capacities_gips: np.ndarray,
                 *, chunk_size: int = DEFAULT_CHUNK,
                 workers: int | str | None = None,
                 checkpoint=None,
                 collect_candidates: bool = True) -> "SpaceEvaluation":
        """Reduce the whole space to capacity and unit-cost vectors.

        Decodes chunk by chunk so peak memory is one chunk's work
        buffers plus the two S-length float64 outputs; all chunk buffers
        are preallocated once per sweep (see
        :class:`repro.core.sweepkernel.ChunkKernel`).

        ``workers`` selects the execution strategy: ``None`` (or 1) runs
        the serial loop, an integer fans the sweep out over that many
        supervised processes via :mod:`repro.parallel`, and ``"auto"``
        stays serial below :data:`repro.parallel.AUTO_WORKERS_THRESHOLD`
        configurations and uses one worker per available CPU above it.
        All strategies produce bit-identical arrays (worker spans are
        aligned to the serial chunk grid).

        ``checkpoint`` (a :class:`repro.cache.SweepCheckpoint`) makes a
        supervised sweep flush completed spans to disk and resume from
        whatever a previous interrupted sweep left behind.  A checkpoint
        holding shards forces the supervised path even for ``workers=1``,
        so a resumed sweep never re-evaluates completed spans.

        ``collect_candidates`` (default on) fuses frontier discovery
        into the sweep: each chunk's local Pareto candidates over
        ``(−capacity, cost_ratio)`` are harvested as it is evaluated and
        attached to the returned evaluation, so a later
        :meth:`SpaceEvaluation.frontier_index` build is a merge over a
        few hundred rows instead of a second full pass over the space.
        The candidate harvest never changes the evaluation arrays.
        """
        from repro.obs.trace import get_tracer

        n_workers = 1
        if workers is not None:
            from repro.parallel import resolve_workers

            n_workers = resolve_workers(workers, self.size)
        if n_workers > 1 or (checkpoint is not None
                             and checkpoint.has_shards()):
            from repro.parallel import evaluate_resilient

            capacity, unit_cost, stats = evaluate_resilient(
                self, capacities_gips, workers=max(n_workers, 1),
                chunk_size=chunk_size, checkpoint=checkpoint,
                collect_candidates=collect_candidates,
            )
            evaluation = SpaceEvaluation(space=self, capacity_gips=capacity,
                                         unit_cost_per_hour=unit_cost)
            object.__setattr__(evaluation, "_sweep_stats", stats)
            if stats.frontier_candidates is not None:
                object.__setattr__(evaluation, "_frontier_candidates",
                                   stats.frontier_candidates)
            return evaluation
        from repro.core.capacity import capacity_per_type
        from repro.core.sweepkernel import ChunkKernel

        span_name = "sweep.fused" if collect_candidates else "sweep.serial"
        with get_tracer().span(span_name,
                               {"size": self.size,
                                "chunk_size": chunk_size}) as span:
            w = capacity_per_type(capacities_gips)
            total = self.size
            capacity = np.empty(total, dtype=np.float64)
            unit_cost = np.empty(total, dtype=np.float64)
            kernel = ChunkKernel(self.strides, self.radices, w,
                                 self.catalog.prices,
                                 max_chunk=min(chunk_size, total))
            candidates: list[np.ndarray] = []
            for start in range(1, total + 1, chunk_size):
                stop = min(start + chunk_size, total + 1)
                cap_slice = capacity[start - 1:stop - 1]
                cost_slice = unit_cost[start - 1:stop - 1]
                kernel.evaluate_into(start, stop, cap_slice, cost_slice)
                if collect_candidates:
                    candidates.append(kernel.frontier_candidates(
                        start, cap_slice, cost_slice))
            evaluation = SpaceEvaluation(space=self, capacity_gips=capacity,
                                         unit_cost_per_hour=unit_cost)
            if collect_candidates:
                rows = (np.concatenate(candidates) if candidates
                        else np.empty(0, dtype=np.int64))
                span.set_attribute("candidates", int(rows.size))
                object.__setattr__(evaluation, "_frontier_candidates", rows)
            return evaluation


@dataclass(frozen=True)
class SpaceEvaluation:
    """Precomputed ``U_j`` and ``C_{j,u}`` for every configuration.

    Row ``r`` corresponds to linear index ``r + 1`` (the empty
    configuration is excluded).  This is the reusable artefact behind all
    sweep analyses: computing it costs one pass over the space; every
    (demand, deadline, budget) query afterwards is a cheap vector
    operation or an indexed lookup.
    """

    space: ConfigurationSpace
    capacity_gips: np.ndarray
    unit_cost_per_hour: np.ndarray

    def __post_init__(self) -> None:
        if self.capacity_gips.shape != (self.space.size,) or \
                self.unit_cost_per_hour.shape != (self.space.size,):
            raise ConfigurationError("evaluation arrays must cover the space")

    def configuration_at(self, row: int) -> tuple[int, ...]:
        """Node-count tuple for evaluation row ``row`` (0-based)."""
        return tuple(int(v) for v in self.space.decode(row + 1)[0])

    def configurations_at(self, rows: np.ndarray | Sequence[int]) -> np.ndarray:
        """Node-count matrix for many evaluation rows (0-based) at once.

        One vectorized decode instead of one per row — the way frontier
        points are materialized after a selection.
        """
        idx = np.asarray(rows, dtype=np.int64)
        return self.space.decode(idx + 1)

    # -- shared lazy artefacts -------------------------------------------------
    #
    # These are derived purely from the two arrays, are expensive at the
    # 10M-configuration scale, and are needed by several consumers
    # (MinCostIndex, MinTimeIndex, FrontierIndex), so they are computed
    # once and cached on the instance (frozen dataclasses still allow
    # object.__setattr__).

    def sweep_stats(self):
        """The :class:`~repro.parallel.SweepStats` of the supervised sweep
        that produced this evaluation, or ``None`` (serial or cached)."""
        return self.__dict__.get("_sweep_stats")

    def frontier_candidates(self) -> "np.ndarray | None":
        """Fused-sweep frontier candidate rows, or ``None`` (cached load).

        Ascending global 0-based rows: the union of every chunk's local
        Pareto set over ``(−capacity, cost_ratio)``, harvested while the
        sweep streamed (see :mod:`repro.core.sweepkernel`).  A superset
        of the demand-invariant frontier, so ``frontier_index`` can
        merge these few hundred rows instead of rescanning the space."""
        return self.__dict__.get("_frontier_candidates")

    def capacity_order(self) -> np.ndarray:
        """Stable argsort of ``capacity_gips`` (cached)."""
        cached = self.__dict__.get("_capacity_order")
        if cached is None:
            cached = np.argsort(self.capacity_gips, kind="stable")
            object.__setattr__(self, "_capacity_order", cached)
        return cached

    def cost_ratio(self) -> np.ndarray:
        """Demand-invariant cost rate ``C_u / U`` per row ($/h per GI/s, cached).

        Predicted cost is ``D · (C_u/U) / 3600`` for every demand, so this
        single vector carries the whole cost ordering of the space.
        """
        cached = self.__dict__.get("_cost_ratio")
        if cached is None:
            cached = self.unit_cost_per_hour / self.capacity_gips
            object.__setattr__(self, "_cost_ratio", cached)
        return cached

    def has_frontier_index(self) -> bool:
        """Whether :meth:`frontier_index` has already been built."""
        return "_frontier_index" in self.__dict__

    def frontier_index(self, *, chunk_size: int = DEFAULT_CHUNK):
        """The demand-invariant :class:`~repro.core.selection.FrontierIndex`.

        Built on first call (one pass over the space) and cached; every
        subsequent Algorithm-1 query against this evaluation can then run
        in O(|frontier| + log S) instead of O(S).
        """
        cached = self.__dict__.get("_frontier_index")
        if cached is None:
            from repro.core.selection import FrontierIndex

            cached = FrontierIndex(self, chunk_size=chunk_size,
                                   candidates=self.frontier_candidates())
            object.__setattr__(self, "_frontier_index", cached)
        return cached

    def times_hours(self, demand_gi: float) -> np.ndarray:
        """Predicted execution time of every configuration (Eq. 2)."""
        if demand_gi <= 0:
            raise ConfigurationError("demand must be positive")
        return demand_gi / self.capacity_gips / 3600.0

    def costs(self, demand_gi: float) -> np.ndarray:
        """Predicted execution cost of every configuration (Eq. 5)."""
        return self.times_hours(demand_gi) * self.unit_cost_per_hour
