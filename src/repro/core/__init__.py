"""CELIA's core: analytical models, configuration space, selection.

Implements Section III of the paper:

* Eq. 1 — configuration-space size (:mod:`~repro.core.configspace`)
* Eq. 2 — time model ``T = D / U`` (:mod:`~repro.core.timemodel`)
* Eq. 3/4 — capacity model (:mod:`~repro.core.capacity`)
* Eq. 5/6 — cost model ``C = T · C_u`` (:mod:`~repro.core.costmodel`)
* Algorithm 1 — exhaustive selection + Pareto filter
  (:mod:`~repro.core.selection`)

plus the analyses behind the evaluation section: resource
characterization (:mod:`~repro.core.characterization`), fast min-cost /
min-time indexes over the full space (:mod:`~repro.core.optimizer`),
fixed-time scaling (:mod:`~repro.core.scaling`) and deadline tightening
(:mod:`~repro.core.deadline`).  The :class:`~repro.core.celia.Celia`
facade wires the full Figure 1 pipeline together.
"""

from repro.core.capacity import (
    capacity_per_type,
    configuration_capacity,
    capacity_from_per_vcpu,
)
from repro.core.timemodel import predict_time_hours, predict_time_seconds
from repro.core.costmodel import configuration_unit_cost, predict_cost
from repro.core.configspace import ConfigurationSpace, SpaceEvaluation
from repro.core.selection import (
    FrontierIndex,
    ParetoPoint,
    SelectionResult,
    select_configurations,
    select_configurations_batch,
)
from repro.core.characterization import (
    CharacterizationResult,
    TypeCharacterization,
    characterize_resources,
)
from repro.core.optimizer import MinCostIndex, MinTimeIndex, OptimizerAnswer
from repro.core.scaling import ScalingCurve, fixed_time_scaling
from repro.core.deadline import DeadlineStudy, deadline_tightening_study
from repro.core.planner import Plan, max_accuracy_plan, max_problem_size_plan
from repro.core.robust import (
    MarginSelection,
    MissEstimate,
    calibrate_margin,
    deadline_miss_probability,
    select_with_margin,
)
from repro.core.sensitivity import SensitivityResult, capacity_sensitivity
from repro.core.celia import Celia, Prediction

__all__ = [
    "capacity_per_type",
    "configuration_capacity",
    "capacity_from_per_vcpu",
    "predict_time_hours",
    "predict_time_seconds",
    "configuration_unit_cost",
    "predict_cost",
    "ConfigurationSpace",
    "SpaceEvaluation",
    "FrontierIndex",
    "ParetoPoint",
    "SelectionResult",
    "select_configurations",
    "select_configurations_batch",
    "CharacterizationResult",
    "TypeCharacterization",
    "characterize_resources",
    "MinCostIndex",
    "MinTimeIndex",
    "OptimizerAnswer",
    "ScalingCurve",
    "fixed_time_scaling",
    "DeadlineStudy",
    "deadline_tightening_study",
    "Plan",
    "max_accuracy_plan",
    "max_problem_size_plan",
    "MarginSelection",
    "MissEstimate",
    "select_with_margin",
    "deadline_miss_probability",
    "calibrate_margin",
    "SensitivityResult",
    "capacity_sensitivity",
    "Celia",
    "Prediction",
]
