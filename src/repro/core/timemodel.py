"""Time model — Equation 2: ``T = D_{P(n,a)} / U_j``.

The paper models highly parallelizable compute-bound applications where
communication is negligible, so predicted time is simply demand divided
by aggregate capacity.  Demand is in GI, capacity in GI/s; helpers return
seconds or hours explicitly to keep call sites unambiguous.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.units import SECONDS_PER_HOUR

__all__ = ["predict_time_seconds", "predict_time_hours"]


def predict_time_seconds(demand_gi: float | np.ndarray,
                         capacity_gips: float | np.ndarray) -> float | np.ndarray:
    """Eq. 2 in seconds.  Broadcasts over arrays of either argument."""
    demand = np.asarray(demand_gi, dtype=np.float64)
    capacity = np.asarray(capacity_gips, dtype=np.float64)
    if np.any(demand <= 0):
        raise ValidationError("demand must be positive")
    if np.any(capacity <= 0):
        raise ValidationError("capacity must be positive")
    result = demand / capacity
    return float(result) if result.ndim == 0 else result


def predict_time_hours(demand_gi: float | np.ndarray,
                       capacity_gips: float | np.ndarray) -> float | np.ndarray:
    """Eq. 2 in hours (the unit of deadlines and billing)."""
    result = np.asarray(predict_time_seconds(demand_gi, capacity_gips)) / SECONDS_PER_HOUR
    return float(result) if result.ndim == 0 else result
