"""Spot vs on-demand study: cost savings against deadline risk.

Runs the Monte-Carlo spot simulation many times for one application run
and compares against CELIA's on-demand plan, producing the trade-off the
paper gestures at when it rules spot out: spot is usually much cheaper
(prices average ~35% of on-demand) but its completion time is a random
variable, so deadline satisfaction becomes probabilistic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cloud.catalog import Catalog
from repro.core.optimizer import OptimizerAnswer
from repro.errors import ValidationError
from repro.spot.checkpoint import CheckpointPolicy
from repro.spot.execution import SpotRunConfig, simulate_spot_run

__all__ = ["SpotStudy", "compare_spot_vs_ondemand"]


@dataclass(frozen=True)
class SpotStudy:
    """Monte-Carlo comparison of one spot plan against an on-demand plan."""

    ondemand: OptimizerAnswer
    deadline_hours: float
    bid_fraction: float
    trials: int
    completed_trials: int
    on_time_trials: int
    mean_cost: float
    p95_cost: float
    mean_elapsed_hours: float
    p95_elapsed_hours: float
    mean_interruptions: float
    mean_efficiency: float

    @property
    def on_time_probability(self) -> float:
        """Fraction of trials finishing within the deadline."""
        return self.on_time_trials / self.trials

    @property
    def mean_saving_fraction(self) -> float:
        """1 − mean spot cost / on-demand cost (can be negative)."""
        return 1.0 - self.mean_cost / self.ondemand.cost_dollars

    def on_time_interval(self, confidence: float = 0.95
                         ) -> tuple[float, float]:
        """Wilson interval for the on-time probability."""
        from repro.utils.stats import binomial_ci

        return binomial_ci(self.on_time_trials, self.trials,
                           confidence=confidence)

    def render(self) -> str:
        """Compact comparison summary (with a Wilson CI on on-time)."""
        lo, hi = self.on_time_interval()
        return "\n".join([
            f"spot vs on-demand (bid {self.bid_fraction:.0%} of on-demand, "
            f"{self.trials} trials)",
            f"  on-demand plan : {self.ondemand.time_hours:.1f} h / "
            f"${self.ondemand.cost_dollars:.2f} (deterministic)",
            f"  spot mean      : {self.mean_elapsed_hours:.1f} h / "
            f"${self.mean_cost:.2f}  (p95: {self.p95_elapsed_hours:.1f} h / "
            f"${self.p95_cost:.2f})",
            f"  saving         : {self.mean_saving_fraction:.0%} mean",
            f"  on-time within {self.deadline_hours:g} h: "
            f"{self.on_time_probability:.0%} "
            f"(95% CI {lo:.0%}-{hi:.0%}; "
            f"interruptions/run: {self.mean_interruptions:.1f}, "
            f"efficiency {self.mean_efficiency:.0%})",
        ])


def compare_spot_vs_ondemand(
    ondemand: OptimizerAnswer,
    demand_gi: float,
    catalog: Catalog,
    deadline_hours: float,
    *,
    bid_fraction: float = 0.5,
    policy: CheckpointPolicy | None = None,
    trials: int = 50,
    seed: int = 0,
) -> SpotStudy:
    """Monte-Carlo spot study using the on-demand plan's configuration.

    The same configuration (hence the same capacity) is bid on the spot
    market; only availability and price differ.  ``policy`` defaults to
    Young's interval for an assumed 8-hour mean time to interruption.
    """
    if trials < 1:
        raise ValidationError("need at least one trial")
    policy = policy or CheckpointPolicy.young(8.0)
    run = SpotRunConfig(
        configuration=ondemand.configuration,
        capacity_gips=ondemand.capacity_gips,
        demand_gi=demand_gi,
        bid_fraction=bid_fraction,
        policy=policy,
    )
    costs = np.empty(trials)
    elapsed = np.empty(trials)
    interruptions = np.empty(trials)
    efficiency = np.empty(trials)
    completed = 0
    on_time = 0
    for k in range(trials):
        outcome = simulate_spot_run(run, catalog, seed=seed + 104729 * (k + 1))
        costs[k] = outcome.cost_dollars
        elapsed[k] = outcome.elapsed_hours
        interruptions[k] = outcome.interruptions
        efficiency[k] = outcome.efficiency
        if outcome.completed:
            completed += 1
            if outcome.elapsed_hours <= deadline_hours:
                on_time += 1
    return SpotStudy(
        ondemand=ondemand,
        deadline_hours=deadline_hours,
        bid_fraction=bid_fraction,
        trials=trials,
        completed_trials=completed,
        on_time_trials=on_time,
        mean_cost=float(costs.mean()),
        p95_cost=float(np.quantile(costs, 0.95)),
        mean_elapsed_hours=float(elapsed.mean()),
        p95_elapsed_hours=float(np.quantile(elapsed, 0.95)),
        mean_interruptions=float(interruptions.mean()),
        mean_efficiency=float(efficiency.mean()),
    )
