"""Spot-market execution — the alternative CELIA deliberately avoids.

The paper's related work (Marathe et al., Gong et al.) optimizes cost by
running on spot instances with checkpointing, and CELIA restricts itself
to on-demand resources because spot "risks abrupt termination, thus, is
difficult to guarantee time deadline satisfaction".  This package makes
that argument quantitative: it simulates spot execution of the same
elastic applications with a mean-reverting price process, bid-crossing
interruptions and periodic checkpointing, and compares cost and
deadline-satisfaction probability against CELIA's on-demand plan.
"""

from repro.spot.checkpoint import CheckpointPolicy
from repro.spot.execution import SpotOutcome, SpotRunConfig, simulate_spot_run
from repro.spot.comparison import SpotStudy, compare_spot_vs_ondemand

__all__ = [
    "CheckpointPolicy",
    "SpotRunConfig",
    "SpotOutcome",
    "simulate_spot_run",
    "SpotStudy",
    "compare_spot_vs_ondemand",
]
