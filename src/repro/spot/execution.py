"""Spot-run simulation: price path, interruptions, checkpointed progress.

One spot run executes an application's total work on a fixed
configuration whose instances are bid on the spot market.  The price
path is the configuration-weighted sum of the *shared* per-type market
streams (:class:`~repro.market.SpotMarket`), so this ablation and the
runtime's mixed on-demand+spot purchasing study the same market;
whenever the aggregate market price crosses the bid, the whole
allocation is reclaimed, progress rolls back to the last checkpoint,
and the run waits for the price to drop below the bid before
restarting.  Billing accrues at the *market* price while instances are
held (EC2 spot semantics).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cloud.catalog import Catalog
from repro.errors import ValidationError
from repro.market.streams import SpotMarket, SpotMarketConfig
from repro.spot.checkpoint import CheckpointPolicy
from repro.utils.rng import derive_rng, spawn_seed

__all__ = ["SpotRunConfig", "SpotOutcome", "simulate_spot_run"]


@dataclass(frozen=True)
class SpotRunConfig:
    """Inputs of one spot execution."""

    configuration: tuple[int, ...]
    capacity_gips: float  # aggregate rate of the configuration
    demand_gi: float
    bid_fraction: float  # bid as a fraction of on-demand price
    policy: CheckpointPolicy
    step_hours: float = 0.1
    horizon_hours: float = 24.0 * 14
    #: Background capacity-reclamation hazard (per hour): the provider can
    #: take spot capacity back even when the bid exceeds the market price,
    #: so no bid level makes spot interruption-free.
    reclaim_rate_per_hour: float = 0.02

    def __post_init__(self) -> None:
        if self.capacity_gips <= 0 or self.demand_gi <= 0:
            raise ValidationError("capacity and demand must be positive")
        if not (0 < self.bid_fraction <= 1.0):
            raise ValidationError("bid fraction must be in (0, 1]")
        if self.step_hours <= 0 or self.horizon_hours <= 0:
            raise ValidationError("step and horizon must be positive")
        if self.reclaim_rate_per_hour < 0:
            raise ValidationError("reclaim rate must be non-negative")


@dataclass(frozen=True)
class SpotOutcome:
    """Result of one simulated spot run."""

    completed: bool
    elapsed_hours: float
    cost_dollars: float
    interruptions: int
    useful_hours: float
    wasted_hours: float

    @property
    def efficiency(self) -> float:
        """Useful fraction of paid time."""
        held = self.useful_hours + self.wasted_hours
        return self.useful_hours / held if held > 0 else 0.0


def simulate_spot_run(run: SpotRunConfig, catalog: Catalog,
                      *, seed: int = 0) -> SpotOutcome:
    """Simulate one checkpointed spot execution of ``run``.

    Time is discretized at ``run.step_hours``.  Within each step the
    allocation is either held (bid >= market price: work progresses and
    money accrues at the market price) or lost (waiting, free).  On a
    losing transition progress rolls back to the last checkpoint and the
    restart penalty is owed before useful work resumes.

    Returns an outcome with ``completed=False`` when the work does not
    finish within the horizon.
    """
    config_vec = np.asarray(run.configuration)
    if config_vec.shape != (len(catalog),):
        raise ValidationError("configuration must match the catalog width")
    if config_vec.sum() == 0:
        raise ValidationError("configuration must contain at least one node")

    prices = catalog.prices
    on_demand_rate = float(config_vec @ prices)  # $/h at on-demand prices

    # The allocation pays the sum of its nodes' per-type market streams
    # — the same correlated paths the runtime's mixed purchasing buys
    # against, so bid-fraction sweeps here transfer to bid policies
    # there.  Reclaim draws key off the configuration but *not* the
    # bid, so raising the bid can only remove interruptions per seed.
    market = SpotMarket(
        catalog,
        SpotMarketConfig(step_hours=run.step_hours,
                         horizon_hours=run.horizon_hours,
                         reclaim_rate_per_hour=run.reclaim_rate_per_hour),
        seed=spawn_seed(seed, "spot-market"))
    path = sum(count * market.price_path(itype.name)
               for count, itype in zip(run.configuration, catalog) if count)
    bid = run.bid_fraction * on_demand_rate
    reclaim_prob = run.reclaim_rate_per_hour * run.step_hours
    reclaim_rng = derive_rng(seed, "spot-reclaim", run.configuration)
    reclaims = reclaim_rng.random(path.size) < reclaim_prob

    work_needed_hours = (run.demand_gi / run.capacity_gips / 3600.0) \
        * run.policy.overhead_factor()

    useful = 0.0  # checkpoint-inflated useful work completed this epoch
    saved = 0.0  # persisted progress across interruptions
    cost = 0.0
    interruptions = 0
    wasted = 0.0
    pending_restart = 0.0
    held_prev = True

    for k in range(path.size):
        elapsed = k * run.step_hours
        if saved + useful >= work_needed_hours:
            return SpotOutcome(
                completed=True,
                elapsed_hours=elapsed,
                cost_dollars=cost,
                interruptions=interruptions,
                useful_hours=saved + useful,
                wasted_hours=wasted,
            )
        price = float(path[k])
        held = price <= bid and not reclaims[k]
        if held:
            if not held_prev:
                pending_restart = run.policy.restart_cost_hours
            cost += price * run.step_hours
            step_budget = run.step_hours
            if pending_restart > 0:
                burn = min(pending_restart, step_budget)
                pending_restart -= burn
                step_budget -= burn
                wasted += burn
            useful += step_budget
        else:
            if held_prev and useful > 0:
                interruptions += 1
                persisted = run.policy.progress_after(useful)
                wasted += useful - persisted
                saved += persisted
                useful = 0.0
        held_prev = held

    return SpotOutcome(
        completed=False,
        elapsed_hours=run.horizon_hours,
        cost_dollars=cost,
        interruptions=interruptions,
        useful_hours=saved + useful,
        wasted_hours=wasted,
    )
