"""Checkpointing policies for interruptible execution.

A checkpoint policy decides how often a run persists its state.  On an
interruption the run loses all progress since the last completed
checkpoint and pays a restart (resubmission + state reload) before
continuing.  The classic tuning is Young's approximation —
``interval ≈ sqrt(2 · checkpoint_cost · MTTI)`` — provided here next to
a fixed-interval policy so the ablation can sweep both.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ValidationError

__all__ = ["CheckpointPolicy"]


@dataclass(frozen=True)
class CheckpointPolicy:
    """Periodic checkpointing with fixed overheads.

    Attributes
    ----------
    interval_hours:
        Useful-work time between checkpoint completions.
    checkpoint_cost_hours:
        Time to write one checkpoint (work pauses).
    restart_cost_hours:
        Time to resume after an interruption (reprovision + reload).
    """

    interval_hours: float
    checkpoint_cost_hours: float = 0.05
    restart_cost_hours: float = 0.15

    def __post_init__(self) -> None:
        if self.interval_hours <= 0:
            raise ValidationError("checkpoint interval must be positive")
        if self.checkpoint_cost_hours < 0 or self.restart_cost_hours < 0:
            raise ValidationError("checkpoint overheads must be >= 0")

    @classmethod
    def young(cls, mean_time_to_interrupt_hours: float,
              checkpoint_cost_hours: float = 0.05,
              restart_cost_hours: float = 0.15) -> "CheckpointPolicy":
        """Young's near-optimal interval for the given interruption rate."""
        if mean_time_to_interrupt_hours <= 0:
            raise ValidationError("MTTI must be positive")
        interval = math.sqrt(
            2.0 * checkpoint_cost_hours * mean_time_to_interrupt_hours)
        return cls(
            interval_hours=max(interval, 1e-3),
            checkpoint_cost_hours=checkpoint_cost_hours,
            restart_cost_hours=restart_cost_hours,
        )

    @classmethod
    def none(cls) -> "CheckpointPolicy":
        """No checkpointing: an interruption restarts from scratch.

        Modeled as an effectively infinite interval.
        """
        return cls(interval_hours=1e9, checkpoint_cost_hours=0.0,
                   restart_cost_hours=0.15)

    def overhead_factor(self) -> float:
        """Work-time inflation from checkpoint writes alone."""
        return 1.0 + self.checkpoint_cost_hours / self.interval_hours

    def progress_after(self, useful_hours_done: float) -> float:
        """Useful work safely persisted after ``useful_hours_done``.

        Progress is saved only at completed checkpoint boundaries.
        """
        if useful_hours_done < 0:
            raise ValidationError("elapsed work must be >= 0")
        completed = math.floor(useful_hours_done / self.interval_hours)
        return completed * self.interval_hours
