"""Spot billing: expected pricing for the planner.

Realized spot bills are path integrals of the market price
(:meth:`repro.market.streams.SpotMarket.spot_cost`, used by the fleet);
this module provides the *model-side* counterpart: a
:class:`~repro.cloud.pricing.BillingModel` that prices uptime at the
market's expected (long-run mean) spot rate, which is what the purchase
planner uses to compute a configuration's expected mixed cost before
anything is launched.
"""

from __future__ import annotations

from repro.cloud.pricing import BillingModel
from repro.errors import ValidationError

__all__ = ["SpotExpectedBilling"]


class SpotExpectedBilling(BillingModel):
    """Linear billing at the expected spot fraction of on-demand.

    ``amount = mean_fraction × price_surge × price_per_hour × uptime`` —
    the stationary mean of the market's price process.  Spot has no
    hourly quantization benefit to model (EC2 billed interrupted partial
    hours at the market rate), so linearity is the honest expectation.
    """

    def __init__(self, mean_fraction: float = 0.35, price_surge: float = 1.0):
        if not (0 < mean_fraction <= 1):
            raise ValidationError("mean_fraction must be in (0, 1]")
        if price_surge <= 0:
            raise ValidationError("price_surge must be positive")
        self.mean_fraction = mean_fraction
        self.price_surge = price_surge

    @classmethod
    def for_market(cls, market) -> "SpotExpectedBilling":
        """The expected-billing model matching one market's parameters."""
        return cls(mean_fraction=market.config.mean_fraction,
                   price_surge=market.config.price_surge)

    def amount_due(self, price_per_hour: float, uptime_hours: float) -> float:
        self.validate_inputs(price_per_hour, uptime_hours)
        return (self.mean_fraction * self.price_surge
                * price_per_hour * uptime_hours)
