"""The simulated spot market.

CELIA proper buys only on-demand capacity; this package makes the
spot-vs-on-demand trade-off a first-class planning axis.  It provides:

* per-instance-type seeded price streams, correlated within a resource
  family (:mod:`repro.market.streams`);
* bid policies mapping a market view to a per-type bid price
  (:mod:`repro.market.bids`);
* a spot :class:`~repro.cloud.pricing.BillingModel` and path-integrated
  realized billing (:mod:`repro.market.billing`);
* purchase planning — splitting a configuration into an on-demand +
  spot purchasing vector with expected cost and interruption risk
  computed against the market (:mod:`repro.market.plan`);
* a :class:`~repro.market.fleet.SpotFleet` that launches spot nodes,
  assigns their seeded interruption times and bills them at the market
  price (:mod:`repro.market.fleet`).

Everything is deterministic under a seed: price paths, interruption
times and bills replay bit-for-bit, which is what lets the adaptive
runtime (:mod:`repro.runtime`) treat spot kills as just another chaos
event with an auditable timeline.
"""

from repro.market.bids import (
    AdaptiveBid,
    BidPolicy,
    FixedFractionBid,
    OnDemandCapBid,
    bid_policy,
    bid_policy_names,
)
from repro.market.billing import SpotExpectedBilling
from repro.market.fleet import SpotAllocation, SpotFleet, SpotNode
from repro.market.plan import (
    MarketPolicy,
    PurchasePlan,
    purchase_plan,
    split_configuration,
)
from repro.market.streams import SpotMarket, SpotMarketConfig

__all__ = [
    "SpotMarket",
    "SpotMarketConfig",
    "BidPolicy",
    "FixedFractionBid",
    "OnDemandCapBid",
    "AdaptiveBid",
    "bid_policy",
    "bid_policy_names",
    "SpotExpectedBilling",
    "MarketPolicy",
    "PurchasePlan",
    "purchase_plan",
    "split_configuration",
    "SpotFleet",
    "SpotAllocation",
    "SpotNode",
]
