"""Bid policies: how much to offer for spot capacity, per type.

A bid caps what a spot node can ever cost per hour (while held, the
market price is at or below the bid) and sets its interruption exposure
(the pool is reclaimed when the price crosses the bid).  Policies are
pure functions of the market view, so the purchase planner and the
fleet price the same bid for the same type.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.errors import ValidationError
from repro.market.streams import SpotMarket

__all__ = ["BidPolicy", "FixedFractionBid", "OnDemandCapBid", "AdaptiveBid",
           "BID_POLICIES", "bid_policy", "bid_policy_names"]


class BidPolicy(ABC):
    """Maps (market, type) to a bid price in dollars per hour."""

    #: Registry name (set by subclasses).
    name: str = ""

    @abstractmethod
    def bid_price(self, market: SpotMarket, type_name: str) -> float:
        """The bid for one node of ``type_name`` on ``market``."""

    def describe(self) -> str:
        """One-line human description (for ``celia market policies``)."""
        return (self.__doc__ or self.name).strip().splitlines()[0]


class FixedFractionBid(BidPolicy):
    """Bid a fixed fraction of the on-demand price, market be damned."""

    name = "fixed-fraction"

    def __init__(self, fraction: float = 0.5):
        if not (0 < fraction <= 1):
            raise ValidationError("bid fraction must be in (0, 1]")
        self.fraction = fraction

    def bid_price(self, market: SpotMarket, type_name: str) -> float:
        return self.fraction * market.catalog.type_named(
            type_name).price_per_hour

    def describe(self) -> str:
        return (f"bid {self.fraction:.0%} of the on-demand price "
                f"(cheap, interruption-prone)")


class OnDemandCapBid(BidPolicy):
    """Bid the full on-demand price — only a price spike can out-bid."""

    name = "on-demand-cap"

    def bid_price(self, market: SpotMarket, type_name: str) -> float:
        return market.catalog.type_named(type_name).price_per_hour

    def describe(self) -> str:
        return ("bid the on-demand price: pay the market rate, "
                "interrupted only by spikes above on-demand or reclaims")


class AdaptiveBid(BidPolicy):
    """Bid a margin over the market's long-run mean, capped at on-demand.

    Tracks the market level: in a surged (price-spike) market the
    long-run mean is higher, so the bid rises with it instead of being
    out-bid at a stale fraction — up to the on-demand cap, past which
    spot stops making sense.
    """

    name = "adaptive"

    def __init__(self, margin: float = 1.8, cap_fraction: float = 1.0):
        if margin < 1:
            raise ValidationError("margin must be >= 1")
        if not (0 < cap_fraction <= 1):
            raise ValidationError("cap_fraction must be in (0, 1]")
        self.margin = margin
        self.cap_fraction = cap_fraction

    def bid_price(self, market: SpotMarket, type_name: str) -> float:
        od = market.catalog.type_named(type_name).price_per_hour
        return min(self.margin * market.mean_price(type_name),
                   self.cap_fraction * od)

    def describe(self) -> str:
        return (f"bid {self.margin:g}x the market's long-run mean, "
                f"capped at {self.cap_fraction:.0%} of on-demand")


#: name -> zero-argument factory of the default-parameterized policy.
BID_POLICIES: dict[str, type[BidPolicy]] = {
    FixedFractionBid.name: FixedFractionBid,
    OnDemandCapBid.name: OnDemandCapBid,
    AdaptiveBid.name: AdaptiveBid,
}


def bid_policy_names() -> tuple[str, ...]:
    """Registry order of the built-in bid policies."""
    return tuple(BID_POLICIES)


def bid_policy(name: str) -> BidPolicy:
    """Instantiate a built-in bid policy by name (default parameters)."""
    try:
        return BID_POLICIES[name]()
    except KeyError:
        raise ValidationError(
            f"unknown bid policy {name!r}; "
            f"choose from {sorted(BID_POLICIES)}") from None
