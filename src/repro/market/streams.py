"""Per-instance-type seeded spot price streams.

One :class:`SpotMarket` owns a mean-reverting (Ornstein–Uhlenbeck-like)
price path per catalog type, discretized on a shared time grid.  Two
properties matter for everything downstream:

* **determinism** — each type's path is generated from RNG streams
  derived off ``(seed, type)`` and ``(seed, family)`` keys, so the path
  for one type never depends on which other paths were queried first,
  and identical seeds reproduce identical markets across processes;
* **family correlation** — types sharing a resource family (``c4``,
  ``m4``, ``r3``) mix a common family noise stream with their own
  idiosyncratic stream (``rho·z_family + sqrt(1−rho²)·z_type``), so a
  capacity squeeze on ``c4.xlarge`` co-moves with ``c4.large`` the way
  real spot pools do, while ``r3`` stays largely independent.

Interruptions come from two causes, mirroring EC2 semantics: the market
price crossing the bid (deterministic given path and bid) and a
background capacity reclaim hazard (seeded exponential draw per lease),
so no bid level makes spot interruption-free.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.cloud.catalog import Catalog
from repro.errors import ValidationError
from repro.utils.rng import derive_rng

__all__ = ["SpotMarketConfig", "SpotMarket"]


@dataclass(frozen=True)
class SpotMarketConfig:
    """Parameters of one provider's spot market.

    The OU parameters (``mean_fraction``, ``theta``, ``sigma``,
    ``floor_fraction``) match :class:`~repro.cloud.pricing.SpotPriceProcess`
    so the legacy single-pool study and the per-type market price the
    same underlying process.  ``price_surge`` and ``volatility_surge``
    are chaos-scenario multipliers on the long-run mean and the
    volatility (1.0 = nominal market).
    """

    #: Long-run spot mean as a fraction of the on-demand price.
    mean_fraction: float = 0.35
    #: Mean-reversion speed per hour.
    theta: float = 0.6
    #: Relative volatility (scales the mean price).
    sigma: float = 0.35
    #: Price floor as a fraction of the long-run mean.
    floor_fraction: float = 0.05
    #: Noise correlation between types of the same resource family.
    family_correlation: float = 0.6
    #: Price-path discretization step.
    step_hours: float = 0.1
    #: Length of the generated paths (two weeks by default).
    horizon_hours: float = 24.0 * 14
    #: Background capacity-reclamation hazard per active spot pool
    #: (per hour); chaos scenarios raise it.
    reclaim_rate_per_hour: float = 0.01
    #: Chaos multiplier on the long-run mean price.
    price_surge: float = 1.0
    #: Chaos multiplier on the volatility.
    volatility_surge: float = 1.0

    def __post_init__(self) -> None:
        if not (0 < self.mean_fraction <= 1):
            raise ValidationError("mean_fraction must be in (0, 1]")
        if self.theta <= 0 or self.sigma < 0:
            raise ValidationError("theta must be > 0 and sigma >= 0")
        if not (0 <= self.floor_fraction <= 1):
            raise ValidationError("floor_fraction must be in [0, 1]")
        if not (0 <= self.family_correlation <= 1):
            raise ValidationError("family_correlation must be in [0, 1]")
        if self.step_hours <= 0 or self.horizon_hours <= 0:
            raise ValidationError("step and horizon must be positive")
        if self.reclaim_rate_per_hour < 0:
            raise ValidationError("reclaim rate must be non-negative")
        if self.price_surge <= 0 or self.volatility_surge <= 0:
            raise ValidationError("surge multipliers must be positive")


class SpotMarket:
    """Seeded per-type spot price streams over one catalog.

    Paths are generated lazily and cached, one per type; family noise is
    likewise generated once per family.  All methods operating on a type
    accept its name (configuration indices are a planner concern).
    """

    def __init__(self, catalog: Catalog, config: SpotMarketConfig | None = None,
                 *, seed: int = 0):
        self.catalog = catalog
        self.config = config or SpotMarketConfig()
        self.seed = seed
        self.n_steps = int(math.ceil(self.config.horizon_hours
                                     / self.config.step_hours)) + 1
        self._paths: dict[str, np.ndarray] = {}
        self._family_noise: dict[str, np.ndarray] = {}

    # -- path generation ------------------------------------------------------

    def _family_noise_for(self, family: str) -> np.ndarray:
        noise = self._family_noise.get(family)
        if noise is None:
            rng = derive_rng(self.seed, "spot-family", family)
            noise = rng.standard_normal(self.n_steps - 1)
            self._family_noise[family] = noise
        return noise

    def mean_price(self, type_name: str) -> float:
        """The long-run mean spot price of a type (surge applied)."""
        itype = self.catalog.type_named(type_name)
        return (self.config.mean_fraction * self.config.price_surge
                * itype.price_per_hour)

    def price_path(self, type_name: str) -> np.ndarray:
        """The full price path of a type (read-only, cached)."""
        path = self._paths.get(type_name)
        if path is not None:
            return path
        cfg = self.config
        itype = self.catalog.type_named(type_name)
        mean = self.mean_price(type_name)
        sigma = cfg.sigma * cfg.volatility_surge * mean
        floor = cfg.floor_fraction * mean
        rho = cfg.family_correlation
        z_family = self._family_noise_for(itype.category.value)
        z_type = derive_rng(self.seed, "spot-idio",
                            type_name).standard_normal(self.n_steps - 1)
        noise = rho * z_family + math.sqrt(1.0 - rho * rho) * z_type
        prices = np.empty(self.n_steps, dtype=np.float64)
        prices[0] = mean
        sqrt_dt = math.sqrt(cfg.step_hours)
        for k in range(self.n_steps - 1):
            drift = cfg.theta * (mean - prices[k]) * cfg.step_hours
            prices[k + 1] = prices[k] + drift + sigma * sqrt_dt * noise[k]
        np.clip(prices, floor, None, out=prices)
        prices.setflags(write=False)
        self._paths[type_name] = prices
        return prices

    # -- observations ---------------------------------------------------------

    def price_at(self, type_name: str, hours: float) -> float:
        """Spot price of a type at an instant (clamped to the horizon)."""
        if hours < 0:
            raise ValidationError("time must be non-negative")
        path = self.price_path(type_name)
        k = min(int(hours / self.config.step_hours), self.n_steps - 1)
        return float(path[k])

    def spot_cost(self, type_name: str, start_hours: float,
                  end_hours: float) -> float:
        """Dollars to hold one node of a type over ``[start, end]``.

        Piecewise-constant integral of the price path (prices beyond the
        horizon extend the last grid value), matching EC2's bill-at-the-
        market-price spot semantics.
        """
        if end_hours < start_hours:
            raise ValidationError("end must not precede start")
        if end_hours == start_hours:
            return 0.0
        step = self.config.step_hours
        path = self.price_path(type_name)
        last = self.n_steps - 1
        total = 0.0
        k = int(start_hours / step)
        t = start_hours
        while t < end_hours:
            seg_end = min((k + 1) * step, end_hours) if k < last else end_hours
            total += float(path[min(k, last)]) * (seg_end - t)
            t = seg_end
            k += 1
        return total

    def first_bid_crossing(self, type_name: str, bid_price: float,
                           start_hours: float = 0.0) -> float:
        """Hour the market first out-bids ``bid_price`` at or after
        ``start_hours`` (``inf`` when the bid survives the horizon)."""
        step = self.config.step_hours
        path = self.price_path(type_name)
        k0 = min(int(math.ceil(start_hours / step)), self.n_steps - 1)
        above = np.flatnonzero(path[k0:] > bid_price)
        if above.size == 0:
            return float("inf")
        return float(k0 + above[0]) * step

    def first_interruption(self, type_name: str, bid_price: float,
                           start_hours: float = 0.0, *,
                           lease_key: object = 0,
                           reclaim_rate_per_hour: float | None = None
                           ) -> float:
        """When one spot pool of a type is first interrupted.

        The earlier of the deterministic bid crossing and a seeded
        exponential capacity-reclaim draw keyed by ``(seed, type,
        lease_key)`` — distinct leases of the same type draw distinct
        reclaim times, but one lease replayed under one seed always
        draws the same.  ``inf`` when neither occurs.
        """
        crossing = self.first_bid_crossing(type_name, bid_price, start_hours)
        rate = (self.config.reclaim_rate_per_hour
                if reclaim_rate_per_hour is None else reclaim_rate_per_hour)
        if rate <= 0:
            return crossing
        rng = derive_rng(self.seed, "spot-reclaim", type_name, lease_key)
        reclaim = start_hours + float(rng.exponential(1.0 / rate))
        return min(crossing, reclaim)

    def describe(self, type_name: str) -> dict:
        """Summary statistics of one type's path (for the CLI)."""
        itype = self.catalog.type_named(type_name)
        path = self.price_path(type_name)
        od = itype.price_per_hour
        return {
            "type": type_name,
            "on_demand_price": od,
            "mean_price": float(path.mean()),
            "min_price": float(path.min()),
            "max_price": float(path.max()),
            "long_run_mean": self.mean_price(type_name),
            "hours_above_on_demand": float(
                np.count_nonzero(path > od) * self.config.step_hours),
        }
