"""The spot fleet: launching, interrupting and billing spot nodes.

Spot capacity deliberately lives *outside*
:class:`~repro.cloud.provider.CloudProvider`: it has its own pool (no
on-demand quota is consumed), its own billing (the integrated market
price, not the hourly-quantized on-demand model) and its own failure
mode (the market interrupts whole per-type pools).  The fleet launches
one :class:`SpotAllocation` per controller epoch, assigning each type's
pool the interruption time the market dictates — the deterministic bid
crossing or the seeded reclaim draw, whichever comes first.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.cloud.instance import Instance
from repro.cloud.virtualization import VirtualizationModel
from repro.errors import ValidationError
from repro.market.bids import BidPolicy
from repro.market.streams import SpotMarket
from repro.utils.rng import derive_rng

__all__ = ["SpotNode", "SpotAllocation", "SpotFleet"]


@dataclass
class SpotNode:
    """One spot instance plus its market attachment."""

    instance: Instance
    bid_price: float
    #: Absolute hour the market interrupts this node's pool
    #: (``inf`` = survives the horizon).
    interruption_at_hours: float

    def held_until(self, at_hours: float) -> float:
        """Hour this node stops being held, looking no further than
        ``at_hours``: interrupted by the market or still running."""
        return min(at_hours, self.interruption_at_hours)


@dataclass
class SpotAllocation:
    """Spot nodes launched together for one controller epoch."""

    allocation_id: int
    spot: tuple[int, ...]
    nodes: list[SpotNode]
    started_at_hours: float
    ended_at_hours: float | None = None
    billed_amount: float | None = field(default=None)

    @property
    def active(self) -> bool:
        return self.ended_at_hours is None

    @property
    def instances(self) -> list[Instance]:
        return [node.instance for node in self.nodes]

    def interruption_hours(self) -> list[float]:
        """Per-node absolute interruption times, launch order."""
        return [node.interruption_at_hours for node in self.nodes]


class SpotFleet:
    """Launches and bills spot allocations against one market."""

    def __init__(self, market: SpotMarket, *,
                 virtualization: VirtualizationModel | None = None,
                 seed: int = 0):
        self.market = market
        self.virtualization = virtualization or VirtualizationModel()
        self._seed = seed
        self._allocation_counter = itertools.count(1)
        self._instance_counter = itertools.count(1)
        self.spent_dollars = 0.0

    def launch(self, spot: tuple[int, ...], bid: BidPolicy, *,
               now_hours: float, lease_key: object) -> SpotAllocation:
        """Launch one allocation of ``spot`` nodes (catalog order).

        Every node of a type shares that pool's bid and interruption
        time (the market reclaims pools, not single nodes); contention
        factors are sampled per node from the virtualization model so
        spot capacity is as noisy as on-demand capacity.
        """
        catalog = self.market.catalog
        if len(spot) != len(catalog):
            raise ValidationError("spot vector must match the catalog width")
        if all(c == 0 for c in spot):
            raise ValidationError("cannot launch an empty spot allocation")
        allocation_id = next(self._allocation_counter)
        nodes: list[SpotNode] = []
        for type_index, count in enumerate(spot):
            if count == 0:
                continue
            itype = catalog[type_index]
            bid_price = bid.bid_price(self.market, itype.name)
            interruption = self.market.first_interruption(
                itype.name, bid_price, now_hours, lease_key=lease_key)
            for _ in range(int(count)):
                iid = next(self._instance_counter)
                rng = derive_rng(self._seed, "spot-launch",
                                 allocation_id, iid)
                nodes.append(SpotNode(
                    instance=Instance(
                        instance_id=f"si-{iid:08d}",
                        itype=itype,
                        contention_factor=(
                            self.virtualization.sample_contention(rng)),
                        launched_at_hours=now_hours,
                    ),
                    bid_price=bid_price,
                    interruption_at_hours=interruption,
                ))
        return SpotAllocation(
            allocation_id=allocation_id,
            spot=tuple(int(v) for v in spot),
            nodes=nodes,
            started_at_hours=now_hours,
        )

    def bill_at(self, allocation: SpotAllocation, at_hours: float) -> float:
        """What the allocation costs if released at ``at_hours``.

        Each node pays the integrated market price from launch until it
        stops being held — its pool's interruption or the release,
        whichever is earlier.  Pure projection: no state changes.
        """
        total = 0.0
        for node in allocation.nodes:
            end = node.held_until(at_hours)
            if end > node.instance.launched_at_hours:
                total += self.market.spot_cost(
                    node.instance.itype.name,
                    node.instance.launched_at_hours, end)
        return total

    def terminate(self, allocation: SpotAllocation, *,
                  now_hours: float) -> float:
        """Release an allocation and settle its bill."""
        if not allocation.active:
            raise ValidationError(
                f"spot allocation {allocation.allocation_id} already ended")
        if now_hours < allocation.started_at_hours:
            raise ValidationError(
                "cannot terminate an allocation before it started")
        bill = self.bill_at(allocation, now_hours)
        for node in allocation.nodes:
            node.instance.terminated_at_hours = node.held_until(now_hours)
        allocation.ended_at_hours = now_hours
        allocation.billed_amount = bill
        self.spent_dollars += bill
        return bill
