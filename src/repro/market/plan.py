"""Mixed on-demand + spot purchase planning.

A CELIA configuration says *how many nodes of each type*; the purchase
plan says *how each node is bought*.  :func:`split_configuration` turns
a configuration and a target spot fraction into an (on-demand, spot)
purchasing vector, and :func:`purchase_plan` prices that vector against
a :class:`~repro.market.streams.SpotMarket`: expected cost via
:class:`~repro.market.billing.SpotExpectedBilling`, deadline risk via
the market's deterministic bid crossings plus the reclaim hazard.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ValidationError
from repro.market.bids import BidPolicy, bid_policy
from repro.market.billing import SpotExpectedBilling
from repro.market.streams import SpotMarket

__all__ = ["MarketPolicy", "PurchasePlan", "split_configuration",
           "purchase_plan"]


@dataclass(frozen=True)
class MarketPolicy:
    """How the adaptive controller buys capacity on a spot market."""

    #: Target fraction of each type's nodes purchased on the spot market
    #: (0 = pure on-demand, 1 = all-spot).
    spot_fraction: float = 0.6
    #: Bid policy name (see :func:`repro.market.bids.bid_policy_names`).
    bid_policy: str = "on-demand-cap"
    #: Spot interruptions tolerated before the controller falls back to
    #: pure on-demand purchasing for the rest of the run.
    fallback_after_interruptions: int = 2
    #: Below this fraction of residual deadline slack (residual deadline
    #: vs the plan's projected time), new capacity is bought on-demand
    #: only — no spot gamble when the envelope is already tight.  Must
    #: sit below ``1 − RuntimeConfig.deadline_safety`` (the slack the
    #: planner guarantees) or spot purchasing never engages.
    min_slack_fraction: float = 0.05

    def __post_init__(self) -> None:
        if not (0 <= self.spot_fraction <= 1):
            raise ValidationError("spot_fraction must be in [0, 1]")
        if self.fallback_after_interruptions < 1:
            raise ValidationError(
                "fallback_after_interruptions must be >= 1")
        if not (0 <= self.min_slack_fraction < 1):
            raise ValidationError("min_slack_fraction must be in [0, 1)")
        bid_policy(self.bid_policy)  # validates the name eagerly

    def make_bid_policy(self) -> BidPolicy:
        return bid_policy(self.bid_policy)


@dataclass(frozen=True)
class PurchasePlan:
    """One configuration split into a priced purchasing vector."""

    configuration: tuple[int, ...]
    ondemand: tuple[int, ...]
    spot: tuple[int, ...]
    bid_policy: str
    #: Per-type bid prices for the spot part ($/h; 0 where spot is 0).
    bids: tuple[float, ...]
    #: Expected cost of running the split for ``duration_hours``.
    expected_cost_dollars: float
    #: What the same duration costs bought purely on-demand.
    ondemand_cost_dollars: float
    #: Probability of at least one spot interruption within the duration.
    interruption_risk: float
    duration_hours: float

    @property
    def expected_saving_fraction(self) -> float:
        """1 − expected mixed cost / pure on-demand cost."""
        if self.ondemand_cost_dollars <= 0:
            return 0.0
        return 1.0 - self.expected_cost_dollars / self.ondemand_cost_dollars

    @property
    def spot_nodes(self) -> int:
        return sum(self.spot)


def split_configuration(configuration: tuple[int, ...],
                        spot_fraction: float) -> tuple[tuple[int, ...],
                                                       tuple[int, ...]]:
    """Split node counts into (on-demand, spot) purchasing vectors.

    Per type, ``round(count × spot_fraction)`` nodes go to spot and the
    rest to on-demand — deterministic, and exact at the 0 and 1
    endpoints.
    """
    if not (0 <= spot_fraction <= 1):
        raise ValidationError("spot_fraction must be in [0, 1]")
    spot = tuple(int(round(c * spot_fraction)) for c in configuration)
    ondemand = tuple(c - s for c, s in zip(configuration, spot))
    return ondemand, spot


def purchase_plan(market: SpotMarket, configuration: tuple[int, ...],
                  policy: MarketPolicy, *, duration_hours: float,
                  start_hours: float = 0.0,
                  bid: BidPolicy | None = None) -> PurchasePlan:
    """Price one configuration's mixed purchase against the market.

    Expected cost charges the on-demand part at catalog prices and the
    spot part at the market's expected rate
    (:class:`SpotExpectedBilling`, capped per type at the bid — while
    held, a node never pays above its bid).  Interruption risk combines
    the deterministic bid crossing within ``[start, start + duration]``
    with the reclaim hazard's survival probability per active spot pool.
    """
    if duration_hours < 0:
        raise ValidationError("duration must be non-negative")
    catalog = market.catalog
    if len(configuration) != len(catalog):
        raise ValidationError("configuration must match the catalog width")
    bid = bid or policy.make_bid_policy()
    ondemand, spot = split_configuration(configuration, policy.spot_fraction)
    expected_billing = SpotExpectedBilling.for_market(market)

    expected = 0.0
    od_only = 0.0
    bids = []
    survival = 1.0
    reclaim_rate = market.config.reclaim_rate_per_hour
    for i, itype in enumerate(catalog):
        price = itype.price_per_hour
        od_only += configuration[i] * price * duration_hours
        expected += ondemand[i] * price * duration_hours
        if spot[i] == 0:
            bids.append(0.0)
            continue
        bid_price = bid.bid_price(market, itype.name)
        bids.append(bid_price)
        rate = min(expected_billing.amount_due(price, 1.0), bid_price)
        expected += spot[i] * rate * duration_hours
        crossing = market.first_bid_crossing(itype.name, bid_price,
                                             start_hours)
        if crossing < start_hours + duration_hours:
            survival = 0.0
        if reclaim_rate > 0:
            survival *= math.exp(-reclaim_rate * duration_hours)
    return PurchasePlan(
        configuration=tuple(int(v) for v in configuration),
        ondemand=ondemand,
        spot=spot,
        bid_policy=bid.name,
        bids=tuple(bids),
        expected_cost_dollars=expected,
        ondemand_cost_dollars=od_only,
        interruption_risk=1.0 - survival,
        duration_hours=duration_hours,
    )
