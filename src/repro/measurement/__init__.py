"""Measurement-driven characterization — the "measurement" in CELIA.

The paper cannot read hardware performance counters on virtualized cloud
instances, so it splits characterization in two (Section III-A):

1. **Demand** — run scale-down versions ``P(n', a')`` on a *local server*
   with the same micro-architecture and read the instruction count with
   Linux ``perf`` (simulated by :class:`~repro.measurement.perf.PerfCounter`).
2. **Capacity** — run the same scale-down versions on each cloud instance
   type and divide the measured instruction count by measured wall time
   (:mod:`repro.measurement.baseline`), which bakes virtualization
   overhead into the rate, so it needs no separate model.

The fitted relationship between parameters and demand
(:mod:`repro.measurement.fitting`) turns the sampled grid into the
continuous ``D(n, a)`` the time model needs; fitted artefacts round-trip
through JSON (:mod:`repro.measurement.profiles`).
"""

from repro.measurement.machines import MachineSpec, LOCAL_XEON_E5_2630_V4
from repro.measurement.perf import PerfCounter, PerfReading
from repro.measurement.baseline import (
    DemandSamples,
    measure_demand_grid,
    measure_capacities,
    measure_capacities_by_category,
    CapacityMeasurement,
)
from repro.measurement.fitting import (
    TermFit,
    FittedDemand,
    fit_term,
    fit_separable_demand,
)
from repro.measurement.profiles import ApplicationProfile

__all__ = [
    "MachineSpec",
    "LOCAL_XEON_E5_2630_V4",
    "PerfCounter",
    "PerfReading",
    "DemandSamples",
    "measure_demand_grid",
    "measure_capacities",
    "measure_capacities_by_category",
    "CapacityMeasurement",
    "TermFit",
    "FittedDemand",
    "fit_term",
    "fit_separable_demand",
    "ApplicationProfile",
]
