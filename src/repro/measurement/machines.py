"""Machine specifications for the measurement substrate."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ValidationError

__all__ = ["MachineSpec", "LOCAL_XEON_E5_2630_V4"]


@dataclass(frozen=True, slots=True)
class MachineSpec:
    """A physical measurement host.

    The paper requires the local server to share the instruction-set
    architecture *and* micro-architecture family with the cloud hosts so
    instruction counts transfer; both are recorded so the measurement
    layer can refuse mismatched setups.
    """

    name: str
    cores: int
    threads: int
    frequency_ghz: float
    isa: str = "x86_64"
    microarchitecture: str = "haswell-broadwell"

    def __post_init__(self) -> None:
        if self.cores < 1 or self.threads < self.cores:
            raise ValidationError("threads must be >= cores >= 1")
        if self.frequency_ghz <= 0:
            raise ValidationError("frequency must be positive")

    def compatible_with(self, other_isa: str,
                        other_microarchitecture: str) -> bool:
        """True when instruction counts transfer between the machines."""
        return (self.isa == other_isa
                and self.microarchitecture == other_microarchitecture)


#: The paper's measurement host: a dual-socket Intel Xeon E5-2630 v4
#: (Broadwell, 10 cores / 20 threads per socket, 2.2 GHz base).
LOCAL_XEON_E5_2630_V4 = MachineSpec(
    name="Intel Xeon E5-2630 v4",
    cores=10,
    threads=20,
    frequency_ghz=2.2,
)
