"""Simulated ``perf stat``: instruction counting on the local server.

Hardware counters are precise but not exact across runs (interrupt
skid, kernel-side work, counter multiplexing), so the simulated counter
applies a small multiplicative reading noise.  The *reading* is what CELIA
sees; the true demand stays hidden in the application object.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.base import ElasticApplication
from repro.errors import MeasurementError
from repro.measurement.machines import MachineSpec, LOCAL_XEON_E5_2630_V4
from repro.utils.rng import derive_rng

__all__ = ["PerfReading", "PerfCounter"]


@dataclass(frozen=True, slots=True)
class PerfReading:
    """One ``perf stat`` invocation's result."""

    app_name: str
    n: float
    a: float
    instructions_gi: float
    elapsed_seconds: float
    machine: str

    @property
    def rate_gips(self) -> float:
        """Instructions per second observed on the measurement host."""
        return self.instructions_gi / self.elapsed_seconds


class PerfCounter:
    """Instruction-count measurement harness on a local server.

    Parameters
    ----------
    machine:
        The measurement host (defaults to the paper's Xeon E5-2630 v4).
    noise_sigma:
        Relative counter noise per reading (0 disables it).
    seed:
        Seed for the noise stream.
    """

    def __init__(self, machine: MachineSpec = LOCAL_XEON_E5_2630_V4, *,
                 noise_sigma: float = 0.005, seed: int = 0):
        if noise_sigma < 0:
            raise MeasurementError("noise sigma must be non-negative")
        self.machine = machine
        self.noise_sigma = noise_sigma
        self.seed = seed

    def measure(self, app: ElasticApplication, n: float, a: float,
                *, repeat: int = 1) -> PerfReading:
        """Run ``P(n, a)`` under the counter and return the reading.

        ``repeat`` averages multiple counter runs, shrinking noise by
        ``1/sqrt(repeat)`` — matching how practitioners use ``perf``.
        """
        if repeat < 1:
            raise MeasurementError("repeat must be >= 1")
        if not self.machine.compatible_with("x86_64", "haswell-broadwell"):
            raise MeasurementError(
                f"{self.machine.name} does not match the target cloud "
                f"micro-architecture; instruction counts will not transfer"
            )
        true_gi = app.demand_gi(n, a)
        rng = derive_rng(self.seed, "perf", app.name, n, a)
        readings = []
        for _ in range(repeat):
            noise = rng.normal(0.0, self.noise_sigma) if self.noise_sigma else 0.0
            readings.append(true_gi * (1.0 + noise))
        measured = sum(readings) / repeat

        local_rate = (
            self.machine.threads
            * self.machine.frequency_ghz
            * app.profile.local_ipc
        )
        return PerfReading(
            app_name=app.name,
            n=n,
            a=a,
            instructions_gi=measured,
            elapsed_seconds=measured / local_rate,
            machine=self.machine.name,
        )
