"""Baseline executions: demand grids and capacity measurements.

Implements Section III-A's measurement protocol:

* :func:`measure_demand_grid` — run scale-down ``P(n', a')`` sweeps under
  the local perf counter to sample the demand surface (Figure 2's data).
* :func:`measure_capacities` — run one scale-down baseline per instance
  type on the cloud, divide measured instructions by measured time to get
  per-type rates ``W_i`` (Section IV-B).
* :func:`measure_capacities_by_category` — the Section IV-C optimization:
  profile *one* type per category and extrapolate within the category by
  price, exploiting the near-constant GI/s-per-dollar within a family.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.base import ElasticApplication
from repro.cloud.catalog import Catalog
from repro.cloud.instance import ResourceCategory
from repro.engine.runner import EngineConfig, time_single_node_run
from repro.errors import MeasurementError
from repro.measurement.perf import PerfCounter

__all__ = [
    "DemandSamples",
    "CapacityMeasurement",
    "measure_demand_grid",
    "measure_capacities",
    "measure_capacities_by_category",
    "default_cloud_baseline",
]


@dataclass(frozen=True)
class DemandSamples:
    """Measured demand surface over a (sizes × accuracies) grid."""

    app_name: str
    sizes: np.ndarray  # (S,)
    accuracies: np.ndarray  # (A,)
    demand_gi: np.ndarray  # (S, A)

    def __post_init__(self) -> None:
        if self.demand_gi.shape != (self.sizes.size, self.accuracies.size):
            raise MeasurementError(
                "demand grid shape must be (len(sizes), len(accuracies))"
            )
        if np.any(self.demand_gi <= 0):
            raise MeasurementError("measured demand must be positive")

    def size_slice(self, accuracy_index: int) -> tuple[np.ndarray, np.ndarray]:
        """(sizes, demand) at one fixed accuracy — a Figure 2 panel row."""
        return self.sizes, self.demand_gi[:, accuracy_index]

    def accuracy_slice(self, size_index: int) -> tuple[np.ndarray, np.ndarray]:
        """(accuracies, demand) at one fixed size."""
        return self.accuracies, self.demand_gi[size_index, :]


@dataclass(frozen=True)
class CapacityMeasurement:
    """One instance type's measured execution rate for one application."""

    type_name: str
    rate_gips: float
    instructions_gi: float
    elapsed_seconds: float
    extrapolated: bool = False  # True when derived via the IV-C shortcut

    @property
    def normalized_per_dollar(self) -> float | None:
        """Set lazily by callers that know the price; None here."""
        return None


def measure_demand_grid(app: ElasticApplication, perf: PerfCounter,
                        *, sizes: np.ndarray | None = None,
                        accuracies: np.ndarray | None = None,
                        repeat: int = 1) -> DemandSamples:
    """Measure the demand surface of ``app`` on its scale-down grid."""
    grid_sizes, grid_accs = app.scale_down_grid()
    if sizes is None:
        sizes = grid_sizes
    if accuracies is None:
        accuracies = grid_accs
    sizes = np.asarray(sizes, dtype=float)
    accuracies = np.asarray(accuracies, dtype=float)
    demand = np.empty((sizes.size, accuracies.size))
    for i, n in enumerate(sizes):
        for j, a in enumerate(accuracies):
            demand[i, j] = perf.measure(app, float(n), float(a),
                                        repeat=repeat).instructions_gi
    return DemandSamples(app_name=app.name, sizes=sizes,
                         accuracies=accuracies, demand_gi=demand)


def default_cloud_baseline(app: ElasticApplication) -> tuple[float, float]:
    """The scale-down ``(n', a')`` used to time cloud instances.

    Sized so a baseline run lasts tens of minutes on the slowest type:
    long enough to amortize startup effects, short enough to be cheap.
    """
    presets = {
        "x264": (32.0, 30.0),
        "galaxy": (8192.0, 1000.0),
        "sand": (4.0e6, 0.32),
    }
    if app.name in presets:
        return presets[app.name]
    sizes, accs = app.scale_down_grid()
    return float(sizes[-1]), float(accs[len(accs) // 2])


def _median_elapsed(app: ElasticApplication, n_prime: float, a_prime: float,
                    itype, engine_config: EngineConfig | None,
                    seed: int, instances_per_type: int) -> float:
    """Median baseline wall time over several freshly launched instances.

    One instance can land on an unusually contended host; practitioners
    (and the paper's authors, who ran repeated baselines) take a median
    over a few launches so the measured rate reflects a typical host.
    """
    times = [
        time_single_node_run(app, n_prime, a_prime, itype,
                             config=engine_config, seed=seed + 1000 * rep)
        for rep in range(instances_per_type)
    ]
    return float(np.median(times))


def measure_capacities(
    app: ElasticApplication,
    catalog: Catalog,
    perf: PerfCounter,
    *,
    engine_config: EngineConfig | None = None,
    seed: int = 0,
    baseline: tuple[float, float] | None = None,
    instances_per_type: int = 3,
) -> tuple[np.ndarray, list[CapacityMeasurement]]:
    """Measure ``W_i`` for every type by timing scale-down runs on each.

    Returns the capacity vector (GI/s, catalog order) and the individual
    measurements.  The instruction count comes from ONE local perf run of
    the same ``P(n', a')`` — exactly the paper's protocol, where the local
    count stands in for all cloud runs (same ISA and micro-architecture).
    """
    n_prime, a_prime = baseline or default_cloud_baseline(app)
    reading = perf.measure(app, n_prime, a_prime)
    measurements: list[CapacityMeasurement] = []
    rates = np.empty(len(catalog))
    for i, itype in enumerate(catalog):
        elapsed = _median_elapsed(app, n_prime, a_prime, itype,
                                  engine_config, seed, instances_per_type)
        rate = reading.instructions_gi / elapsed
        rates[i] = rate
        measurements.append(
            CapacityMeasurement(
                type_name=itype.name,
                rate_gips=rate,
                instructions_gi=reading.instructions_gi,
                elapsed_seconds=elapsed,
            )
        )
    return rates, measurements


def measure_capacities_by_category(
    app: ElasticApplication,
    catalog: Catalog,
    perf: PerfCounter,
    *,
    engine_config: EngineConfig | None = None,
    seed: int = 0,
    baseline: tuple[float, float] | None = None,
    representative: dict[ResourceCategory, str] | None = None,
    instances_per_type: int = 3,
) -> tuple[np.ndarray, list[CapacityMeasurement]]:
    """The Section IV-C shortcut: profile one type per category.

    Measures the representative type of each category (by default the
    cheapest), computes its GI/s per dollar, and extrapolates every other
    type in the category as ``W_i = (W_rep / c_rep) × c_i`` — valid
    because normalized performance is near-constant within a category
    (Figure 3).  Cuts measurement cost from M runs to one per category.
    """
    n_prime, a_prime = baseline or default_cloud_baseline(app)
    reading = perf.measure(app, n_prime, a_prime)

    reps: dict[ResourceCategory, str] = {}
    if representative:
        reps.update(representative)
    for category in {t.category for t in catalog}:
        if category not in reps:
            cheapest = min(catalog.types_in_category(category),
                           key=lambda t: t.price_per_hour)
            reps[category] = cheapest.name

    norm_by_category: dict[ResourceCategory, float] = {}
    rep_measurements: dict[str, CapacityMeasurement] = {}
    for category, rep_name in reps.items():
        itype = catalog.type_named(rep_name)
        if itype.category is not category:
            raise MeasurementError(
                f"representative {rep_name} is not in category {category}"
            )
        elapsed = _median_elapsed(app, n_prime, a_prime, itype,
                                  engine_config, seed, instances_per_type)
        rate = reading.instructions_gi / elapsed
        norm_by_category[category] = rate / itype.price_per_hour
        rep_measurements[rep_name] = CapacityMeasurement(
            type_name=itype.name,
            rate_gips=rate,
            instructions_gi=reading.instructions_gi,
            elapsed_seconds=elapsed,
        )

    rates = np.empty(len(catalog))
    measurements: list[CapacityMeasurement] = []
    for i, itype in enumerate(catalog):
        if itype.name in rep_measurements:
            m = rep_measurements[itype.name]
        else:
            rate = norm_by_category[itype.category] * itype.price_per_hour
            m = CapacityMeasurement(
                type_name=itype.name,
                rate_gips=rate,
                instructions_gi=reading.instructions_gi,
                elapsed_seconds=float("nan"),
                extrapolated=True,
            )
        rates[i] = m.rate_gips
        measurements.append(m)
    return rates, measurements
