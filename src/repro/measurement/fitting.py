"""Fitting demand models to measured baseline grids.

The paper establishes "the relationship between application parameters
and application resource demand" by sweeping scale-down runs and
observing linear / quadratic / logarithmic shapes (Figure 2).  This
module automates that step: each one-dimensional slice of the measured
grid is fitted against the candidate term family and the best shape is
selected by AICc, then the separable product model is rescaled against
the full grid by least squares.

The fitted object is what CELIA's time model consumes — ground truth
never leaks into predictions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy.optimize import curve_fit

from repro.apps.demand import (
    AffineTerm,
    ConstantTerm,
    DemandTerm,
    LinearTerm,
    LogTerm,
    PowerTerm,
    QuadraticTerm,
    SeparableDemand,
)
from repro.errors import FittingError
from repro.measurement.baseline import DemandSamples

__all__ = ["TermFit", "FittedDemand", "fit_term", "fit_separable_demand",
           "DEFAULT_TERM_KINDS"]

#: Candidate shapes considered by default, in report order.
DEFAULT_TERM_KINDS: tuple[str, ...] = (
    "linear", "affine", "quadratic", "power", "log",
)


@dataclass(frozen=True)
class TermFit:
    """A fitted one-dimensional term plus goodness-of-fit diagnostics."""

    term: DemandTerm
    kind: str
    r2: float
    aicc: float
    n_samples: int

    def describe(self) -> str:
        """Readable summary, e.g. ``quadratic: 314 + 0.574*x^2 (R2=1.000)``."""
        return f"{self.kind}: {self.term.describe()} (R2={self.r2:.4f})"


def _metrics(y: np.ndarray, pred: np.ndarray, k_params: int) -> tuple[float, float]:
    """(R², AICc) of a fit with ``k_params`` free parameters."""
    n = y.size
    rss = float(np.sum((y - pred) ** 2))
    tss = float(np.sum((y - y.mean()) ** 2))
    r2 = 1.0 - rss / tss if tss > 0 else 1.0
    # Guard log(0) when the fit is exact: floor RSS at a tiny relative value.
    rss = max(rss, 1e-12 * max(tss, 1.0))
    aic = n * math.log(rss / n) + 2 * k_params
    denom = n - k_params - 1
    aicc = aic + (2 * k_params * (k_params + 1) / denom) if denom > 0 else math.inf
    return r2, aicc


def _try_linear(x: np.ndarray, y: np.ndarray) -> tuple[DemandTerm, np.ndarray, int] | None:
    denom = float(np.sum(x * x))
    if denom == 0:
        return None
    slope = float(np.sum(x * y) / denom)
    if slope <= 0:
        return None
    term = LinearTerm(slope=slope)
    return term, slope * x, 1


def _try_affine(x: np.ndarray, y: np.ndarray) -> tuple[DemandTerm, np.ndarray, int] | None:
    design = np.column_stack([np.ones_like(x), x])
    coef, *_ = np.linalg.lstsq(design, y, rcond=None)
    intercept, slope = float(coef[0]), float(coef[1])
    if intercept < 0 or slope < 0 or (intercept == 0 and slope == 0):
        return None
    term = AffineTerm(intercept=intercept, slope=slope)
    return term, design @ coef, 2


def _try_quadratic(x: np.ndarray, y: np.ndarray) -> tuple[DemandTerm, np.ndarray, int] | None:
    # Full a + b x + c x^2, falling back to a + c x^2 when b < 0.
    design = np.column_stack([np.ones_like(x), x, x * x])
    coef, *_ = np.linalg.lstsq(design, y, rcond=None)
    a, b, c = (float(v) for v in coef)
    if b < 0 or a < 0:
        design = np.column_stack([np.ones_like(x), x * x])
        coef2, *_ = np.linalg.lstsq(design, y, rcond=None)
        a, b, c = float(coef2[0]), 0.0, float(coef2[1])
        if a < 0 or c <= 0:
            return None
        return QuadraticTerm(a=a, b=b, c=c), design @ coef2, 2
    if c <= 0:
        return None
    return QuadraticTerm(a=a, b=b, c=c), design @ coef, 3


def _try_power(x: np.ndarray, y: np.ndarray) -> tuple[DemandTerm, np.ndarray, int] | None:
    if np.any(x <= 0) or np.any(y <= 0):
        return None
    lx, ly = np.log(x), np.log(y)
    design = np.column_stack([np.ones_like(lx), lx])
    coef, *_ = np.linalg.lstsq(design, ly, rcond=None)
    coefficient = float(np.exp(coef[0]))
    exponent = float(coef[1])
    term = PowerTerm(coefficient=coefficient, exponent=exponent)
    return term, coefficient * np.power(x, exponent), 2


def _try_log(x: np.ndarray, y: np.ndarray) -> tuple[DemandTerm, np.ndarray, int] | None:
    if np.any(x < 0) or np.any(y <= 0):
        return None

    def model(xv: np.ndarray, b: float, tau: float) -> np.ndarray:
        return b * np.log1p(xv / tau)

    tau0 = float(np.median(x)) or 1.0
    b0 = float(y.max() / max(np.log1p(x.max() / tau0), 1e-9))
    try:
        popt, _ = curve_fit(
            model, x, y, p0=[b0, tau0],
            bounds=([1e-12, 1e-12], [np.inf, np.inf]),
            maxfev=20000,
        )
    except (RuntimeError, ValueError):
        return None
    b, tau = float(popt[0]), float(popt[1])
    term = LogTerm(coefficient=b, tau=tau)
    return term, model(x, b, tau), 2


_FITTERS = {
    "linear": _try_linear,
    "affine": _try_affine,
    "quadratic": _try_quadratic,
    "power": _try_power,
    "log": _try_log,
}


def fit_term(x: np.ndarray, y: np.ndarray,
             kinds: tuple[str, ...] = DEFAULT_TERM_KINDS) -> TermFit:
    """Fit the best one-dimensional term to (x, y) by AICc.

    Raises :class:`FittingError` when no candidate shape admits a valid
    (positivity-respecting) fit, or when fewer than three samples are
    provided.
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.shape != y.shape or x.ndim != 1:
        raise FittingError("x and y must be 1-D arrays of equal length")
    if x.size < 3:
        raise FittingError(f"need at least 3 samples to fit a term, got {x.size}")
    if np.unique(x).size != x.size:
        raise FittingError("x values must be distinct")

    # Near-constant response: the parameter does not drive demand.
    if float(y.max() - y.min()) <= 1e-9 * float(abs(y).max() or 1.0):
        term = ConstantTerm(value=float(y.mean()))
        r2, aicc = _metrics(y, np.full_like(y, float(y.mean())), 1)
        return TermFit(term=term, kind="constant", r2=r2, aicc=aicc,
                       n_samples=x.size)

    best: TermFit | None = None
    for kind in kinds:
        fitter = _FITTERS.get(kind)
        if fitter is None:
            raise FittingError(f"unknown term kind {kind!r}")
        result = fitter(x, y)
        if result is None:
            continue
        term, pred, k = result
        if np.any(pred <= 0):
            continue  # demand factors must stay positive over the samples
        r2, aicc = _metrics(y, pred, k)
        candidate = TermFit(term=term, kind=kind, r2=r2, aicc=aicc,
                            n_samples=x.size)
        if best is None or candidate.aicc < best.aicc:
            best = candidate
    if best is None:
        raise FittingError("no candidate term family fits the samples")
    return best


@dataclass(frozen=True)
class FittedDemand:
    """A separable demand model fitted from measurements.

    Behaves like :class:`~repro.apps.demand.SeparableDemand` (callable,
    ``gi``) and carries the per-dimension fits and global goodness of fit.
    """

    model: SeparableDemand
    size_fit: TermFit
    accuracy_fit: TermFit
    grid_r2: float
    app_name: str

    def __call__(self, n, a):
        """Predicted demand in GI (broadcasts like the underlying model)."""
        return self.model(n, a)

    def gi(self, n: float, a: float) -> float:
        """Scalar predicted demand in GI."""
        return self.model.gi(n, a)

    def describe(self) -> str:
        """Multi-line fit report."""
        return "\n".join([
            f"{self.app_name}: {self.model.describe()}",
            f"  size      ~ {self.size_fit.describe()}",
            f"  accuracy  ~ {self.accuracy_fit.describe()}",
            f"  grid R2 = {self.grid_r2:.5f}",
        ])


def fit_separable_demand(samples: DemandSamples,
                         kinds: tuple[str, ...] = DEFAULT_TERM_KINDS) -> FittedDemand:
    """Fit ``D(n, a) = scale · g(n) · h(a)`` to a measured grid.

    Fits ``g`` on the size slice at the median accuracy and ``h`` on the
    accuracy slice at the median size, then solves the single scale by
    least squares over the whole grid.  Reports grid-wide R² so callers
    can detect non-separable demand surfaces.
    """
    i_mid = samples.sizes.size // 2
    j_mid = samples.accuracies.size // 2

    sizes, d_sizes = samples.size_slice(j_mid)
    accs, d_accs = samples.accuracy_slice(i_mid)
    size_fit = fit_term(sizes, d_sizes, kinds)
    accuracy_fit = fit_term(accs, d_accs, kinds)

    g = np.asarray(size_fit.term(samples.sizes), dtype=float)
    h = np.asarray(accuracy_fit.term(samples.accuracies), dtype=float)
    gh = np.outer(g, h)
    denom = float(np.sum(gh * gh))
    if denom == 0:
        raise FittingError("degenerate separable design (zero basis)")
    scale = float(np.sum(samples.demand_gi * gh) / denom)
    if scale <= 0:
        raise FittingError("fitted demand scale is not positive")

    pred = scale * gh
    rss = float(np.sum((samples.demand_gi - pred) ** 2))
    tss = float(np.sum((samples.demand_gi - samples.demand_gi.mean()) ** 2))
    grid_r2 = 1.0 - rss / tss if tss > 0 else 1.0

    model = SeparableDemand(
        size_term=size_fit.term,
        accuracy_term=accuracy_fit.term,
        scale=scale,
    )
    return FittedDemand(
        model=model,
        size_fit=size_fit,
        accuracy_fit=accuracy_fit,
        grid_r2=grid_r2,
        app_name=samples.app_name,
    )
