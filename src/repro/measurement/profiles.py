"""Persistence of characterization artefacts.

An :class:`ApplicationProfile` bundles what CELIA learned about one
application — the fitted demand model and the measured per-type
capacities — and round-trips through JSON, so an expensive
characterization (real money on a real cloud) is done once and reused.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.apps.demand import (
    AffineTerm,
    ConstantTerm,
    DemandTerm,
    LinearTerm,
    LogTerm,
    PowerTerm,
    QuadraticTerm,
    SeparableDemand,
)
from repro.errors import ValidationError

__all__ = ["ApplicationProfile", "term_to_dict", "term_from_dict"]


def term_to_dict(term: DemandTerm) -> dict:
    """Serialize a demand term to a JSON-safe dict."""
    if isinstance(term, ConstantTerm):
        return {"kind": "constant", "value": term.value}
    if isinstance(term, LinearTerm):
        return {"kind": "linear", "slope": term.slope}
    if isinstance(term, AffineTerm):
        return {"kind": "affine", "intercept": term.intercept, "slope": term.slope}
    if isinstance(term, QuadraticTerm):
        return {"kind": "quadratic", "a": term.a, "b": term.b, "c": term.c}
    if isinstance(term, PowerTerm):
        return {"kind": "power", "coefficient": term.coefficient,
                "exponent": term.exponent}
    if isinstance(term, LogTerm):
        return {"kind": "log", "coefficient": term.coefficient, "tau": term.tau}
    raise ValidationError(f"cannot serialize term of type {type(term).__name__}")


def term_from_dict(data: dict) -> DemandTerm:
    """Inverse of :func:`term_to_dict`."""
    kind = data.get("kind")
    try:
        if kind == "constant":
            return ConstantTerm(value=data["value"])
        if kind == "linear":
            return LinearTerm(slope=data["slope"])
        if kind == "affine":
            return AffineTerm(intercept=data["intercept"], slope=data["slope"])
        if kind == "quadratic":
            return QuadraticTerm(a=data["a"], b=data["b"], c=data["c"])
        if kind == "power":
            return PowerTerm(coefficient=data["coefficient"],
                             exponent=data["exponent"])
        if kind == "log":
            return LogTerm(coefficient=data["coefficient"], tau=data["tau"])
    except KeyError as exc:
        raise ValidationError(f"term dict missing field {exc}") from None
    raise ValidationError(f"unknown term kind {kind!r}")


@dataclass(frozen=True)
class ApplicationProfile:
    """Characterization result for one application on one catalog.

    Attributes
    ----------
    app_name:
        The application this profile describes.
    demand:
        Fitted demand model ``D(n, a)`` in GI.
    capacities_gips:
        Measured rate per type name in GI/s.
    """

    app_name: str
    demand: SeparableDemand
    capacities_gips: dict[str, float]

    def capacity_vector(self, type_names: list[str]) -> np.ndarray:
        """Capacities arranged to match a catalog's type order."""
        try:
            return np.array([self.capacities_gips[name] for name in type_names])
        except KeyError as exc:
            raise ValidationError(
                f"profile has no capacity for type {exc}; "
                f"known types: {sorted(self.capacities_gips)}"
            ) from None

    # -- JSON round trip -------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-safe representation."""
        return {
            "app_name": self.app_name,
            "demand": {
                "scale": self.demand.scale,
                "size_term": term_to_dict(self.demand.size_term),
                "accuracy_term": term_to_dict(self.demand.accuracy_term),
            },
            "capacities_gips": dict(self.capacities_gips),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ApplicationProfile":
        """Inverse of :meth:`to_dict`."""
        try:
            demand = SeparableDemand(
                size_term=term_from_dict(data["demand"]["size_term"]),
                accuracy_term=term_from_dict(data["demand"]["accuracy_term"]),
                scale=float(data["demand"]["scale"]),
            )
            return cls(
                app_name=str(data["app_name"]),
                demand=demand,
                capacities_gips={k: float(v)
                                 for k, v in data["capacities_gips"].items()},
            )
        except KeyError as exc:
            raise ValidationError(f"profile dict missing field {exc}") from None

    def save(self, path: str | Path) -> None:
        """Write the profile as JSON."""
        Path(path).write_text(json.dumps(self.to_dict(), indent=2))

    @classmethod
    def load(cls, path: str | Path) -> "ApplicationProfile":
        """Read a profile written by :meth:`save`."""
        return cls.from_dict(json.loads(Path(path).read_text()))
