"""Terminal plotting: ASCII scatter and line charts for the experiments.

The paper's artifacts are figures; the reproduction renders them as
character grids so `celia-experiments` output is visually comparable to
the paper without a plotting stack.  Only what the experiments need is
implemented: 2-D scatter with an overlay series (Figure 4's cloud +
Pareto frontier) and multi-series line charts (Figures 5/6).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError

__all__ = ["ascii_scatter", "ascii_lines"]

#: Markers assigned to line-chart series, in order.
SERIES_MARKERS = "ox+*#@%&"


def _scale(values: np.ndarray, lo: float, hi: float, cells: int) -> np.ndarray:
    """Map values in [lo, hi] to integer cells [0, cells-1]."""
    if hi <= lo:
        return np.zeros(values.shape, dtype=int)
    frac = (values - lo) / (hi - lo)
    return np.clip((frac * (cells - 1)).round().astype(int), 0, cells - 1)


def _axis_limits(*arrays: np.ndarray) -> tuple[float, float]:
    parts = [np.asarray(a, dtype=float).ravel()
             for a in arrays if np.asarray(a).size]
    if not parts:
        raise ValidationError("no finite values to plot")
    stacked = np.concatenate(parts)
    finite = stacked[np.isfinite(stacked)]
    if finite.size == 0:
        raise ValidationError("no finite values to plot")
    lo, hi = float(finite.min()), float(finite.max())
    if lo == hi:
        pad = abs(lo) * 0.1 or 1.0
        return lo - pad, hi + pad
    return lo, hi


def _render_grid(grid: list[list[str]], x_lo: float, x_hi: float,
                 y_lo: float, y_hi: float, xlabel: str, ylabel: str,
                 title: str | None) -> str:
    height = len(grid)
    lines = []
    if title:
        lines.append(title)
    y_hi_label = f"{y_hi:.4g}"
    y_lo_label = f"{y_lo:.4g}"
    pad = max(len(y_hi_label), len(y_lo_label), len(ylabel))
    for r in range(height):
        if r == 0:
            label = y_hi_label
        elif r == height - 1:
            label = y_lo_label
        elif r == height // 2:
            label = ylabel
        else:
            label = ""
        lines.append(f"{label:>{pad}} |" + "".join(grid[r]))
    width = len(grid[0])
    lines.append(" " * pad + " +" + "-" * width)
    x_lo_label = f"{x_lo:.4g}"
    x_hi_label = f"{x_hi:.4g}"
    gap = max(width - len(x_lo_label) - len(x_hi_label), 1)
    lines.append(" " * (pad + 2) + x_lo_label + " " * gap + x_hi_label)
    lines.append(" " * (pad + 2) + xlabel.center(width))
    return "\n".join(lines)


def ascii_scatter(
    x: np.ndarray,
    y: np.ndarray,
    *,
    overlay_x: np.ndarray | None = None,
    overlay_y: np.ndarray | None = None,
    width: int = 64,
    height: int = 18,
    xlabel: str = "x",
    ylabel: str = "y",
    title: str | None = None,
    marker: str = ".",
    overlay_marker: str = "*",
) -> str:
    """Scatter plot with an optional overlay series drawn on top.

    The y axis increases upward (row 0 is the maximum), matching the
    paper's figures.  Density is not encoded — any hit marks the cell.
    """
    if width < 8 or height < 4:
        raise ValidationError("plot must be at least 8x4 cells")
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.shape != y.shape:
        raise ValidationError("x and y must have the same shape")
    ox = np.asarray(overlay_x, dtype=float) if overlay_x is not None else np.empty(0)
    oy = np.asarray(overlay_y, dtype=float) if overlay_y is not None else np.empty(0)
    if ox.shape != oy.shape:
        raise ValidationError("overlay x and y must have the same shape")

    x_lo, x_hi = _axis_limits(x, ox)
    y_lo, y_hi = _axis_limits(y, oy)
    grid = [[" "] * width for _ in range(height)]

    cols = _scale(x, x_lo, x_hi, width)
    rows = (height - 1) - _scale(y, y_lo, y_hi, height)
    for r, c in zip(rows, cols):
        grid[r][c] = marker
    if ox.size:
        cols_o = _scale(ox, x_lo, x_hi, width)
        rows_o = (height - 1) - _scale(oy, y_lo, y_hi, height)
        for r, c in zip(rows_o, cols_o):
            grid[r][c] = overlay_marker

    return _render_grid(grid, x_lo, x_hi, y_lo, y_hi, xlabel, ylabel, title)


def ascii_lines(
    x: np.ndarray,
    series: dict[str, np.ndarray],
    *,
    width: int = 64,
    height: int = 18,
    xlabel: str = "x",
    ylabel: str = "y",
    title: str | None = None,
) -> str:
    """Multi-series chart: one marker character per series, plus a legend.

    Non-finite values (infeasible sweep points) are skipped per series.
    """
    if not series:
        raise ValidationError("need at least one series")
    if len(series) > len(SERIES_MARKERS):
        raise ValidationError(
            f"at most {len(SERIES_MARKERS)} series are supported")
    x = np.asarray(x, dtype=float)
    finite_ys = []
    for label, y in series.items():
        y = np.asarray(y, dtype=float)
        if y.shape != x.shape:
            raise ValidationError(f"series {label!r} does not match x")
        finite_ys.append(y[np.isfinite(y)])
    x_lo, x_hi = _axis_limits(x)
    y_lo, y_hi = _axis_limits(*finite_ys)

    grid = [[" "] * width for _ in range(height)]
    legend = []
    for marker, (label, y) in zip(SERIES_MARKERS, series.items()):
        y = np.asarray(y, dtype=float)
        ok = np.isfinite(y)
        cols = _scale(x[ok], x_lo, x_hi, width)
        rows = (height - 1) - _scale(y[ok], y_lo, y_hi, height)
        for r, c in zip(rows, cols):
            grid[r][c] = marker
        legend.append(f"{marker}={label}")

    body = _render_grid(grid, x_lo, x_hi, y_lo, y_hi, xlabel, ylabel, title)
    return body + "\n" + "legend: " + "  ".join(legend)
