"""Minimal ASCII table rendering for experiment reports.

Experiments print paper-style tables (Table III, Table IV) to stdout and to
``EXPERIMENTS.md``.  This renderer intentionally supports only what those
reports need: left/right alignment, a header rule, and a title line.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

__all__ = ["TextTable"]


class TextTable:
    """Accumulate rows and render them as a monospace table.

    >>> t = TextTable(["Type", "Cost"], aligns="lr", title="Catalog")
    >>> t.add_row(["c4.large", 0.105])
    >>> print(t.render())  # doctest: +NORMALIZE_WHITESPACE
    Catalog
    Type     |  Cost
    ---------+------
    c4.large | 0.105
    """

    def __init__(self, headers: Sequence[str], *, aligns: str | None = None,
                 title: str | None = None, float_format: str = "{:g}"):
        if aligns is not None and len(aligns) != len(headers):
            raise ValueError("aligns must have one character per column")
        if aligns is not None and set(aligns) - {"l", "r"}:
            raise ValueError("aligns may contain only 'l' and 'r'")
        self.headers = [str(h) for h in headers]
        self.aligns = aligns or "l" * len(headers)
        self.title = title
        self.float_format = float_format
        self._rows: list[list[str]] = []

    def add_row(self, row: Iterable[object]) -> None:
        """Append one row; values are formatted immediately."""
        cells = [self._format(cell) for cell in row]
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.headers)} columns"
            )
        self._rows.append(cells)

    def _format(self, cell: object) -> str:
        if isinstance(cell, float):
            return self.float_format.format(cell)
        return str(cell)

    def __len__(self) -> int:
        return len(self._rows)

    def render(self) -> str:
        """Render the table (title, header, rule, rows) as a string."""
        widths = [len(h) for h in self.headers]
        for row in self._rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def fmt_row(cells: Sequence[str]) -> str:
            out = []
            for cell, width, align in zip(cells, widths, self.aligns):
                out.append(cell.ljust(width) if align == "l" else cell.rjust(width))
            return " | ".join(out).rstrip()

        lines = []
        if self.title:
            lines.append(self.title)
        lines.append(fmt_row(self.headers))
        lines.append("-+-".join("-" * w for w in widths))
        lines.extend(fmt_row(row) for row in self._rows)
        return "\n".join(lines)

    def render_markdown(self) -> str:
        """Render as a GitHub-flavoured markdown table (no title)."""
        header = "| " + " | ".join(self.headers) + " |"
        rule_cells = [("---:" if a == "r" else ":---") for a in self.aligns]
        rule = "| " + " | ".join(rule_cells) + " |"
        body = ["| " + " | ".join(row) + " |" for row in self._rows]
        return "\n".join([header, rule, *body])
