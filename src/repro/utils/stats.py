"""Small statistics helpers for the Monte-Carlo studies.

The spot, robustness and sensitivity analyses report means over a few
dozen stochastic trials; a mean without an interval invites over-reading.
:func:`bootstrap_ci` provides a nonparametric percentile bootstrap
confidence interval, and :func:`binomial_ci` a Wilson interval for
proportions (deadline-miss and on-time probabilities).
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ValidationError

__all__ = ["bootstrap_ci", "binomial_ci"]


def bootstrap_ci(samples: np.ndarray, *, confidence: float = 0.95,
                 n_resamples: int = 2000,
                 statistic=np.mean,
                 seed: int = 0) -> tuple[float, float]:
    """Percentile-bootstrap confidence interval for a statistic.

    Returns ``(lo, hi)``.  With a single sample the interval collapses to
    the point value.
    """
    arr = np.asarray(samples, dtype=float)
    if arr.size == 0:
        raise ValidationError("need at least one sample")
    if not (0 < confidence < 1):
        raise ValidationError("confidence must be in (0, 1)")
    if n_resamples < 1:
        raise ValidationError("need at least one resample")
    if arr.size == 1:
        v = float(statistic(arr))
        return v, v
    rng = np.random.default_rng(seed)
    idx = rng.integers(0, arr.size, size=(n_resamples, arr.size))
    stats = np.apply_along_axis(statistic, 1, arr[idx])
    alpha = (1.0 - confidence) / 2.0
    return (float(np.quantile(stats, alpha)),
            float(np.quantile(stats, 1.0 - alpha)))


def binomial_ci(successes: int, trials: int, *, confidence: float = 0.95
                ) -> tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Well-behaved at 0 and n successes, unlike the normal approximation —
    exactly the regimes deadline-miss studies hit.
    """
    if trials < 1:
        raise ValidationError("need at least one trial")
    if not (0 <= successes <= trials):
        raise ValidationError("successes must be in [0, trials]")
    if not (0 < confidence < 1):
        raise ValidationError("confidence must be in (0, 1)")
    # Two-sided z for the requested confidence (inverse error function).
    z = math.sqrt(2.0) * _erfinv(confidence)
    p = successes / trials
    denom = 1.0 + z * z / trials
    center = (p + z * z / (2 * trials)) / denom
    half = (z / denom) * math.sqrt(
        p * (1 - p) / trials + z * z / (4 * trials * trials))
    # Clamp to [0, 1] and guard floating-point drift past the point
    # estimate at the boundaries (k = 0 or k = n).
    lo = min(max(0.0, center - half), p)
    hi = max(min(1.0, center + half), p)
    return lo, hi


def _erfinv(y: float) -> float:
    """Inverse error function (Winitzki's approximation, |err| < 2e-3)."""
    a = 0.147
    ln_term = math.log(1.0 - y * y)
    first = 2.0 / (math.pi * a) + ln_term / 2.0
    return math.copysign(
        math.sqrt(math.sqrt(first * first - ln_term / a) - first), y)
