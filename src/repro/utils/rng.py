"""Deterministic random-number plumbing.

Every stochastic component of the simulator (virtualization jitter,
perf-counter noise, workload generation) draws from a
``numpy.random.Generator`` derived from a *root seed* plus a stable string
key.  This gives three properties the experiments rely on:

1. **Reproducibility** — the same root seed regenerates every figure.
2. **Independence** — noise in one subsystem does not shift the stream of
   another (keys isolate streams).
3. **Stability under refactoring** — adding a new consumer of randomness
   does not perturb existing streams, because streams are keyed, not drawn
   sequentially from a shared generator.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["spawn_seed", "derive_rng", "DEFAULT_ROOT_SEED"]

#: Root seed used by experiments unless overridden.
DEFAULT_ROOT_SEED: int = 20170843  # ICPP 2017, DOI .43


def spawn_seed(root_seed: int, *keys: object) -> int:
    """Derive a child seed from a root seed and a sequence of keys.

    Keys are stringified and hashed (SHA-256) together with the root seed,
    so any hashable-as-string object works: instance type names,
    application names, (n, a) tuples, run indices.

    >>> spawn_seed(1, "galaxy", 65536) == spawn_seed(1, "galaxy", 65536)
    True
    >>> spawn_seed(1, "galaxy") != spawn_seed(2, "galaxy")
    True
    """
    digest = hashlib.sha256()
    digest.update(str(int(root_seed)).encode())
    for key in keys:
        digest.update(b"\x1f")  # unit separator avoids "ab"+"c" == "a"+"bc"
        digest.update(repr(key).encode())
    return int.from_bytes(digest.digest()[:8], "little")


def derive_rng(root_seed: int, *keys: object) -> np.random.Generator:
    """Return an independent ``Generator`` for the given root seed and keys."""
    return np.random.default_rng(spawn_seed(root_seed, *keys))
