"""Shared utilities: seeded RNG plumbing, table rendering, math helpers."""

from repro.utils.rng import derive_rng, spawn_seed
from repro.utils.tables import TextTable
from repro.utils.mathutil import (
    relative_error,
    percent_error,
    approx_gradient,
    geometric_mean,
)

__all__ = [
    "derive_rng",
    "spawn_seed",
    "TextTable",
    "relative_error",
    "percent_error",
    "approx_gradient",
    "geometric_mean",
]
