"""Small numerical helpers shared by analyses and experiments."""

from __future__ import annotations

import numpy as np

__all__ = [
    "relative_error",
    "percent_error",
    "approx_gradient",
    "geometric_mean",
    "monotone_nonincreasing",
    "monotone_nondecreasing",
]


def relative_error(predicted: float, actual: float) -> float:
    """|predicted - actual| / |actual|.

    Table IV reports prediction error this way (actual in the denominator).
    Raises ``ZeroDivisionError`` for ``actual == 0`` — a zero ground truth
    indicates a broken experiment, not an error of 0 or infinity.
    """
    if actual == 0:
        raise ZeroDivisionError("relative error undefined for actual == 0")
    return abs(predicted - actual) / abs(actual)


def percent_error(predicted: float, actual: float) -> float:
    """Relative error expressed in percent, as in Table IV's Error column."""
    return 100.0 * relative_error(predicted, actual)


def approx_gradient(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Finite-difference gradient dy/dx at segment midpoints.

    Used by the fixed-time-scaling analysis to locate the points where the
    cost curve's gradient jumps (category-spill points, Figure 6a).
    Returns an array one element shorter than the inputs.
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.shape != y.shape or x.ndim != 1:
        raise ValueError("x and y must be 1-D arrays of equal length")
    if x.size < 2:
        raise ValueError("need at least two points for a gradient")
    dx = np.diff(x)
    if np.any(dx == 0):
        raise ValueError("x values must be strictly distinct")
    return np.diff(y) / dx

def geometric_mean(values: np.ndarray) -> float:
    """Geometric mean of strictly positive values."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("geometric mean of an empty array is undefined")
    if np.any(arr <= 0):
        raise ValueError("geometric mean requires strictly positive values")
    return float(np.exp(np.mean(np.log(arr))))


def monotone_nonincreasing(values: np.ndarray, *, tol: float = 0.0) -> bool:
    """True if the sequence never increases by more than ``tol``."""
    arr = np.asarray(values, dtype=float)
    return bool(np.all(np.diff(arr) <= tol))


def monotone_nondecreasing(values: np.ndarray, *, tol: float = 0.0) -> bool:
    """True if the sequence never decreases by more than ``tol``."""
    arr = np.asarray(values, dtype=float)
    return bool(np.all(np.diff(arr) >= -tol))
