"""Quantities and unit conversions used throughout the CELIA reproduction.

The paper expresses application resource demand in *billions of
instructions* (GI), resource capacity in *billions of instructions per
second* (GIPS, the paper calls it MIPS per vCPU scaled up), execution time
in hours, and cost in US dollars per hour.  Mixing these scales is the
easiest way to produce silently wrong results, so this module provides:

* canonical scale constants (``GIGA``, ``SECONDS_PER_HOUR``),
* thin converter functions that make call sites self-documenting,
* small frozen dataclasses for quantities where attaching the unit to the
  value pays for itself (:class:`Rate`, :class:`Price`).

Plain ``float``/NumPy arrays remain the currency on hot paths — the
dataclasses here are for configuration and reporting layers, never inner
loops (per the HPC guide: keep the vectorized core free of object churn).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "GIGA",
    "MEGA",
    "KILO",
    "SECONDS_PER_HOUR",
    "SECONDS_PER_MINUTE",
    "HOURS_PER_DAY",
    "giga_instructions",
    "instructions_from_gi",
    "hours_to_seconds",
    "seconds_to_hours",
    "gips_to_gi_per_hour",
    "gi_per_hour_to_gips",
    "dollars_per_hour_to_per_second",
    "Rate",
    "Price",
    "format_duration",
    "format_money",
    "format_instructions",
]

#: One billion — instructions are reported in GI (giga-instructions).
GIGA: float = 1e9
#: One million.
MEGA: float = 1e6
#: One thousand.
KILO: float = 1e3
#: Seconds in one hour (cloud billing granularity in the paper).
SECONDS_PER_HOUR: float = 3600.0
#: Seconds in one minute.
SECONDS_PER_MINUTE: float = 60.0
#: Hours in one day.
HOURS_PER_DAY: float = 24.0


def giga_instructions(raw_instructions: float) -> float:
    """Convert a raw instruction count to giga-instructions (GI)."""
    return raw_instructions / GIGA


def instructions_from_gi(gi: float) -> float:
    """Convert giga-instructions back to a raw instruction count."""
    return gi * GIGA


def hours_to_seconds(hours: float) -> float:
    """Convert hours to seconds."""
    return hours * SECONDS_PER_HOUR


def seconds_to_hours(seconds: float) -> float:
    """Convert seconds to hours."""
    return seconds / SECONDS_PER_HOUR


def gips_to_gi_per_hour(gips: float) -> float:
    """Convert a rate in GI/second to GI/hour."""
    return gips * SECONDS_PER_HOUR


def gi_per_hour_to_gips(gi_per_hour: float) -> float:
    """Convert a rate in GI/hour to GI/second."""
    return gi_per_hour / SECONDS_PER_HOUR


def dollars_per_hour_to_per_second(dollars_per_hour: float) -> float:
    """Convert an hourly price to a per-second price."""
    return dollars_per_hour / SECONDS_PER_HOUR


@dataclass(frozen=True, slots=True)
class Rate:
    """An instruction-execution rate, stored canonically in GI/second.

    This is the paper's ``W`` (resource capacity).  Comparison and
    arithmetic are defined so that characterization code reads naturally::

        total = Rate.from_gips(2.7) * 4          # four vCPUs
        per_dollar = total.per_dollar_hour(0.105)  # Figure 3's y-axis
    """

    gips: float

    @classmethod
    def from_gips(cls, gips: float) -> "Rate":
        """Build a rate from GI/second."""
        return cls(gips=float(gips))

    @classmethod
    def from_instructions_per_second(cls, ips: float) -> "Rate":
        """Build a rate from raw instructions/second."""
        return cls(gips=ips / GIGA)

    @property
    def instructions_per_second(self) -> float:
        """The rate as raw instructions per second."""
        return self.gips * GIGA

    @property
    def gi_per_hour(self) -> float:
        """The rate as GI per hour."""
        return gips_to_gi_per_hour(self.gips)

    def per_dollar_hour(self, dollars_per_hour: float) -> float:
        """Normalized performance: GI/s per ($/hour) — Figure 3's metric."""
        if dollars_per_hour <= 0:
            raise ValueError("price must be positive to normalize by it")
        return self.gips / dollars_per_hour

    def __mul__(self, factor: float) -> "Rate":
        return Rate(gips=self.gips * float(factor))

    __rmul__ = __mul__

    def __add__(self, other: "Rate") -> "Rate":
        return Rate(gips=self.gips + other.gips)

    def __lt__(self, other: "Rate") -> bool:
        return self.gips < other.gips

    def __le__(self, other: "Rate") -> bool:
        return self.gips <= other.gips


@dataclass(frozen=True, slots=True)
class Price:
    """An hourly on-demand price in US dollars (Table III's Cost column)."""

    dollars_per_hour: float

    def __post_init__(self) -> None:
        if not math.isfinite(self.dollars_per_hour) or self.dollars_per_hour < 0:
            raise ValueError(
                f"price must be a non-negative finite number, "
                f"got {self.dollars_per_hour!r}"
            )

    @property
    def dollars_per_second(self) -> float:
        """The price converted to $/second."""
        return dollars_per_hour_to_per_second(self.dollars_per_hour)

    def cost_for(self, hours: float) -> float:
        """Linear (non-quantized) cost of running for ``hours`` hours."""
        return self.dollars_per_hour * hours

    def __mul__(self, factor: float) -> "Price":
        return Price(dollars_per_hour=self.dollars_per_hour * float(factor))

    __rmul__ = __mul__

    def __add__(self, other: "Price") -> "Price":
        return Price(dollars_per_hour=self.dollars_per_hour + other.dollars_per_hour)


def format_duration(hours: float) -> str:
    """Render a duration in hours as a compact human string.

    >>> format_duration(25.5)
    '1d 1h 30m'
    >>> format_duration(0.25)
    '15m'
    """
    if hours < 0:
        return "-" + format_duration(-hours)
    total_minutes = int(round(hours * 60))
    days, rem = divmod(total_minutes, 24 * 60)
    hrs, minutes = divmod(rem, 60)
    parts: list[str] = []
    if days:
        parts.append(f"{days}d")
    if hrs:
        parts.append(f"{hrs}h")
    if minutes or not parts:
        parts.append(f"{minutes}m")
    return " ".join(parts)


def format_money(dollars: float) -> str:
    """Render a dollar amount with two decimals and a `$` sign."""
    if dollars < 0:
        return f"-${-dollars:,.2f}"
    return f"${dollars:,.2f}"


def format_instructions(gi: float) -> str:
    """Render a GI count with an adaptive suffix (GI, TI, PI).

    >>> format_instructions(2.5e6)
    '2.50 PI'
    """
    for limit, suffix in ((1e6, "PI"), (1e3, "TI")):
        if abs(gi) >= limit:
            return f"{gi / limit:.2f} {suffix}"
    return f"{gi:.2f} GI"
