"""Worker-count resolution and chunk-aligned span partitioning.

Spans are the unit of dispatch, lease, retry and checkpointing: a
contiguous run of linear indices whose boundaries always fall on the
serial chunk grid (``1 + k·chunk_size``).  Any decomposition of the
space along that grid reduces every chunk to the identical ``(k, M)``
int16 matrix and the identical matmul, which is what makes re-execution,
duplication and resume all bit-identical to the serial sweep.
"""

from __future__ import annotations

import os

from repro.errors import ConfigurationError

__all__ = [
    "AUTO_WORKERS_THRESHOLD",
    "available_workers",
    "resolve_workers",
    "partition_chunks",
    "partition_ranges",
    "missing_ranges",
]

#: Below this space size ``workers="auto"`` stays serial — process pool
#: startup (~10 ms/worker) dwarfs the sweep itself for small catalogs.
AUTO_WORKERS_THRESHOLD = 1 << 19

#: Contiguous spans handed out per worker; mild oversubscription keeps the
#: pool busy if one worker is descheduled, and bounds how much work a
#: crashed worker can lose (one span, not a 1/N slice of the space).
TASKS_PER_WORKER = 4


def available_workers() -> int:
    """Number of CPUs this process may actually run on."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def resolve_workers(workers: int | str | None, size: int,
                    *, threshold: int = AUTO_WORKERS_THRESHOLD) -> int:
    """Normalize the ``workers`` knob to an explicit worker count.

    ``None`` (and 1) mean serial; ``"auto"`` picks serial below
    ``threshold`` configurations and one worker per available CPU above
    it; an explicit integer is used as given.
    """
    if workers is None:
        return 1
    if isinstance(workers, str):
        if workers != "auto":
            raise ConfigurationError(
                f"workers must be an integer, None or 'auto', got {workers!r}"
            )
        if size < threshold:
            return 1
        return min(available_workers(), max(1, size // threshold))
    count = int(workers)
    if count < 1:
        raise ConfigurationError("workers must be >= 1")
    return count


def partition_chunks(total: int, chunk_size: int,
                     n_parts: int) -> list[tuple[int, int]]:
    """Split linear indices ``1..total`` into contiguous ``(start, stop)`` spans.

    Span boundaries always fall on the serial chunk grid (``1 + k·chunk``)
    so a worker sweeping its span chunk-by-chunk reproduces exactly the
    matrices the serial loop would build — the bit-identity invariant.
    """
    if total < 1:
        raise ConfigurationError("cannot partition an empty space")
    if chunk_size < 1:
        raise ConfigurationError("chunk size must be >= 1")
    n_chunks = -(-total // chunk_size)
    n_parts = max(1, min(n_parts, n_chunks))
    base, extra = divmod(n_chunks, n_parts)
    spans: list[tuple[int, int]] = []
    chunk = 0
    for part in range(n_parts):
        take = base + (1 if part < extra else 0)
        start = 1 + chunk * chunk_size
        chunk += take
        stop = min(1 + chunk * chunk_size, total + 1)
        spans.append((start, stop))
    return spans


def missing_ranges(completed: list[tuple[int, int]],
                   total: int) -> list[tuple[int, int]]:
    """Complement of ``completed`` spans within linear indices ``[1, total]``.

    Overlapping or adjacent completed spans are merged first, so the
    result is a minimal list of disjoint ``(start, stop)`` gaps still to
    be evaluated.
    """
    if total < 1:
        raise ConfigurationError("cannot compute gaps of an empty space")
    gaps: list[tuple[int, int]] = []
    cursor = 1
    for start, stop in sorted(completed):
        if stop <= cursor:
            continue
        if start > cursor:
            gaps.append((cursor, min(start, total + 1)))
        cursor = stop
        if cursor > total:
            break
    if cursor <= total:
        gaps.append((cursor, total + 1))
    return gaps


def partition_ranges(ranges: list[tuple[int, int]], chunk_size: int,
                     n_parts: int) -> list[tuple[int, int]]:
    """Split arbitrary chunk-aligned index ranges into dispatchable spans.

    The resume analogue of :func:`partition_chunks`: each range is cut on
    the chunk grid into spans of roughly ``total_chunks / n_parts``
    chunks, never crossing a range boundary.  Every range start must lie
    on the grid (``1 + k·chunk_size``) — checkpointed spans guarantee
    this by construction.
    """
    if chunk_size < 1:
        raise ConfigurationError("chunk size must be >= 1")
    if n_parts < 1:
        raise ConfigurationError("need at least one part")
    total_chunks = 0
    for start, stop in ranges:
        if start >= stop:
            raise ConfigurationError(f"empty range ({start}, {stop})")
        if (start - 1) % chunk_size != 0:
            raise ConfigurationError(
                f"range start {start} is off the chunk grid "
                f"(chunk size {chunk_size})"
            )
        total_chunks += -(-(stop - start) // chunk_size)
    if total_chunks == 0:
        return []
    span_chunks = max(1, -(-total_chunks // n_parts))
    spans: list[tuple[int, int]] = []
    for start, stop in ranges:
        cursor = start
        while cursor < stop:
            nxt = min(cursor + span_chunks * chunk_size, stop)
            spans.append((cursor, nxt))
            cursor = nxt
    return spans
